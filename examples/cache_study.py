"""Deep-dive cache study on one mesh: the Figures 1/9 + Tables 2/3 view.

For a chosen domain, runs the traced smoother under every registered
ordering (including the first-touch oracle), then reports

* reuse-distance quantiles (Table 2 style),
* per-level simulated miss counts/rates (Figure 9 style),
* the Equation-(2) cost breakdown (the paper's carabiner example),
* an ASCII reuse-distance-over-time profile (Figure 1 style).

Run:  python examples/cache_study.py [domain] [vertices]
"""

import sys

from repro import compare_orderings, generate_domain_mesh
from repro.bench import format_table, render_series
from repro.memsim import bucketed_series

ORDERINGS = ["random", "ori", "bfs", "rcm", "hilbert", "qsort", "rdr", "oracle"]


def main() -> None:
    domain = sys.argv[1] if len(sys.argv) > 1 else "carabiner"
    vertices = int(sys.argv[2]) if len(sys.argv) > 2 else 1500

    mesh = generate_domain_mesh(domain, target_vertices=vertices, seed=0)
    print(f"{domain}: {mesh.num_vertices} vertices")
    runs = compare_orderings(mesh, ORDERINGS, fixed_iterations=1)

    quantiles = []
    cache_rows = []
    cost_rows = []
    for name, run in runs.items():
        prof = run.reuse_profile()
        quantiles.append(
            {
                "ordering": name,
                "50%": prof.q50,
                "75%": prof.q75,
                "90%": prof.q90,
                "100%": prof.q100,
            }
        )
        st = run.cache
        cache_rows.append(
            {
                "ordering": name,
                "L1_miss_%": 100 * st.l1.miss_rate,
                "L2_miss_%": 100 * st.l2.miss_rate,
                "L3_miss_%": 100 * st.l3.miss_rate,
                "L1": st.l1.misses,
                "L2": st.l2.misses,
                "L3": st.l3.misses,
            }
        )
        cost_rows.append(
            {
                "ordering": name,
                "base_kcycles": run.cost.base_cycles / 1e3,
                "miss_kcycles": run.cost.extra_cycles / 1e3,
                "modeled_ms": run.modeled_seconds * 1e3,
            }
        )

    print()
    print(format_table(quantiles, title="reuse-distance quantiles (lines, 1st iteration)"))
    print()
    print(format_table(cache_rows, title=f"simulated cache behaviour ({runs['ori'].machine.name})"))
    print()
    print(format_table(cost_rows, title="Equation (2) cost model"))

    print()
    for name in ("random", "ori", "rdr"):
        xs, ys = bucketed_series(runs[name].distances, 80)
        print(render_series(xs, ys, title=f"reuse distance over time: {name}", logy=True))
        print()


if __name__ == "__main__":
    main()
