"""Real (wall-clock) threaded smoothing + the reordering-cost trade-off.

Runs the actual NumPy thread team on 1..N threads, measures wall time,
and prices RDR's pre-computation against the measured per-iteration cost
(Section 5.4's break-even argument). Wall-clock numbers on CPython are
the *secondary* signal of this reproduction — cache effects mostly hide
behind interpreter overhead — but the harness records them so they can
be compared against the simulated results.

Run:  python examples/real_parallel_smoothing.py [vertices] [iterations]
"""

import os
import sys

from repro import (
    break_even_iterations,
    generate_domain_mesh,
    measure_reordering_cost,
    parallel_smooth,
)
from repro.bench import format_table


def main() -> None:
    vertices = int(sys.argv[1]) if len(sys.argv) > 1 else 20000
    iterations = int(sys.argv[2]) if len(sys.argv) > 2 else 20
    max_threads = min(8, os.cpu_count() or 1)

    mesh = generate_domain_mesh("wrench", target_vertices=vertices, seed=0)
    print(f"wrench: {mesh.num_vertices} vertices, {iterations} Jacobi sweeps")

    rows = []
    base = None
    threads = [t for t in (1, 2, 4, 8) if t <= max_threads]
    for t in threads:
        out = parallel_smooth(mesh, num_threads=t, iterations=iterations)
        if base is None:
            base = out.wall_time_s
        rows.append(
            {
                "threads": t,
                "wall_s": out.wall_time_s,
                "speedup": base / out.wall_time_s,
                "quality": out.quality_after,
            }
        )
    print()
    print(format_table(rows, title="wall-clock threaded smoothing"))

    print()
    cost = measure_reordering_cost(mesh, "rdr")
    print(
        f"RDR reordering costs {cost.ordering_seconds * 1e3:.1f} ms "
        f"= {cost.iterations_equivalent:.2f} smoothing iterations"
    )
    for gain in (0.2, 0.3):
        k = break_even_iterations(
            reorder_cost_iterations=cost.iterations_equivalent,
            gain_fraction=gain,
        )
        print(
            f"  with a {gain:.0%} per-iteration gain, the reordering pays "
            f"for itself after {k:.1f} iterations"
        )


if __name__ == "__main__":
    main()
