"""Quickstart: reorder a mesh with RDR and see the locality win.

Generates one of the paper's domains, smooths it under the original
(ORI), BFS (Strout & Hovland) and RDR (the paper's) vertex orderings,
and compares simulated cache behaviour and modeled execution time —
the Figure 8 / Figure 9 experiment in miniature.

Run:  python examples/quickstart.py [domain] [vertices]
"""

import sys

from repro import compare_orderings, generate_domain_mesh, global_quality
from repro.bench import format_table


def main() -> None:
    domain = sys.argv[1] if len(sys.argv) > 1 else "ocean"
    vertices = int(sys.argv[2]) if len(sys.argv) > 2 else 2000

    print(f"generating {domain!r} with ~{vertices} vertices ...")
    mesh = generate_domain_mesh(domain, target_vertices=vertices, seed=0)
    print(
        f"  {mesh.num_vertices} vertices, {mesh.num_triangles} triangles, "
        f"initial quality {global_quality(mesh):.4f}"
    )

    print("smoothing one traced iteration under each ordering ...")
    runs = compare_orderings(
        mesh, ["random", "ori", "bfs", "rdr"], fixed_iterations=1
    )

    rows = []
    base = runs["ori"].modeled_seconds
    for name, run in runs.items():
        prof = run.reuse_profile()
        rows.append(
            {
                "ordering": name,
                "modeled_ms": run.modeled_seconds * 1e3,
                "speedup_vs_ori": base / run.modeled_seconds,
                "L1_misses": run.cache.l1.misses,
                "L2_misses": run.cache.l2.misses,
                "reuse_q50": prof.q50,
                "reuse_q90": prof.q90,
            }
        )
    print()
    print(format_table(rows, title=f"ordering comparison on {domain!r}"))
    print()
    best = min(rows, key=lambda r: r["modeled_ms"])
    print(f"winner: {best['ordering']} "
          f"({runs['ori'].modeled_seconds / best['modeled_ms'] * 1e3:.2f}x vs ORI)")


if __name__ == "__main__":
    main()
