"""Figure 3: Laplacian smoothing, before and after.

Generates a domain mesh, smooths it to the paper's convergence
criterion, reports the quality distribution before/after, and writes
both meshes as OFF files so any mesh viewer can reproduce the paper's
Figure 3 side-by-side view.

Run:  python examples/figure3_before_after.py [domain] [outdir]
"""

import sys
from pathlib import Path

import numpy as np

from repro import generate_domain_mesh, laplacian_smooth, vertex_quality
from repro.bench import format_table
from repro.mesh import write_off


def quality_row(label: str, q: np.ndarray) -> dict:
    return {
        "mesh": label,
        "min": float(q.min()),
        "mean": float(q.mean()),
        "q10": float(np.quantile(q, 0.10)),
        "q90": float(np.quantile(q, 0.90)),
        "max": float(q.max()),
    }


def main() -> None:
    domain = sys.argv[1] if len(sys.argv) > 1 else "stress"
    outdir = Path(sys.argv[2]) if len(sys.argv) > 2 else Path("/tmp")

    mesh = generate_domain_mesh(domain, target_vertices=1500, seed=0)
    result = laplacian_smooth(mesh, max_iterations=200)
    print(
        f"{domain}: converged in {result.iterations} iterations "
        f"(criterion 5e-6, the paper's)"
    )

    rows = [
        quality_row("initial", vertex_quality(mesh)),
        quality_row("smoothed", vertex_quality(result.mesh)),
    ]
    print()
    print(format_table(rows, title="vertex quality (edge-length ratio)"))

    before = write_off(mesh, outdir / f"{domain}_initial.off")
    after = write_off(result.mesh, outdir / f"{domain}_smoothed.off")
    print()
    print(f"wrote {before} and {after} (open in any OFF viewer)")


if __name__ == "__main__":
    main()
