"""The paper's Figure 5 worked example, reconstructed.

A small synthetic mesh is ordered with DFS and with BFS; smoothing the
worst-quality vertex reads its neighborhood, and the *span* of storage
positions touched differs between the orderings — the paper's
illustration that "minimizing the span of accesses allows for a better
spatial locality". This example rebuilds the experiment on a 13-vertex
mesh and prints the read sequences and spans, then scales the same
comparison up to a real domain mesh.

Run:  python examples/figure5_worked_example.py
"""

import numpy as np

from repro import TriMesh, apply_ordering, vertex_quality
from repro.ordering import invert_permutation
from repro.quality import patch_quality
from repro.smoothing import greedy_traversal


def thirteen_vertex_mesh() -> TriMesh:
    """A small fan-like mesh (13 vertices, like the paper's sketch)."""
    ring_outer = [
        (np.cos(t), np.sin(t)) for t in np.linspace(0, 2 * np.pi, 8, endpoint=False)
    ]
    ring_inner = [
        (0.45 * np.cos(t + 0.4), 0.45 * np.sin(t + 0.4))
        for t in np.linspace(0, 2 * np.pi, 4, endpoint=False)
    ]
    pts = np.array(ring_outer + ring_inner + [(0.05, 0.03)])
    from repro.meshgen import delaunay

    return TriMesh(pts, delaunay(pts), name="figure5")


def span_of_first_smooth(mesh: TriMesh, ordering: str) -> tuple[list[int], int]:
    q = vertex_quality(mesh)
    permuted, order = apply_ordering(mesh, ordering, qualities=q)
    inv = invert_permutation(order)
    qp = q[order]
    # The greedy smoother starts at the worst interior vertex and reads
    # its neighbors.
    interior = permuted.interior_vertices()
    worst = int(interior[np.argmin(qp[interior])])
    reads = [worst] + permuted.adjacency.neighbors(worst).tolist()
    span = max(reads) - min(reads)
    return reads, span


def main() -> None:
    mesh = thirteen_vertex_mesh()
    print(f"mesh: {mesh.num_vertices} vertices, {mesh.num_triangles} triangles")
    print()
    for ordering in ("dfs", "bfs", "rdr"):
        reads, span = span_of_first_smooth(mesh, ordering)
        print(
            f"{ordering:4s}: smoothing the worst vertex reads positions "
            f"{sorted(reads)} -> span {span}"
        )
    print()
    print("Scaled up to a real domain mesh: the static storage span (the")
    print("Figure 5 quantity) and the reuse-distance q90 it ultimately")
    print("drives. RDR deliberately trades a larger *static* span for")
    print("*traversal alignment* — its neighborhoods sit wherever the")
    print("greedy sweep is when it touches them — which is what collapses")
    print("the reuse distances:")
    from repro import compare_orderings
    from repro.meshgen import generate_domain_mesh

    big = generate_domain_mesh("stress", target_vertices=1200, seed=0)
    rank = patch_quality(big, passes=4)
    runs = compare_orderings(big, ["dfs", "bfs", "rdr"], fixed_iterations=1)
    for ordering in ("dfs", "bfs", "rdr"):
        permuted, order = apply_ordering(big, ordering, qualities=rank)
        qp = rank[order]
        seq = greedy_traversal(permuted, qp)
        g = permuted.adjacency
        spans = []
        for v in seq.tolist():
            nbrs = g.adjncy[g.xadj[v] : g.xadj[v + 1]]
            spans.append(max(int(nbrs.max()), v) - min(int(nbrs.min()), v))
        prof = runs[ordering].reuse_profile()
        print(
            f"  {ordering:4s}: median span {np.median(spans):6.0f}   "
            f"reuse-distance q90 {prof.q90:6d}   "
            f"modeled {runs[ordering].modeled_seconds * 1e3:7.3f} ms"
        )


if __name__ == "__main__":
    main()
