"""Tour of the reproduction's extensions beyond the paper's evaluation.

1. **Culling** — Mesquite-style active-set smoothing: converged regions
   drop out of later iterations; under RDR the survivors stay
   storage-clustered.
2. **Other kernels** (the paper's Section 6 conjecture): graph-Laplacian
   SpMV and worst-first mesh untangling under different orderings.
3. **Static vs dynamic reordering** (Shontz & Knupp's question).
4. **Per-array analysis** — where do the misses actually live?

Run:  python examples/extensions_tour.py
"""

import numpy as np

from repro import generate_domain_mesh
from repro.apps import laplacian_spmv, untangle
from repro.bench import format_table
from repro.core import run_dynamic_reordering, run_ordering
from repro.core.pipeline import default_machine_for
from repro.memsim import MemoryLayout, modeled_time, per_array_breakdown, simulate_trace
from repro.meshgen import perturb_interior, structured_rectangle
from repro.ordering import apply_ordering
from repro.quality import patch_quality, vertex_quality
from repro.smoothing import LaplacianSmoother


def culling_demo(mesh) -> None:
    print("== 1. culled (active-set) smoothing ==")
    smoother = LaplacianSmoother(culling=True, max_iterations=20, tol=-np.inf)
    run = smoother.smooth(mesh)
    counts = run.active_counts
    print(f"active vertices per iteration: {counts[0]} -> {counts[-1]} "
          f"(total smooths {sum(counts)}, vs {counts[0] * len(counts)} without culling)")
    print(f"quality {run.initial_quality:.4f} -> {run.final_quality:.4f}")
    print()


def other_kernels_demo(mesh) -> None:
    print("== 2. other kernels under orderings ==")
    machine = default_machine_for(mesh)
    rank = patch_quality(mesh, passes=4, base=vertex_quality(mesh))
    x = np.random.default_rng(0).random(mesh.num_vertices)
    rows = []
    for ordering in ("random", "bfs", "rdr"):
        permuted, order = apply_ordering(mesh, ordering, qualities=rank)
        out = laplacian_spmv(permuted, x[order], iterations=2, record_trace=True)
        layout = MemoryLayout.for_mesh(permuted)
        stats = simulate_trace(layout.lines(out.trace), machine)
        rows.append({
            "ordering": ordering,
            "kernel": "spmv",
            "modeled_us": modeled_time(stats, machine).seconds(machine) * 1e6,
            "L1_misses": stats.l1.misses,
        })
    print(format_table(rows, title="graph-Laplacian SpMV"))

    tangled = perturb_interior(structured_rectangle(30, 30), amplitude=0.02, seed=3)
    out = untangle(tangled, record_trace=True)
    print(f"untangling: {out.inverted_history[0]} inverted triangles -> "
          f"{out.inverted_history[-1]} in {out.sweeps} sweeps")
    print()


def dynamic_demo(mesh) -> None:
    print("== 3. static vs dynamic reordering ==")
    rows = []
    for every, label in ((0, "static"), (2, "every-2"), (1, "every-1")):
        run = run_dynamic_reordering(mesh, "rdr", every=every, iterations=6)
        rows.append({
            "strategy": label,
            "reorders": run.num_reorders,
            "total_ms": run.total_seconds * 1e3,
        })
    print(format_table(rows, title="RDR re-reordering strategies (6 iterations)"))
    print()


def per_array_demo(mesh) -> None:
    print("== 4. where do the misses live? ==")
    run = run_ordering(mesh, "ori", fixed_iterations=1)
    rows = [b.as_row() for b in per_array_breakdown(run.trace, run.layout, run.machine)]
    print(format_table(rows, title="per-array breakdown (ORI, 1 iteration)"))


def main() -> None:
    mesh = generate_domain_mesh("valve", target_vertices=1200, seed=0)
    print(f"valve: {mesh.num_vertices} vertices\n")
    culling_demo(mesh)
    other_kernels_demo(mesh)
    dynamic_demo(mesh)
    per_array_demo(mesh)


if __name__ == "__main__":
    main()
