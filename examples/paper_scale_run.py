"""Running at (a fraction of) paper scale.

The benchmark suite uses ~1.5k-vertex meshes so the full trace analysis
fits in CI time; the library itself handles much larger meshes — the
only cost is the pure-Python trace/simulation loop (~2-3 us per access).
This script runs one mesh at a user-chosen fraction of the paper's
328k-vertex carabiner, reports the same Figure 8/9-style numbers, and
prints a time budget so you can extrapolate to a full paper-scale run.

Run:  python examples/paper_scale_run.py [scale]
      scale = fraction of the paper's vertex count (default 0.02 ~ 6.5k
      vertices, ~1 minute; 1.0 would be the full 328k).
"""

import sys
import time

from repro import compare_orderings, generate_domain_mesh
from repro.bench import format_table
from repro.meshgen import PAPER_SUITE


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.02
    spec = PAPER_SUITE[0]  # carabiner
    target = max(300, int(spec.paper_vertices * scale))

    t0 = time.perf_counter()
    mesh = generate_domain_mesh(spec.name, target_vertices=target, seed=0)
    t_gen = time.perf_counter() - t0
    print(
        f"{spec.name} at scale {scale:g}: {mesh.num_vertices} vertices "
        f"(paper: {spec.paper_vertices}) generated in {t_gen:.1f}s"
    )

    t0 = time.perf_counter()
    runs = compare_orderings(mesh, ["ori", "bfs", "rdr"], fixed_iterations=1)
    t_run = time.perf_counter() - t0

    rows = []
    base = runs["ori"].modeled_seconds
    for name, run in runs.items():
        prof = run.reuse_profile()
        rows.append(
            {
                "ordering": name,
                "modeled_ms": run.modeled_seconds * 1e3,
                "speedup_vs_ori": base / run.modeled_seconds,
                "L1_misses": run.cache.l1.misses,
                "L2_misses": run.cache.l2.misses,
                "q50": prof.q50,
                "q90": prof.q90,
            }
        )
    print()
    print(format_table(rows, title=f"{spec.name} (n={mesh.num_vertices})"))

    accesses = runs["ori"].cost.num_accesses * 3
    print()
    print(
        f"analysis wall time: {t_run:.1f}s for {accesses} simulated accesses "
        f"({1e6 * t_run / accesses:.1f} us/access incl. reuse analysis)"
    )
    full = accesses / scale
    print(
        f"extrapolated full paper scale (scale=1.0): "
        f"~{t_run / scale / 60:.0f} minutes for the same three orderings"
    )


if __name__ == "__main__":
    main()
