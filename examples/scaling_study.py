"""Multicore scaling study: the Figures 10-13 view for one mesh.

Simulates statically-partitioned parallel smoothing on the calibrated
Westmere-shaped machine for 1..32 cores under ORI / BFS / RDR, with both
affinity policies, and prints speedup curves relative to the 1-core ORI
baseline — including the super-linear regime the paper attributes to
aggregate L3 growth.

Run:  python examples/scaling_study.py [domain] [vertices]
"""

import sys

from repro import generate_domain_mesh, run_parallel_ordering
from repro.bench import format_table, render_series
from repro.core import default_machine_for

CORES = (1, 2, 4, 8, 16, 24, 32)


def main() -> None:
    domain = sys.argv[1] if len(sys.argv) > 1 else "ocean"
    vertices = int(sys.argv[2]) if len(sys.argv) > 2 else 4000

    mesh = generate_domain_mesh(domain, target_vertices=vertices, seed=0)
    machine = default_machine_for(mesh, profile="scaling")
    print(
        f"{domain}: {mesh.num_vertices} vertices on {machine.name} "
        f"(L1 {machine.l1.size_bytes // 1024}K, L2 {machine.l2.size_bytes // 1024}K, "
        f"L3 {machine.l3.size_bytes // 1024}K per socket)"
    )

    times: dict = {}
    for ordering in ("ori", "bfs", "rdr"):
        for p in CORES:
            run = run_parallel_ordering(
                mesh, ordering, p, machine=machine, iterations=3
            )
            times[(ordering, p)] = run.modeled_seconds

    base = times[("ori", 1)]
    rows = []
    for p in CORES:
        rows.append(
            {
                "cores": p,
                "ori": base / times[("ori", p)],
                "bfs": base / times[("bfs", p)],
                "rdr": base / times[("rdr", p)],
                "rdr_gain_vs_ori_%": 100
                * (times[("ori", p)] - times[("rdr", p)])
                / times[("ori", p)],
            }
        )
    print()
    print(format_table(rows, title="speedup vs 1-core ORI (scatter affinity)"))
    print()
    print(render_series(CORES, [r["rdr"] for r in rows], title="RDR speedup vs cores"))

    # Affinity ablation: the paper's super-linear hypothesis.
    print()
    aff_rows = []
    for affinity in ("compact", "scatter"):
        run = run_parallel_ordering(
            mesh, "ori", 4, machine=machine, iterations=3, affinity=affinity
        )
        aff_rows.append(
            {
                "affinity": affinity,
                "cores": 4,
                "modeled_ms": run.modeled_seconds * 1e3,
                "memory_accesses": run.result.access_counts()["memory"],
            }
        )
    print(format_table(aff_rows, title="affinity ablation at 4 cores (ORI)"))


if __name__ == "__main__":
    main()
