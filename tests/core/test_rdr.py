"""Unit tests for RDR (Algorithm 2), its chain walk, and the oracle."""

import numpy as np
import pytest

from repro.core import (
    first_touch_ordering,
    rdr_chain_heads,
    rdr_ordering,
    sorted_neighbor_lists,
)
from repro.ordering import invert_permutation
from repro.quality import vertex_quality


class TestSortedNeighborLists:
    def test_rows_sorted_by_quality(self, ocean_mesh):
        q = vertex_quality(ocean_mesh)
        xadj, nbrs = sorted_neighbor_lists(ocean_mesh, q)
        for v in range(0, ocean_mesh.num_vertices, 37):
            row = nbrs[xadj[v] : xadj[v + 1]]
            assert (np.diff(q[row]) >= 0).all()

    def test_rows_have_same_members(self, ocean_mesh):
        q = vertex_quality(ocean_mesh)
        g = ocean_mesh.adjacency
        xadj, nbrs = sorted_neighbor_lists(ocean_mesh, q)
        for v in range(0, ocean_mesh.num_vertices, 53):
            assert set(nbrs[xadj[v] : xadj[v + 1]]) == set(g.neighbors(v))

    def test_ties_break_on_vertex_index(self, grid_mesh):
        q = np.zeros(grid_mesh.num_vertices)
        xadj, nbrs = sorted_neighbor_lists(grid_mesh, q)
        for v in range(grid_mesh.num_vertices):
            row = nbrs[xadj[v] : xadj[v + 1]]
            assert (np.diff(row) > 0).all()


class TestRDRTheorem1:
    """Theorem 1: Algorithm 2 orders every vertex exactly once."""

    @pytest.mark.parametrize("mesh_name", ["ocean_mesh", "bumpy_mesh", "grid_mesh"])
    def test_orders_each_vertex_exactly_once(self, mesh_name, request):
        mesh = request.getfixturevalue(mesh_name)
        order = rdr_ordering(mesh)
        assert np.array_equal(np.sort(order), np.arange(mesh.num_vertices))

    def test_tiny_mesh(self, tiny_mesh):
        order = rdr_ordering(tiny_mesh)
        assert np.array_equal(np.sort(order), np.arange(5))


class TestRDRStructure:
    def test_first_vertex_is_worst_interior(self, ocean_mesh):
        q = vertex_quality(ocean_mesh)
        order = rdr_ordering(ocean_mesh, qualities=q)
        interior = ocean_mesh.interior_vertices()
        worst = interior[np.argmin(q[interior])]
        assert order[0] == worst

    def test_seed_neighbors_follow_sorted_by_quality(self, ocean_mesh):
        q = vertex_quality(ocean_mesh)
        order = rdr_ordering(ocean_mesh, qualities=q)
        seed = order[0]
        nbrs = ocean_mesh.adjacency.neighbors(seed)
        k = nbrs.size
        placed = order[1 : 1 + k]
        assert set(placed.tolist()) == set(nbrs.tolist())
        assert (np.diff(q[placed]) >= 0).all()

    def test_improves_alignment_with_greedy_traversal(self, ocean_mesh):
        """RDR storage order correlates with the greedy visit order far
        better than the native order does (the paper's core mechanism)."""
        from repro.quality import patch_quality
        from repro.smoothing import greedy_traversal

        rank = patch_quality(ocean_mesh, passes=4)
        order = rdr_ordering(ocean_mesh, qualities=rank)
        permuted = ocean_mesh.permute(order)
        seq = greedy_traversal(permuted, rank[order])
        t = np.arange(seq.size)
        corr_rdr = np.corrcoef(seq, t)[0, 1]
        seq_ori = greedy_traversal(ocean_mesh, rank)
        corr_ori = abs(np.corrcoef(seq_ori, np.arange(seq_ori.size))[0, 1])
        assert corr_rdr > 0.5  # strong at this small fixture size
        assert corr_rdr > corr_ori + 0.3

    def test_quality_shape_validated(self, ocean_mesh):
        with pytest.raises(ValueError, match="shape"):
            rdr_ordering(ocean_mesh, qualities=np.zeros(3))

    def test_deterministic(self, ocean_mesh):
        a = rdr_ordering(ocean_mesh)
        b = rdr_ordering(ocean_mesh)
        assert np.array_equal(a, b)


class TestChainHeads:
    def test_heads_cover_all_interior(self, ocean_mesh):
        heads = rdr_chain_heads(ocean_mesh)
        assert set(ocean_mesh.interior_vertices().tolist()) <= set(heads.tolist())

    def test_heads_unique(self, ocean_mesh):
        heads = rdr_chain_heads(ocean_mesh)
        assert len(set(heads.tolist())) == heads.size

    def test_first_head_is_worst_interior(self, ocean_mesh):
        q = vertex_quality(ocean_mesh)
        heads = rdr_chain_heads(ocean_mesh, qualities=q)
        interior = ocean_mesh.interior_vertices()
        assert heads[0] == interior[np.argmin(q[interior])]


class TestOracle:
    def test_is_permutation(self, ocean_mesh):
        order = first_touch_ordering(ocean_mesh)
        assert np.array_equal(np.sort(order), np.arange(ocean_mesh.num_vertices))

    def test_first_touch_monotone(self, ocean_mesh):
        """In the oracle layout, the traversal's first touches of
        vertices happen in increasing storage order (by construction)."""
        from repro.quality import patch_quality
        from repro.smoothing import greedy_traversal

        rank = patch_quality(ocean_mesh, passes=4)
        order = first_touch_ordering(ocean_mesh, qualities=rank)
        permuted = ocean_mesh.permute(order)
        inv = invert_permutation(order)
        seq_logical = greedy_traversal(ocean_mesh, rank)
        g = ocean_mesh.adjacency
        seen = np.zeros(ocean_mesh.num_vertices, bool)
        touches = []
        for v in seq_logical.tolist():
            if not seen[v]:
                seen[v] = True
                touches.append(inv[v])
            for w in g.neighbors(v):
                if not seen[w]:
                    seen[w] = True
                    touches.append(inv[w])
        touches = np.array(touches)
        assert (np.diff(touches) > 0).all()
