"""Unit tests for reordering-cost accounting (Section 5.4)."""

import pytest

from repro.core import break_even_iterations, measure_reordering_cost


class TestMeasureReorderingCost:
    def test_fields_positive(self, ocean_mesh):
        cost = measure_reordering_cost(ocean_mesh, "rdr", repeats=1)
        assert cost.ordering == "rdr"
        assert cost.mesh_name == ocean_mesh.name
        assert cost.ordering_seconds > 0
        assert cost.iteration_seconds > 0
        assert cost.iterations_equivalent > 0

    def test_cheap_ordering_cheaper_than_rdr(self, ocean_mesh):
        ori = measure_reordering_cost(ocean_mesh, "ori", repeats=2)
        rdr = measure_reordering_cost(ocean_mesh, "rdr", repeats=2)
        assert ori.ordering_seconds < rdr.ordering_seconds


class TestBreakEven:
    def test_papers_numbers(self):
        # Cost of ~1 iteration, 25% gain -> ~4 iterations to pay off.
        assert break_even_iterations(
            reorder_cost_iterations=1.0, gain_fraction=0.25
        ) == pytest.approx(4.0)

    def test_scales_with_cost(self):
        assert break_even_iterations(
            reorder_cost_iterations=2.0, gain_fraction=0.25
        ) == pytest.approx(8.0)

    def test_rejects_bad_gain(self):
        with pytest.raises(ValueError, match="gain_fraction"):
            break_even_iterations(reorder_cost_iterations=1.0, gain_fraction=0.0)
        with pytest.raises(ValueError, match="gain_fraction"):
            break_even_iterations(reorder_cost_iterations=1.0, gain_fraction=1.5)

    def test_rejects_negative_cost(self):
        with pytest.raises(ValueError, match="reorder_cost"):
            break_even_iterations(reorder_cost_iterations=-1.0, gain_fraction=0.5)
