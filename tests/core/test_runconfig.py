"""The unified :class:`RunConfig`: validation, round-trips, and the
deprecation shims that keep the legacy per-kwarg spellings working.

The shim-equivalence tests are the contract of the API redesign: every
legacy call must warn *and* produce results identical to the ``config=``
spelling.
"""

import argparse
import dataclasses

import numpy as np
import pytest

from repro import ObsConfig, RunConfig, engine_axes, laplacian_smooth
from repro.bench.experiments import BenchConfig
from repro.cli import add_engine_args, add_obs_args, run_config_from_args
from repro.config import (
    DEFAULT_RUN_CONFIG,
    UnknownNameError,
    resolve_config,
)
from repro.core import run_ordering, run_summary
from repro.lab.grid import JobSpec
from repro.memsim import (
    MemoryLayout,
    simulate_multicore,
    simulate_trace,
    tiny_machine,
    westmere_ex,
)
from repro.parallel import parallel_traces
from repro.smoothing import trace_for_traversal


class TestRunConfig:
    def test_defaults(self):
        cfg = RunConfig()
        assert cfg.engine == "reference"
        assert cfg.sim_engine == "reference"
        assert cfg.mem_engine == "sequential"
        assert cfg.order_engine == "reference"
        assert cfg.seed == 0
        assert cfg.machine_profile is None
        assert cfg.obs == ObsConfig()

    def test_frozen_and_hashable(self):
        cfg = RunConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            cfg.engine = "vectorized"
        assert {cfg: 1}[RunConfig()] == 1

    def test_validate_returns_self_on_good_config(self):
        cfg = RunConfig(
            engine="vectorized",
            sim_engine="batched",
            mem_engine="sharded",
            order_engine="batched",
            machine_profile="scaling",
        )
        assert cfg.validate() is cfg

    @pytest.mark.parametrize(
        "kwargs, message",
        [
            ({"engine": "turbo"}, "unknown engine 'turbo'"),
            ({"sim_engine": "turbo"}, "unknown sim engine 'turbo'"),
            ({"mem_engine": "turbo"}, "unknown mem engine 'turbo'"),
            ({"order_engine": "turbo"}, "unknown order engine 'turbo'"),
            ({"machine_profile": "laptop"}, "unknown machine profile 'laptop'"),
        ],
    )
    def test_validate_rejects_unknown_names(self, kwargs, message):
        with pytest.raises(UnknownNameError, match=message):
            RunConfig(**kwargs).validate()

    def test_replace_builds_a_new_config(self):
        cfg = RunConfig()
        other = cfg.replace(engine="vectorized", seed=7)
        assert other.engine == "vectorized" and other.seed == 7
        assert cfg.engine == "reference"

    def test_dict_round_trip_including_obs(self):
        cfg = RunConfig(
            engine="vectorized",
            seed=3,
            obs=ObsConfig(enabled=True, trace_path="t.jsonl"),
        )
        data = cfg.as_dict()
        assert data["obs"]["trace_path"] == "t.jsonl"
        assert RunConfig.from_dict(data) == cfg

    def test_from_dict_ignores_unknown_keys(self):
        assert RunConfig.from_dict({"engine": "vectorized", "bogus": 1}) == (
            RunConfig(engine="vectorized")
        )

    def test_engine_axes_cover_every_axis(self):
        axes = engine_axes()
        assert axes["engine"] == ("reference", "vectorized")
        assert axes["sim_engine"] == ("reference", "batched")
        assert axes["mem_engine"] == ("sequential", "sharded")
        assert axes["order_engine"] == ("reference", "batched")


class TestResolveConfig:
    def test_no_args_yields_the_default(self):
        assert resolve_config(None) is DEFAULT_RUN_CONFIG

    def test_explicit_config_passes_through_untouched(self):
        cfg = RunConfig(engine="vectorized")
        assert resolve_config(cfg) is cfg

    def test_none_valued_legacy_kwargs_do_not_warn(self, recwarn):
        assert resolve_config(None, engine=None, seed=None) is (
            DEFAULT_RUN_CONFIG
        )
        assert not recwarn.list

    def test_legacy_kwargs_warn_and_map_to_fields(self):
        with pytest.warns(DeprecationWarning, match="engine, seed"):
            cfg = resolve_config(None, engine="vectorized", seed=5)
        assert cfg == RunConfig(engine="vectorized", seed=5)

    def test_combining_config_and_legacy_kwargs_raises(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(TypeError, match="cannot combine config="):
                resolve_config(RunConfig(), engine="vectorized")


class TestShimEquivalence:
    """Legacy spellings must warn and produce identical results."""

    def test_run_ordering_shim(self, ocean_mesh):
        new = run_ordering(
            ocean_mesh,
            "rdr",
            config=RunConfig(sim_engine="batched"),
            fixed_iterations=2,
        )
        with pytest.warns(DeprecationWarning, match="sim_engine"):
            old = run_ordering(
                ocean_mesh, "rdr", sim_engine="batched", fixed_iterations=2
            )
        assert run_summary(old) == run_summary(new)

    def test_laplacian_smooth_engine_shim(self, bumpy_mesh):
        new = laplacian_smooth(
            bumpy_mesh,
            config=RunConfig(engine="vectorized"),
            max_iterations=3,
        )
        with pytest.warns(DeprecationWarning, match="engine"):
            old = laplacian_smooth(
                bumpy_mesh, engine="vectorized", max_iterations=3
            )
        assert np.array_equal(old.mesh.vertices, new.mesh.vertices)
        assert old.iterations == new.iterations

    def test_simulate_trace_shim(self, ocean_mesh):
        trace = trace_for_traversal(
            ocean_mesh, np.arange(ocean_mesh.num_vertices)
        )
        lines = MemoryLayout.for_mesh(ocean_mesh).lines(trace)
        machine = tiny_machine()
        new = simulate_trace(
            lines, machine, config=RunConfig(sim_engine="batched")
        )
        with pytest.warns(DeprecationWarning, match="sim_engine"):
            old = simulate_trace(lines, machine, sim_engine="batched")
        assert old == new

    def test_simulate_multicore_shim(self, ocean_mesh):
        machine = westmere_ex()
        traces = parallel_traces(ocean_mesh, 2, iterations=1,
                                 traversal="storage")
        layout = MemoryLayout.for_mesh(ocean_mesh, line_size=machine.line_size)
        streams = [layout.lines(t) for t in traces]
        new = simulate_multicore(
            streams, machine, config=RunConfig(mem_engine="sharded")
        )
        with pytest.warns(DeprecationWarning, match="mem_engine"):
            old = simulate_multicore(streams, machine, engine="sharded")
        assert old.access_counts() == new.access_counts()
        assert old.modeled_seconds == new.modeled_seconds


class TestCliRoundTrip:
    def parse(self, argv, *, plural=False):
        parser = argparse.ArgumentParser()
        add_engine_args(parser, plural=plural)
        if not plural:
            add_obs_args(parser)
        return parser.parse_args(argv)

    def test_args_round_trip_into_a_config(self, tmp_path):
        args = self.parse([
            "--engine", "vectorized",
            "--sim-engine", "batched",
            "--mem-engine", "sharded",
            "--order-engine", "batched",
            "--seed", "7",
            "--trace-out", str(tmp_path / "t.jsonl"),
        ])
        cfg = run_config_from_args(args)
        assert cfg == RunConfig(
            engine="vectorized",
            sim_engine="batched",
            mem_engine="sharded",
            order_engine="batched",
            seed=7,
            obs=ObsConfig(
                enabled=True, trace_path=str(tmp_path / "t.jsonl")
            ),
        )

    def test_defaults_round_trip_with_obs_disabled(self):
        cfg = run_config_from_args(self.parse([]))
        assert cfg == RunConfig()
        assert not cfg.obs.enabled

    def test_plural_args_parse_into_tuples(self):
        args = self.parse(
            ["--engines", "reference,vectorized", "--seeds", "0,1,2"],
            plural=True,
        )
        assert args.engines == ("reference", "vectorized")
        assert args.sim_engines == ("reference",)
        assert args.mem_engines == ("sequential",)
        assert args.order_engines == ("reference",)
        assert args.seeds == (0, 1, 2)


class TestSpecRoundTrips:
    CFG = RunConfig(
        engine="vectorized", sim_engine="batched", mem_engine="sharded",
        order_engine="batched", seed=3,
    )

    def test_job_spec_round_trip(self):
        spec = JobSpec.from_run_config(
            self.CFG, experiment="pipeline", domain="ocean", ordering="rdr"
        )
        assert spec.engine == "vectorized"
        assert spec.mem_engine == "sharded"
        assert spec.order_engine == "batched"
        assert spec.to_run_config() == self.CFG
        assert "mem_engine=sharded" in spec.key()
        assert "order_engine=batched" in spec.key()

    def test_bench_config_round_trip(self):
        cfg = BenchConfig.from_run_config(self.CFG, suite_scale=0.01)
        assert cfg.engine == "vectorized"
        assert cfg.suite_scale == 0.01
        assert cfg.to_run_config() == self.CFG

    def test_run_records_full_provenance(self, ocean_mesh):
        run = run_ordering(
            ocean_mesh,
            "rdr",
            config=RunConfig(
                engine="vectorized", sim_engine="batched",
                order_engine="batched",
            ),
            fixed_iterations=1,
        )
        row = run_summary(run)
        assert row["engine"] == "vectorized"
        assert row["sim_engine"] == "batched"
        assert row["mem_engine"] == "sequential"
        assert row["order_engine"] == "batched"
        assert row["seed"] == 0
        assert row["machine"] == run.machine.name
        assert row["machine_profile"] is None
