"""Unit tests for the end-to-end pipelines."""

import numpy as np
import pytest

from repro import compare_orderings, run_ordering, run_parallel_ordering
from repro.core import default_machine_for
from repro.memsim import tiny_machine


class TestRunOrdering:
    def test_result_consistency(self, ocean_mesh):
        run = run_ordering(ocean_mesh, "bfs", fixed_iterations=2)
        assert run.ordering == "bfs"
        assert run.mesh_name == ocean_mesh.name
        assert run.smoothing.iterations == 2
        assert run.trace.num_iterations == 2
        assert len(run.lines) == len(run.trace)
        assert run.cache.l1.accesses == len(run.trace)
        assert run.modeled_seconds > 0

    def test_fixed_iterations_disables_convergence(self, ocean_mesh):
        run = run_ordering(ocean_mesh, "ori", fixed_iterations=1)
        assert run.smoothing.iterations == 1

    def test_convergent_run_by_default(self, ocean_mesh):
        run = run_ordering(ocean_mesh, "ori", max_iterations=40)
        assert run.smoothing.converged

    def test_distances_cached(self, ocean_mesh):
        run = run_ordering(ocean_mesh, "ori", fixed_iterations=1)
        assert run.distances is run.distances

    def test_reuse_profile_first_iteration(self, ocean_mesh):
        run = run_ordering(ocean_mesh, "rdr", fixed_iterations=2)
        prof_it0 = run.reuse_profile(iteration=0)
        prof_all = run.reuse_profile(iteration=None)
        assert prof_it0.num_accesses < prof_all.num_accesses

    def test_custom_machine(self, ocean_mesh):
        run = run_ordering(ocean_mesh, "ori", machine=tiny_machine(), fixed_iterations=1)
        assert run.machine.name == "tiny"

    def test_default_machine_calibrated_to_mesh(self, ocean_mesh):
        machine = default_machine_for(ocean_mesh)
        run = run_ordering(ocean_mesh, "ori", fixed_iterations=1)
        assert run.machine.l3.size_bytes == machine.l3.size_bytes

    def test_rank_passes_override_changes_order(self, ocean_mesh):
        a = run_ordering(ocean_mesh, "rdr", fixed_iterations=1, rank_passes_override=0)
        b = run_ordering(ocean_mesh, "rdr", fixed_iterations=1, rank_passes_override=4)
        assert not np.array_equal(a.order, b.order)


class TestCompareOrderings:
    def test_all_requested_orderings_run(self, ocean_mesh):
        runs = compare_orderings(ocean_mesh, ["ori", "bfs"], fixed_iterations=1)
        assert set(runs) == {"ori", "bfs"}

    def test_identical_workload(self, ocean_mesh):
        runs = compare_orderings(ocean_mesh, ["ori", "rdr"], fixed_iterations=1)
        assert runs["ori"].cost.num_accesses == runs["rdr"].cost.num_accesses


class TestRunParallelOrdering:
    def test_fields(self, ocean_mesh):
        pr = run_parallel_ordering(
            ocean_mesh, "ori", 2, machine=tiny_machine(), iterations=2
        )
        assert pr.num_cores == 2
        assert pr.iterations == 2
        assert pr.modeled_seconds > 0
        assert pr.result.num_cores == 2

    def test_work_conserved_across_cores(self, ocean_mesh):
        m = tiny_machine()
        one = run_parallel_ordering(ocean_mesh, "ori", 1, machine=m, iterations=2)
        two = run_parallel_ordering(ocean_mesh, "ori", 2, machine=m, iterations=2)
        assert one.result.total_accesses == two.result.total_accesses
