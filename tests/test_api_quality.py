"""API-quality gates: every public item is documented and exported sanely.

These tests walk the installed package and enforce the documentation
contract of the deliverable: public modules, classes and functions carry
docstrings, ``__all__`` lists match what the modules actually define,
and the top-level namespace re-exports resolve.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.apps",
    "repro.backend",
    "repro.bench",
    "repro.core",
    "repro.lab",
    "repro.mesh",
    "repro.meshgen",
    "repro.memsim",
    "repro.obs",
    "repro.ordering",
    "repro.parallel",
    "repro.quality",
    "repro.smoothing",
]


def iter_modules():
    for name in PACKAGES:
        pkg = importlib.import_module(name)
        yield pkg
        for info in pkgutil.iter_modules(pkg.__path__, prefix=f"{name}."):
            if info.name.endswith("__main__"):
                continue  # importing it would run the CLI
            yield importlib.import_module(info.name)


ALL_MODULES = list(iter_modules())


@pytest.mark.parametrize("module", ALL_MODULES, ids=lambda m: m.__name__)
def test_module_has_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), module.__name__


@pytest.mark.parametrize("module", ALL_MODULES, ids=lambda m: m.__name__)
def test_all_exports_resolve(module):
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), f"{module.__name__}.__all__ lists {name!r}"


@pytest.mark.parametrize("module", ALL_MODULES, ids=lambda m: m.__name__)
def test_public_callables_documented(module):
    for name in getattr(module, "__all__", []):
        obj = getattr(module, name)
        if inspect.isfunction(obj) or inspect.isclass(obj):
            if obj.__module__.startswith("repro"):
                assert obj.__doc__ and obj.__doc__.strip(), (
                    f"{module.__name__}.{name} lacks a docstring"
                )


def test_top_level_api_surface():
    # The quick-tour names from the package docstring must exist.
    for name in (
        "generate_domain_mesh",
        "compare_orderings",
        "rdr_ordering",
        "laplacian_smooth",
        "reuse_distances",
        "westmere_ex",
        "parallel_smooth",
    ):
        assert name in repro.__all__
        assert hasattr(repro, name)


def test_version_present():
    assert repro.__version__.count(".") == 2


# The config= redesign froze these signatures; a change here is an API
# break and must be deliberate (update the snapshot in the same commit
# that documents the migration in DESIGN.md §11).
SIGNATURE_SNAPSHOT = {
    "repro.core.pipeline.run_ordering": (
        "(mesh: 'TriMesh', ordering: 'str', *, config: 'RunConfig | None' = "
        "None, machine: 'MachineSpec | str | None' = None, traversal: 'str' ="
        " 'greedy', max_iterations: 'int' = 50, fixed_iterations: 'int | None'"
        " = None, qualities: 'np.ndarray | None' = None, seed: 'int | None' ="
        " None, rank_passes_override: 'int | None' = None, smoother_kwargs: "
        "'dict | None' = None, precomputed_order: 'np.ndarray | None' = None,"
        " engine: 'str | None' = None, sim_engine: 'str | None' = None, "
        "order_engine: 'str | None' = None, summary_only: 'bool' = False, "
        "trace_dir: 'str | Path | None' = None) -> 'OrderedRun'"
    ),
    "repro.core.pipeline.run_parallel_ordering": (
        "(mesh: 'TriMesh', ordering: 'str', num_cores: 'int', *, config: "
        "'RunConfig | None' = None, machine: 'MachineSpec | str | None' = "
        "None, iterations: 'int' = 8, traversal: 'str' = 'greedy', affinity:"
        " 'str' = 'scatter', qualities: 'np.ndarray | None' = None, seed: "
        "'int | None' = None, mem_engine: 'str | None' = None, sim_engine: "
        "'str | None' = None, order_engine: 'str | None' = None) -> "
        "'ParallelRun'"
    ),
    "repro.core.pipeline.compare_orderings": (
        "(mesh: 'TriMesh', orderings: 'list[str]', *, config: "
        "'RunConfig | None' = None, machine: 'MachineSpec | None' = None, "
        "**kwargs) -> 'dict[str, OrderedRun]'"
    ),
    "repro.smoothing.laplacian.laplacian_smooth": (
        "(mesh: 'TriMesh', *, config: 'RunConfig | None' = None, **kwargs) "
        "-> 'SmoothingResult'"
    ),
    "repro.memsim.cache.simulate_trace": (
        "(lines: 'np.ndarray', machine: 'MachineSpec | str', *, config: "
        "'RunConfig | None' = None, next_line_prefetch: 'bool' = False, "
        "policy: 'str' = 'lru', sim_engine: 'str | None' = None) -> "
        "'HierarchyStats'"
    ),
    "repro.memsim.multicore.simulate_multicore": (
        "(lines_per_core: 'list[np.ndarray]', machine: 'MachineSpec | str',"
        " *, config: 'RunConfig | None' = None, affinity: 'str' = 'compact',"
        " quantum: 'int' = 64, engine: 'str | None' = None, max_workers: "
        "'int | None' = None, sim_engine: 'str | None' = None) -> "
        "'MulticoreResult'"
    ),
    "repro.memsim.machine.resolve_machine": (
        "(machine: 'MachineSpec | str | None', *, footprint_bytes: "
        "'int | None' = None, stacklevel: 'int' = 3) -> "
        "'MachineSpec | None'"
    ),
    "repro.backend.get_backend": (
        "(name: 'str' = 'numpy') -> 'ArrayBackend'"
    ),
    "repro.config.RunConfig": (
        "(engine: 'str' = 'reference', sim_engine: 'str' = 'reference', "
        "mem_engine: 'str' = 'sequential', order_engine: 'str' = "
        "'reference', backend: 'str' = 'numpy', trace_mode: 'str' = "
        "'materialize', seed: 'int' = 0, "
        "machine_profile:"
        " 'str | None' = None, stream_window_events: 'int | None' = None, "
        "obs: 'ObsConfig' = <factory>) -> None"
    ),
    "repro.config.resolve_config": (
        "(config: 'RunConfig | None', *, stacklevel: 'int' = 3, **legacy) "
        "-> 'RunConfig'"
    ),
}


@pytest.mark.parametrize("path", sorted(SIGNATURE_SNAPSHOT))
def test_public_signature_snapshot(path):
    module_name, _, attr = path.rpartition(".")
    obj = getattr(importlib.import_module(module_name), attr)
    assert str(inspect.signature(obj)) == SIGNATURE_SNAPSHOT[path], (
        f"{path} signature changed; if intentional, update the snapshot "
        "and the RunConfig migration table in DESIGN.md"
    )


def test_config_first_parameter_order():
    # Every redesigned API takes config= as its first keyword-only
    # parameter, so the unified spelling reads the same everywhere.
    from repro import LaplacianSmoother
    from repro.core import run_ordering, run_parallel_ordering
    from repro.memsim import simulate_multicore, simulate_trace

    for func in (
        run_ordering,
        run_parallel_ordering,
        simulate_trace,
        simulate_multicore,
        LaplacianSmoother.__init__,
    ):
        params = inspect.signature(func).parameters
        first_kwonly = next(
            p.name
            for p in params.values()
            if p.kind is inspect.Parameter.KEYWORD_ONLY
        )
        assert first_kwonly == "config", func.__qualname__


def test_public_methods_documented_on_key_classes():
    from repro.mesh import TriMesh
    from repro.memsim import AccessTrace, LRUCache, MemoryLayout
    from repro.smoothing import LaplacianSmoother

    for cls in (TriMesh, AccessTrace, LRUCache, MemoryLayout, LaplacianSmoother):
        for name, member in inspect.getmembers(cls, inspect.isfunction):
            if name.startswith("_"):
                continue
            assert member.__doc__ and member.__doc__.strip(), (
                f"{cls.__name__}.{name} lacks a docstring"
            )
