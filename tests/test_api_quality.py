"""API-quality gates: every public item is documented and exported sanely.

These tests walk the installed package and enforce the documentation
contract of the deliverable: public modules, classes and functions carry
docstrings, ``__all__`` lists match what the modules actually define,
and the top-level namespace re-exports resolve.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.apps",
    "repro.bench",
    "repro.core",
    "repro.mesh",
    "repro.meshgen",
    "repro.memsim",
    "repro.ordering",
    "repro.parallel",
    "repro.quality",
    "repro.smoothing",
]


def iter_modules():
    for name in PACKAGES:
        pkg = importlib.import_module(name)
        yield pkg
        for info in pkgutil.iter_modules(pkg.__path__, prefix=f"{name}."):
            if info.name.endswith("__main__"):
                continue  # importing it would run the CLI
            yield importlib.import_module(info.name)


ALL_MODULES = list(iter_modules())


@pytest.mark.parametrize("module", ALL_MODULES, ids=lambda m: m.__name__)
def test_module_has_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), module.__name__


@pytest.mark.parametrize("module", ALL_MODULES, ids=lambda m: m.__name__)
def test_all_exports_resolve(module):
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), f"{module.__name__}.__all__ lists {name!r}"


@pytest.mark.parametrize("module", ALL_MODULES, ids=lambda m: m.__name__)
def test_public_callables_documented(module):
    for name in getattr(module, "__all__", []):
        obj = getattr(module, name)
        if inspect.isfunction(obj) or inspect.isclass(obj):
            if obj.__module__.startswith("repro"):
                assert obj.__doc__ and obj.__doc__.strip(), (
                    f"{module.__name__}.{name} lacks a docstring"
                )


def test_top_level_api_surface():
    # The quick-tour names from the package docstring must exist.
    for name in (
        "generate_domain_mesh",
        "compare_orderings",
        "rdr_ordering",
        "laplacian_smooth",
        "reuse_distances",
        "westmere_ex",
        "parallel_smooth",
    ):
        assert name in repro.__all__
        assert hasattr(repro, name)


def test_version_present():
    assert repro.__version__.count(".") == 2


def test_public_methods_documented_on_key_classes():
    from repro.mesh import TriMesh
    from repro.memsim import AccessTrace, LRUCache, MemoryLayout
    from repro.smoothing import LaplacianSmoother

    for cls in (TriMesh, AccessTrace, LRUCache, MemoryLayout, LaplacianSmoother):
        for name, member in inspect.getmembers(cls, inspect.isfunction):
            if name.startswith("_"):
                continue
            assert member.__doc__ and member.__doc__.strip(), (
                f"{cls.__name__}.{name} lacks a docstring"
            )
