"""Span tracer unit tests: disabled path, nesting, dict round-trips."""

import time

import pytest

from repro import obs
from repro.obs.tracer import NULL_SPAN, NULL_TRACER, Span, Tracer


class TestDisabledPath:
    def test_null_tracer_is_the_default(self):
        assert obs.get_tracer() is NULL_TRACER
        assert not obs.is_enabled()

    def test_span_returns_the_shared_noop_singleton(self):
        # The disabled path must not allocate: every span() call hands
        # back the same object regardless of name or attributes.
        a = obs.span("pipeline.run_ordering", mesh="m")
        b = obs.span("anything.else")
        assert a is b is NULL_SPAN

    def test_null_span_noops_survive_use(self):
        with obs.span("outer") as sp:
            sp.add_event(10)
            sp.set(key="value")
        assert NULL_TRACER.export() == []

    def test_metric_helpers_are_noops_when_disabled(self):
        obs.add("some.counter", 5)
        obs.gauge_set("some.gauge", 1.5)
        obs.observe("some.histogram", [1, 2, 3])
        assert obs.metrics().snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }


class TestCapture:
    def test_capture_installs_and_restores(self):
        assert not obs.is_enabled()
        with obs.capture() as tracer:
            assert obs.is_enabled()
            assert obs.get_tracer() is tracer
        assert not obs.is_enabled()
        assert obs.get_tracer() is NULL_TRACER

    def test_capture_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with obs.capture():
                raise RuntimeError("boom")
        assert not obs.is_enabled()

    def test_captures_nest_and_unwind_in_order(self):
        with obs.capture() as outer:
            with obs.capture() as inner:
                assert obs.get_tracer() is inner
            assert obs.get_tracer() is outer

    def test_capture_accepts_an_existing_tracer(self):
        mine = Tracer()
        with obs.capture(mine) as tracer:
            assert tracer is mine
            with obs.span("s"):
                pass
        assert [s["name"] for s in mine.export()] == ["s"]


class TestSpanTree:
    def test_nesting_builds_parent_child_links(self):
        with obs.capture() as tracer:
            with obs.span("root") as root:
                with obs.span("child") as child:
                    with obs.span("grandchild"):
                        pass
                with obs.span("sibling"):
                    pass
            assert child.parent is root
        assert len(tracer.roots) == 1
        names = [c.name for c in tracer.roots[0].children]
        assert names == ["child", "sibling"]
        assert tracer.roots[0].children[0].children[0].name == "grandchild"

    def test_current_tracks_the_innermost_open_span(self):
        with obs.capture() as tracer:
            assert tracer.current is None
            with obs.span("a") as a:
                assert tracer.current is a
                with obs.span("b") as b:
                    assert tracer.current is b
                assert tracer.current is a
            assert tracer.current is None

    def test_events_attrs_and_set(self):
        with obs.capture() as tracer:
            with obs.span("s", mesh="ocean") as sp:
                sp.add_event(3)
                sp.add_event()
                sp.set(iterations=7)
        (root,) = tracer.export()
        assert root["events"] == 4
        assert root["attrs"] == {"mesh": "ocean", "iterations": 7}

    def test_exception_tags_the_span_and_still_closes_it(self):
        with obs.capture() as tracer:
            with pytest.raises(ValueError):
                with obs.span("failing"):
                    raise ValueError("bad")
            assert tracer.current is None
        (root,) = tracer.export()
        assert root["attrs"]["error"] == "ValueError"

    def test_wall_time_covers_the_block(self):
        with obs.capture() as tracer:
            with obs.span("sleepy"):
                time.sleep(0.02)
        (root,) = tracer.export()
        assert root["wall_s"] >= 0.01
        assert root["cpu_s"] >= 0.0


class TestDictRoundTrip:
    def build(self):
        with obs.capture() as tracer:
            with obs.span("root", mesh="m") as sp:
                sp.add_event(2)
                with obs.span("child"):
                    pass
        return tracer.export()

    def test_to_dict_from_dict_round_trip(self):
        (exported,) = self.build()
        rebuilt = Span.from_dict(exported)
        assert rebuilt.to_dict() == exported
        assert rebuilt.children[0].parent is rebuilt

    def test_adopt_under_the_open_span(self):
        exported = self.build()
        with obs.capture() as tracer:
            with obs.span("parent"):
                tracer.adopt(exported)
        (root,) = tracer.export()
        assert [c["name"] for c in root["children"]] == ["root"]

    def test_adopt_without_open_span_appends_roots(self):
        exported = self.build()
        with obs.capture() as tracer:
            tracer.adopt(exported)
        assert [s["name"] for s in tracer.export()] == ["root"]
