"""Tests for :mod:`repro.obs` — tracer, metrics, exporters."""
