"""Metrics registry unit tests: instruments, snapshots, merging."""

import numpy as np
import pytest

from repro.obs.metrics import (
    POW2_EDGES,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.tracer import NULL_TRACER


class TestInstruments:
    def test_counter_accumulates(self):
        c = Counter("hits")
        c.add()
        c.add(41)
        assert c.value == 42

    def test_gauge_last_write_wins(self):
        g = Gauge("quality")
        g.set(0.5)
        g.set(0.9)
        assert g.value == 0.9

    def test_histogram_buckets_by_inclusive_upper_edge(self):
        h = Histogram("h", edges=(1, 2, 4))
        h.observe([0, 1, 2, 3, 4, 5])
        # 0,1 <= 1; 2 <= 2; 3,4 <= 4; 5 overflows.
        assert h.counts.tolist() == [2, 1, 2, 1]
        assert h.total == 6

    def test_observe_one_matches_vectorized_observe(self):
        a = Histogram("a", edges=(1, 2, 4))
        b = Histogram("b", edges=(1, 2, 4))
        values = [0, 1, 2, 3, 4, 5, 7]
        a.observe(values)
        for v in values:
            b.observe_one(v)
        assert a.counts.tolist() == b.counts.tolist()
        assert a.total == b.total

    def test_observe_empty_is_a_noop(self):
        h = Histogram("h", edges=(1, 2))
        h.observe(np.array([], dtype=np.int64))
        assert h.total == 0

    def test_default_edges_are_powers_of_two(self):
        h = Histogram("h")
        assert h.edges == POW2_EDGES
        assert POW2_EDGES[0] == 1 and POW2_EDGES[-1] == 2**30

    @pytest.mark.parametrize("edges", [(), (4, 2), (1, 1)])
    def test_bad_edges_rejected(self, edges):
        with pytest.raises(ValueError):
            Histogram("h", edges=edges)


class TestRegistry:
    def test_create_on_first_use_and_identity(self):
        reg = MetricsRegistry()
        assert reg.counter("c") is reg.counter("c")
        assert reg.gauge("g") is reg.gauge("g")
        assert reg.histogram("h") is reg.histogram("h")

    def test_snapshot_is_plain_json_types(self):
        import json

        reg = MetricsRegistry()
        reg.counter("c").add(3)
        reg.gauge("g").set(1.5)
        reg.histogram("h", edges=(1, 2)).observe([0, 3])
        snap = reg.snapshot()
        assert json.loads(json.dumps(snap)) == snap
        assert snap["counters"] == {"c": 3}
        assert snap["gauges"] == {"g": 1.5}
        assert snap["histograms"]["h"] == {
            "edges": [1, 2],
            "counts": [1, 0, 1],
            "total": 2,
        }

    def test_merge_adds_counters_and_histogram_counts(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        for reg, n in ((a, 1), (b, 10)):
            reg.counter("c").add(n)
            reg.gauge("g").set(float(n))
            reg.histogram("h", edges=(1, 2)).observe([0] * n)
        a.merge(b.snapshot())
        snap = a.snapshot()
        assert snap["counters"]["c"] == 11
        assert snap["gauges"]["g"] == 10.0  # last write wins
        assert snap["histograms"]["h"]["counts"] == [11, 0, 0]
        assert snap["histograms"]["h"]["total"] == 11

    def test_merge_into_empty_registry_recreates_instruments(self):
        src = MetricsRegistry()
        src.counter("c").add(2)
        src.histogram("h", edges=(1, 2)).observe([5])
        dst = MetricsRegistry()
        dst.merge(src.snapshot())
        assert dst.snapshot() == src.snapshot()

    def test_merge_rejects_mismatched_histogram_edges(self):
        a = MetricsRegistry()
        a.histogram("h", edges=(1, 2)).observe([1])
        b = MetricsRegistry()
        b.histogram("h", edges=(1, 4)).observe([1])
        with pytest.raises(ValueError, match="mismatched edges"):
            a.merge(b.snapshot())


class TestNullRegistry:
    def test_null_registry_hands_out_working_noops(self):
        reg = NULL_TRACER.metrics
        reg.counter("c").add(5)
        reg.gauge("g").set(1.0)
        reg.histogram("h").observe([1, 2])
        reg.histogram("h").observe_one(3)
        reg.merge({"counters": {"c": 1}})
        assert reg.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }
