"""Exporter tests: JSONL spans, metrics JSON, text trees, ``activated``."""

import json

from repro import ObsConfig, obs
from repro.obs import (
    format_spans,
    read_spans_jsonl,
    span_rows,
    write_metrics_json,
    write_spans_jsonl,
)


def sample_forest():
    with obs.capture() as tracer:
        with obs.span("root", mesh="ocean") as sp:
            sp.add_event(3)
            with obs.span("child.a"):
                pass
            with obs.span("child.b"):
                with obs.span("leaf"):
                    pass
        with obs.span("second-root"):
            pass
    return tracer.export()


class TestSpanRows:
    def test_ids_are_depth_first_and_parents_link(self):
        rows = span_rows(sample_forest())
        assert [r["name"] for r in rows] == [
            "root", "child.a", "child.b", "leaf", "second-root",
        ]
        assert [r["id"] for r in rows] == [0, 1, 2, 3, 4]
        assert [r["parent"] for r in rows] == [None, 0, 0, 2, None]

    def test_rows_drop_the_nested_children(self):
        for row in span_rows(sample_forest()):
            assert "children" not in row

    def test_jsonl_round_trip(self, tmp_path):
        forest = sample_forest()
        path = tmp_path / "sub" / "trace.jsonl"
        written = write_spans_jsonl(path, forest)
        assert written == path and path.exists()
        assert read_spans_jsonl(path) == span_rows(forest)


class TestMetricsJson:
    def test_write_metrics_json(self, tmp_path):
        path = tmp_path / "metrics.json"
        snapshot = {
            "counters": {"c": 1},
            "gauges": {},
            "histograms": {"h": {"edges": [1], "counts": [1, 0], "total": 1}},
        }
        write_metrics_json(path, snapshot)
        assert json.loads(path.read_text()) == snapshot


class TestFormatSpans:
    def test_tree_is_indented_with_event_suffix(self):
        text = format_spans(sample_forest())
        lines = text.splitlines()
        assert lines[0].startswith("root: wall ")
        assert "events=3" in lines[0]
        assert lines[1].startswith("  child.a: ")
        assert lines[3].startswith("    leaf: ")
        assert "events=" not in lines[1]

    def test_max_depth_prunes(self):
        text = format_spans(sample_forest(), max_depth=0)
        assert [ln.split(":")[0] for ln in text.splitlines()] == [
            "root", "second-root",
        ]


class TestActivated:
    def test_disabled_config_yields_the_null_tracer(self, tmp_path):
        cfg = ObsConfig(enabled=False, trace_path=str(tmp_path / "t.jsonl"))
        with obs.activated(cfg):
            assert not obs.is_enabled()
        assert not (tmp_path / "t.jsonl").exists()

    def test_none_config_is_a_noop(self):
        with obs.activated(None):
            assert not obs.is_enabled()

    def test_enabled_config_exports_on_exit(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        metrics = tmp_path / "metrics.json"
        cfg = ObsConfig(
            enabled=True, trace_path=str(trace), metrics_path=str(metrics)
        )
        with obs.activated(cfg):
            assert obs.is_enabled()
            with obs.span("work"):
                obs.add("events.count", 2)
        assert [r["name"] for r in read_spans_jsonl(trace)] == ["work"]
        assert json.loads(metrics.read_text())["counters"] == {
            "events.count": 2
        }

    def test_enabled_without_paths_collects_but_writes_nothing(self, tmp_path):
        with obs.activated(ObsConfig(enabled=True)) as tracer:
            with obs.span("work"):
                pass
        assert [s["name"] for s in tracer.export()] == ["work"]
        assert list(tmp_path.iterdir()) == []

    def test_nested_activated_defers_to_the_ambient_tracer(self, tmp_path):
        # The CLI activates around the whole command; run_ordering
        # activates again inside. The inner call must not install a
        # second tracer or overwrite the outer export.
        inner_cfg = ObsConfig(
            enabled=True, trace_path=str(tmp_path / "inner.jsonl")
        )
        with obs.capture() as outer:
            with obs.activated(inner_cfg) as tracer:
                assert tracer is outer
                with obs.span("work"):
                    pass
        assert not (tmp_path / "inner.jsonl").exists()
        assert [s["name"] for s in outer.export()] == ["work"]
