"""End-to-end instrumentation: the span trees and live metrics the
pipeline, smoother and memory simulators emit while tracing is on.

The key acceptance property is that live metrics equal their post-hoc
counterparts: the reuse-distance histogram captured during
``run_ordering`` must match a histogram built from
:func:`repro.memsim.reuse_distances` after the fact, and the per-level
cache counters must match the returned ``HierarchyStats``.
"""

import numpy as np
import pytest

from repro import (
    RunConfig,
    obs,
    reuse_distances,
    run_ordering,
    run_parallel_ordering,
)
from repro.meshgen import generate_domain_mesh
from repro.memsim import MemoryLayout, simulate_multicore, westmere_ex
from repro.memsim.reuse import COLD
from repro.obs.metrics import Histogram
from repro.parallel import parallel_traces


def span_names(span_dicts):
    """All span names in the forest, depth-first."""
    names = []

    def walk(node):
        names.append(node["name"])
        for child in node.get("children", ()):
            walk(child)

    for root in span_dicts:
        walk(root)
    return names


def find_span(span_dicts, name):
    def walk(node):
        if node["name"] == name:
            return node
        for child in node.get("children", ()):
            hit = walk(child)
            if hit is not None:
                return hit
        return None

    for root in span_dicts:
        hit = walk(root)
        if hit is not None:
            return hit
    raise AssertionError(f"no span named {name!r}")


class TestPipelineSpans:
    @pytest.fixture(scope="class")
    def traced(self, ocean_mesh):
        with obs.capture() as tracer:
            run = run_ordering(ocean_mesh, "rdr", fixed_iterations=2)
        return run, tracer

    def test_span_tree_covers_every_pipeline_phase(self, traced):
        _, tracer = traced
        names = span_names(tracer.export())
        for expected in (
            "pipeline.run_ordering",
            "pipeline.reorder",
            "pipeline.smooth",
            "smooth.run",
            "smooth.iteration",
            "pipeline.layout",
            "pipeline.simulate",
            "memsim.simulate_trace",
        ):
            assert expected in names

    def test_phases_nest_under_the_run_span(self, traced):
        _, tracer = traced
        (root,) = tracer.export()
        assert root["name"] == "pipeline.run_ordering"
        assert root["attrs"]["ordering"] == "rdr"
        child_names = [c["name"] for c in root["children"]]
        assert child_names == [
            "pipeline.reorder",
            "pipeline.smooth",
            "pipeline.layout",
            "pipeline.simulate",
        ]

    def test_one_iteration_span_per_smoothing_pass(self, traced):
        run, tracer = traced
        names = span_names(tracer.export())
        assert names.count("smooth.iteration") == run.smoothing.iterations == 2

    def test_cache_counters_match_the_returned_stats(self, traced):
        run, tracer = traced
        counters = tracer.metrics.snapshot()["counters"]
        assert counters["memsim.l1.accesses"] == run.cache.l1.accesses
        assert counters["memsim.l1.misses"] == run.cache.l1.misses
        assert counters["memsim.l2.hits"] == run.cache.l2.hits
        assert counters["memsim.l3.misses"] == run.cache.l3.misses
        assert counters["memsim.memory.accesses"] == run.cache.memory_accesses

    def test_live_reuse_histogram_matches_post_hoc_distances(self, traced):
        run, tracer = traced
        snapshot = tracer.metrics.snapshot()
        live = snapshot["histograms"]["memsim.reuse_distance"]
        distances = reuse_distances(run.lines)
        reference = Histogram("ref")
        reference.observe(distances[distances >= 0])
        assert live["counts"] == reference.counts.tolist()
        assert live["total"] == reference.total
        cold = int(np.count_nonzero(distances == COLD))
        assert snapshot["counters"]["memsim.reuse.cold"] == cold

    def test_vertices_smoothed_counter(self, traced):
        run, tracer = traced
        counters = tracer.metrics.snapshot()["counters"]
        assert counters["smoothing.vertices_smoothed"] > 0


class TestEngineSpecificMetrics:
    def test_vectorized_engine_captures_wavefront_widths(self, ocean_mesh):
        with obs.capture() as tracer:
            run_ordering(
                ocean_mesh,
                "rdr",
                config=RunConfig(engine="vectorized"),
                fixed_iterations=1,
            )
        hist = tracer.metrics.snapshot()["histograms"][
            "smoothing.wavefront_width"
        ]
        assert hist["total"] > 0
        assert sum(hist["counts"]) == hist["total"]

    def test_meshgen_span_counts_vertices(self):
        with obs.capture() as tracer:
            mesh = generate_domain_mesh("ocean", target_vertices=250)
        sp = find_span(tracer.export(), "meshgen.generate")
        assert sp["attrs"]["domain"] == "ocean"
        assert sp["events"] == mesh.num_vertices


def _streams(mesh, machine, num_cores, iterations=2):
    traces = parallel_traces(
        mesh, num_cores, iterations=iterations, traversal="storage"
    )
    layout = MemoryLayout.for_mesh(mesh, line_size=machine.line_size)
    return [layout.lines(t) for t in traces]


class TestMulticoreSpans:
    def test_sequential_replay_spans_and_counters(self, ocean_mesh):
        machine = westmere_ex()
        streams = _streams(ocean_mesh, machine, 2)
        with obs.capture() as tracer:
            result = simulate_multicore(streams, machine, affinity="scatter")
        names = span_names(tracer.export())
        assert "memsim.multicore" in names
        assert names.count("memsim.socket") == 2
        counters = tracer.metrics.snapshot()["counters"]
        assert counters["memsim.l1.accesses"] == sum(
            cr.stats.l1.accesses for cr in result.per_core
        )

    def test_sharded_replay_merges_worker_spans_and_metrics(self, ocean_mesh):
        machine = westmere_ex()
        streams = _streams(ocean_mesh, machine, 2)
        with obs.capture() as tracer:
            simulate_multicore(
                streams,
                machine,
                config=RunConfig(mem_engine="sharded"),
                affinity="scatter",
            )
        sharded_counters = tracer.metrics.snapshot()["counters"]
        names = span_names(tracer.export())
        assert "memsim.sharded" in names
        # One adopted socket span per shard, shipped back from workers.
        assert names.count("memsim.socket") == 2

        with obs.capture() as sequential:
            simulate_multicore(streams, machine, affinity="scatter")
        assert sharded_counters == sequential.metrics.snapshot()["counters"]


class TestParallelPipeline:
    def test_parallel_run_span_tree_and_summary(self, ocean_mesh):
        with obs.capture() as tracer:
            run = run_parallel_ordering(ocean_mesh, "rdr", 2, iterations=2)
        names = span_names(tracer.export())
        for expected in (
            "pipeline.run_parallel_ordering",
            "pipeline.reorder",
            "pipeline.partition",
            "pipeline.layout",
            "memsim.multicore",
        ):
            assert expected in names
        row = run.summary()
        assert row["mem_engine"] == "sequential"
        assert row["num_vertices"] == ocean_mesh.num_vertices
