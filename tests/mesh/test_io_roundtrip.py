"""Property-based round-trip tests for every mesh I/O format.

Complements the example-based tests in ``test_io.py``/``test_io_off.py``
with hypothesis-driven properties: for arbitrary meshes (random
triangulations, arbitrary finite float64 coordinates, affine
transforms), ``write → read`` must preserve coordinates *bit-for-bit*,
connectivity exactly, and 0/1-based vertex-id normalisation.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.mesh import (
    TriMesh,
    read_json,
    read_off,
    read_triangle,
    write_json,
    write_off,
    write_triangle,
)
from repro.meshgen import perturb_interior, structured_rectangle

FAST = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.function_scoped_fixture],
)

# Finite float64 coordinates across the full exponent range: I/O must
# round-trip exactly whatever the numerics produced.
finite = st.floats(allow_nan=False, allow_infinity=False, width=64)


@st.composite
def meshes(draw):
    """Structured-rectangle meshes under a random affine transform."""
    nx = draw(st.integers(min_value=3, max_value=6))
    ny = draw(st.integers(min_value=3, max_value=6))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    mesh = perturb_interior(
        structured_rectangle(nx, ny, name="prop"), amplitude=0.05, seed=seed
    )
    scale = draw(st.floats(min_value=1e-3, max_value=1e3))
    theta = draw(st.floats(min_value=0.0, max_value=2 * np.pi))
    shift = np.array([draw(st.floats(-1e6, 1e6)), draw(st.floats(-1e6, 1e6))])
    rot = np.array(
        [[np.cos(theta), -np.sin(theta)], [np.sin(theta), np.cos(theta)]]
    )
    return TriMesh(mesh.vertices @ rot.T * scale + shift, mesh.triangles,
                   name="prop")


@st.composite
def extreme_meshes(draw):
    """A fixed tiny triangulation with arbitrary finite coordinates."""
    coords = draw(
        st.lists(st.tuples(finite, finite), min_size=4, max_size=4).map(np.array)
    )
    return TriMesh(coords, np.array([[0, 1, 2], [1, 3, 2]]), name="extreme")


def assert_same_mesh(back: TriMesh, mesh: TriMesh) -> None:
    np.testing.assert_array_equal(back.vertices, mesh.vertices)
    np.testing.assert_array_equal(back.triangles, mesh.triangles)


class TestTriangleRoundTrip:
    @FAST
    @given(meshes())
    def test_coordinates_and_connectivity_exact(self, tmp_path_factory, mesh):
        stem = tmp_path_factory.mktemp("tri") / "m"
        write_triangle(mesh, stem)
        assert_same_mesh(read_triangle(stem), mesh)

    @FAST
    @given(extreme_meshes())
    def test_extreme_coordinates_bit_exact(self, tmp_path_factory, mesh):
        stem = tmp_path_factory.mktemp("tri") / "m"
        write_triangle(mesh, stem)
        assert_same_mesh(read_triangle(stem), mesh)

    @FAST
    @given(meshes())
    def test_boundary_markers_survive(self, tmp_path_factory, mesh):
        stem = tmp_path_factory.mktemp("tri") / "m"
        write_triangle(mesh, stem)
        np.testing.assert_array_equal(
            read_triangle(stem).boundary_mask, mesh.boundary_mask
        )

    @FAST
    @given(meshes())
    def test_one_based_ids_normalise_to_zero_based(self, tmp_path_factory, mesh):
        """A 1-based file (Triangle's default) reads identically to ours."""
        root = tmp_path_factory.mktemp("tri")
        (root / "one.node").write_text(
            f"{mesh.num_vertices} 2 0 0\n"
            + "".join(
                f"{i + 1} {float(x)!r} {float(y)!r}\n"
                for i, (x, y) in enumerate(mesh.vertices)
            )
        )
        (root / "one.ele").write_text(
            f"{mesh.num_triangles} 3 0\n"
            + "".join(
                f"{i + 1} {a + 1} {b + 1} {c + 1}\n"
                for i, (a, b, c) in enumerate(mesh.triangles)
            )
        )
        assert_same_mesh(read_triangle(root / "one"), mesh)

    @FAST
    @given(meshes(), st.randoms(use_true_random=False))
    def test_shuffled_node_lines_are_reordered_by_id(
        self, tmp_path_factory, mesh, rng
    ):
        """Vertex lines in any order: ids, not line order, define indices."""
        root = tmp_path_factory.mktemp("tri") / "m"
        write_triangle(mesh, root)
        node = root.with_suffix(".node")
        header, *body = node.read_text().splitlines()
        rng.shuffle(body)
        node.write_text("\n".join([header, *body]) + "\n")
        assert_same_mesh(read_triangle(root), mesh)


class TestJsonRoundTrip:
    @FAST
    @given(meshes())
    def test_exact(self, tmp_path_factory, mesh):
        path = tmp_path_factory.mktemp("json") / "m.json"
        write_json(mesh, path)
        back = read_json(path)
        assert_same_mesh(back, mesh)
        assert back.name == mesh.name

    @FAST
    @given(extreme_meshes())
    def test_extreme_coordinates_bit_exact(self, tmp_path_factory, mesh):
        path = tmp_path_factory.mktemp("json") / "m.json"
        write_json(mesh, path)
        assert_same_mesh(read_json(path), mesh)


class TestOffRoundTrip:
    @FAST
    @given(meshes())
    def test_exact(self, tmp_path_factory, mesh):
        path = tmp_path_factory.mktemp("off") / "m.off"
        write_off(mesh, path)
        assert_same_mesh(read_off(path), mesh)

    @FAST
    @given(extreme_meshes())
    def test_extreme_coordinates_bit_exact(self, tmp_path_factory, mesh):
        path = tmp_path_factory.mktemp("off") / "m.off"
        write_off(mesh, path)
        assert_same_mesh(read_off(path), mesh)
