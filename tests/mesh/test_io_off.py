"""Unit tests for OFF mesh I/O."""

import numpy as np
import pytest

from repro.mesh import read_off, write_off


class TestOffFormat:
    def test_roundtrip(self, tiny_mesh, tmp_path):
        path = write_off(tiny_mesh, tmp_path / "tiny.off")
        back = read_off(path)
        assert np.allclose(back.vertices, tiny_mesh.vertices)
        assert np.array_equal(back.triangles, tiny_mesh.triangles)

    def test_roundtrip_real_mesh(self, ocean_mesh, tmp_path):
        back = read_off(write_off(ocean_mesh, tmp_path / "o.off"))
        assert np.allclose(back.vertices, ocean_mesh.vertices)

    def test_name_defaults_to_stem(self, tiny_mesh, tmp_path):
        back = read_off(write_off(tiny_mesh, tmp_path / "stemmy.off"))
        assert back.name == "stemmy"

    def test_rejects_non_off(self, tmp_path):
        p = tmp_path / "x.off"
        p.write_text("PLY\n1 0 0\n")
        with pytest.raises(ValueError, match="not an OFF"):
            read_off(p)

    def test_rejects_quads(self, tmp_path):
        p = tmp_path / "q.off"
        p.write_text("OFF\n4 1 0\n0 0 0\n1 0 0\n1 1 0\n0 1 0\n4 0 1 2 3\n")
        with pytest.raises(ValueError, match="triangular"):
            read_off(p)

    def test_rejects_truncated(self, tmp_path):
        p = tmp_path / "t.off"
        p.write_text("OFF\n3 1 0\n0 0 0\n1 0 0\n")
        with pytest.raises(ValueError, match="counts"):
            read_off(p)

    def test_comments_allowed(self, tmp_path):
        p = tmp_path / "c.off"
        p.write_text(
            "OFF  # header\n3 1 0\n0 0 0\n1 0 0  # a vertex\n0 1 0\n3 0 1 2\n"
        )
        mesh = read_off(p)
        assert mesh.num_triangles == 1
