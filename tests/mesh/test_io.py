"""Unit tests for Triangle-format and JSON mesh I/O."""

import numpy as np
import pytest

from repro.mesh import (
    TriMesh,
    read_json,
    read_triangle,
    write_json,
    write_triangle,
)


class TestTriangleFormat:
    def test_roundtrip(self, tiny_mesh, tmp_path):
        write_triangle(tiny_mesh, tmp_path / "tiny")
        back = read_triangle(tmp_path / "tiny")
        assert np.allclose(back.vertices, tiny_mesh.vertices)
        assert np.array_equal(back.triangles, tiny_mesh.triangles)

    def test_roundtrip_preserves_boundary(self, ocean_mesh, tmp_path):
        write_triangle(ocean_mesh, tmp_path / "ocean")
        back = read_triangle(tmp_path / "ocean")
        assert np.array_equal(back.boundary_mask, ocean_mesh.boundary_mask)

    def test_written_files_exist(self, tiny_mesh, tmp_path):
        node, ele = write_triangle(tiny_mesh, tmp_path / "m")
        assert node.name == "m.node" and node.exists()
        assert ele.name == "m.ele" and ele.exists()

    def test_reads_one_based_ids(self, tmp_path):
        (tmp_path / "one.node").write_text(
            "3 2 0 0\n1 0.0 0.0\n2 1.0 0.0\n3 0.0 1.0\n"
        )
        (tmp_path / "one.ele").write_text("1 3 0\n1 1 2 3\n")
        mesh = read_triangle(tmp_path / "one")
        assert mesh.triangles.tolist() == [[0, 1, 2]]

    def test_ignores_comments_and_blank_lines(self, tmp_path):
        (tmp_path / "c.node").write_text(
            "# header comment\n3 2 0 0\n\n0 0.0 0.0  # vertex 0\n1 1.0 0.0\n2 0.0 1.0\n"
        )
        (tmp_path / "c.ele").write_text("1 3 0\n0 0 1 2\n")
        mesh = read_triangle(tmp_path / "c")
        assert mesh.num_vertices == 3

    def test_rejects_3d_nodes(self, tmp_path):
        (tmp_path / "d.node").write_text("1 3 0 0\n0 0.0 0.0 0.0\n")
        (tmp_path / "d.ele").write_text("0 3 0\n")
        with pytest.raises(ValueError, match="2-D"):
            read_triangle(tmp_path / "d")

    def test_rejects_quad_elements(self, tmp_path):
        (tmp_path / "q.node").write_text(
            "4 2 0 0\n0 0 0\n1 1 0\n2 1 1\n3 0 1\n"
        )
        (tmp_path / "q.ele").write_text("1 4 0\n0 0 1 2 3\n")
        with pytest.raises(ValueError, match="3-node"):
            read_triangle(tmp_path / "q")

    def test_rejects_count_mismatch(self, tmp_path):
        (tmp_path / "bad.node").write_text("5 2 0 0\n0 0.0 0.0\n")
        (tmp_path / "bad.ele").write_text("0 3 0\n")
        with pytest.raises(ValueError, match="count"):
            read_triangle(tmp_path / "bad")

    def test_name_defaults_to_stem(self, tiny_mesh, tmp_path):
        write_triangle(tiny_mesh, tmp_path / "stemname")
        back = read_triangle(tmp_path / "stemname")
        assert back.name == "stemname"


class TestJsonFormat:
    def test_roundtrip(self, tiny_mesh, tmp_path):
        path = write_json(tiny_mesh, tmp_path / "tiny.json")
        back = read_json(path)
        assert np.allclose(back.vertices, tiny_mesh.vertices)
        assert np.array_equal(back.triangles, tiny_mesh.triangles)
        assert back.name == tiny_mesh.name

    def test_exact_float_roundtrip(self, tmp_path):
        mesh = TriMesh(
            np.array([[0.1, 0.2], [1.0 / 3.0, 0.0], [0.0, 2.0 / 7.0]]),
            np.array([[0, 1, 2]]),
        )
        back = read_json(write_json(mesh, tmp_path / "f.json"))
        assert np.array_equal(back.vertices, mesh.vertices)
