"""Unit tests for mesh validation."""

import numpy as np
import pytest

from repro.mesh import MeshValidationError, TriMesh, mesh_issues, validate_mesh


def test_valid_mesh_passes(tiny_mesh):
    assert validate_mesh(tiny_mesh) is tiny_mesh
    assert mesh_issues(tiny_mesh) == []


def test_repeated_vertex_in_triangle_detected():
    mesh = TriMesh(np.array([[0, 0], [1, 0], [0, 1.0]]), np.array([[0, 1, 1]]))
    issues = mesh_issues(mesh)
    assert any("repeated" in msg for msg in issues)


def test_duplicate_triangle_detected():
    mesh = TriMesh(
        np.array([[0, 0], [1, 0], [0, 1.0], [1.0, 1.0]]),
        np.array([[0, 1, 2], [1, 2, 0], [1, 3, 2]]),
    )
    issues = mesh_issues(mesh)
    assert any("duplicated" in msg for msg in issues)


def test_degenerate_triangle_detected():
    mesh = TriMesh(
        np.array([[0, 0], [1, 0], [2, 0], [0, 1.0]]),
        np.array([[0, 1, 2], [0, 1, 3]]),  # first is collinear
    )
    issues = mesh_issues(mesh)
    assert any("degenerate" in msg for msg in issues)


def test_orientation_check_optional():
    cw = TriMesh(
        np.array([[0, 0], [1, 0], [0, 1.0], [1.5, 1.5]]),
        np.array([[0, 2, 1], [1, 2, 3]]),  # first is clockwise
    )
    assert not any("clockwise" in m for m in mesh_issues(cw))
    assert any(
        "clockwise" in m for m in mesh_issues(cw, require_orientation=True)
    )


def test_no_interior_vertex_detected():
    mesh = TriMesh(np.array([[0, 0], [1, 0], [0, 1.0]]), np.array([[0, 1, 2]]))
    issues = mesh_issues(mesh)
    assert any("interior" in msg for msg in issues)


def test_validate_raises_with_mesh_name():
    mesh = TriMesh(
        np.array([[0, 0], [1, 0], [0, 1.0]]),
        np.array([[0, 1, 2]]),
        name="lonely",
    )
    with pytest.raises(MeshValidationError, match="lonely"):
        validate_mesh(mesh)


def test_min_area_threshold():
    mesh = TriMesh(
        np.array([[0, 0], [1, 0], [0.5, 1e-7], [0.0, 1.0], [1.0, 1.0]]),
        np.array([[0, 1, 2], [0, 1, 3], [1, 4, 3]]),
    )
    assert any("degenerate" in m for m in mesh_issues(mesh, min_area=1e-6))
