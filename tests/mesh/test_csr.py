"""Unit tests for CSR adjacency construction and permutation."""

import numpy as np
import pytest

from repro.mesh import (
    CSRGraph,
    adjacency_from_triangles,
    edges_from_triangles,
    is_symmetric,
    permute_csr,
)


@pytest.fixture
def square_tris():
    # Two triangles forming a square 0-1-2-3 with diagonal 0-2.
    return np.array([[0, 1, 2], [0, 2, 3]])


class TestEdgesFromTriangles:
    def test_unique_edges_of_square(self, square_tris):
        edges = edges_from_triangles(square_tris)
        expected = {(0, 1), (1, 2), (0, 2), (2, 3), (0, 3)}
        assert set(map(tuple, edges)) == expected

    def test_edges_sorted_lexicographically(self, square_tris):
        edges = edges_from_triangles(square_tris)
        as_tuples = list(map(tuple, edges))
        assert as_tuples == sorted(as_tuples)

    def test_edge_endpoints_ordered(self, square_tris):
        edges = edges_from_triangles(square_tris)
        assert (edges[:, 0] < edges[:, 1]).all()

    def test_shared_edge_counted_once(self):
        tris = np.array([[0, 1, 2], [2, 1, 3]])
        edges = edges_from_triangles(tris)
        assert len(edges) == 5  # not 6: edge (1,2) shared

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError, match="shape"):
            edges_from_triangles(np.array([[0, 1], [1, 2]]))


class TestAdjacencyFromTriangles:
    def test_neighbor_sets(self, square_tris):
        g = adjacency_from_triangles(square_tris, 4)
        assert set(g.neighbors(0)) == {1, 2, 3}
        assert set(g.neighbors(1)) == {0, 2}
        assert set(g.neighbors(2)) == {0, 1, 3}
        assert set(g.neighbors(3)) == {0, 2}

    def test_neighbors_sorted(self, square_tris):
        g = adjacency_from_triangles(square_tris, 4)
        for v in range(4):
            nbrs = g.neighbors(v)
            assert (np.diff(nbrs) > 0).all()

    def test_degrees(self, square_tris):
        g = adjacency_from_triangles(square_tris, 4)
        assert g.degrees().tolist() == [3, 2, 3, 2]

    def test_num_edges(self, square_tris):
        g = adjacency_from_triangles(square_tris, 4)
        assert g.num_edges == 5

    def test_isolated_vertex_has_empty_row(self, square_tris):
        g = adjacency_from_triangles(square_tris, 6)
        assert g.neighbors(4).size == 0
        assert g.neighbors(5).size == 0
        assert g.num_vertices == 6

    def test_symmetry(self, square_tris):
        assert is_symmetric(adjacency_from_triangles(square_tris, 4))

    def test_has_edge(self, square_tris):
        g = adjacency_from_triangles(square_tris, 4)
        assert g.has_edge(0, 2)
        assert g.has_edge(2, 0)
        assert not g.has_edge(1, 3)

    def test_rejects_out_of_range_index(self, square_tris):
        with pytest.raises(ValueError, match=">= num_vertices"):
            adjacency_from_triangles(square_tris, 2)

    def test_rejects_negative_index(self):
        with pytest.raises(ValueError, match="negative"):
            adjacency_from_triangles(np.array([[0, -1, 2]]), 4)


class TestCSRGraphValidation:
    def test_rejects_bad_xadj_start(self):
        with pytest.raises(ValueError):
            CSRGraph(np.array([1, 2]), np.array([0, 1]))

    def test_rejects_decreasing_xadj(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            CSRGraph(np.array([0, 2, 1]), np.array([1]))

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            CSRGraph(np.array([0, 1]), np.array([1, 2, 3]))

    def test_rejects_empty_xadj(self):
        with pytest.raises(ValueError, match="at least one"):
            CSRGraph(np.array([], dtype=np.int64), np.array([], dtype=np.int64))


class TestPermuteCSR:
    def test_identity_permutation(self, square_tris):
        g = adjacency_from_triangles(square_tris, 4)
        p = permute_csr(g, np.arange(4))
        assert np.array_equal(p.xadj, g.xadj)
        assert np.array_equal(p.adjncy, g.adjncy)

    def test_permuted_neighbors_match_relabeling(self, square_tris):
        g = adjacency_from_triangles(square_tris, 4)
        order = np.array([2, 0, 3, 1])  # new position k holds old order[k]
        p = permute_csr(g, order)
        inverse = np.empty(4, dtype=int)
        inverse[order] = np.arange(4)
        for new_v in range(4):
            old_v = order[new_v]
            expected = sorted(inverse[g.neighbors(old_v)])
            assert p.neighbors(new_v).tolist() == expected

    def test_permuted_graph_is_symmetric(self, square_tris):
        g = adjacency_from_triangles(square_tris, 4)
        p = permute_csr(g, np.array([3, 1, 0, 2]))
        assert is_symmetric(p)

    def test_double_permutation_roundtrip(self, square_tris):
        g = adjacency_from_triangles(square_tris, 4)
        order = np.array([2, 0, 3, 1])
        inverse = np.empty(4, dtype=np.int64)
        inverse[order] = np.arange(4)
        roundtrip = permute_csr(permute_csr(g, order), inverse)
        assert np.array_equal(roundtrip.xadj, g.xadj)
        assert np.array_equal(roundtrip.adjncy, g.adjncy)

    def test_rejects_wrong_length(self, square_tris):
        g = adjacency_from_triangles(square_tris, 4)
        with pytest.raises(ValueError, match="shape"):
            permute_csr(g, np.array([0, 1]))


class TestIsSymmetric:
    def test_asymmetric_graph_detected(self):
        g = CSRGraph(np.array([0, 1, 1]), np.array([1]))  # 0->1 without 1->0
        assert not is_symmetric(g)

    def test_empty_graph_symmetric(self):
        g = CSRGraph(np.array([0, 0, 0]), np.array([], dtype=np.int64))
        assert is_symmetric(g)
