"""Unit tests for the TriMesh container."""

import numpy as np
import pytest

from repro.mesh import TriMesh, boundary_vertices_from_triangles


class TestConstruction:
    def test_basic_counts(self, tiny_mesh):
        assert tiny_mesh.num_vertices == 5
        assert tiny_mesh.num_triangles == 4

    def test_dtype_coercion(self):
        m = TriMesh(
            np.array([[0, 0], [1, 0], [0, 1]], dtype=np.float32),
            np.array([[0, 1, 2]], dtype=np.int32),
        )
        assert m.vertices.dtype == np.float64
        assert m.triangles.dtype == np.int64

    def test_rejects_bad_vertex_shape(self):
        with pytest.raises(ValueError, match="vertices"):
            TriMesh(np.zeros((3, 3)), np.array([[0, 1, 2]]))

    def test_rejects_bad_triangle_shape(self):
        with pytest.raises(ValueError, match="triangles"):
            TriMesh(np.zeros((3, 2)), np.array([[0, 1]]))

    def test_rejects_out_of_range_triangle(self):
        with pytest.raises(ValueError, match="out of range"):
            TriMesh(np.zeros((3, 2)), np.array([[0, 1, 3]]))


class TestBoundary:
    def test_tiny_mesh_boundary(self, tiny_mesh):
        # Vertices 0-3 are corners (boundary), 4 is the interior apex.
        assert tiny_mesh.boundary_mask.tolist() == [True] * 4 + [False]
        assert tiny_mesh.interior_vertices().tolist() == [4]

    def test_grid_boundary_count(self, grid_mesh):
        # A 6x7 grid has 2*(6+7) - 4 = 22 boundary vertices.
        assert int(grid_mesh.boundary_mask.sum()) == 22
        assert grid_mesh.interior_vertices().size == 42 - 22

    def test_isolated_vertex_is_boundary(self):
        mask = boundary_vertices_from_triangles(np.array([[0, 1, 2]]), 4)
        assert mask[3]  # isolated

    def test_no_triangles_all_boundary(self):
        mask = boundary_vertices_from_triangles(np.empty((0, 3), dtype=int), 3)
        assert mask.all()

    def test_interior_mask_is_complement(self, grid_mesh):
        assert np.array_equal(grid_mesh.interior_mask, ~grid_mesh.boundary_mask)


class TestDerivedStructures:
    def test_adjacency_cached(self, tiny_mesh):
        assert tiny_mesh.adjacency is tiny_mesh.adjacency

    def test_apex_neighbors(self, tiny_mesh):
        assert set(tiny_mesh.adjacency.neighbors(4)) == {0, 1, 2, 3}

    def test_vertex_triangles_incidence(self, tiny_mesh):
        xadj, tri_ids = tiny_mesh.vertex_triangles
        # The apex touches all four triangles.
        assert set(tri_ids[xadj[4] : xadj[5]]) == {0, 1, 2, 3}
        # Corner 0 touches triangles 0 and 3.
        assert set(tri_ids[xadj[0] : xadj[1]]) == {0, 3}

    def test_triangle_areas_positive_for_ccw(self, tiny_mesh):
        assert (tiny_mesh.triangle_areas() > 0).all()

    def test_total_area(self, tiny_mesh):
        # The four triangles tile the 2x2 square.
        assert np.isclose(tiny_mesh.triangle_areas().sum(), 4.0)

    def test_edges(self, tiny_mesh):
        edges = tiny_mesh.edges()
        assert len(edges) == 8  # 4 sides + 4 spokes


class TestPermute:
    def test_permute_preserves_geometry(self, tiny_mesh):
        order = np.array([4, 0, 2, 1, 3])
        p = tiny_mesh.permute(order)
        assert np.allclose(p.vertices, tiny_mesh.vertices[order])

    def test_permute_relabels_triangles(self, tiny_mesh):
        order = np.array([4, 0, 2, 1, 3])
        p = tiny_mesh.permute(order)
        # Each permuted triangle maps back to an original triangle.
        originals = {tuple(sorted(t)) for t in tiny_mesh.triangles.tolist()}
        for t in p.triangles.tolist():
            back = tuple(sorted(int(order[i]) for i in t))
            assert back in originals

    def test_permute_preserves_boundary_semantics(self, tiny_mesh):
        order = np.array([4, 0, 2, 1, 3])
        _ = tiny_mesh.boundary_mask  # force cache
        p = tiny_mesh.permute(order)
        assert p.boundary_mask.tolist() == [False, True, True, True, True]

    def test_permute_adjacency_consistent_with_rebuild(self, bumpy_mesh, rng):
        order = rng.permutation(bumpy_mesh.num_vertices)
        _ = bumpy_mesh.adjacency
        p = bumpy_mesh.permute(order)  # permutes cached adjacency
        rebuilt = TriMesh(p.vertices, p.triangles).adjacency
        assert np.array_equal(p.adjacency.xadj, rebuilt.xadj)
        assert np.array_equal(p.adjacency.adjncy, rebuilt.adjncy)

    def test_permute_identity(self, tiny_mesh):
        p = tiny_mesh.permute(np.arange(5))
        assert np.allclose(p.vertices, tiny_mesh.vertices)
        assert np.array_equal(p.triangles, tiny_mesh.triangles)

    def test_rejects_non_permutation(self, tiny_mesh):
        with pytest.raises(ValueError, match="permutation"):
            tiny_mesh.permute(np.array([0, 0, 1, 2, 3]))

    def test_rejects_wrong_length(self, tiny_mesh):
        with pytest.raises(ValueError, match="shape"):
            tiny_mesh.permute(np.array([0, 1, 2]))


class TestWithVertices:
    def test_shares_connectivity_and_caches(self, tiny_mesh):
        _ = tiny_mesh.adjacency
        moved = tiny_mesh.with_vertices(tiny_mesh.vertices + 1.0)
        assert moved.adjacency is tiny_mesh.adjacency
        assert np.array_equal(moved.triangles, tiny_mesh.triangles)

    def test_copy_is_independent(self, tiny_mesh):
        c = tiny_mesh.copy()
        c.vertices[0, 0] = 99.0
        assert tiny_mesh.vertices[0, 0] != 99.0
