"""Registry and NumpyBackend unit tests for :mod:`repro.backend`.

The registry contract: ``get_backend`` resolves known names, raises
``UnknownNameError`` (the CLI's exit-2 class) for unknown ones, and
falls back to numpy — with a one-time RuntimeWarning — when an optional
backend's import fails.  The NumpyBackend is the semantic reference the
other implementations are pinned against.
"""

import warnings

import numpy as np
import pytest

from repro.backend import (
    BACKEND_NAMES,
    NumpyBackend,
    available_backends,
    get_backend,
)
from repro.config import UnknownNameError, engine_axes


class TestRegistry:
    def test_default_is_numpy(self):
        xb = get_backend()
        assert isinstance(xb, NumpyBackend)
        assert xb.name == "numpy"
        assert xb.xp is np

    def test_instances_are_cached(self):
        assert get_backend("numpy") is get_backend("numpy")

    def test_unknown_name_raises_with_choices(self):
        with pytest.raises(UnknownNameError) as exc:
            get_backend("tensorflow")
        message = str(exc.value)
        assert "tensorflow" in message
        for name in BACKEND_NAMES:
            assert name in message

    def test_backend_names_match_config_axis(self):
        assert engine_axes()["backend"] == BACKEND_NAMES

    def test_uninstalled_backend_falls_back_to_numpy(self):
        # At most one of cupy/torch is expected in CI; locally neither
        # is.  For any uninstalled one, the registry must hand back the
        # numpy instance and warn exactly once.
        missing = [n for n in ("cupy", "torch") if n not in available_backends()]
        if not missing:
            pytest.skip("all optional backends installed")
        name = missing[0]
        # The warning may already have fired earlier in the session;
        # both branches must still produce a working numpy fallback.
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            xb = get_backend(name)
        assert xb.name == "numpy"
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            assert get_backend(name).name == "numpy"  # warned at most once

    def test_available_backends_lists_numpy_first(self):
        names = available_backends()
        assert names[0] == "numpy"
        # Fallback instances must not masquerade as their requested name.
        for name in names:
            assert get_backend(name).name == name


class TestNumpyBackendOps:
    xb = get_backend("numpy")

    def test_asarray_and_to_numpy_are_zero_copy(self):
        a = np.arange(5, dtype=np.int64)
        assert self.xb.asarray(a) is a
        assert self.xb.to_numpy(a) is a

    def test_reduceat_segments(self):
        values = np.arange(10.0).reshape(5, 2)
        starts = np.array([0, 2, 3], dtype=np.int64)
        out = self.xb.reduceat(values, starts)
        expected = np.add.reduceat(values, starts, axis=0)
        np.testing.assert_array_equal(out, expected)

    def test_segment_mean_matches_reduceat_over_counts(self):
        values = np.arange(12.0).reshape(6, 2)
        starts = np.array([0, 1, 4], dtype=np.int64)
        counts = np.array([1, 3, 2], dtype=np.int64)
        out = self.xb.segment_mean(values, starts, counts)
        expected = np.add.reduceat(values, starts, axis=0) / counts[:, None]
        np.testing.assert_allclose(out, expected, rtol=0, atol=0)

    def test_argsort_stable_preserves_tie_order(self):
        a = np.array([1, 0, 1, 0, 1], dtype=np.int64)
        order = self.xb.argsort(a, stable=True)
        np.testing.assert_array_equal(order, [1, 3, 0, 2, 4])

    def test_searchsorted_sides(self):
        a = np.array([0, 2, 2, 5], dtype=np.int64)
        v = np.array([2], dtype=np.int64)
        assert self.xb.searchsorted(a, v, side="left")[0] == 1
        assert self.xb.searchsorted(a, v, side="right")[0] == 3

    def test_scatter_min_keeps_minimum_per_slot(self):
        target = self.xb.full((3,), 99, self.xb.int64)
        index = np.array([0, 1, 0, 1], dtype=np.int64)
        values = np.array([5, 7, 2, 9], dtype=np.int64)
        self.xb.scatter_min(target, index, values)
        np.testing.assert_array_equal(target, [2, 7, 99])

    def test_seed_rng_is_deterministic(self):
        a = self.xb.seed_rng(7).random(4)
        b = self.xb.seed_rng(7).random(4)
        np.testing.assert_array_equal(self.xb.to_numpy(a), self.xb.to_numpy(b))

    def test_synchronize_is_a_noop(self):
        assert self.xb.synchronize() is None
