"""Differential tests: every installed backend vs the numpy reference.

Each engine that accepts a backend is pinned against its numpy run on
the same mesh/trace: smoothed coordinates within rtol 1e-12 (floating
sums may associate differently on device), permutations and cache
counts exactly.  Parametrized over the installed backends; on a
numpy-only host this degenerates to numpy-vs-numpy, which still guards
the plumbing (the config axis must reach the engines and change
nothing).
"""

import numpy as np
import pytest

from repro.backend import available_backends
from repro.config import RunConfig
from repro.core import run_ordering, run_summary
from repro.memsim import MemoryLayout, calibrated_machine, simulate_trace
from repro.ordering.batched import (
    batched_bfs_ordering,
    batched_rcm_ordering,
    batched_reverse_bfs_ordering,
)
from repro.parallel.scheduler import wavefront_schedule
from repro.smoothing import laplacian_smooth
from repro.smoothing.vectorized import WavefrontPlan

BACKENDS = available_backends()


def _plan_for(mesh, backend):
    adj = mesh.adjacency
    seq = np.arange(mesh.num_vertices, dtype=np.int64)
    batched, offsets = wavefront_schedule(seq, adj.xadj, adj.adjncy)
    return WavefrontPlan(adj.xadj, adj.adjncy, batched, offsets,
                         backend=backend)


@pytest.fixture(params=BACKENDS)
def backend(request):
    return request.param


class TestSmootherDifferential:
    def test_one_sweep_matches_numpy(self, bumpy_mesh, backend):
        base = bumpy_mesh.vertices.copy()
        _plan_for(bumpy_mesh, "numpy").execute(base)
        other = bumpy_mesh.vertices.copy()
        _plan_for(bumpy_mesh, backend).execute(other)
        np.testing.assert_allclose(other, base, rtol=1e-12, atol=1e-14)

    def test_convergence_run_matches_numpy(self, bumpy_mesh, backend):
        base = laplacian_smooth(
            bumpy_mesh, config=RunConfig(engine="vectorized")
        )
        other = laplacian_smooth(
            bumpy_mesh,
            config=RunConfig(engine="vectorized", backend=backend),
        )
        assert other.iterations == base.iterations
        np.testing.assert_allclose(
            other.mesh.vertices, base.mesh.vertices, rtol=1e-12, atol=1e-14
        )


class TestOrderingDifferential:
    @pytest.mark.parametrize(
        "fn",
        [
            batched_bfs_ordering,
            batched_reverse_bfs_ordering,
            batched_rcm_ordering,
        ],
        ids=lambda f: f.__name__,
    )
    def test_frontier_orderings_identical(self, bumpy_mesh, backend, fn):
        base = fn(bumpy_mesh)
        other = fn(bumpy_mesh, backend=backend)
        np.testing.assert_array_equal(other, base)


class TestMemsimDifferential:
    def test_batched_counts_identical(self, bumpy_mesh, backend):
        run = run_ordering(
            bumpy_mesh, "rdr", fixed_iterations=1,
            config=RunConfig(engine="vectorized"),
        )
        machine = calibrated_machine(
            MemoryLayout.for_mesh(run.mesh).total_bytes
        )
        base = simulate_trace(
            run.lines, machine, config=RunConfig(sim_engine="batched")
        )
        other = simulate_trace(
            run.lines,
            machine,
            config=RunConfig(sim_engine="batched", backend=backend),
        )
        for lvl in ("l1", "l2", "l3"):
            assert getattr(other, lvl).hits == getattr(base, lvl).hits
            assert getattr(other, lvl).misses == getattr(base, lvl).misses


class TestEndToEndProvenance:
    def test_run_summary_records_backend(self, grid_mesh, backend):
        run = run_ordering(
            grid_mesh, "ori", fixed_iterations=1,
            config=RunConfig(backend=backend),
        )
        assert run_summary(run)["backend"] == backend
