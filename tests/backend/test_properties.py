"""Hypothesis property suite: every installed backend vs the numpy oracle.

The ``ArrayBackend`` protocol ops are the exact vocabulary the fast
engines are written in; each op is pinned against its numpy semantics on
arbitrary inputs.  Parametrized over :func:`repro.backend.available_backends`
so the same laws run on cupy/torch wherever those are installed — on a
numpy-only host the suite still exercises the protocol round-trip
(asarray/to_numpy) through the one real backend.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.backend import available_backends, get_backend

# The xb fixture hands back a cached stateless singleton, so sharing it
# across hypothesis examples is sound (hence the suppressed check).
FAST = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[
        HealthCheck.too_slow,
        HealthCheck.function_scoped_fixture,
    ],
)

BACKENDS = available_backends()


@pytest.fixture(params=BACKENDS)
def xb(request):
    return get_backend(request.param)


def segmented_values(draw):
    """(values, starts, counts): 2-d float payload + non-empty segments."""
    n_segments = draw(st.integers(min_value=1, max_value=8))
    counts = draw(
        st.lists(
            st.integers(min_value=1, max_value=6),
            min_size=n_segments,
            max_size=n_segments,
        )
    )
    counts = np.asarray(counts, dtype=np.int64)
    total = int(counts.sum())
    flat = draw(
        st.lists(
            st.floats(
                min_value=-1e6, max_value=1e6,
                allow_nan=False, allow_infinity=False,
            ),
            min_size=2 * total,
            max_size=2 * total,
        )
    )
    values = np.asarray(flat, dtype=np.float64).reshape(total, 2)
    starts = np.concatenate(([0], np.cumsum(counts)[:-1])).astype(np.int64)
    return values, starts, counts


class TestBackendLaws:
    @FAST
    @given(data=st.data())
    def test_transfer_round_trip_is_identity(self, xb, data):
        host = np.asarray(
            data.draw(st.lists(st.integers(-1000, 1000), max_size=50)),
            dtype=np.int64,
        )
        dev = xb.asarray(host, dtype=xb.int64)
        np.testing.assert_array_equal(xb.to_numpy(dev), host)

    @FAST
    @given(data=st.data())
    def test_reduceat_matches_numpy(self, xb, data):
        values, starts, _ = segmented_values(data.draw)
        out = xb.to_numpy(
            xb.reduceat(xb.asarray(values), xb.asarray(starts))
        )
        expected = np.add.reduceat(values, starts, axis=0)
        np.testing.assert_allclose(out, expected, rtol=1e-12, atol=1e-9)

    @FAST
    @given(data=st.data())
    def test_segment_mean_matches_numpy(self, xb, data):
        values, starts, counts = segmented_values(data.draw)
        out = xb.to_numpy(
            xb.segment_mean(
                xb.asarray(values),
                xb.asarray(starts),
                xb.asarray(counts, dtype=xb.float64),
            )
        )
        expected = np.add.reduceat(values, starts, axis=0) / counts[:, None]
        np.testing.assert_allclose(out, expected, rtol=1e-12, atol=1e-9)

    @FAST
    @given(data=st.data())
    def test_stable_argsort_matches_numpy(self, xb, data):
        # Tight value range forces ties, the case stability is about.
        a = np.asarray(
            data.draw(st.lists(st.integers(0, 4), max_size=80)),
            dtype=np.int64,
        )
        out = xb.to_numpy(xb.argsort(xb.asarray(a), stable=True))
        np.testing.assert_array_equal(out, np.argsort(a, kind="stable"))

    @FAST
    @given(data=st.data())
    def test_searchsorted_matches_numpy(self, xb, data):
        a = np.sort(
            np.asarray(
                data.draw(st.lists(st.integers(0, 100), max_size=40)),
                dtype=np.int64,
            )
        )
        v = np.asarray(
            data.draw(st.lists(st.integers(-5, 105), max_size=20)),
            dtype=np.int64,
        )
        for side in ("left", "right"):
            out = xb.to_numpy(
                xb.searchsorted(xb.asarray(a), xb.asarray(v), side=side)
            )
            np.testing.assert_array_equal(out, np.searchsorted(a, v, side=side))

    @FAST
    @given(data=st.data())
    def test_scatter_min_matches_minimum_at(self, xb, data):
        slots = data.draw(st.integers(min_value=1, max_value=10))
        pairs = data.draw(
            st.lists(
                st.tuples(
                    st.integers(0, slots - 1), st.integers(-100, 100)
                ),
                max_size=60,
            )
        )
        index = np.asarray([p[0] for p in pairs], dtype=np.int64)
        values = np.asarray([p[1] for p in pairs], dtype=np.int64)
        expected = np.full(slots, 999, dtype=np.int64)
        np.minimum.at(expected, index, values)
        target = xb.full((slots,), 999, xb.int64)
        xb.scatter_min(target, xb.asarray(index), xb.asarray(values))
        xb.synchronize()
        np.testing.assert_array_equal(xb.to_numpy(target), expected)

    @FAST
    @given(data=st.data())
    def test_flatnonzero_matches_numpy(self, xb, data):
        a = np.asarray(
            data.draw(st.lists(st.booleans(), max_size=60)), dtype=bool
        )
        out = xb.to_numpy(xb.flatnonzero(xb.asarray(a, dtype=xb.bool_)))
        np.testing.assert_array_equal(out, np.flatnonzero(a))
