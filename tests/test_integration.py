"""End-to-end integration tests: the full user story across substrates.

These exercise the complete generate -> order -> smooth -> simulate ->
report path the way the examples and benchmarks do, on several domains,
checking the cross-module contracts rather than any single unit.
"""

import numpy as np
import pytest

from repro import (
    apply_ordering,
    compare_orderings,
    generate_domain_mesh,
    global_quality,
    laplacian_smooth,
    run_parallel_ordering,
    vertex_quality,
)
from repro.core import default_machine_for
from repro.mesh import read_triangle, validate_mesh, write_triangle
from repro.memsim import per_array_breakdown


@pytest.mark.parametrize("domain", ["carabiner", "riverflow", "wrench"])
def test_full_story_on_domain(domain, tmp_path):
    # 1. Generate and persist.
    mesh = generate_domain_mesh(domain, target_vertices=500, seed=2)
    validate_mesh(mesh)
    write_triangle(mesh, tmp_path / domain)
    mesh = read_triangle(tmp_path / domain, name=domain)

    # 2. Reorder with RDR; quality is invariant under the permutation.
    q_before = global_quality(mesh)
    permuted, order = apply_ordering(mesh, "rdr")
    assert global_quality(permuted) == pytest.approx(q_before)

    # 3. Smooth to convergence; quality improves, boundary pinned.
    result = laplacian_smooth(permuted, max_iterations=120)
    assert result.converged
    assert result.final_quality > q_before
    b = permuted.boundary_mask
    assert np.array_equal(result.mesh.vertices[b], permuted.vertices[b])

    # 4. The smoothed mesh is still structurally valid.
    validate_mesh(result.mesh)


def test_ordering_comparison_story():
    mesh = generate_domain_mesh("dialog", target_vertices=700, seed=0)
    runs = compare_orderings(mesh, ["random", "ori", "rdr"], fixed_iterations=1)

    # Identical numeric work across orderings.
    counts = {r.cost.num_accesses for r in runs.values()}
    assert len(counts) == 1

    # The locality story holds end to end.
    assert (
        runs["rdr"].modeled_seconds
        < runs["ori"].modeled_seconds
        < runs["random"].modeled_seconds
    )

    # Per-array attribution is consistent with the aggregate stats.
    run = runs["rdr"]
    rows = per_array_breakdown(run.trace, run.layout, run.machine)
    assert sum(r.l1_misses for r in rows) == run.cache.l1.misses


def test_serial_vs_parallel_consistency():
    """One core of the multicore simulation sees the serial workload."""
    mesh = generate_domain_mesh("lake", target_vertices=500, seed=0)
    machine = default_machine_for(mesh, profile="scaling")
    one = run_parallel_ordering(mesh, "rdr", 1, machine=machine, iterations=2)
    four = run_parallel_ordering(mesh, "rdr", 4, machine=machine, iterations=2)
    assert one.result.total_accesses == four.result.total_accesses
    # Parallel time is smaller (more caches, less work per core).
    assert four.modeled_seconds < one.modeled_seconds


def test_quality_signal_consistency():
    """The ordering, traversal and smoother agree on the quality signal."""
    mesh = generate_domain_mesh("valve", target_vertices=500, seed=0)
    q = vertex_quality(mesh)
    permuted, order = apply_ordering(mesh, "qsort", qualities=q)
    # After a quality sort, stored qualities are ascending.
    assert (np.diff(q[order]) >= 0).all()
    assert np.allclose(vertex_quality(permuted), q[order])
