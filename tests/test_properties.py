"""Property-based tests (hypothesis) on core data structures/invariants.

These cover the invariants the whole reproduction leans on:

* the reuse-distance analyzer agrees with a brute-force oracle,
* a fully-associative LRU cache realises the reuse-distance model,
* RDR orders every vertex exactly once (Theorem 1) on arbitrary meshes,
* permutation round-trips preserve mesh structure and quality,
* Laplacian smoothing never moves boundary vertices and never worsens
  the (convex-patch) quality monotonicity guarantees we rely on,
* the Hilbert curve and CSR construction behave for arbitrary inputs.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.mesh import TriMesh, adjacency_from_triangles, is_symmetric
from repro.memsim import (
    COLD,
    LRUCache,
    CacheSpec,
    hits_under_capacity,
    max_elements_within,
    profile_from_distances,
    reuse_distances,
)
from repro.core import rdr_ordering
from repro.ordering import hilbert_indices, invert_permutation
from repro.quality import patch_quality, vertex_quality
from repro.meshgen import delaunay, structured_rectangle, perturb_interior
from repro.smoothing import greedy_traversal, laplacian_smooth

# Hypothesis settings tuned for CI: moderate example counts, no deadline
# (mesh construction costs vary).
FAST = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


streams = st.lists(st.integers(min_value=0, max_value=12), min_size=0, max_size=120)


@FAST
@given(streams)
def test_reuse_distance_matches_bruteforce(stream):
    fast = reuse_distances(np.asarray(stream, dtype=np.int64))
    last: dict = {}
    for t, x in enumerate(stream):
        if x in last:
            expected = len(set(stream[last[x] + 1 : t]))
            assert fast[t] == expected
        else:
            assert fast[t] == COLD
        last[x] = t


@FAST
@given(streams, st.integers(min_value=1, max_value=16))
def test_fully_associative_lru_realises_reuse_model(stream, capacity):
    cache = LRUCache(CacheSpec("c", capacity * 64, capacity, 1.0, 64))
    hits = sum(cache.access(x)[0] for x in stream)
    dists = reuse_distances(np.asarray(stream, dtype=np.int64))
    assert hits == hits_under_capacity(dists, capacity)


@FAST
@given(streams)
def test_reuse_profile_quantiles_monotone(stream):
    dists = reuse_distances(np.asarray(stream, dtype=np.int64))
    prof = profile_from_distances(dists)
    if prof.num_reuses:
        assert prof.q50 <= prof.q75 <= prof.q90 <= prof.q100


@FAST
@given(streams, st.integers(min_value=0, max_value=50))
def test_max_elements_within_inverts_miss_count(stream, misses):
    dists = reuse_distances(np.asarray(stream, dtype=np.int64))
    warm = dists[dists != COLD]
    assume(warm.size > 0)
    misses = min(misses, warm.size)
    cap = max_elements_within(dists, misses)
    # With that capacity, the miss count brackets the request: strictly
    # larger distances must miss no more than requested, and including
    # the boundary value must cover the request (ties at the boundary
    # make exact inversion impossible, as in the paper's estimator).
    assert int(np.count_nonzero(warm > cap)) <= misses
    if misses > 0:
        assert int(np.count_nonzero(warm >= cap)) >= misses


def random_mesh(seed, rows, cols, amplitude):
    base = structured_rectangle(rows, cols)
    return perturb_interior(base, amplitude=amplitude, seed=seed)


mesh_params = st.tuples(
    st.integers(min_value=0, max_value=10_000),
    st.integers(min_value=3, max_value=8),
    st.integers(min_value=3, max_value=8),
    st.floats(min_value=0.0, max_value=0.04),
)


@FAST
@given(mesh_params)
def test_rdr_orders_every_vertex_exactly_once(params):
    """Theorem 1 over a family of random meshes."""
    seed, rows, cols, amp = params
    mesh = random_mesh(seed, rows, cols, amp)
    order = rdr_ordering(mesh)
    assert np.array_equal(np.sort(order), np.arange(mesh.num_vertices))


@FAST
@given(mesh_params)
def test_greedy_traversal_covers_interior(params):
    seed, rows, cols, amp = params
    mesh = random_mesh(seed, rows, cols, amp)
    q = vertex_quality(mesh)
    seq = greedy_traversal(mesh, q)
    assert np.array_equal(np.sort(seq), mesh.interior_vertices())


@FAST
@given(mesh_params, st.integers(min_value=0, max_value=2**31 - 1))
def test_permutation_roundtrip_preserves_mesh(params, perm_seed):
    seed, rows, cols, amp = params
    mesh = random_mesh(seed, rows, cols, amp)
    order = np.random.default_rng(perm_seed).permutation(mesh.num_vertices)
    back = mesh.permute(order).permute(invert_permutation(order))
    assert np.allclose(back.vertices, mesh.vertices)
    assert is_symmetric(back.adjacency)
    assert np.array_equal(back.boundary_mask, mesh.boundary_mask)


@FAST
@given(mesh_params, st.integers(min_value=0, max_value=2**31 - 1))
def test_quality_permutation_equivariance(params, perm_seed):
    seed, rows, cols, amp = params
    mesh = random_mesh(seed, rows, cols, amp)
    order = np.random.default_rng(perm_seed).permutation(mesh.num_vertices)
    q = vertex_quality(mesh)
    qp = vertex_quality(mesh.permute(order))
    assert np.allclose(qp, q[order])


@FAST
@given(mesh_params)
def test_patch_quality_contraction(params):
    seed, rows, cols, amp = params
    mesh = random_mesh(seed, rows, cols, amp)
    base = vertex_quality(mesh)
    out = patch_quality(mesh, passes=3, base=base)
    assert out.min() >= base.min() - 1e-12
    assert out.max() <= base.max() + 1e-12


@FAST
@given(mesh_params)
def test_smoothing_fixes_boundary_and_stays_sane(params):
    """Boundary vertices never move; interior stays inside the hull of
    its neighbors; quality never collapses. (Laplacian smoothing is not
    strictly monotone in the edge-length-ratio metric — tiny meshes can
    dip by a fraction of a percent before the criterion stops them — so
    monotonicity is deliberately NOT asserted.)"""
    seed, rows, cols, amp = params
    mesh = random_mesh(seed, rows, cols, amp)
    result = laplacian_smooth(mesh, max_iterations=3)
    b = mesh.boundary_mask
    assert np.array_equal(result.mesh.vertices[b], mesh.vertices[b])
    assert result.final_quality >= result.initial_quality - 0.05
    # Smoothed interior positions are convex combinations of neighbors,
    # so they stay inside the mesh bounding box.
    lo, hi = mesh.vertices.min(0), mesh.vertices.max(0)
    assert (result.mesh.vertices >= lo - 1e-9).all()
    assert (result.mesh.vertices <= hi + 1e-9).all()


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    st.integers(min_value=0, max_value=10_000),
    st.integers(min_value=6, max_value=60),
    st.floats(min_value=0.01, max_value=100.0),
    st.floats(min_value=-50.0, max_value=50.0),
)
def test_delaunay_on_arbitrary_points(seed, n, scale, offset):
    # Random continuous clouds (duplicates have probability zero) over a
    # hypothesis-chosen scale/offset, exercising the predicates across
    # magnitudes.
    pts = np.random.default_rng(seed).random((n, 2)) * scale + offset
    assume(np.unique(pts, axis=0).shape[0] == pts.shape[0])
    tris = delaunay(pts)
    # Valid triangle soup over the input ids, all CCW.
    assert tris.min() >= 0 and tris.max() < len(pts)
    p = pts[tris]
    areas = 0.5 * (
        (p[:, 1, 0] - p[:, 0, 0]) * (p[:, 2, 1] - p[:, 0, 1])
        - (p[:, 1, 1] - p[:, 0, 1]) * (p[:, 2, 0] - p[:, 0, 0])
    )
    assert (areas > 0).all()
    # Adjacency built from it is symmetric.
    assert is_symmetric(adjacency_from_triangles(tris, len(pts)))


@FAST
@given(
    hnp.arrays(
        dtype=np.float64,
        shape=st.tuples(st.integers(2, 60), st.just(2)),
        elements=st.floats(min_value=-100.0, max_value=100.0, width=32),
    )
)
def test_hilbert_indices_bounded_and_deterministic(points):
    pts = np.asarray(points, dtype=np.float64)
    idx = hilbert_indices(pts, bits=8)
    assert (idx >= 0).all()
    assert (idx < (1 << 16)).all()
    assert np.array_equal(idx, hilbert_indices(pts, bits=8))


@FAST
@given(streams)
def test_trace_builder_roundtrip(stream):
    from repro.memsim import TraceBuilder

    tb = TraceBuilder()
    for x in stream:
        tb.append("coords", x)
    trace = tb.build()
    assert trace.indices.tolist() == stream
