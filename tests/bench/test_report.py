"""Unit tests for benchmark reporting helpers."""

import json

import pytest

from repro.bench import format_table, render_series, save_json


class TestFormatTable:
    def test_basic_table(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 10, "b": 0.125}]
        out = format_table(rows, title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        # title + header + separator + two data rows
        assert len(lines) == 5

    def test_alignment(self):
        rows = [{"x": 1}, {"x": 1000}]
        out = format_table(rows)
        body = out.splitlines()[2:]
        assert body[0].endswith("1")
        assert body[1].endswith("1000")

    def test_column_selection(self):
        rows = [{"a": 1, "b": 2, "c": 3}]
        out = format_table(rows, columns=["c", "a"])
        assert "b" not in out.splitlines()[0]

    def test_empty(self):
        assert "(no rows)" in format_table([], title="E")

    def test_float_formatting(self):
        rows = [{"v": 0.000123}, {"v": 123456.0}]
        out = format_table(rows)
        assert "0.000123" in out
        assert "1.23e+05" in out


class TestRenderSeries:
    def test_contains_marks(self):
        out = render_series([0, 1, 2, 3], [1.0, 2.0, 4.0, 8.0], title="s")
        assert out.splitlines()[0] == "s"
        assert "*" in out

    def test_log_scale(self):
        out = render_series([0, 1], [1.0, 1000.0], logy=True)
        assert "1e+03" in out or "1000" in out

    def test_nan_skipped(self):
        out = render_series([0, 1, 2], [1.0, float("nan"), 3.0])
        assert out.count("*") == 2

    def test_all_nan(self):
        assert "(no data)" in render_series([0], [float("nan")])


class TestSaveJson:
    def test_roundtrip(self, tmp_path):
        path = save_json("unit", {"x": [1, 2]}, directory=tmp_path)
        assert json.loads(path.read_text()) == {"x": [1, 2]}

    def test_directory_created(self, tmp_path):
        target = tmp_path / "deep" / "dir"
        path = save_json("unit", [1], directory=target)
        assert path.exists()
