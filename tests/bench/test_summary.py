"""Unit tests for the benchmark results summarizer."""

import json

from repro.bench import load_result, save_json, summarize_results


def test_load_result_missing(tmp_path):
    assert load_result("nothing", directory=tmp_path) is None


def test_load_result_roundtrip(tmp_path):
    save_json("fig8", [{"speedup_rdr_vs_ori": 1.2, "speedup_rdr_vs_bfs": 1.1}],
              directory=tmp_path)
    assert load_result("fig8", directory=tmp_path)[0]["speedup_rdr_vs_ori"] == 1.2


def test_summarize_empty_directory(tmp_path):
    out = summarize_results(directory=tmp_path)
    assert "No persisted results" in out


def test_summarize_renders_available_sections(tmp_path):
    save_json(
        "fig8",
        [
            {"speedup_rdr_vs_ori": 1.25, "speedup_rdr_vs_bfs": 1.08},
            {"speedup_rdr_vs_ori": 1.21, "speedup_rdr_vs_bfs": 1.12},
        ],
        directory=tmp_path,
    )
    save_json(
        "fig12",
        [
            {"cores": 1, "ori": 1.0, "bfs": 1.3, "rdr": 1.5},
            {"cores": 32, "ori": 70.0, "bfs": 95.0, "rdr": 85.0},
        ],
        directory=tmp_path,
    )
    out = summarize_results(directory=tmp_path)
    assert "Figure 8" in out and "1.23x" in out
    assert "Figure 12" in out and "85.0x" in out
    assert "Table 2" not in out  # absent inputs are skipped
