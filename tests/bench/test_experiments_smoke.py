"""Smoke tests for the experiment drivers at a tiny scale.

The real assertions live in ``benchmarks/``; here we check every driver
runs end to end on a minimal configuration and produces rows with the
expected schema, so a broken driver fails fast in the unit suite.
"""

import numpy as np
import pytest

from repro.bench import (
    BenchConfig,
    clear_caches,
    eq2_example,
    fig1_profiles,
    fig4_traces,
    fig6_series,
    fig8_rows,
    fig9_rows,
    fig10_rows,
    fig11_rows,
    fig12_rows,
    fig13_rows,
    scaling_sweep,
    sec54_rows,
    suite_meshes,
    table1_rows,
    table2_rows,
    table3_rows,
)


@pytest.fixture(scope="module")
def tiny_cfg():
    clear_caches()
    cfg = BenchConfig(
        suite_scale=0.0012,
        scaling_scale=0.0015,
        cores=(1, 2, 4),
        scaling_iterations=1,
    )
    yield cfg
    clear_caches()


def test_suite_meshes(tiny_cfg):
    meshes = suite_meshes(tiny_cfg)
    assert len(meshes) == 9
    assert all(m.num_vertices >= 200 for m in meshes.values())
    # Cached: same objects on second call.
    assert suite_meshes(tiny_cfg)["M1"] is meshes["M1"]


def test_table1(tiny_cfg):
    rows = table1_rows(tiny_cfg)
    assert {r["label"] for r in rows} == {f"M{i}" for i in range(1, 10)}


def test_fig1(tiny_cfg):
    out = fig1_profiles(tiny_cfg, orderings=("ori", "bfs"))
    assert {r["ordering"] for r in out["rows"]} == {"ori", "bfs"}
    assert set(out["series"]) == {"ori", "bfs"}


def test_fig4(tiny_cfg):
    out = fig4_traces(tiny_cfg, length=8)
    assert set(out["snippets"]) == {"dfs", "bfs"}
    assert all(len(v) == 8 for v in out["snippets"].values())


def test_fig6(tiny_cfg):
    out = fig6_series(tiny_cfg, iterations=2, buckets=20)
    assert len(out["series"]) == 2
    assert len(out["correlation_with_first"]) == 1


@pytest.mark.slow
def test_fig8_and_fig9_and_tables(tiny_cfg):
    f8 = fig8_rows(tiny_cfg)
    assert len(f8) == 9 and "speedup_rdr_vs_ori" in f8[0]
    f9 = fig9_rows(tiny_cfg)
    assert len(f9) == 27
    t2 = table2_rows(tiny_cfg)
    assert all(r["50%"] >= 0 for r in t2)
    t3 = table3_rows(tiny_cfg)
    assert all(r["L3_cap_misses"] >= 0 for r in t3)
    e2 = eq2_example(tiny_cfg)
    assert {r["ordering"] for r in e2} == {"ori", "bfs", "rdr"}


@pytest.mark.slow
def test_scaling_family(tiny_cfg):
    sweep = scaling_sweep(tiny_cfg, labels=("M1", "M2"), orderings=("ori", "rdr"))
    assert ("M1", "ori", 1) in sweep["times"]
    # Cache hit on re-request.
    assert scaling_sweep(tiny_cfg, labels=("M1", "M2"), orderings=("ori", "rdr")) is sweep

    f10 = fig10_rows(tiny_cfg, labels=("M1", "M2"), orderings=("ori", "rdr"))
    assert {r["cores"] for r in f10} == {1, 2, 4}
    f11 = fig11_rows(tiny_cfg, labels=("M1",))
    assert all("memory_accesses" in r for r in f11)
    f12 = fig12_rows(tiny_cfg, orderings=("ori", "rdr"))
    assert len(f12) == 3
    f13 = fig13_rows(tiny_cfg)
    assert {r["vs"] for r in f13} == {"ori", "bfs"}


def test_sec54(tiny_cfg):
    rows = sec54_rows(tiny_cfg, orderings=("rdr",), labels=("M1",))
    assert rows[0]["iterations_equivalent"] > 0
