"""Shared fixtures for the test suite.

Meshes used across many test modules are built once per session. Tests
that need mutation work on copies.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.mesh import TriMesh
from repro.meshgen import generate_domain_mesh, structured_rectangle, perturb_interior


@pytest.fixture(scope="session")
def grid_mesh() -> TriMesh:
    """A 6x7 structured rectangle (42 vertices, regular adjacency)."""
    return structured_rectangle(6, 7, name="grid")


@pytest.fixture(scope="session")
def bumpy_mesh() -> TriMesh:
    """A perturbed structured mesh with a genuine quality spread."""
    base = structured_rectangle(9, 9, name="bumpy")
    return perturb_interior(base, amplitude=0.04, seed=3)


@pytest.fixture(scope="session")
def ocean_mesh() -> TriMesh:
    """A small real domain mesh (Delaunay, boundary-ramped quality)."""
    return generate_domain_mesh("ocean", target_vertices=400, seed=1)


@pytest.fixture()
def tiny_mesh() -> TriMesh:
    """Five vertices, four triangles: one interior vertex (index 4).

    Layout::

        3 --- 2
        | \\ / |
        |  4  |
        | / \\ |
        0 --- 1
    """
    vertices = np.array(
        [[0.0, 0.0], [2.0, 0.0], [2.0, 2.0], [0.0, 2.0], [1.2, 0.9]]
    )
    triangles = np.array([[0, 1, 4], [1, 2, 4], [2, 3, 4], [3, 0, 4]])
    return TriMesh(vertices, triangles, name="tiny")


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
