"""End-to-end determinism: identical invocations, byte-identical outputs.

Each scenario runs the real CLI in fresh subprocesses with *different*
``PYTHONHASHSEED`` values, so any hidden dependence on ``str``-hash
iteration order (set/dict ordering leaking into traversals, job keys,
CSV columns, ...) shows up as a byte diff. Compared artifacts:

* ``repro-lms smooth --seed 7``: stdout and the exported
  ``.node``/``.ele`` pair, for both engines;
* one ``lab`` cell (init -> run -> export): the exported CSV with
  ``--drop-timing`` (the one intentionally nondeterministic column is
  the measured per-job wall time).
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[1]


def run_cli(argv, *, cwd, hashseed):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    env["PYTHONHASHSEED"] = str(hashseed)
    proc = subprocess.run(
        [sys.executable, "-m", "repro.cli", *argv],
        cwd=cwd,
        env=env,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


@pytest.mark.parametrize("engine", ["reference", "vectorized"])
def test_smooth_runs_are_byte_identical(tmp_path, engine):
    outputs = []
    for hashseed, sub in ((0, "a"), (42, "b")):
        work = tmp_path / sub
        work.mkdir()
        gen_out = run_cli(
            ["generate", "ocean", "mesh", "--vertices", "250", "--seed", "7"],
            cwd=work,
            hashseed=hashseed,
        )
        smooth_out = run_cli(
            [
                "smooth", "mesh",
                "--ordering", "rdr",
                "--seed", "7",
                "--engine", engine,
                "--traversal", "greedy",
                "--output", "smoothed",
            ],
            cwd=work,
            hashseed=hashseed,
        )
        outputs.append(
            (
                gen_out,
                smooth_out,
                (work / "mesh.node").read_bytes(),
                (work / "mesh.ele").read_bytes(),
                (work / "smoothed.node").read_bytes(),
                (work / "smoothed.ele").read_bytes(),
            )
        )
    assert outputs[0] == outputs[1]


def test_smooth_engines_agree_on_exported_quality(tmp_path):
    """The two engines report the same convergence summary on the CLI."""
    stdouts = {}
    for engine in ("reference", "vectorized"):
        work = tmp_path / engine
        work.mkdir()
        run_cli(
            ["generate", "ocean", "mesh", "--vertices", "250", "--seed", "7"],
            cwd=work,
            hashseed=0,
        )
        stdouts[engine] = run_cli(
            ["smooth", "mesh", "--ordering", "rdr", "--seed", "7",
             "--engine", engine],
            cwd=work,
            hashseed=0,
        )
    assert stdouts["reference"] == stdouts["vectorized"]


@pytest.mark.slow
def test_lab_run_exports_are_byte_identical(tmp_path):
    exports = []
    for hashseed, sub in ((0, "a"), (42, "b")):
        work = tmp_path / sub
        work.mkdir()
        run_cli(
            [
                "lab", "init",
                "--db", "lab.db",
                "--experiments", "smooth",
                "--domains", "ocean",
                "--orderings", "rdr,ori",
                "--vertices", "150",
                "--seeds", "7",
                "--max-iterations", "3",
                "--engines", "reference,vectorized",
            ],
            cwd=work,
            hashseed=hashseed,
        )
        run_cli(
            ["lab", "run", "--db", "lab.db", "--workers", "1"],
            cwd=work,
            hashseed=hashseed,
        )
        run_cli(
            [
                "lab", "export", "--db", "lab.db", "--drop-timing",
                "results.csv",
            ],
            cwd=work,
            hashseed=hashseed,
        )
        run_cli(
            [
                "lab", "export", "--db", "lab.db", "--drop-timing",
                "results.json",
            ],
            cwd=work,
            hashseed=hashseed,
        )
        exports.append(
            (
                (work / "results.csv").read_bytes(),
                (work / "results.json").read_bytes(),
            )
        )
    assert exports[0] == exports[1]
    # Sanity: the export actually contains the four grid cells.
    assert exports[0][0].count(b"\n") == 5  # header + 4 rows
