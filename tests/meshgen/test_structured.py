"""Unit tests for structured rectangle meshes."""

import numpy as np
import pytest

from repro.mesh import mesh_issues
from repro.meshgen import perturb_interior, structured_rectangle
from repro.quality import global_quality


class TestStructuredRectangle:
    def test_counts(self):
        mesh = structured_rectangle(4, 5)
        assert mesh.num_vertices == 20
        assert mesh.num_triangles == 2 * 3 * 4

    def test_valid(self):
        assert mesh_issues(structured_rectangle(5, 5)) == []

    def test_dimensions(self):
        mesh = structured_rectangle(3, 3, width=2.0, height=4.0)
        assert mesh.vertices[:, 0].max() == pytest.approx(2.0)
        assert mesh.vertices[:, 1].max() == pytest.approx(4.0)

    def test_total_area(self):
        mesh = structured_rectangle(6, 6, width=3.0, height=2.0)
        assert np.abs(mesh.triangle_areas()).sum() == pytest.approx(6.0)

    def test_diagonal_modes(self):
        a = structured_rectangle(4, 4, diagonal="right")
        b = structured_rectangle(4, 4, diagonal="alternating")
        assert a.num_triangles == b.num_triangles
        assert not np.array_equal(a.triangles, b.triangles)

    def test_rejects_degenerate_grid(self):
        with pytest.raises(ValueError, match=">= 2"):
            structured_rectangle(1, 5)


class TestPerturbInterior:
    def test_boundary_untouched(self):
        mesh = structured_rectangle(6, 6)
        moved = perturb_interior(mesh, amplitude=0.1, seed=1)
        b = mesh.boundary_mask
        assert np.array_equal(moved.vertices[b], mesh.vertices[b])
        assert not np.allclose(moved.vertices[~b], mesh.vertices[~b])

    def test_quality_degrades(self):
        mesh = structured_rectangle(8, 8)
        moved = perturb_interior(mesh, amplitude=0.05, seed=1)
        assert global_quality(moved) < global_quality(mesh)

    def test_deterministic(self):
        mesh = structured_rectangle(6, 6)
        a = perturb_interior(mesh, amplitude=0.1, seed=2)
        b = perturb_interior(mesh, amplitude=0.1, seed=2)
        assert np.array_equal(a.vertices, b.vertices)

    def test_shares_connectivity(self):
        mesh = structured_rectangle(6, 6)
        moved = perturb_interior(mesh, amplitude=0.1, seed=2)
        assert np.array_equal(moved.triangles, mesh.triangles)
