"""Unit tests for the nine domain generators."""

import numpy as np
import pytest

from repro.mesh import mesh_issues
from repro.meshgen import (
    PAPER_SUITE,
    domain_rings,
    generate_domain_mesh,
    list_domains,
    paper_suite,
)
from repro.meshgen.geometry import polygon_area
from repro.quality import vertex_quality


class TestDomainRings:
    @pytest.mark.parametrize("name", list_domains())
    def test_outer_ring_is_ccw(self, name):
        rings = domain_rings(name)
        assert polygon_area(rings[0]) > 0

    @pytest.mark.parametrize("name", list_domains())
    def test_holes_are_cw(self, name):
        for hole in domain_rings(name)[1:]:
            assert polygon_area(hole) < 0

    def test_multiply_connected_domains(self):
        assert len(domain_rings("carabiner")) == 2
        assert len(domain_rings("ocean")) == 3
        assert len(domain_rings("stress")) == 2

    def test_unknown_domain(self):
        with pytest.raises(KeyError, match="unknown domain"):
            domain_rings("nonsense")


class TestGenerateDomainMesh:
    @pytest.mark.parametrize("name", list_domains())
    def test_all_domains_generate_valid_meshes(self, name):
        mesh = generate_domain_mesh(name, target_vertices=350, seed=0)
        assert mesh_issues(mesh) == []
        assert mesh.name == name

    def test_vertex_budget_respected(self):
        for target in (300, 900):
            mesh = generate_domain_mesh("stress", target_vertices=target, seed=0)
            assert 0.6 * target < mesh.num_vertices < 1.6 * target

    def test_deterministic(self):
        a = generate_domain_mesh("lake", target_vertices=300, seed=4)
        b = generate_domain_mesh("lake", target_vertices=300, seed=4)
        assert np.array_equal(a.vertices, b.vertices)
        assert np.array_equal(a.triangles, b.triangles)

    def test_seed_changes_mesh(self):
        a = generate_domain_mesh("lake", target_vertices=300, seed=4)
        b = generate_domain_mesh("lake", target_vertices=300, seed=5)
        assert a.num_vertices != b.num_vertices or not np.allclose(
            a.vertices[: min(a.num_vertices, b.num_vertices)],
            b.vertices[: min(a.num_vertices, b.num_vertices)],
        )

    def test_initial_quality_degraded(self, ocean_mesh):
        q = vertex_quality(ocean_mesh)
        # The perturbation must leave real smoothing work.
        assert q.mean() < 0.85
        assert q.min() < 0.6

    def test_ramp_structure_quality_correlates_with_depth(self):
        from repro.meshgen.geometry import distance_to_rings

        mesh = generate_domain_mesh(
            "stress", target_vertices=700, seed=0, quality_structure="ramp"
        )
        q = vertex_quality(mesh)
        d = distance_to_rings(mesh.vertices, domain_rings("stress"))
        interior = mesh.interior_mask
        corr = np.corrcoef(q[interior], d[interior])[0, 1]
        assert corr > 0.2  # worse near the boundary

    def test_uniform_structure_has_no_depth_correlation(self):
        from repro.meshgen.geometry import distance_to_rings

        mesh = generate_domain_mesh(
            "stress", target_vertices=700, seed=0, quality_structure="uniform"
        )
        q = vertex_quality(mesh)
        d = distance_to_rings(mesh.vertices, domain_rings("stress"))
        interior = mesh.interior_mask
        corr = np.corrcoef(q[interior], d[interior])[0, 1]
        assert abs(corr) < 0.25

    def test_native_order_is_y_sweep(self, ocean_mesh):
        # The native order is a y-sweep of the *unperturbed* points; the
        # quality perturbation afterwards jiggles coordinates, so check
        # rank correlation rather than strict monotonicity.
        y = ocean_mesh.vertices[:, 1]
        ranks = np.argsort(np.argsort(y))
        idx = np.arange(y.size)
        corr = np.corrcoef(ranks, idx)[0, 1]
        assert corr > 0.99

    def test_rejects_tiny_budget(self):
        with pytest.raises(ValueError, match="at least"):
            generate_domain_mesh("lake", target_vertices=4)

    def test_unknown_structure(self):
        with pytest.raises(ValueError, match="quality structure"):
            generate_domain_mesh("lake", target_vertices=300, quality_structure="x")


class TestPaperSuite:
    def test_suite_has_nine_labels(self):
        suite = paper_suite(scale=0.001)
        assert set(suite) == {spec.label for spec in PAPER_SUITE}

    def test_scale_controls_size(self):
        small = paper_suite(scale=0.001)
        assert all(200 <= m.num_vertices <= 700 for m in small.values())

    def test_spec_counts_match_paper(self):
        by_label = {s.label: s for s in PAPER_SUITE}
        assert by_label["M1"].name == "carabiner"
        assert by_label["M1"].paper_vertices == 328082
        assert by_label["M6"].paper_triangles == 783040
