"""Unit tests for point-set generation."""

import numpy as np
import pytest

from repro.meshgen.geometry import circle_ring, distance_to_rings, points_in_rings
from repro.meshgen.points import boundary_points, halton, interior_points, jittered_grid


class TestHalton:
    def test_values_in_unit_interval(self):
        h = halton(100, 2)
        assert (h >= 0).all() and (h < 1).all()

    def test_base2_prefix(self):
        # Van der Corput base 2: 1/2, 1/4, 3/4, 1/8, ...
        assert np.allclose(halton(4, 2), [0.5, 0.25, 0.75, 0.125])

    def test_low_discrepancy(self):
        h = np.sort(halton(256, 3))
        gaps = np.diff(h)
        assert gaps.max() < 5.0 / 256


class TestJitteredGrid:
    def test_points_within_box_margin(self, rng):
        lo, hi = np.array([0.0, 0.0]), np.array([2.0, 1.0])
        pts = jittered_grid(lo, hi, 0.1, rng, jitter=0.25)
        assert (pts[:, 0] > -0.05).all() and (pts[:, 0] < 2.05).all()

    def test_density_matches_pitch(self, rng):
        pts = jittered_grid(np.zeros(2), np.array([1.0, 1.0]), 0.1, rng)
        assert abs(len(pts) - 100) <= 20

    def test_row_major_scan_order(self, rng):
        pts = jittered_grid(np.zeros(2), np.array([1.0, 1.0]), 0.2, rng, jitter=0.0)
        # With zero jitter, y is non-decreasing in emission order.
        assert (np.diff(pts[:, 1]) >= -1e-12).all()

    def test_empty_when_box_too_small(self, rng):
        pts = jittered_grid(np.zeros(2), np.array([0.01, 0.01]), 0.1, rng)
        assert pts.size == 0


class TestBoundaryPoints:
    def test_points_on_each_ring(self):
        rings = [circle_ring((0, 0), 2.0), circle_ring((0, 0), 1.0)]
        pts = boundary_points(rings, 0.2)
        r = np.linalg.norm(pts, axis=1)
        assert ((np.abs(r - 2.0) < 0.05) | (np.abs(r - 1.0) < 0.05)).all()


class TestInteriorPoints:
    def test_all_inside_domain(self, rng):
        rings = [circle_ring((0, 0), 1.0, segments=64)]
        pts = interior_points(rings, 0.1, rng)
        assert points_in_rings(pts, rings).all()

    def test_margin_respected(self, rng):
        rings = [circle_ring((0, 0), 1.0, segments=64)]
        pts = interior_points(rings, 0.1, rng, margin=0.6)
        d = distance_to_rings(pts, rings)
        assert (d > 0.06).all()

    def test_hole_respected(self, rng):
        rings = [
            circle_ring((0, 0), 1.0, segments=64),
            circle_ring((0, 0), 0.4, segments=32),
        ]
        pts = interior_points(rings, 0.08, rng)
        r = np.linalg.norm(pts, axis=1)
        assert (r > 0.4).all()

    def test_deterministic_given_rng_seed(self):
        rings = [circle_ring((0, 0), 1.0)]
        a = interior_points(rings, 0.1, np.random.default_rng(5))
        b = interior_points(rings, 0.1, np.random.default_rng(5))
        assert np.array_equal(a, b)
