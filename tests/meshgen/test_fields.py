"""Unit tests for quality-structuring perturbation fields."""

import numpy as np
import pytest

from repro.meshgen.domains import domain_rings
from repro.meshgen.fields import (
    QUALITY_STRUCTURES,
    anti_smoothing_directions,
    apply_quality_structure,
)
from repro.meshgen import structured_rectangle
from repro.quality import global_quality, vertex_quality


@pytest.fixture
def square_setup():
    # The anti-smoothing field is proportional to a vertex's offset from
    # its neighbor centroid, so it needs a (lightly) irregular mesh —
    # on a perfect grid it vanishes, exactly like on the real jittered
    # Delaunay meshes before jittering.
    from repro.meshgen import perturb_interior

    mesh = perturb_interior(
        structured_rectangle(15, 15, name="sq"), amplitude=0.015, seed=7
    )
    rings = [np.array([[0.0, 0.0], [1.0, 0.0], [1.0, 1.0], [0.0, 1.0]])]
    return mesh, rings


class TestAntiSmoothingDirections:
    def test_zero_for_perfectly_centered_vertices(self):
        # In a right-diagonal structured grid, interior vertices are the
        # centroid of their (symmetric) neighborhoods only for the
        # 6-degree pattern; check magnitudes are small relative to pitch.
        mesh = structured_rectangle(10, 10)
        d = anti_smoothing_directions(mesh)
        assert d.shape == mesh.vertices.shape
        pitch = 1.0 / 9.0
        assert np.linalg.norm(d, axis=1).max() < pitch

    def test_opposite_of_smoothing_step(self, square_setup):
        mesh, _ = square_setup
        from repro.smoothing import smooth_iteration_jacobi

        g = mesh.adjacency
        jac = smooth_iteration_jacobi(
            mesh.vertices, g.xadj, g.adjncy, np.ones(mesh.num_vertices, bool)
        )
        anti = anti_smoothing_directions(mesh)
        # jacobi moves to the centroid; anti points away from it.
        assert np.allclose(mesh.vertices + anti, 2 * mesh.vertices - jac)


class TestApplyQualityStructure:
    @pytest.mark.parametrize("structure", QUALITY_STRUCTURES)
    def test_degrades_quality(self, square_setup, structure):
        mesh, rings = square_setup
        rng = np.random.default_rng(0)
        out = apply_quality_structure(
            mesh, rings, structure=structure, rng=rng
        )
        assert global_quality(out) < global_quality(mesh)

    def test_boundary_fixed(self, square_setup):
        mesh, rings = square_setup
        out = apply_quality_structure(mesh, rings, rng=np.random.default_rng(0))
        b = mesh.boundary_mask
        assert np.array_equal(out.vertices[b], mesh.vertices[b])

    def test_ramp_worse_near_boundary(self, square_setup):
        mesh, rings = square_setup
        out = apply_quality_structure(
            mesh, rings, structure="ramp", rng=np.random.default_rng(0)
        )
        q = vertex_quality(out)
        interior = mesh.interior_mask
        from repro.meshgen.geometry import distance_to_rings

        d = distance_to_rings(mesh.vertices, rings)
        near = interior & (d < 0.2)
        far = interior & (d > 0.35)
        assert q[near].mean() < q[far].mean()

    def test_unknown_structure_rejected(self, square_setup):
        mesh, rings = square_setup
        with pytest.raises(ValueError, match="quality structure"):
            apply_quality_structure(mesh, rings, structure="bogus")

    def test_deterministic_given_rng(self, square_setup):
        mesh, rings = square_setup
        a = apply_quality_structure(mesh, rings, rng=np.random.default_rng(9))
        b = apply_quality_structure(mesh, rings, rng=np.random.default_rng(9))
        assert np.array_equal(a.vertices, b.vertices)
