"""Unit tests for planar-geometry primitives."""

import numpy as np
import pytest

from repro.meshgen.geometry import (
    blob_ring,
    circle_ring,
    distance_to_rings,
    ensure_ccw,
    points_in_rings,
    polygon_area,
    resample_ring,
    rounded_rect_ring,
)


UNIT_SQUARE = np.array([[0.0, 0.0], [1.0, 0.0], [1.0, 1.0], [0.0, 1.0]])


class TestPolygonArea:
    def test_unit_square(self):
        assert polygon_area(UNIT_SQUARE) == pytest.approx(1.0)

    def test_clockwise_negative(self):
        assert polygon_area(UNIT_SQUARE[::-1]) == pytest.approx(-1.0)

    def test_circle_area(self):
        ring = circle_ring((0, 0), 2.0, segments=720)
        assert polygon_area(ring) == pytest.approx(np.pi * 4.0, rel=1e-3)


class TestEnsureCCW:
    def test_flips_clockwise(self):
        out = ensure_ccw(UNIT_SQUARE[::-1])
        assert polygon_area(out) > 0

    def test_keeps_ccw(self):
        out = ensure_ccw(UNIT_SQUARE)
        assert np.array_equal(out, UNIT_SQUARE)

    def test_can_request_cw(self):
        out = ensure_ccw(UNIT_SQUARE, ccw=False)
        assert polygon_area(out) < 0


class TestPointsInRings:
    def test_inside_outside_square(self):
        pts = np.array([[0.5, 0.5], [1.5, 0.5], [-0.1, 0.2], [0.99, 0.99]])
        inside = points_in_rings(pts, [UNIT_SQUARE])
        assert inside.tolist() == [True, False, False, True]

    def test_hole_via_even_odd(self):
        outer = circle_ring((0, 0), 2.0, segments=64)
        hole = circle_ring((0, 0), 1.0, segments=64)
        pts = np.array([[0.0, 0.0], [1.5, 0.0], [2.5, 0.0]])
        inside = points_in_rings(pts, [outer, hole])
        assert inside.tolist() == [False, True, False]

    def test_empty_points(self):
        assert points_in_rings(np.empty((0, 2)), [UNIT_SQUARE]).size == 0


class TestDistanceToRings:
    def test_distance_from_center_of_square(self):
        d = distance_to_rings(np.array([[0.5, 0.5]]), [UNIT_SQUARE])
        assert d[0] == pytest.approx(0.5)

    def test_distance_outside(self):
        d = distance_to_rings(np.array([[2.0, 0.5]]), [UNIT_SQUARE])
        assert d[0] == pytest.approx(1.0)

    def test_point_on_boundary(self):
        d = distance_to_rings(np.array([[0.0, 0.3]]), [UNIT_SQUARE])
        assert d[0] == pytest.approx(0.0, abs=1e-12)

    def test_multiple_rings_takes_min(self):
        hole = circle_ring((0.5, 0.5), 0.1, segments=32)
        d = distance_to_rings(np.array([[0.5, 0.35]]), [UNIT_SQUARE, hole])
        assert d[0] == pytest.approx(0.05, abs=1e-3)


class TestResampleRing:
    def test_spacing_roughly_uniform(self):
        out = resample_ring(UNIT_SQUARE, 0.1)
        closed = np.vstack([out, out[:1]])
        seg = np.linalg.norm(np.diff(closed, axis=0), axis=1)
        assert seg.max() / seg.min() < 1.5
        assert abs(seg.mean() - 0.1) < 0.02

    def test_count_scales_with_spacing(self):
        fine = resample_ring(UNIT_SQUARE, 0.05)
        coarse = resample_ring(UNIT_SQUARE, 0.2)
        assert len(fine) > 3 * len(coarse)

    def test_zero_perimeter_rejected(self):
        with pytest.raises(ValueError, match="perimeter"):
            resample_ring(np.zeros((4, 2)), 0.1)


class TestRingBuilders:
    def test_circle_ring_radius(self):
        ring = circle_ring((1.0, 2.0), 0.5, segments=100)
        r = np.linalg.norm(ring - [1.0, 2.0], axis=1)
        assert np.allclose(r, 0.5)

    def test_rounded_rect_stays_inside_bbox(self):
        ring = rounded_rect_ring((0, 0), (4, 2), radius=0.5)
        assert ring[:, 0].min() >= -1e-9 and ring[:, 0].max() <= 4 + 1e-9
        assert ring[:, 1].min() >= -1e-9 and ring[:, 1].max() <= 2 + 1e-9

    def test_rounded_rect_zero_radius_is_rectangle(self):
        ring = rounded_rect_ring((0, 0), (4, 2), radius=0.0)
        assert len(ring) == 4

    def test_rounded_rect_rejects_empty(self):
        with pytest.raises(ValueError, match="positive extent"):
            rounded_rect_ring((1, 1), (1, 2))

    def test_blob_ring_deterministic(self):
        a = blob_ring((0, 0), 1.0, seed=7)
        b = blob_ring((0, 0), 1.0, seed=7)
        assert np.array_equal(a, b)

    def test_blob_ring_seed_changes_shape(self):
        a = blob_ring((0, 0), 1.0, seed=7)
        b = blob_ring((0, 0), 1.0, seed=8)
        assert not np.allclose(a, b)

    def test_blob_ring_radius_positive(self):
        ring = blob_ring((0, 0), 1.0, seed=3, roughness=0.4)
        assert (np.linalg.norm(ring, axis=1) > 0.2).all()
