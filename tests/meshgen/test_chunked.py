"""Chunked meshgen: strip identity, on-disk round trip, refinement."""

import json

import numpy as np
import pytest

from repro.mesh import validate_mesh
from repro.meshgen import (
    iter_structured_strips,
    load_chunked_mesh,
    refined_shape,
    strip_triangles,
    structured_rectangle,
    write_structured_rectangle,
)


def legacy_connectivity(rows, cols, diagonal):
    # The historical per-cell Python loop, kept verbatim as the identity
    # reference for the vectorized construction.
    tris = []
    for r in range(rows - 1):
        for c in range(cols - 1):
            a = r * cols + c
            b = a + 1
            d = a + cols
            e = d + 1
            flip = diagonal == "alternating" and (r + c) % 2 == 1
            if not flip:
                tris.append((a, b, e))
                tris.append((a, e, d))
            else:
                tris.append((a, b, d))
                tris.append((b, e, d))
    return np.asarray(tris, dtype=np.int64)


@pytest.mark.parametrize("rows,cols", [(2, 2), (2, 7), (9, 2), (5, 4), (13, 11)])
@pytest.mark.parametrize("diagonal", ["alternating", "right"])
def test_vectorized_connectivity_matches_legacy_loop(rows, cols, diagonal):
    got = strip_triangles(0, rows - 1, cols, diagonal)
    assert np.array_equal(got, legacy_connectivity(rows, cols, diagonal))
    if rows >= 3 and cols >= 3:  # validator requires interior vertices
        assert np.array_equal(
            structured_rectangle(rows, cols, diagonal=diagonal).triangles, got
        )


def test_strips_concatenate_to_full_mesh():
    full = structured_rectangle(17, 9)
    for strip_rows in (1, 3, 16, 17, 50):
        strips = list(iter_structured_strips(17, 9, strip_rows=strip_rows))
        verts = np.concatenate([s.vertices for s in strips])
        tris = np.concatenate([s.triangles for s in strips])
        assert np.array_equal(verts, full.vertices)
        assert np.array_equal(tris, full.triangles)
        # Strips partition the vertex rows without gap or overlap.
        assert strips[0].row_start == 0
        assert strips[-1].row_end == 17
        for prev, nxt in zip(strips, strips[1:]):
            assert prev.row_end == nxt.row_start
            assert nxt.vertex_offset == nxt.row_start * 9


def test_strip_halo_is_one_row():
    for strip in iter_structured_strips(11, 6, strip_rows=4):
        if strip.triangles.size:
            assert strip.triangles.max() < (strip.row_end + 1) * 6
            assert strip.triangles.min() >= strip.row_start * 6


def test_perturbation_independent_of_strip_partition():
    def mesh_for(strip_rows):
        strips = iter_structured_strips(
            12, 8, strip_rows=strip_rows, perturb_amplitude=0.02, seed=7
        )
        return np.concatenate([s.vertices for s in strips])

    base = mesh_for(3)
    for strip_rows in (1, 5, 12, 100):
        assert np.array_equal(mesh_for(strip_rows), base)
    # Boundary stays put; interior actually moved.
    flat = structured_rectangle(12, 8).vertices
    moved = np.any(base != flat, axis=1).reshape(12, 8)
    assert not moved[0].any() and not moved[-1].any()
    assert not moved[:, 0].any() and not moved[:, -1].any()
    assert moved[1:-1, 1:-1].all()


def test_write_and_load_round_trip(tmp_path):
    out = write_structured_rectangle(
        tmp_path / "mesh", 14, 10, strip_rows=5, perturb_amplitude=0.01, seed=3
    )
    mesh = load_chunked_mesh(out)
    assert mesh.num_vertices == 140
    assert mesh.num_triangles == 2 * 13 * 9
    strips = list(
        iter_structured_strips(14, 10, strip_rows=5, perturb_amplitude=0.01, seed=3)
    )
    assert np.array_equal(
        np.asarray(mesh.vertices), np.concatenate([s.vertices for s in strips])
    )
    assert np.array_equal(
        np.asarray(mesh.triangles), np.concatenate([s.triangles for s in strips])
    )
    # The loader keeps the arrays backed by the on-disk memmap (the
    # TriMesh constructor takes a zero-copy view of it).
    assert isinstance(mesh.vertices.base, np.memmap)
    assert isinstance(mesh.triangles.base, np.memmap)
    validate_mesh(mesh)
    # Non-mmap load materializes plain arrays with identical content.
    plain = load_chunked_mesh(out, mmap=False)
    assert not isinstance(plain.vertices.base, np.memmap)
    assert np.array_equal(plain.vertices, np.asarray(mesh.vertices))

    manifest = json.loads((out / "mesh.json").read_text())
    assert manifest["num_vertices"] == 140
    assert manifest["name"] == "rect"


def test_load_rejects_missing_or_foreign_directory(tmp_path):
    with pytest.raises(FileNotFoundError):
        load_chunked_mesh(tmp_path / "nope")
    bad = tmp_path / "bad"
    bad.mkdir()
    (bad / "mesh.json").write_text(json.dumps({"format": "other"}))
    with pytest.raises(ValueError):
        load_chunked_mesh(bad)


def test_refined_shape_and_refine_axis(tmp_path):
    assert refined_shape(5, 9) == (5, 9)
    assert refined_shape(5, 9, 1) == (9, 17)
    assert refined_shape(3, 3, 3) == (17, 17)
    with pytest.raises(ValueError):
        refined_shape(1, 5)
    with pytest.raises(ValueError):
        refined_shape(5, 5, -1)
    out = write_structured_rectangle(tmp_path / "ref", 3, 4, refine=2)
    mesh = load_chunked_mesh(out)
    assert mesh.num_vertices == 9 * 13
    assert np.array_equal(
        np.asarray(mesh.triangles), structured_rectangle(9, 13).triangles
    )


def test_bad_strip_rows():
    with pytest.raises(ValueError):
        list(iter_structured_strips(4, 4, strip_rows=0))
