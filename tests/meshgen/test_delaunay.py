"""Unit tests for the Bowyer-Watson Delaunay substrate."""

import numpy as np
import pytest

from repro.meshgen import DelaunayError, delaunay, morton_order


def _circumcircle_violations(pts, tris, tol=1e-9):
    """Count (triangle, point) pairs violating the empty-circle property."""
    violations = 0
    for a, b, c in tris:
        pa, pb, pc = pts[a], pts[b], pts[c]
        for p in range(len(pts)):
            if p in (a, b, c):
                continue
            pd = pts[p]
            m = np.array(
                [
                    [pa[0] - pd[0], pa[1] - pd[1], (pa - pd) @ (pa - pd)],
                    [pb[0] - pd[0], pb[1] - pd[1], (pb - pd) @ (pb - pd)],
                    [pc[0] - pd[0], pc[1] - pd[1], (pc - pd) @ (pc - pd)],
                ]
            )
            det = np.linalg.det(m)
            # CCW triangle: det > 0 means p strictly inside.
            if det > tol * max(1.0, abs(m).max() ** 3):
                violations += 1
    return violations


class TestDelaunayBasics:
    def test_single_triangle(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0]])
        tris = delaunay(pts)
        assert len(tris) == 1
        assert sorted(tris[0]) == [0, 1, 2]

    def test_square_two_triangles(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [1.0, 1.0], [0.0, 1.01]])
        tris = delaunay(pts)
        assert len(tris) == 2

    def test_triangles_are_ccw(self, rng):
        pts = rng.random((50, 2))
        tris = delaunay(pts)
        p = pts[tris]
        areas = 0.5 * (
            (p[:, 1, 0] - p[:, 0, 0]) * (p[:, 2, 1] - p[:, 0, 1])
            - (p[:, 1, 1] - p[:, 0, 1]) * (p[:, 2, 0] - p[:, 0, 0])
        )
        assert (areas > 0).all()

    def test_empty_circumcircle_property(self, rng):
        pts = rng.random((80, 2))
        tris = delaunay(pts)
        assert _circumcircle_violations(pts, tris) == 0

    def test_euler_formula(self, rng):
        # For a triangulation of the convex hull: T = 2n - 2 - h where h
        # is the number of hull vertices (allowing for dropped hull
        # slivers, the count never exceeds the bound).
        pts = rng.random((120, 2))
        tris = delaunay(pts)
        from scipy.spatial import ConvexHull

        h = len(ConvexHull(pts).vertices)
        assert len(tris) <= 2 * len(pts) - 2 - h
        assert len(tris) >= 2 * len(pts) - 2 - h - 5  # few slivers at most

    def test_every_point_used(self, rng):
        pts = rng.random((60, 2))
        tris = delaunay(pts)
        assert set(tris.ravel().tolist()) == set(range(60))

    def test_presort_false_gives_valid_result(self, rng):
        pts = rng.random((40, 2))
        a = delaunay(pts, presort=True)
        b = delaunay(pts, presort=False)
        # Same triangulation up to ordering of the triangle list.
        canon = lambda T: set(map(tuple, np.sort(T, axis=1).tolist()))
        assert canon(a) == canon(b)


class TestDelaunayAgainstScipy:
    @pytest.mark.parametrize("seed", [0, 1, 2, 7])
    def test_edge_sets_match(self, seed):
        scipy_spatial = pytest.importorskip("scipy.spatial")
        pts = np.random.default_rng(seed).random((200, 2))
        ours = delaunay(pts)
        theirs = scipy_spatial.Delaunay(pts).simplices

        def edges(T):
            e = np.concatenate([T[:, [0, 1]], T[:, [1, 2]], T[:, [2, 0]]])
            e.sort(axis=1)
            return set(map(tuple, np.unique(e, axis=0)))

        a, b = edges(ours), edges(theirs)
        # Identical up to near-degenerate hull slivers (see module docs).
        assert len(a ^ b) <= max(2, 0.005 * len(b))
        assert a <= b or len(a - b) <= 2


class TestDelaunayErrors:
    def test_too_few_points(self):
        with pytest.raises(DelaunayError, match="three"):
            delaunay(np.array([[0.0, 0.0], [1.0, 0.0]]))

    def test_duplicate_points(self):
        with pytest.raises(DelaunayError, match="duplicate"):
            delaunay(np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 0.0], [1, 1.0]]))

    def test_coincident_points(self):
        with pytest.raises(DelaunayError):
            delaunay(np.zeros((3, 2)))

    def test_bad_shape(self):
        with pytest.raises(ValueError, match="shape"):
            delaunay(np.zeros((3, 3)))


class TestMortonOrder:
    def test_is_permutation(self, rng):
        pts = rng.random((100, 2))
        order = morton_order(pts)
        assert np.array_equal(np.sort(order), np.arange(100))

    def test_locality(self, rng):
        # Consecutive points along the Morton curve are spatially close
        # on average (much closer than random order).
        pts = rng.random((500, 2))
        order = morton_order(pts)
        sorted_pts = pts[order]
        morton_step = np.linalg.norm(np.diff(sorted_pts, axis=0), axis=1).mean()
        random_step = np.linalg.norm(np.diff(pts, axis=0), axis=1).mean()
        assert morton_step < 0.5 * random_step

    def test_empty_input(self):
        assert morton_order(np.empty((0, 2))).size == 0

    def test_identical_coordinates_ok(self):
        pts = np.array([[0.5, 0.5]] * 4)
        order = morton_order(pts)
        assert np.array_equal(np.sort(order), np.arange(4))
