"""Unit tests for trace analysis and persistence."""

import numpy as np
import pytest

from repro.core import run_ordering
from repro.memsim import (
    AccessTrace,
    MemoryLayout,
    per_array_breakdown,
    simulate_trace,
    tiny_machine,
    trace_summary,
)
from repro.smoothing import trace_for_traversal


@pytest.fixture(scope="module")
def traced_run(request):
    from repro.meshgen import generate_domain_mesh

    mesh = generate_domain_mesh("ocean", target_vertices=400, seed=1)
    return run_ordering(mesh, "rdr", fixed_iterations=1)


class TestPerArrayBreakdown:
    def test_totals_match_aggregate_simulation(self, traced_run):
        rows = per_array_breakdown(
            traced_run.trace, traced_run.layout, traced_run.machine
        )
        assert sum(r.accesses for r in rows) == len(traced_run.trace)
        assert sum(r.l1_misses for r in rows) == traced_run.cache.l1.misses
        assert sum(r.l2_misses for r in rows) == traced_run.cache.l2.misses
        assert sum(r.l3_misses for r in rows) == traced_run.cache.l3.misses

    def test_writes_only_in_coords(self, traced_run):
        rows = {r.array: r for r in per_array_breakdown(
            traced_run.trace, traced_run.layout, traced_run.machine
        )}
        assert rows["coords"].writes > 0
        for name in ("flags", "xadj", "adjncy"):
            assert rows[name].writes == 0

    def test_miss_rate_property(self, traced_run):
        rows = per_array_breakdown(
            traced_run.trace, traced_run.layout, traced_run.machine
        )
        for r in rows:
            assert 0.0 <= r.l1_miss_rate <= 1.0
            assert set(r.as_row()) >= {"array", "accesses", "L1_misses"}

    def test_empty_arrays_skipped(self, traced_run):
        rows = per_array_breakdown(
            traced_run.trace, traced_run.layout, traced_run.machine
        )
        names = {r.array for r in rows}
        assert "quality" not in names  # smoother never touches it


class TestTraceSummary:
    def test_fields(self, traced_run):
        s = trace_summary(traced_run.trace, traced_run.layout)
        assert s["length"] == len(traced_run.trace)
        assert s["iterations"] == 1
        assert s["writes"] > 0
        assert 0 < s["cold_fraction"] < 1
        assert s["distinct_elements"] >= s["distinct_lines"]
        assert sum(s["per_array"].values()) == s["length"]


class TestTracePersistence:
    def test_roundtrip(self, traced_run, tmp_path):
        path = traced_run.trace.save_npz(tmp_path / "trace.npz")
        back = AccessTrace.load_npz(path)
        assert np.array_equal(back.array_ids, traced_run.trace.array_ids)
        assert np.array_equal(back.indices, traced_run.trace.indices)
        assert np.array_equal(back.is_write, traced_run.trace.is_write)
        assert np.array_equal(
            back.iteration_starts, traced_run.trace.iteration_starts
        )
        assert back.meta["mesh"] == traced_run.trace.meta["mesh"]

    def test_suffix_appended(self, traced_run, tmp_path):
        path = traced_run.trace.save_npz(tmp_path / "noext")
        assert path.suffix == ".npz"
        assert path.exists()


class TestReplacementPolicies:
    def test_policies_change_miss_counts(self, rng):
        stream = np.tile(np.arange(200), 5)
        lru = simulate_trace(stream, tiny_machine(), policy="lru")
        fifo = simulate_trace(stream, tiny_machine(), policy="fifo")
        rnd = simulate_trace(stream, tiny_machine(), policy="random")
        counts = {lru.l1.misses, fifo.l1.misses, rnd.l1.misses}
        assert len(counts) >= 2  # at least one policy differs

    def test_random_policy_deterministic(self, rng):
        stream = rng.integers(0, 300, 1000)
        a = simulate_trace(stream, tiny_machine(), policy="random")
        b = simulate_trace(stream, tiny_machine(), policy="random")
        assert a.l1.misses == b.l1.misses

    def test_unknown_policy_rejected(self):
        from repro.memsim import CacheSpec, LRUCache

        with pytest.raises(ValueError, match="policy"):
            LRUCache(CacheSpec("c", 4 * 64, 4, 1.0, 64), policy="plru")

    def test_fifo_does_not_refresh_on_hit(self):
        from repro.memsim import CacheSpec, LRUCache

        c = LRUCache(CacheSpec("c", 2 * 64, 2, 1.0, 64), policy="fifo")
        c.access(0)
        c.access(2)
        c.access(0)  # hit: must NOT refresh under FIFO
        _, ev = c.access(4)
        assert ev == 0  # oldest insertion evicted despite the recent hit
