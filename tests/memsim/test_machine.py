"""Unit tests for machine descriptions."""

import pytest

from repro.memsim import CacheSpec, calibrated_machine, tiny_machine, westmere_ex


class TestWestmereEx:
    def test_paper_geometry(self):
        m = westmere_ex()
        assert m.l1.size_bytes == 32 * 1024
        assert m.l2.size_bytes == 256 * 1024
        assert m.l3.size_bytes == 24 * 1024 * 1024
        assert m.cores_per_socket == 8
        assert m.num_sockets == 4
        assert m.num_cores == 32
        assert m.line_size == 64

    def test_paper_latencies(self):
        m = westmere_ex()
        assert m.l1.latency_cycles == 4.0
        assert m.l2.latency_cycles == 10.0
        assert m.l3.latency_cycles == 38.0
        assert m.memory_latency_cycles == 175.0

    def test_scaling_shrinks_caches(self):
        m = westmere_ex(scale=0.01)
        assert m.l1.size_bytes < 32 * 1024
        assert m.l2.size_bytes < 256 * 1024
        # Sizes remain legal (line * ways multiples).
        for spec in m.levels():
            assert spec.size_bytes % (spec.line_size * spec.associativity) == 0

    def test_num_sets(self):
        m = westmere_ex()
        assert m.l1.num_lines == 512
        assert m.l1.num_sets == 64


class TestCalibratedMachine:
    def test_serial_profile_l3_exceeds_footprint(self):
        fp = 1_000_000
        m = calibrated_machine(fp, profile="serial")
        assert m.l3.size_bytes >= fp
        assert m.l2.size_bytes < fp
        assert m.l1.num_lines == 64

    def test_scaling_profile_l3_below_footprint(self):
        fp = 1_000_000
        m = calibrated_machine(fp, profile="scaling")
        assert m.l3.size_bytes < fp
        assert m.l2.size_bytes <= fp // 32

    def test_levels_nested(self):
        for profile in ("serial", "scaling"):
            m = calibrated_machine(500_000, profile=profile)
            assert m.l1.size_bytes < m.l2.size_bytes < m.l3.size_bytes

    def test_tiny_footprint_floors(self):
        m = calibrated_machine(1024)
        assert m.l1.size_bytes <= m.l2.size_bytes <= m.l3.size_bytes

    def test_rejects_bad_profile(self):
        with pytest.raises(ValueError, match="profile"):
            calibrated_machine(1000, profile="warp")

    def test_rejects_bad_footprint(self):
        with pytest.raises(ValueError, match="positive"):
            calibrated_machine(0)


class TestTinyMachine:
    def test_valid_and_small(self):
        m = tiny_machine()
        assert m.l1.num_lines == 8
        assert m.num_cores == 4


class TestCacheSpecValidation:
    def test_size_multiple_of_ways(self):
        with pytest.raises(ValueError):
            CacheSpec("x", 64 * 3, 2, 1.0, 64)


class TestGpuGenericProfile:
    def test_coalescing_line_size(self):
        from repro.memsim import profile_line_size

        assert profile_line_size("gpu-generic") == 128
        assert profile_line_size("serial") == 64
        assert profile_line_size("scaling") == 64

    def test_geometry_and_latencies(self):
        fp = 1_000_000
        m = calibrated_machine(fp, profile="gpu-generic")
        assert m.line_size == 128
        assert m.l1.size_bytes == 48 * 1024  # shared-memory-sized
        assert m.l1.associativity == 32
        # Sizes are rounded to line*ways allocation units.
        unit = 128 * 16
        assert m.l2.size_bytes >= int(0.25 * fp) - unit
        assert m.l3.size_bytes >= int(1.05 * fp) - unit
        assert m.memory_latency_cycles == 480.0
        assert m.remote_l3_extra_cycles == 0.0
        assert m.num_sockets == 1
        assert m.cores_per_socket == 32
        assert "gpu-generic" in m.name

    def test_levels_nested(self):
        m = calibrated_machine(500_000, profile="gpu-generic")
        assert m.l1.size_bytes < m.l2.size_bytes < m.l3.size_bytes


class TestResolveMachine:
    def test_spec_and_none_pass_through(self):
        from repro.memsim import resolve_machine

        m = tiny_machine()
        assert resolve_machine(m) is m
        assert resolve_machine(None) is None

    def test_string_profile_warns_and_calibrates(self):
        from repro.memsim import resolve_machine

        with pytest.warns(DeprecationWarning, match="deprecated"):
            m = resolve_machine("serial", footprint_bytes=1_000_000)
        assert m.l3.size_bytes >= 1_000_000

    def test_unknown_profile_raises_unknown_name(self):
        from repro.config import UnknownNameError
        from repro.memsim import resolve_machine

        with pytest.warns(DeprecationWarning):
            with pytest.raises(UnknownNameError, match="warp"):
                resolve_machine("warp", footprint_bytes=1000)

    def test_string_without_footprint_is_type_error(self):
        from repro.memsim import resolve_machine

        with pytest.warns(DeprecationWarning):
            with pytest.raises(TypeError, match="footprint"):
                resolve_machine("serial")

    def test_non_machine_non_string_is_type_error(self):
        from repro.memsim import resolve_machine

        with pytest.raises(TypeError, match="MachineSpec"):
            resolve_machine(42)

    def test_simulate_trace_accepts_profile_string(self):
        import numpy as np

        from repro.memsim import simulate_trace

        lines = np.arange(32, dtype=np.int64)
        with pytest.warns(DeprecationWarning):
            stats = simulate_trace(lines, "serial")
        assert stats.l1.accesses == 32
