"""Golden-trace regression suite.

Recomputes the three pinned configurations from
``tests/fixtures/generate_golden.py`` and compares every observable of
the trace -> layout -> cache -> timing chain against the committed
fixtures. Integer artifacts (trace columns, line streams, reuse
distances, per-level access/hit counters) must match exactly; modeled
cycles at ``rtol=1e-12``. A failure here means behavior drifted — if
the change is intentional, regenerate the fixtures with the committed
script and review the diff.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import numpy as np
import pytest

# The drift detectors double as the quick smoke subset (-m fast).
pytestmark = pytest.mark.fast

FIXTURES = Path(__file__).resolve().parents[1] / "fixtures"
sys.path.insert(0, str(FIXTURES))

from generate_golden import FIXTURE_DIR, compute_golden, golden_configs  # noqa: E402

CONFIGS = golden_configs()


@pytest.fixture(scope="module")
def golden_stats() -> dict:
    return json.loads((FIXTURE_DIR / "golden_stats.json").read_text())


@pytest.mark.parametrize("name", sorted(CONFIGS))
def test_golden_trace_matches(name, golden_stats):
    arrays, scalars = compute_golden(name, CONFIGS[name])

    with np.load(FIXTURE_DIR / f"{name}.npz") as fixture:
        assert set(fixture.files) == set(arrays)
        for key in fixture.files:
            got, want = arrays[key], fixture[key]
            assert got.dtype == want.dtype, f"{name}/{key} dtype drifted"
            assert np.array_equal(got, want), f"{name}/{key} drifted"

    want = golden_stats[name]
    assert scalars["mesh"] == want["mesh"]
    assert scalars["num_vertices"] == want["num_vertices"]
    assert scalars["iterations"] == want["iterations"]
    assert scalars["num_events"] == want["num_events"]
    assert scalars["levels"] == want["levels"]
    for field, value in want["cost"].items():
        got_value = scalars["cost"][field]
        if isinstance(value, int):
            assert got_value == value, f"{name}/cost.{field} drifted"
        else:
            assert got_value == pytest.approx(value, rel=1e-12), (
                f"{name}/cost.{field} drifted"
            )


def test_fixture_files_present():
    """Every pinned configuration has its committed artifact."""
    for name in CONFIGS:
        assert (FIXTURE_DIR / f"{name}.npz").is_file()
    assert (FIXTURE_DIR / "golden_stats.json").is_file()
