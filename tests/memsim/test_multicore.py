"""Unit tests for the multicore (shared-L3) simulator."""

import numpy as np
import pytest

from repro.memsim import (
    affinity_sockets,
    simulate_multicore,
    simulate_trace,
    tiny_machine,
)


class TestAffinity:
    def test_compact_fills_sockets_in_order(self):
        m = tiny_machine()  # 2 cores/socket, 2 sockets
        assert affinity_sockets(4, m, "compact").tolist() == [0, 0, 1, 1]
        assert affinity_sockets(3, m, "compact").tolist() == [0, 0, 1]

    def test_scatter_round_robins(self):
        m = tiny_machine()
        assert affinity_sockets(4, m, "scatter").tolist() == [0, 1, 0, 1]
        assert affinity_sockets(2, m, "scatter").tolist() == [0, 1]

    def test_rejects_too_many_cores(self):
        with pytest.raises(ValueError, match="1\\.\\."):
            affinity_sockets(5, tiny_machine())

    def test_rejects_unknown_policy(self):
        with pytest.raises(ValueError, match="policy"):
            affinity_sockets(2, tiny_machine(), "diagonal")


class TestSimulateMulticore:
    def test_single_core_matches_serial_simulation(self, rng):
        m = tiny_machine()
        stream = rng.integers(0, 200, 600)
        mc = simulate_multicore([stream], m)
        serial = simulate_trace(stream, m)
        assert mc.per_core[0].stats.l1.hits == serial.l1.hits
        assert mc.per_core[0].stats.l3.misses == serial.l3.misses

    def test_result_bookkeeping(self, rng):
        m = tiny_machine()
        streams = [rng.integers(0, 100, 200) for _ in range(3)]
        mc = simulate_multicore(streams, m)
        assert mc.num_cores == 3
        assert mc.total_accesses == 600
        assert mc.combined.l1.accesses == 600
        counts = mc.access_counts()
        assert counts["L2"] == mc.combined.l2.accesses
        assert counts["memory"] == mc.combined.l3.misses

    def test_critical_path_time(self, rng):
        m = tiny_machine()
        small = rng.integers(0, 10, 10)
        big = rng.integers(0, 400, 2000)
        mc = simulate_multicore([small, big], m, affinity="scatter")
        times = [c.cost.seconds(m) for c in mc.per_core]
        assert mc.modeled_seconds == max(times)

    def test_shared_l3_contention(self, rng):
        """Two cores on ONE socket thrash a shared L3 that either core
        alone would fit in; the same cores on separate sockets do not."""
        m = tiny_machine()  # L3: 128 lines per socket
        # Each core cycles through 100 distinct lines (fits alone, 200
        # lines together overflow the shared L3).
        s1 = np.tile(np.arange(100), 8)
        s2 = np.tile(np.arange(1000, 1100), 8)
        together = simulate_multicore([s1, s2], m, affinity="compact")
        apart = simulate_multicore([s1, s2], m, affinity="scatter")
        assert (
            together.combined.l3.misses > apart.combined.l3.misses
        )

    def test_aggregate_cache_reduces_memory_traffic(self, rng):
        """Splitting one working set across sockets reduces off-chip
        accesses — the mechanism behind the paper's Figure 11."""
        m = tiny_machine()
        stream = np.tile(np.arange(240), 6)  # > one L3 (128 lines)
        one_core = simulate_multicore([stream], m)
        halves = [stream[stream < 120], stream[stream >= 120]]
        two_sockets = simulate_multicore(halves, m, affinity="scatter")
        assert (
            two_sockets.combined.l3.misses < one_core.combined.l3.misses
        )

    def test_empty_stream_core(self):
        m = tiny_machine()
        mc = simulate_multicore([np.array([1, 2, 3]), np.array([], dtype=int)], m)
        assert mc.per_core[1].cost.num_accesses == 0
