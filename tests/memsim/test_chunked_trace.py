"""Chunked / memory-mapped trace persistence."""

import numpy as np
import pytest

from repro.memsim import AccessTrace, ChunkedTrace, ChunkedTraceWriter


def make_trace(n, iterations=(0,), seed=0, meta=None):
    rng = np.random.default_rng(seed)
    return AccessTrace(
        rng.integers(0, 5, size=n).astype(np.uint8),
        rng.integers(0, 1000, size=n),
        rng.random(n) < 0.3,
        iteration_starts=np.asarray(iterations, dtype=np.int64),
        meta=meta or {},
    )


def assert_traces_equal(a, b, *, iteration_starts=True):
    assert np.array_equal(a.array_ids, b.array_ids)
    assert np.array_equal(a.indices, b.indices)
    assert np.array_equal(a.is_write, b.is_write)
    if iteration_starts:
        assert np.array_equal(a.iteration_starts, b.iteration_starts)


class TestMmapLoad:
    def test_uncompressed_round_trip_mmap(self, tmp_path):
        trace = make_trace(123, iterations=(0, 40, 77), meta={"mesh": "m"})
        written = trace.save_npz(tmp_path / "t", compress=False)
        assert written.name == "t.npz"
        loaded = AccessTrace.load_npz(written, mmap_mode="r")
        assert_traces_equal(loaded, trace)
        assert loaded.meta == {"mesh": "m"}
        # Columns are zero-copy views of the shared mapping.
        assert loaded.indices.base is not None
        assert not loaded.indices.flags.writeable

    def test_suffix_normalization_with_mmap(self, tmp_path):
        trace = make_trace(9)
        written = trace.save_npz(tmp_path / "odd.", compress=False)
        assert_traces_equal(AccessTrace.load_npz(written, mmap_mode="r"), trace)

    def test_compressed_round_trip_still_works(self, tmp_path):
        trace = make_trace(50, meta={"k": 1})
        written = trace.save_npz(tmp_path / "c", compress=True)
        loaded = AccessTrace.load_npz(written)
        assert_traces_equal(loaded, trace)
        assert loaded.meta == {"k": 1}

    def test_mmap_of_compressed_archive_rejected(self, tmp_path):
        written = make_trace(50).save_npz(tmp_path / "c", compress=True)
        with pytest.raises(ValueError, match="compress=False"):
            AccessTrace.load_npz(written, mmap_mode="r")

    def test_only_read_mode_supported(self, tmp_path):
        written = make_trace(5).save_npz(tmp_path / "t", compress=False)
        with pytest.raises(ValueError, match="mmap_mode"):
            AccessTrace.load_npz(written, mmap_mode="r+")


class TestChunkedRoundTrip:
    @pytest.mark.parametrize("window", [1, 7, 100, 1000])
    def test_save_open_round_trip(self, tmp_path, window):
        trace = make_trace(100, iterations=(0, 33, 66), meta={"mesh": "m"})
        out = trace.save_chunked(tmp_path / "chunks", window_events=window)
        chunked = AccessTrace.open_chunked(out)
        assert len(chunked) == 100
        assert chunked.window_events == window
        assert chunked.num_windows == -(-100 // window)
        assert chunked.meta == {"mesh": "m"}
        assert_traces_equal(chunked.to_trace(), trace)

    def test_window_contents_and_bounds(self, tmp_path):
        trace = make_trace(25)
        chunked = AccessTrace.open_chunked(
            trace.save_chunked(tmp_path / "c", window_events=10)
        )
        assert chunked.window_bounds(2) == (20, 25)
        total = 0
        for k, win in enumerate(chunked.iter_windows()):
            lo, hi = chunked.window_bounds(k)
            assert_traces_equal(
                win, trace.slice(lo, hi), iteration_starts=False
            )
            assert win.meta["window"] == k and win.meta["offset"] == lo
            total += len(win)
        assert total == 25
        with pytest.raises(IndexError):
            chunked.window(3)

    def test_iteration_reassembly_across_windows(self, tmp_path):
        trace = make_trace(60, iterations=(0, 17, 45))
        chunked = AccessTrace.open_chunked(
            trace.save_chunked(tmp_path / "c", window_events=8)
        )
        assert chunked.num_iterations == 3
        for k in range(3):
            assert_traces_equal(
                chunked.iteration(k), trace.iteration(k),
                iteration_starts=False,
            )
        with pytest.raises(IndexError):
            chunked.iteration(3)

    def test_empty_trace(self, tmp_path):
        empty = AccessTrace(
            np.empty(0, dtype=np.uint8),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=bool),
        )
        chunked = AccessTrace.open_chunked(
            empty.save_chunked(tmp_path / "e", window_events=4)
        )
        assert len(chunked) == 0 and chunked.num_windows == 0
        assert len(chunked.to_trace()) == 0

    def test_writer_incremental_flush_bounded(self, tmp_path):
        with ChunkedTraceWriter(tmp_path / "w", window_events=16) as writer:
            writer.begin_iteration()
            for burst in range(10):
                n = 7
                writer.append_columns(
                    np.full(n, burst % 5, dtype=np.uint8),
                    np.arange(n, dtype=np.int64),
                    np.zeros(n, dtype=bool),
                )
                # Buffer never holds a full window after an append.
                assert writer._buffered < 16
            writer.set_meta(source="unit")
        chunked = ChunkedTrace.open(tmp_path / "w")
        assert len(chunked) == 70
        assert chunked.num_windows == 5
        assert chunked.meta["source"] == "unit"

    def test_open_rejects_missing_or_foreign(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            ChunkedTrace.open(tmp_path / "nope")
        bad = tmp_path / "bad"
        bad.mkdir()
        (bad / "trace.json").write_text('{"format": "other"}')
        with pytest.raises(ValueError):
            ChunkedTrace.open(bad)

    def test_bad_window_events(self, tmp_path):
        with pytest.raises(ValueError):
            ChunkedTraceWriter(tmp_path / "w", window_events=0)
