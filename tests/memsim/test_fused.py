"""Fused-vs-materialized differential suite.

The fused trace pipeline's contract is *bit-for-bit exactness*: a
smoother emitting bounded windows through :class:`FusedSink` into
:class:`FusedAnalysis` must reproduce the materialized path's per-level
cache counts, reuse profiles (global and per-iteration) and bucketed
series exactly — any window size, either sim engine, every registered
machine profile, threaded or synchronous handoff. The streaming suites
(``test_streaming.py``) pin each consumer engine individually; this
suite pins the *composition* the fused pipeline actually runs, the
double-buffer handoff included, plus the partially-fused multicore
path and the pipeline-level ``trace_mode`` routing.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import RunConfig, UnknownNameError
from repro.core.pipeline import run_ordering, run_parallel_ordering
from repro.memsim import (
    FusedAnalysis,
    FusedSink,
    LineSink,
    MaterializeSink,
    MemoryLayout,
    SpillSink,
    bucketed_series,
    calibrated_machine,
    replay_trace,
    reuse_distances,
    simulate_trace,
    tiny_machine,
)
from repro.meshgen import structured_rectangle
from repro.smoothing.trace import (
    append_smooth_accesses_batch,
    iter_traversal_chunks,
    trace_for_traversal,
)

ITERATIONS = 2


def machines():
    yield "tiny", tiny_machine()
    # Every registered calibration profile (MACHINE_PROFILES).
    yield "cal-serial", calibrated_machine(1 << 14, profile="serial")
    yield "cal-scaling", calibrated_machine(1 << 14, profile="scaling")


def stats_tuple(stats):
    return tuple((level.accesses, level.hits) for level in stats.levels())


def windows_for(n):
    #: The adversarial window sizes of the design: single-event, prime,
    #: exactly the stream, larger than the stream.
    return sorted({1, 13, max(n, 1), n + 7})


@pytest.fixture(scope="module")
def mesh():
    return structured_rectangle(9, 9, name="fused-mesh")


@pytest.fixture(scope="module")
def materialized(mesh):
    """The ground truth: the full in-memory trace and its line stream."""
    seq = mesh.interior_vertices()
    trace = trace_for_traversal(mesh, [seq] * ITERATIONS)
    layout = MemoryLayout.for_mesh(mesh)
    return mesh, trace, layout, layout.lines(trace)


def produce_through_sink(sink, mesh):
    """Emit exactly what the instrumented smoother emits: one
    ``begin_iteration`` per sweep, bursts capped at the sink's ask."""
    g = mesh.adjacency
    seq = mesh.interior_vertices()
    burst = sink.burst_events
    for _ in range(ITERATIONS):
        sink.begin_iteration()
        if burst is None:
            append_smooth_accesses_batch(sink, g.xadj, g.adjncy, seq)
        else:
            for chunk in iter_traversal_chunks(g.xadj, seq, burst):
                append_smooth_accesses_batch(sink, g.xadj, g.adjncy, chunk)
    return sink.close()


class TestFusedExactness:
    @pytest.mark.parametrize("machine_name,machine", list(machines()))
    @pytest.mark.parametrize("sim_engine", ["reference", "batched"])
    def test_matches_materialized(
        self, materialized, machine_name, machine, sim_engine
    ):
        mesh, trace, layout, lines = materialized
        want_stats = stats_tuple(
            simulate_trace(
                lines, machine, config=RunConfig(sim_engine=sim_engine)
            )
        )
        distances = reuse_distances(lines)
        want_bucketed = bucketed_series(distances)
        want_profile = [
            np.array(
                sorted(
                    reuse_distances(layout.lines(trace.iteration(k)))
                )
            )
            for k in range(ITERATIONS)
        ]
        for window in windows_for(len(trace)):
            analysis = FusedAnalysis(
                layout,
                machine,
                sim_engine=sim_engine,
                total_events=len(trace),
            )
            sink = FusedSink(analysis, window_events=window)
            assert produce_through_sink(sink, mesh) is analysis
            label = f"{machine_name}/{sim_engine} window {window}"
            assert stats_tuple(analysis.stats) == want_stats, label
            assert analysis.reuse.num_accesses == len(trace)
            # Profiles: global and per-iteration, bit-identical rows.
            assert (
                analysis.reuse_profile(iteration=None).as_row()
                == profile_row_from(distances)
            ), label
            for k in range(ITERATIONS):
                got = analysis.reuse_profile(iteration=k)
                want = profile_row_from(want_profile[k])
                assert got.as_row() == want, (label, k)
            got_c, got_m = analysis.bucketed_series()
            assert np.array_equal(got_c, want_bucketed[0]), label
            assert np.array_equal(got_m, want_bucketed[1], equal_nan=True)

    def test_threaded_matches_synchronous(self, materialized):
        mesh, trace, layout, lines = materialized
        machine = tiny_machine()
        results = []
        for overlap in (True, False):
            analysis = FusedAnalysis(
                layout, machine, total_events=len(trace)
            )
            sink = FusedSink(analysis, window_events=97, overlap=overlap)
            produce_through_sink(sink, mesh)
            results.append(
                (
                    stats_tuple(analysis.stats),
                    analysis.reuse_profile(iteration=None).as_row(),
                    analysis.bucketed_series(),
                )
            )
        assert results[0][0] == results[1][0]
        assert results[0][1] == results[1][1]
        assert np.array_equal(results[0][2][0], results[1][2][0])
        assert np.array_equal(results[0][2][1], results[1][2][1])

    def test_replay_trace_matches_live_production(self, materialized):
        # Replaying the materialized trace through the same consumer
        # must equal feeding it live — the spill-mode simulate path.
        mesh, trace, layout, lines = materialized
        machine = tiny_machine()
        want = simulate_trace(lines, machine)
        for window in windows_for(len(trace)):
            analysis = FusedAnalysis(layout, machine, total_events=len(trace))
            replay_trace(analysis, trace, window_events=window)
            assert stats_tuple(analysis.stats) == stats_tuple(want)
            assert analysis.reuse_profile(iteration=None).as_row() == (
                profile_row_from(reuse_distances(lines))
            )

    def test_materialize_sink_round_trip(self, materialized):
        mesh, trace, layout, lines = materialized
        got = produce_through_sink(MaterializeSink(), mesh)
        assert np.array_equal(got.array_ids, trace.array_ids)
        assert np.array_equal(got.indices, trace.indices)
        assert np.array_equal(got.is_write, trace.is_write)
        assert np.array_equal(got.iteration_starts, trace.iteration_starts)

    def test_spill_sink_round_trip(self, materialized, tmp_path):
        mesh, trace, layout, lines = materialized
        sink = SpillSink(tmp_path / "spill", window_events=61)
        chunked_dir = produce_through_sink(sink, mesh)
        got = sink.open().to_trace()
        assert chunked_dir == tmp_path / "spill"
        assert np.array_equal(got.array_ids, trace.array_ids)
        assert np.array_equal(got.indices, trace.indices)
        assert np.array_equal(got.is_write, trace.is_write)
        assert np.array_equal(got.iteration_starts, trace.iteration_starts)

    def test_line_sink_matches_layout_translation(self, materialized):
        mesh, trace, layout, lines = materialized
        got = produce_through_sink(LineSink(layout), mesh)
        assert np.array_equal(got, lines)


def profile_row_from(distances):
    from repro.memsim import profile_from_distances

    return profile_from_distances(np.asarray(distances)).as_row()


class RecordingConsumer:
    """Window spy: records the stream and audits the two-slot bound."""

    def __init__(self, delay_s: float = 0.0):
        self.windows: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        self.marks: list[int] = []  # event offsets of begin_iteration
        self.events = 0
        self.delay_s = delay_s

    def begin_iteration(self):
        self.marks.append(self.events)

    def consume_window(self, ids, idx, wr):
        if self.delay_s:
            import time

            time.sleep(self.delay_s)
        self.windows.append((ids.copy(), idx.copy(), wr.copy()))
        self.events += ids.size


class TestTwoSlotBound:
    @pytest.mark.parametrize("delay_s", [0.0, 0.002])
    def test_peak_buffered_never_exceeds_two_windows(
        self, materialized, delay_s
    ):
        # A slow consumer forces the producer to actually race ahead
        # and block on the joined queue; the audit counters must still
        # show at most two windows (one filling + one simulating).
        mesh, trace, layout, lines = materialized
        window = 97
        spy = RecordingConsumer(delay_s=delay_s)
        sink = FusedSink(spy, window_events=window)
        produce_through_sink(sink, mesh)
        assert sink.peak_buffered_windows <= 2
        assert sink.peak_buffered_events <= 2 * window
        assert sink.windows_emitted == len(spy.windows)
        assert sink.events == len(trace)
        if delay_s:
            assert sink.producer_wait_s > 0.0
        # Stream order and content are exactly the produced trace.
        ids = np.concatenate([w[0] for w in spy.windows])
        idx = np.concatenate([w[1] for w in spy.windows])
        wr = np.concatenate([w[2] for w in spy.windows])
        assert np.array_equal(ids, trace.array_ids)
        assert np.array_equal(idx, trace.indices)
        assert np.array_equal(wr, trace.is_write)
        assert spy.marks == list(trace.iteration_starts)

    def test_every_interior_window_is_full(self, materialized):
        # Windows only flush early at iteration marks, so between marks
        # each emitted window except the last is exactly window_events.
        mesh, trace, layout, lines = materialized
        spy = RecordingConsumer()
        sink = FusedSink(spy, window_events=64)
        produce_through_sink(sink, mesh)
        sizes = [w[0].size for w in spy.windows]
        boundary = set(spy.marks) | {len(trace)}
        pos = 0
        for size in sizes:
            pos += size
            assert size == 64 or pos in boundary

    def test_consumer_error_propagates_to_producer(self):
        class Exploding:
            def begin_iteration(self):
                pass

            def consume_window(self, ids, idx, wr):
                raise ValueError("boom")

        sink = FusedSink(Exploding(), window_events=4)
        with pytest.raises(RuntimeError, match="fused trace consumer"):
            sink.append_columns(
                np.zeros(64, dtype=np.uint8),
                np.zeros(64, dtype=np.int64),
                np.zeros(64, dtype=bool),
            )
            sink.close()

    def test_bad_window_size_rejected(self):
        with pytest.raises(ValueError, match="window_events"):
            FusedSink(RecordingConsumer(), window_events=0)


class TestPipelineRouting:
    @pytest.fixture(scope="class")
    def pipeline_mesh(self):
        return structured_rectangle(10, 10, name="fused-pipeline-mesh")

    @pytest.fixture(scope="class")
    def baseline(self, pipeline_mesh):
        return run_ordering(
            pipeline_mesh,
            "rdr",
            machine=tiny_machine(),
            fixed_iterations=ITERATIONS,
        )

    @pytest.mark.parametrize("window", [None, 1, 13, 1 << 20])
    def test_fused_run_matches_materialized(
        self, pipeline_mesh, baseline, window
    ):
        run = run_ordering(
            pipeline_mesh,
            "rdr",
            config=RunConfig(
                trace_mode="fused", stream_window_events=window
            ),
            machine=tiny_machine(),
            fixed_iterations=ITERATIONS,
        )
        assert stats_tuple(run.cache) == stats_tuple(baseline.cache)
        assert run.reuse_profile().as_row() == (
            baseline.reuse_profile().as_row()
        )
        assert run.reuse_profile(iteration=None).as_row() == (
            baseline.reuse_profile(iteration=None).as_row()
        )
        want_c, want_m = bucketed_series(baseline.distances)
        got_c, got_m = run.fused.bucketed_series()
        assert np.array_equal(got_c, want_c)
        assert np.array_equal(got_m, want_m, equal_nan=True)
        assert run.modeled_seconds == baseline.modeled_seconds
        with pytest.raises(RuntimeError, match="trace_mode"):
            run.trace
        with pytest.raises(RuntimeError, match="trace_mode"):
            run.distances

    def test_summary_only_auto_fuses(self, pipeline_mesh, baseline):
        run = run_ordering(
            pipeline_mesh,
            "rdr",
            machine=tiny_machine(),
            fixed_iterations=ITERATIONS,
            summary_only=True,
        )
        assert run.trace_mode == "fused"
        assert run.fused is not None
        # Cache counts and modeled cost survive the minimal analysis...
        assert stats_tuple(run.cache) == stats_tuple(baseline.cache)
        assert run.modeled_seconds == baseline.modeled_seconds
        # ...but the reuse analyses are skipped wholesale, and say so.
        with pytest.raises(RuntimeError, match="summary_only"):
            run.reuse_profile()
        assert run.fused.reuse is None
        assert run.fused.bucketed is None
        assert run.fused.iteration_reuse == []

    def test_explicit_fused_keeps_full_analysis_under_summary_only(
        self, pipeline_mesh, baseline
    ):
        # summary_only only *upgrades* materialize; an explicit fused
        # request stays minimal too (the flag describes what the caller
        # needs, not which mode they came in on).
        run = run_ordering(
            pipeline_mesh,
            "rdr",
            config=RunConfig(trace_mode="fused"),
            machine=tiny_machine(),
            fixed_iterations=ITERATIONS,
            summary_only=True,
        )
        assert run.fused.reuse is None
        assert stats_tuple(run.cache) == stats_tuple(baseline.cache)

    def test_spill_run_matches_and_persists(
        self, pipeline_mesh, baseline, tmp_path
    ):
        run = run_ordering(
            pipeline_mesh,
            "rdr",
            config=RunConfig(trace_mode="spill", stream_window_events=101),
            machine=tiny_machine(),
            fixed_iterations=ITERATIONS,
            trace_dir=tmp_path / "trace",
        )
        assert stats_tuple(run.cache) == stats_tuple(baseline.cache)
        assert run.reuse_profile().as_row() == (
            baseline.reuse_profile().as_row()
        )
        from repro.memsim import AccessTrace

        got = AccessTrace.open_chunked(run.trace_dir).to_trace()
        assert np.array_equal(got.array_ids, baseline.trace.array_ids)
        assert np.array_equal(got.indices, baseline.trace.indices)
        assert np.array_equal(got.is_write, baseline.trace.is_write)
        assert np.array_equal(
            got.iteration_starts, baseline.trace.iteration_starts
        )

    def test_spill_requires_trace_dir(self, pipeline_mesh):
        with pytest.raises(ValueError, match="trace_dir"):
            run_ordering(
                pipeline_mesh,
                "rdr",
                config=RunConfig(trace_mode="spill"),
                machine=tiny_machine(),
                fixed_iterations=ITERATIONS,
            )

    def test_unknown_trace_mode_rejected(self):
        with pytest.raises(UnknownNameError):
            RunConfig(trace_mode="nope").validate()

    @pytest.mark.parametrize("affinity", ["compact", "scatter"])
    def test_multicore_fused_matches_materialized(
        self, pipeline_mesh, affinity
    ):
        kwargs = dict(
            machine=tiny_machine(), iterations=ITERATIONS, affinity=affinity
        )
        want = run_parallel_ordering(pipeline_mesh, "rdr", 2, **kwargs)
        got = run_parallel_ordering(
            pipeline_mesh,
            "rdr",
            2,
            config=RunConfig(trace_mode="fused"),
            **kwargs,
        )
        assert want.result.access_counts() == got.result.access_counts()
        assert want.modeled_seconds == got.modeled_seconds
        for a, b in zip(want.result.per_core, got.result.per_core):
            assert (a.core, a.socket) == (b.core, b.socket)
            assert stats_tuple(a.stats) == stats_tuple(b.stats)

    def test_multicore_spill_rejected(self, pipeline_mesh):
        with pytest.raises(UnknownNameError):
            run_parallel_ordering(
                pipeline_mesh,
                "rdr",
                2,
                config=RunConfig(trace_mode="spill"),
                machine=tiny_machine(),
                iterations=ITERATIONS,
            )
