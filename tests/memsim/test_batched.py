"""Engine-equality suite: batched simulator vs the reference replay.

The batched engine's contract is *exactness*: identical per-level
access/hit counts (and identical served-level attribution) on every
stream, machine geometry, policy and topology the reference simulator
accepts. The property tests below drive randomized streams through
both engines; the golden test re-derives the pinned fixture statistics
through the batched path; the ``slow``-marked sweep widens the
differential search to many machine geometries and stream shapes.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memsim import (
    SIM_ENGINES,
    batched_levels,
    simulate_multicore,
    simulate_trace,
    simulate_trace_batched,
    westmere_ex,
)
from repro.memsim.cache import CacheHierarchy
from repro.memsim.machine import CacheSpec, MachineSpec

FIXTURES = Path(__file__).resolve().parents[1] / "fixtures"
sys.path.insert(0, str(FIXTURES))

from generate_golden import FIXTURE_DIR, golden_configs  # noqa: E402


def toy_machine(s1, w1, s2, w2, s3, w3, *, cores_per_socket=1, num_sockets=1):
    line = 8
    return MachineSpec(
        name="toy",
        l1=CacheSpec("L1", s1 * w1 * line, w1, 1.0, line),
        l2=CacheSpec("L2", s2 * w2 * line, w2, 4.0, line),
        l3=CacheSpec("L3", s3 * w3 * line, w3, 16.0, line),
        memory_latency_cycles=64.0,
        remote_l3_extra_cycles=16.0,
        frequency_hz=1e9,
        cores_per_socket=cores_per_socket,
        num_sockets=num_sockets,
    )


#: Small geometries chosen so back-invalidations actually fire (outer
#: levels barely larger than inner ones) alongside regular shapes.
GEOMETRIES = [
    (1, 2, 1, 4, 2, 4),
    (1, 1, 1, 2, 1, 3),
    (2, 2, 4, 2, 8, 4),
    (1, 4, 2, 4, 4, 8),
    (3, 2, 5, 2, 7, 3),
    (1, 2, 2, 2, 2, 3),
    (2, 1, 2, 2, 4, 2),
    (1, 3, 1, 3, 1, 4),
]


def reference_levels(lines, machine, **kwargs):
    hierarchy = CacheHierarchy(machine, **kwargs)
    served = np.empty(len(lines), dtype=np.int8)
    for t, line in enumerate(np.asarray(lines).tolist()):
        served[t] = hierarchy.access(line)
    return hierarchy.stats, served


def assert_stats_equal(ref, got):
    for a, b in zip(ref.levels(), got.levels()):
        assert (a.accesses, a.hits) == (b.accesses, b.hits), (
            f"{a.name}: reference=({a.accesses},{a.hits}) "
            f"batched=({b.accesses},{b.hits})"
        )


streams = st.lists(st.integers(min_value=0, max_value=25), max_size=300)


class TestBatchedMatchesReference:
    @given(
        lines=streams,
        geometry=st.sampled_from(GEOMETRIES),
    )
    @settings(max_examples=60, deadline=None)
    def test_lru_counts_and_levels(self, lines, geometry):
        machine = toy_machine(*geometry)
        arr = np.asarray(lines, dtype=np.int64)
        ref_stats, ref_served = reference_levels(arr, machine)
        got_stats, got_served = batched_levels(arr, machine)
        assert_stats_equal(ref_stats, got_stats)
        assert np.array_equal(ref_served, got_served)

    @given(
        lines=streams,
        geometry=st.sampled_from(GEOMETRIES),
        policy=st.sampled_from(["lru", "fifo", "random"]),
        prefetch=st.booleans(),
    )
    @settings(max_examples=40, deadline=None)
    def test_policies_and_prefetch(self, lines, geometry, policy, prefetch):
        # fifo/random/prefetch fall back to the reference internally;
        # the exactness contract holds regardless of the route taken.
        machine = toy_machine(*geometry)
        arr = np.asarray(lines, dtype=np.int64)
        ref = simulate_trace(
            arr, machine, next_line_prefetch=prefetch, policy=policy
        )
        got = simulate_trace_batched(
            arr, machine, next_line_prefetch=prefetch, policy=policy
        )
        assert_stats_equal(ref, got)

    @given(
        per_core=st.lists(streams, min_size=1, max_size=4),
        geometry=st.sampled_from(GEOMETRIES),
        affinity=st.sampled_from(["compact", "scatter"]),
    )
    @settings(max_examples=25, deadline=None)
    def test_shared_l3_multicore(self, per_core, geometry, affinity):
        # compact packs cores onto shared-L3 sockets (reference
        # interleave path); scatter produces single-core sockets where
        # the batched cascade applies — both must match exactly.
        machine = toy_machine(*geometry, cores_per_socket=2, num_sockets=2)
        arrs = [np.asarray(s, dtype=np.int64) for s in per_core]
        ref = simulate_multicore(arrs, machine, affinity=affinity)
        got = simulate_multicore(
            arrs, machine, affinity=affinity, sim_engine="batched"
        )
        assert len(ref.per_core) == len(got.per_core)
        for cr_ref, cr_got in zip(ref.per_core, got.per_core):
            assert (cr_ref.core, cr_ref.socket) == (cr_got.core, cr_got.socket)
            assert_stats_equal(cr_ref.stats, cr_got.stats)
        assert ref.access_counts() == got.access_counts()


class TestBatchedGolden:
    """The pinned golden traces, re-simulated through the batched engine."""

    @pytest.fixture(scope="class")
    def golden_stats(self) -> dict:
        return json.loads((FIXTURE_DIR / "golden_stats.json").read_text())

    @pytest.mark.parametrize("name", sorted(golden_configs()))
    def test_matches_pinned_levels(self, name, golden_stats):
        config = golden_configs()[name]
        machine = westmere_ex(scale=config["machine_scale"])
        with np.load(FIXTURE_DIR / f"{name}.npz") as fixture:
            lines = fixture["lines"]
        stats = simulate_trace(lines, machine, sim_engine="batched")
        want = golden_stats[name]["levels"]
        for level in stats.levels():
            assert level.accesses == want[level.name]["accesses"]
            assert level.hits == want[level.name]["hits"]


class TestEngineSelection:
    def test_sim_engines_registry(self):
        assert SIM_ENGINES == ("reference", "batched")

    def test_unknown_engine_rejected(self):
        machine = toy_machine(*GEOMETRIES[0])
        with pytest.raises(ValueError, match="sim engine"):
            simulate_trace(np.arange(4), machine, sim_engine="nope")

    def test_empty_stream(self):
        machine = toy_machine(*GEOMETRIES[0])
        stats, served = batched_levels(np.empty(0, dtype=np.int64), machine)
        assert [lv.accesses for lv in stats.levels()] == [0, 0, 0]
        assert served.size == 0


@pytest.mark.slow
def test_differential_sweep():
    """Wide randomized differential: many geometries x stream shapes."""
    rng = np.random.default_rng(987)
    for trial in range(240):
        geometry = GEOMETRIES[trial % len(GEOMETRIES)]
        machine = toy_machine(*geometry)
        n = int(rng.integers(1, 500))
        nlines = int(rng.integers(1, 40))
        kind = trial % 3
        if kind == 0:
            lines = rng.integers(0, nlines, size=n)
        elif kind == 1:  # looping pattern
            base = rng.integers(0, nlines, size=min(n, 24))
            lines = np.tile(base, n // max(1, base.size) + 1)[:n]
        else:  # strided
            lines = (np.arange(n) * int(rng.integers(1, 5))) % max(1, nlines)
        lines = lines.astype(np.int64)
        ref_stats, ref_served = reference_levels(lines, machine)
        got_stats, got_served = batched_levels(lines, machine)
        assert_stats_equal(ref_stats, got_stats)
        assert np.array_equal(ref_served, got_served), f"trial {trial}"
