"""Streaming-vs-in-memory differential suite.

The streaming engines' contract is *bit-for-bit exactness*: replaying a
line stream window by window — any window size — must reproduce the
in-memory engines' hierarchy counts, reuse distances, profiles and
bucketed series exactly. The tests sweep the window sizes the design
calls out as adversarial (one event, a prime, exactly the stream
length, larger than the stream), every registered machine profile, both
``sim_engine`` values, and geometries whose inclusive back-invalidations
force the streaming engine through its divergence-commit path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import RunConfig
from repro.memsim import (
    CacheHierarchy,
    StreamingBucketedSeries,
    StreamingHierarchy,
    StreamingReuse,
    bucketed_series,
    calibrated_machine,
    iter_line_windows,
    profile_from_distances,
    reuse_distances,
    simulate_multicore,
    simulate_trace,
    simulate_trace_streaming,
    tiny_machine,
)
from repro.memsim.machine import CacheSpec, MachineSpec

#: The adversarial window sizes of the design: single-event, prime,
#: exactly the stream, larger than the stream (n is appended at runtime).
WINDOW_SIZES = (1, 13)


def toy_machine(s1, w1, s2, w2, s3, w3):
    line = 8
    return MachineSpec(
        name="toy",
        l1=CacheSpec("L1", s1 * w1 * line, w1, 1.0, line),
        l2=CacheSpec("L2", s2 * w2 * line, w2, 4.0, line),
        l3=CacheSpec("L3", s3 * w3 * line, w3, 16.0, line),
        memory_latency_cycles=64.0,
        remote_l3_extra_cycles=16.0,
        frequency_hz=1e9,
        cores_per_socket=2,
        num_sockets=2,
    )


#: Outer levels barely larger than inner ones, so back-invalidations
#: are consequential and the divergence-commit path runs.
ADVERSARIAL_GEOMETRIES = [
    (1, 2, 1, 4, 2, 4),
    (1, 1, 1, 2, 1, 3),
    (1, 2, 2, 2, 2, 3),
    (2, 1, 2, 2, 4, 2),
]


def machines():
    yield "tiny", tiny_machine()
    # Every registered calibration profile (MACHINE_PROFILES).
    yield "cal-serial", calibrated_machine(1 << 14, profile="serial")
    yield "cal-scaling", calibrated_machine(1 << 14, profile="scaling")


def stats_tuple(stats):
    return tuple(
        (level.accesses, level.hits) for level in stats.levels()
    )


def windows_for(n):
    return sorted({1, 13, max(n, 1), n + 7})


class TestHierarchyExactness:
    @pytest.mark.parametrize("machine_name,machine", list(machines()))
    @pytest.mark.parametrize("sim_engine", ["reference", "batched"])
    def test_matches_in_memory_on_random_streams(
        self, machine_name, machine, sim_engine
    ):
        rng = np.random.default_rng(hash((machine_name, sim_engine)) % 2**32)
        for trial in range(8):
            n = int(rng.integers(1, 400))
            span = int(rng.integers(2, 4 * machine.l1.num_lines + 2))
            lines = rng.integers(0, span, size=n).astype(np.int64)
            want = stats_tuple(CacheHierarchy(machine).run(lines))
            for window in windows_for(n):
                got = stats_tuple(
                    simulate_trace_streaming(
                        lines,
                        machine,
                        window_events=window,
                        sim_engine=sim_engine,
                    )
                )
                assert got == want, (
                    f"{machine_name}/{sim_engine} trial {trial} "
                    f"window {window}"
                )

    @pytest.mark.parametrize("geometry", ADVERSARIAL_GEOMETRIES)
    def test_exact_through_back_invalidations(self, geometry):
        machine = toy_machine(*geometry)
        rng = np.random.default_rng(sum(geometry))
        for trial in range(10):
            n = int(rng.integers(20, 300))
            lines = rng.integers(0, int(rng.integers(2, 24)), size=n)
            lines = lines.astype(np.int64)
            want = stats_tuple(CacheHierarchy(machine).run(lines))
            for window in windows_for(n):
                got = stats_tuple(
                    simulate_trace_streaming(
                        lines,
                        machine,
                        window_events=window,
                        sim_engine="batched",
                    )
                )
                assert got == want

    def test_divergence_commit_path_runs_and_stays_exact(self, monkeypatch):
        # The adversarial geometries must actually drive the streaming
        # engine through its divergence commit (seed + reference tail),
        # otherwise the suite above proves less than it claims.
        import repro.memsim.streaming as streaming

        calls = {"n": 0}
        orig = streaming._seed_state

        def spy(*args, **kwargs):
            calls["n"] += 1
            return orig(*args, **kwargs)

        monkeypatch.setattr(streaming, "_seed_state", spy)
        machine = toy_machine(*ADVERSARIAL_GEOMETRIES[0])
        rng = np.random.default_rng(0)
        lines = rng.integers(0, 9, size=400).astype(np.int64)
        want = stats_tuple(CacheHierarchy(machine).run(lines))
        got = stats_tuple(
            simulate_trace_streaming(
                lines, machine, window_events=32, sim_engine="batched"
            )
        )
        assert got == want
        assert calls["n"] > 0

    def test_policies_and_prefetch_route_through_reference(self):
        machine = tiny_machine()
        rng = np.random.default_rng(5)
        lines = rng.integers(0, 48, size=300).astype(np.int64)
        for kwargs in (
            {"policy": "fifo"},
            {"policy": "random"},
            {"next_line_prefetch": True},
        ):
            want = stats_tuple(CacheHierarchy(machine, **kwargs).run(lines))
            got = stats_tuple(
                simulate_trace_streaming(
                    lines,
                    machine,
                    window_events=37,
                    sim_engine="batched",
                    **kwargs,
                )
            )
            assert got == want, kwargs

    def test_empty_and_tiny_streams(self):
        machine = tiny_machine()
        sim = StreamingHierarchy(machine, sim_engine="batched")
        sim.consume(np.empty(0, dtype=np.int64))
        assert stats_tuple(sim.stats) == ((0, 0), (0, 0), (0, 0))
        sim.consume(np.array([3]))
        assert stats_tuple(sim.stats) == ((1, 0), (1, 0), (1, 0))
        assert sim.windows == 1 and sim.events == 1

    def test_bad_window_size_rejected(self):
        with pytest.raises(ValueError, match="window_events"):
            list(iter_line_windows(np.arange(4), 0))

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="sim engine"):
            StreamingHierarchy(tiny_machine(), sim_engine="nope")


class TestConfigRouting:
    def test_simulate_trace_streams_when_configured(self):
        machine = tiny_machine()
        rng = np.random.default_rng(11)
        lines = rng.integers(0, 64, size=500).astype(np.int64)
        want = stats_tuple(simulate_trace(lines, machine))
        for sim_engine in ("reference", "batched"):
            config = RunConfig(
                sim_engine=sim_engine, stream_window_events=61
            )
            got = stats_tuple(simulate_trace(lines, machine, config=config))
            assert got == want

    def test_run_config_validates_window(self):
        RunConfig(stream_window_events=None).validate()
        RunConfig(stream_window_events=1024).validate()
        for bad in (0, -5, True, 2.5):
            with pytest.raises(ValueError):
                RunConfig(stream_window_events=bad).validate()

    @pytest.mark.parametrize("mem_engine", ["sequential", "sharded"])
    @pytest.mark.parametrize("affinity", ["compact", "scatter"])
    def test_multicore_streams_per_socket(self, mem_engine, affinity):
        # compact packs two cores per socket (quantum-sliced interleave);
        # scatter yields single-core sockets (windowed StreamingHierarchy).
        machine = toy_machine(2, 2, 4, 2, 8, 4)
        rng = np.random.default_rng(23)
        streams = [
            rng.integers(0, 40, size=int(rng.integers(30, 200))).astype(
                np.int64
            )
            for _ in range(3)
        ]
        want = simulate_multicore(streams, machine, affinity=affinity)
        config = RunConfig(
            mem_engine=mem_engine,
            sim_engine="batched",
            stream_window_events=17,
        )
        got = simulate_multicore(
            streams, machine, config=config, affinity=affinity, max_workers=1
        )
        assert len(want.per_core) == len(got.per_core)
        for a, b in zip(want.per_core, got.per_core):
            assert (a.core, a.socket) == (b.core, b.socket)
            assert stats_tuple(a.stats) == stats_tuple(b.stats)
        assert want.access_counts() == got.access_counts()


class TestStreamingReuse:
    def test_distances_match_in_memory(self):
        rng = np.random.default_rng(3)
        for trial in range(6):
            n = int(rng.integers(1, 500))
            lines = rng.integers(0, int(rng.integers(2, 120)), size=n)
            lines = lines.astype(np.int64)
            want = reuse_distances(lines)
            for window in windows_for(n):
                sr = StreamingReuse()
                got = np.concatenate(
                    [sr.consume(w) for w in iter_line_windows(lines, window)]
                )
                assert np.array_equal(got, want), (trial, window)
                assert sr.num_accesses == n
                assert sr.carry_events == np.unique(lines).size

    def test_profile_matches_in_memory(self):
        rng = np.random.default_rng(9)
        lines = rng.integers(0, 90, size=700).astype(np.int64)
        want = profile_from_distances(reuse_distances(lines)).as_row()
        sr = StreamingReuse()
        for w in iter_line_windows(lines, 101):
            sr.consume(w)
        assert sr.profile_row() == want

    def test_all_cold_profile(self):
        sr = StreamingReuse()
        d = sr.consume(np.arange(5))
        assert np.all(d == -1)
        row = sr.profile_row()
        assert row["accesses"] == 5 and row["cold"] == 5
        assert np.isnan(row["mean"])

    def test_empty_window_is_noop(self):
        sr = StreamingReuse()
        sr.consume(np.array([1, 2, 1]))
        before = sr.carry_events
        out = sr.consume(np.empty(0, dtype=np.int64))
        assert out.size == 0 and sr.carry_events == before


class TestStreamingBucketedSeries:
    def test_bit_identical_to_in_memory(self):
        rng = np.random.default_rng(17)
        for trial in range(6):
            n = int(rng.integers(1, 400))
            lines = rng.integers(0, int(rng.integers(2, 60)), size=n)
            d = reuse_distances(lines.astype(np.int64))
            for num_buckets in (1, 17, 100, n + 3):
                want_c, want_m = bucketed_series(d, num_buckets=num_buckets)
                for window in windows_for(n):
                    sb = StreamingBucketedSeries(n, num_buckets=num_buckets)
                    pos = 0
                    for w in iter_line_windows(lines, window):
                        sb.consume(d[pos : pos + w.size])
                        pos += w.size
                    got_c, got_m = sb.finalize()
                    assert np.array_equal(got_c, want_c)
                    assert np.array_equal(got_m, want_m, equal_nan=True)

    def test_overflow_and_underflow_rejected(self):
        sb = StreamingBucketedSeries(4, num_buckets=2)
        sb.consume(np.array([1.0, 2.0]))
        with pytest.raises(ValueError, match="total_events"):
            sb.consume(np.zeros(3))
        with pytest.raises(ValueError, match="consumed"):
            sb.finalize()

    def test_empty_total(self):
        sb = StreamingBucketedSeries(0)
        centers, means = sb.finalize()
        assert centers.size == 0 and means.size == 0


class TestChunkedTraceComposition:
    def test_streaming_over_spilled_trace_windows(self, tmp_path):
        # End-to-end composition: spill a multi-iteration trace to disk,
        # stream its windows through the hierarchy and reuse engines, and
        # match the monolithic in-memory answers.
        from repro.memsim import AccessTrace

        rng = np.random.default_rng(31)
        n = 400
        trace = AccessTrace(
            rng.integers(0, 5, size=n).astype(np.uint8),
            rng.integers(0, 300, size=n),
            rng.random(n) < 0.3,
            iteration_starts=np.array([0, 150, 300]),
        )
        chunked = AccessTrace.open_chunked(
            trace.save_chunked(tmp_path / "t", window_events=57)
        )
        machine = tiny_machine()
        # Use the raw indices as line ids: layout-independent and exact.
        full_lines = trace.indices
        want = stats_tuple(CacheHierarchy(machine).run(full_lines))
        sim = StreamingHierarchy(machine, sim_engine="batched")
        sr = StreamingReuse()
        parts = []
        for window in chunked.iter_windows():
            sim.consume(window.indices)
            parts.append(sr.consume(window.indices))
        assert stats_tuple(sim.stats) == want
        assert np.array_equal(
            np.concatenate(parts), reuse_distances(full_lines)
        )
        assert sim.windows == chunked.num_windows
