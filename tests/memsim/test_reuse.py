"""Unit tests for reuse-distance analysis."""

import numpy as np
import pytest

from repro.memsim import (
    COLD,
    bucketed_series,
    hits_under_capacity,
    max_elements_within,
    profile_from_distances,
    reuse_distances,
)


def brute_force_reuse(stream):
    """O(n^2) reference implementation."""
    out = []
    last = {}
    for t, x in enumerate(stream):
        if x in last:
            distinct = len(set(stream[last[x] + 1 : t]))
            out.append(distinct)
        else:
            out.append(COLD)
        last[x] = t
    return np.array(out)


class TestReuseDistances:
    def test_immediate_reuse_is_zero(self):
        assert reuse_distances(np.array([7, 7])).tolist() == [COLD, 0]

    def test_classic_example(self):
        # a b c a : reuse of a sees {b, c} in between -> distance 2.
        out = reuse_distances(np.array([1, 2, 3, 1]))
        assert out.tolist() == [COLD, COLD, COLD, 2]

    def test_repeated_intermediate_counted_once(self):
        # a b b b a : only one distinct element in between.
        out = reuse_distances(np.array([1, 2, 2, 2, 1]))
        assert out.tolist() == [COLD, COLD, 0, 0, 1]

    def test_all_cold(self):
        out = reuse_distances(np.arange(10))
        assert (out == COLD).all()

    def test_cyclic_stream(self):
        # Repeating 0..4: every reuse sees the 4 other elements.
        stream = np.tile(np.arange(5), 3)
        out = reuse_distances(stream)
        assert (out[5:] == 4).all()

    def test_matches_brute_force(self, rng):
        stream = rng.integers(0, 20, 300).tolist()
        fast = reuse_distances(np.array(stream))
        slow = brute_force_reuse(stream)
        assert np.array_equal(fast, slow)

    def test_arbitrary_ids_compressed(self):
        out = reuse_distances(np.array([10**12, -5, 10**12]))
        assert out.tolist() == [COLD, COLD, 1]

    def test_empty_stream(self):
        assert reuse_distances(np.array([], dtype=int)).size == 0


class TestProfile:
    def test_quantile_definition(self):
        # Population 1..10: the paper's X-quantile is the smallest value
        # with at least proportion X at or below it.
        dists = np.arange(1, 11)
        prof = profile_from_distances(dists)
        assert prof.q50 == 5
        assert prof.q75 == 8  # ceil(0.75*10) = 8th smallest
        assert prof.q90 == 9
        assert prof.q100 == 10

    def test_cold_excluded(self):
        dists = np.array([COLD, COLD, 4, 6])
        prof = profile_from_distances(dists)
        assert prof.num_cold == 2
        assert prof.num_reuses == 2
        assert prof.mean == 5.0

    def test_all_cold_profile(self):
        prof = profile_from_distances(np.array([COLD, COLD]))
        assert prof.num_cold == 2
        assert np.isnan(prof.mean)

    def test_as_row_keys(self):
        prof = profile_from_distances(np.array([1, 2, 3]))
        assert set(prof.as_row()) == {
            "accesses",
            "cold",
            "mean",
            "50%",
            "75%",
            "90%",
            "100%",
        }


class TestBucketedSeries:
    def test_bucket_count(self):
        dists = np.arange(100)
        xs, ys = bucketed_series(dists, 10)
        assert xs.size == ys.size == 10

    def test_means_correct(self):
        dists = np.array([2.0, 4.0, 10.0, 20.0])
        xs, ys = bucketed_series(dists, 2)
        assert ys.tolist() == [3.0, 15.0]

    def test_cold_skipped(self):
        dists = np.array([COLD, 6.0, COLD, COLD])
        xs, ys = bucketed_series(dists, 2)
        assert ys[0] == 6.0 and np.isnan(ys[1])

    def test_empty(self):
        xs, ys = bucketed_series(np.array([]), 5)
        assert xs.size == ys.size == 0


class TestCapacityModel:
    def test_hits_under_capacity(self):
        dists = np.array([COLD, 0, 3, 10, 5])
        assert hits_under_capacity(dists, 6) == 3  # 0, 3, 5 hit
        assert hits_under_capacity(dists, 1) == 1  # only the 0

    def test_max_elements_inverse(self):
        dists = np.array([COLD, 1, 2, 3, 4, 5])
        # If exactly 2 accesses missed, they were distances {4, 5}: the
        # implied capacity is 4.
        assert max_elements_within(dists, 2) == 4

    def test_zero_misses_means_everything_fits(self):
        dists = np.array([COLD, 1, 2, 7])
        assert max_elements_within(dists, 0) == 8

    def test_all_missed(self):
        dists = np.array([COLD, 3, 9])
        assert max_elements_within(dists, 2) == 3

    def test_misses_clamped(self):
        dists = np.array([COLD, 3])
        assert max_elements_within(dists, 100) == 3
