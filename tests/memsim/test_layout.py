"""Unit tests for the memory-layout model."""

import numpy as np
import pytest

from repro.memsim import AccessTrace, MemoryLayout
from repro.memsim.trace import ARRAY_IDS


def trace_of(array, indices):
    n = len(indices)
    return AccessTrace(
        np.full(n, ARRAY_IDS[array], dtype=np.uint8),
        np.asarray(indices, dtype=np.int64),
        np.zeros(n, dtype=bool),
    )


class TestMemoryLayout:
    def test_coords_addressing(self):
        layout = MemoryLayout(num_vertices=100, num_adjacency=600)
        trace = trace_of("coords", [0, 1, 4])
        addrs = layout.addresses(trace)
        assert addrs.tolist() == [0, 16, 64]

    def test_coords_line_sharing(self):
        # 16-byte coords, 64-byte lines: 4 vertices per line.
        layout = MemoryLayout(num_vertices=100, num_adjacency=600)
        lines = layout.lines(trace_of("coords", [0, 3, 4, 7, 8]))
        assert lines.tolist() == [0, 0, 1, 1, 2]

    def test_arrays_do_not_overlap(self):
        layout = MemoryLayout(num_vertices=64, num_adjacency=300)
        ranges = []
        for name, count in [
            ("coords", 64),
            ("flags", 64),
            ("xadj", 65),
            ("adjncy", 300),
            ("quality", 64),
        ]:
            t = trace_of(name, [0, count - 1])
            a = layout.addresses(t)
            ranges.append((name, int(a[0]), int(a[1])))
        ranges.sort(key=lambda r: r[1])
        for (n1, lo1, hi1), (n2, lo2, hi2) in zip(ranges, ranges[1:]):
            assert hi1 < lo2, (n1, n2)

    def test_arrays_line_aligned(self):
        layout = MemoryLayout(num_vertices=3, num_adjacency=5)
        for name in ("coords", "flags", "xadj", "adjncy", "quality"):
            addr = layout.addresses(trace_of(name, [0]))[0]
            assert addr % 64 == 0

    def test_no_access_straddles_lines(self):
        layout = MemoryLayout(num_vertices=50, num_adjacency=222)
        for name, size, count in [
            ("coords", 16, 50),
            ("flags", 4, 50),
            ("xadj", 8, 51),
            ("adjncy", 8, 222),
        ]:
            t = trace_of(name, list(range(count)))
            a = layout.addresses(t)
            assert ((a % 64) + size <= 64).all(), name

    def test_element_ids_globally_unique(self):
        layout = MemoryLayout(num_vertices=10, num_adjacency=40)
        ids = []
        for name, count in [
            ("coords", 10),
            ("flags", 10),
            ("xadj", 11),
            ("adjncy", 40),
            ("quality", 10),
        ]:
            ids.extend(layout.element_ids(trace_of(name, range(count))).tolist())
        assert len(set(ids)) == len(ids)

    def test_total_bytes_covers_all_arrays(self):
        layout = MemoryLayout(num_vertices=100, num_adjacency=600)
        last = layout.addresses(trace_of("quality", [99]))[0]
        assert layout.total_bytes >= last + 8
        assert layout.total_bytes % 64 == 0

    def test_for_mesh(self, ocean_mesh):
        layout = MemoryLayout.for_mesh(ocean_mesh)
        assert layout.num_vertices == ocean_mesh.num_vertices
        assert layout.num_adjacency == ocean_mesh.adjacency.adjncy.size

    def test_rejects_non_power_of_two_line(self):
        with pytest.raises(ValueError, match="power of two"):
            MemoryLayout(num_vertices=4, num_adjacency=4, line_size=48)

    def test_rejects_element_size_not_dividing_line(self):
        with pytest.raises(ValueError, match="divide"):
            MemoryLayout(
                num_vertices=4,
                num_adjacency=4,
                element_sizes={
                    "coords": 24,
                    "flags": 4,
                    "xadj": 8,
                    "adjncy": 8,
                    "quality": 8,
                },
            )

    def test_custom_element_sizes(self):
        layout = MemoryLayout(
            num_vertices=8,
            num_adjacency=8,
            element_sizes={
                "coords": 32,
                "flags": 4,
                "xadj": 8,
                "adjncy": 8,
                "quality": 8,
            },
        )
        # 32-byte coords: two vertices per line.
        lines = layout.lines(trace_of("coords", [0, 1, 2]))
        assert lines.tolist() == [0, 0, 1]
