"""Differential suite: sharded multicore replay vs the sequential engine.

The sharded engine must reproduce the sequential engine *exactly* —
same per-core, per-level access/hit/miss counters and identical cost
breakdowns — across affinities, core counts and stream shapes. Both
engines run :func:`repro.memsim.multicore.simulate_socket` per socket,
so equality is by construction; these tests pin it empirically (and
would catch a refactor that breaks the socket-is-a-closed-system
assumption).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.memsim import (
    MemoryLayout,
    simulate_multicore,
    simulate_multicore_sharded,
    socket_shards,
    tiny_machine,
    westmere_ex,
)
from repro.parallel import parallel_traces

FAST = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def assert_identical(seq, shd):
    assert seq.affinity == shd.affinity
    assert seq.num_cores == shd.num_cores
    for a, b in zip(seq.per_core, shd.per_core):
        assert a.core == b.core
        assert a.socket == b.socket
        assert a.stats == b.stats
        assert a.cost == b.cost
    assert seq.access_counts() == shd.access_counts()
    assert seq.modeled_seconds == shd.modeled_seconds


def _mesh_streams(mesh, machine, num_cores, iterations=2):
    traces = parallel_traces(
        mesh, num_cores, iterations=iterations, traversal="storage"
    )
    layout = MemoryLayout.for_mesh(mesh, line_size=machine.line_size)
    return [layout.lines(t) for t in traces]


@pytest.mark.parametrize("affinity", ["compact", "scatter"])
@pytest.mark.parametrize("num_cores", [1, 2, 3, 4])
def test_sharded_matches_sequential_on_mesh_traces(
    ocean_mesh, affinity, num_cores
):
    machine = tiny_machine()
    streams = _mesh_streams(ocean_mesh, machine, num_cores)
    seq = simulate_multicore(
        streams, machine, affinity=affinity, engine="sequential"
    )
    shd = simulate_multicore(
        streams, machine, affinity=affinity, engine="sharded"
    )
    assert_identical(seq, shd)


def test_sharded_matches_sequential_many_cores(bumpy_mesh):
    machine = westmere_ex(scale=0.05)
    streams = _mesh_streams(bumpy_mesh, machine, 8, iterations=1)
    seq = simulate_multicore(streams, machine, affinity="compact")
    shd = simulate_multicore_sharded(streams, machine, affinity="compact")
    assert_identical(seq, shd)


def test_sharded_in_process_path_matches(ocean_mesh):
    """``max_workers=1`` short-circuits the pool; results are unchanged."""
    machine = tiny_machine()
    streams = _mesh_streams(ocean_mesh, machine, 4)
    pooled = simulate_multicore_sharded(streams, machine, affinity="scatter")
    inproc = simulate_multicore_sharded(
        streams, machine, affinity="scatter", max_workers=1
    )
    assert_identical(pooled, inproc)


@FAST
@given(
    data=st.data(),
    num_cores=st.integers(min_value=1, max_value=4),
    affinity=st.sampled_from(["compact", "scatter"]),
    quantum=st.integers(min_value=1, max_value=17),
)
def test_sharded_matches_sequential_on_random_streams(
    data, num_cores, affinity, quantum
):
    streams = [
        np.asarray(
            data.draw(
                st.lists(
                    st.integers(min_value=0, max_value=40),
                    min_size=0,
                    max_size=200,
                )
            ),
            dtype=np.int64,
        )
        for _ in range(num_cores)
    ]
    machine = tiny_machine()
    seq = simulate_multicore(
        streams, machine, affinity=affinity, quantum=quantum
    )
    shd = simulate_multicore_sharded(
        streams, machine, affinity=affinity, quantum=quantum, max_workers=1
    )
    assert_identical(seq, shd)


@pytest.mark.parametrize("affinity", ["compact", "scatter"])
def test_socket_shards_partition_cores(affinity):
    machine = westmere_ex(scale=0.05)
    streams = [np.arange(i + 1, dtype=np.int64) for i in range(12)]
    shards = socket_shards(streams, machine, affinity)
    seen = []
    for socket_id, members, member_streams in shards:
        assert 0 <= socket_id < machine.num_sockets
        assert len(members) == len(member_streams)
        for core, stream in zip(members, member_streams):
            assert stream is streams[core]
        seen.extend(members)
    # Every core appears in exactly one shard.
    assert sorted(seen) == list(range(12))


def test_unknown_replay_engine_rejected():
    with pytest.raises(ValueError, match="unknown replay engine"):
        simulate_multicore(
            [np.arange(4, dtype=np.int64)], tiny_machine(), engine="warp"
        )
