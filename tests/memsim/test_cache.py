"""Unit tests for the LRU cache and inclusive hierarchy simulators."""

import numpy as np
import pytest

from repro.memsim import (
    COLD,
    CacheHierarchy,
    CacheSpec,
    LRUCache,
    MachineSpec,
    hits_under_capacity,
    reuse_distances,
    simulate_trace,
    tiny_machine,
)


def fully_assoc(name, lines, latency=1.0):
    return CacheSpec(name, lines * 64, lines, latency, 64)


class TestLRUCache:
    def test_miss_then_hit(self):
        c = LRUCache(fully_assoc("c", 4))
        hit, ev = c.access(10)
        assert not hit and ev == -1
        hit, ev = c.access(10)
        assert hit

    def test_lru_eviction_order(self):
        c = LRUCache(fully_assoc("c", 2))
        c.access(1)
        c.access(2)
        c.access(1)  # 1 is now MRU
        hit, ev = c.access(3)
        assert ev == 2  # least recently used

    def test_set_mapping_conflicts(self):
        # 2 sets x 1 way: lines 0 and 2 share set 0 and evict each other.
        spec = CacheSpec("c", 2 * 64, 1, 1.0, 64)
        c = LRUCache(spec)
        c.access(0)
        hit, ev = c.access(2)
        assert not hit and ev == 0
        hit, _ = c.access(1)  # set 1 untouched
        assert not hit
        hit, _ = c.access(2)
        assert hit

    def test_invalidate(self):
        c = LRUCache(fully_assoc("c", 4))
        c.access(5)
        assert c.contains(5)
        assert c.invalidate(5)
        assert not c.contains(5)
        assert not c.invalidate(5)

    def test_resident_lines(self):
        c = LRUCache(fully_assoc("c", 4))
        for line in (1, 2, 3):
            c.access(line)
        assert c.resident_lines() == {1, 2, 3}

    def test_reset(self):
        c = LRUCache(fully_assoc("c", 4))
        c.access(1)
        c.reset()
        assert not c.contains(1)

    def test_spec_validation(self):
        with pytest.raises(ValueError, match="multiple"):
            CacheSpec("bad", 100, 3, 1.0, 64)
        with pytest.raises(ValueError, match="positive"):
            CacheSpec("bad", 0, 1, 1.0, 64)


class TestFullyAssociativeEquivalence:
    """The cornerstone cross-check: a fully-associative LRU cache of
    capacity C hits exactly the accesses with reuse distance < C."""

    @pytest.mark.parametrize("capacity", [1, 2, 4, 16])
    def test_hits_match_reuse_distance_model(self, capacity, rng):
        stream = rng.integers(0, 30, 500)
        cache = LRUCache(fully_assoc("c", capacity))
        hits = sum(cache.access(int(x))[0] for x in stream)
        dists = reuse_distances(stream)
        assert hits == hits_under_capacity(dists, capacity)


class TestHierarchy:
    def test_first_access_goes_to_memory(self):
        h = CacheHierarchy(tiny_machine())
        assert h.access(42) == 4

    def test_second_access_hits_l1(self):
        h = CacheHierarchy(tiny_machine())
        h.access(42)
        assert h.access(42) == 1

    def test_l2_hit_after_l1_eviction(self):
        m = tiny_machine()  # L1: 8 lines fully covering 4 sets x 2 ways
        h = CacheHierarchy(m)
        h.access(0)
        # Push 0 out of L1 (same set: lines congruent mod num_sets).
        sets = m.l1.num_sets
        for k in range(1, 3):
            h.access(k * sets)
        level = h.access(0)
        assert level == 2

    def test_stats_accounting(self, rng):
        h = CacheHierarchy(tiny_machine())
        stream = rng.integers(0, 50, 400)
        h.run(stream)
        s = h.stats
        assert s.l1.accesses == 400
        assert s.l2.accesses == s.l1.misses
        assert s.l3.accesses == s.l2.misses
        assert 0 <= s.l3.misses <= s.l3.accesses

    def test_inclusive_back_invalidation(self):
        # After an L3 eviction, the victim must not hit in L1/L2.
        m = tiny_machine()
        h = CacheHierarchy(m)
        h.access(0)
        l3_sets = m.l3.num_sets
        ways = m.l3.spec.associativity if hasattr(m.l3, "spec") else m.l3.associativity
        # Fill line 0's L3 set beyond capacity with same-set lines.
        for k in range(1, m.l3.associativity + 1):
            h.access(k * l3_sets)
        assert not h.l1.contains(0)
        assert not h.l2.contains(0)
        assert not h.l3.contains(0)

    def test_simulate_trace_wrapper(self, rng):
        stream = rng.integers(0, 64, 256)
        stats = simulate_trace(stream, tiny_machine())
        assert stats.l1.accesses == 256

    def test_miss_rate_property(self):
        from repro.memsim import LevelStats

        s = LevelStats("L1", accesses=100, hits=75)
        assert s.misses == 25
        assert s.miss_rate == 0.25
        assert LevelStats("x").miss_rate == 0.0

    def test_merged_with(self):
        from repro.memsim import HierarchyStats, LevelStats

        a = HierarchyStats(
            LevelStats("L1", 10, 5), LevelStats("L2", 5, 2), LevelStats("L3", 3, 1)
        )
        b = HierarchyStats(
            LevelStats("L1", 20, 10), LevelStats("L2", 10, 6), LevelStats("L3", 4, 4)
        )
        m = a.merged_with(b)
        assert m.l1.accesses == 30 and m.l1.hits == 15
        assert m.memory_accesses == m.l3.misses == 2


class TestHierarchyVsReuseModel:
    def test_fully_associative_hierarchy_matches_model(self, rng):
        """With fully-associative levels, per-level hit counts follow
        directly from the reuse-distance distribution."""
        line = 64
        machine = MachineSpec(
            name="fa",
            l1=CacheSpec("L1", 4 * line, 4, 1.0, line),
            l2=CacheSpec("L2", 16 * line, 16, 4.0, line),
            l3=CacheSpec("L3", 64 * line, 64, 16.0, line),
            memory_latency_cycles=100.0,
            remote_l3_extra_cycles=0.0,
            frequency_hz=1e9,
        )
        stream = rng.integers(0, 100, 1000)
        stats = simulate_trace(stream, machine)
        dists = reuse_distances(stream)
        # L1 sees every access, so its hits follow the stack model
        # exactly.
        assert stats.l1.hits == hits_under_capacity(dists, 4)
        # Outer levels only update recency on the accesses that reach
        # them (inner hits do not refresh them), so they track — but do
        # not exactly equal — the single-stack model. Keep them within a
        # small tolerance; this mirrors real inclusive hardware.
        model_16 = hits_under_capacity(dists, 16)
        model_64 = hits_under_capacity(dists, 64)
        assert abs(stats.l1.hits + stats.l2.hits - model_16) <= 0.03 * 1000
        assert (
            abs(stats.l1.hits + stats.l2.hits + stats.l3.hits - model_64)
            <= 0.03 * 1000
        )
