"""Unit tests for the access-trace container and builder."""

import numpy as np
import pytest

from repro.memsim import ARRAY_IDS, ARRAY_NAMES, AccessTrace, TraceBuilder


def make_trace(n=10, iterations=(0, 4)):
    return AccessTrace(
        np.zeros(n, dtype=np.uint8),
        np.arange(n, dtype=np.int64),
        np.zeros(n, dtype=bool),
        iteration_starts=np.asarray(iterations, dtype=np.int64),
    )


class TestAccessTrace:
    def test_len(self):
        assert len(make_trace(7)) == 7

    def test_iteration_slicing(self):
        t = make_trace(10, iterations=(0, 4))
        first = t.iteration(0)
        second = t.iteration(1)
        assert len(first) == 4 and len(second) == 6
        assert first.indices.tolist() == [0, 1, 2, 3]
        assert second.indices.tolist() == [4, 5, 6, 7, 8, 9]

    def test_iteration_out_of_range(self):
        with pytest.raises(IndexError):
            make_trace().iteration(2)

    def test_slice(self):
        sub = make_trace(10).slice(2, 5)
        assert sub.indices.tolist() == [2, 3, 4]

    def test_filtered(self):
        t = AccessTrace(
            np.array([0, 3, 0], dtype=np.uint8),
            np.array([5, 6, 7]),
            np.array([False, False, True]),
        )
        coords = t.filtered("coords")
        assert coords.indices.tolist() == [5, 7]
        assert coords.is_write.tolist() == [False, True]

    def test_rejects_mismatched_columns(self):
        with pytest.raises(ValueError, match="identical shapes"):
            AccessTrace(
                np.zeros(3, dtype=np.uint8),
                np.zeros(2, dtype=np.int64),
                np.zeros(3, dtype=bool),
            )

    def test_rejects_bad_array_id(self):
        with pytest.raises(ValueError, match="array id"):
            AccessTrace(
                np.array([99], dtype=np.uint8),
                np.array([0]),
                np.array([False]),
            )

    def test_array_names_and_ids_consistent(self):
        assert [ARRAY_IDS[n] for n in ARRAY_NAMES] == list(range(len(ARRAY_NAMES)))


class TestPersistence:
    @pytest.mark.parametrize(
        "name", ["plain.npz", "stem", "foo.trace", "multi.dot.name", "odd."]
    )
    def test_save_returns_written_path(self, tmp_path, name):
        trace = make_trace(6)
        written = trace.save_npz(tmp_path / name)
        # The returned path is the file on disk, whatever the input
        # suffix was (np.savez appends .npz to names lacking it).
        assert written.is_file()
        assert written.suffix == ".npz"
        assert written.parent == tmp_path

    def test_round_trip(self, tmp_path):
        trace = AccessTrace(
            np.array([0, 3, 0, 1], dtype=np.uint8),
            np.array([5, 6, 7, 8], dtype=np.int64),
            np.array([False, True, False, True]),
            iteration_starts=np.array([0, 2], dtype=np.int64),
            meta={"mesh": "m", "k": 3},
        )
        written = trace.save_npz(tmp_path / "foo.trace")
        loaded = AccessTrace.load_npz(written)
        assert np.array_equal(loaded.array_ids, trace.array_ids)
        assert np.array_equal(loaded.indices, trace.indices)
        assert np.array_equal(loaded.is_write, trace.is_write)
        assert np.array_equal(loaded.iteration_starts, trace.iteration_starts)
        assert loaded.meta == trace.meta


class TestMmapLifecycle:
    def test_rejected_archive_closes_mapping(self, tmp_path, monkeypatch):
        # A compressed archive cannot be mapped; the rejection must close
        # the mmap deterministically rather than leak it to the GC (which
        # surfaces as a ResourceWarning under -W error).
        import mmap as mmap_module

        from repro.memsim import trace as trace_module

        written = make_trace(6).save_npz(tmp_path / "c.npz", compress=True)
        created = []
        real_mmap = mmap_module.mmap

        def recording_mmap(*args, **kwargs):
            mapping = real_mmap(*args, **kwargs)
            created.append(mapping)
            return mapping

        monkeypatch.setattr(trace_module.mmap, "mmap", recording_mmap)
        with pytest.raises(ValueError, match="compressed"):
            AccessTrace.load_npz(written, mmap_mode="r")
        assert created, "loader never mapped the file"
        assert all(m.closed for m in created)

    def test_successful_mmap_load_keeps_mapping_open(self, tmp_path):
        written = make_trace(6).save_npz(tmp_path / "u.npz", compress=False)
        loaded = AccessTrace.load_npz(written, mmap_mode="r")
        # The views keep the mapping alive; the data must be readable.
        assert np.array_equal(loaded.indices, np.arange(6, dtype=np.int64))


class TestTraceBuilder:
    def test_append_scalar_and_vector(self):
        tb = TraceBuilder()
        tb.append("coords", 3)
        tb.append("adjncy", np.array([1, 2, 3]))
        tb.append("coords", 9, write=True)
        trace = tb.build()
        assert len(trace) == 5
        assert trace.is_write.tolist() == [False] * 4 + [True]

    def test_empty_append_ignored(self):
        tb = TraceBuilder()
        tb.append("coords", np.array([], dtype=np.int64))
        assert len(tb) == 0

    def test_iteration_marking(self):
        tb = TraceBuilder()
        tb.begin_iteration()
        tb.append("coords", 0)
        tb.begin_iteration()
        tb.append("coords", 1)
        trace = tb.build()
        assert trace.iteration_starts.tolist() == [0, 1]

    def test_empty_build(self):
        trace = TraceBuilder().build(mesh="x")
        assert len(trace) == 0
        assert trace.meta["mesh"] == "x"
        assert trace.num_iterations == 1

    def test_unknown_array_rejected(self):
        with pytest.raises(KeyError):
            TraceBuilder().append("nonsense", 0)
