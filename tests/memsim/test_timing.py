"""Unit tests for the Equation-(2) timing model."""

import pytest

from repro.memsim import HierarchyStats, LevelStats, extra_miss_cycles, modeled_time
from repro.memsim.machine import tiny_machine


def stats(l1_acc, l1_hit, l2_hit, l3_hit):
    l2_acc = l1_acc - l1_hit
    l3_acc = l2_acc - l2_hit
    return HierarchyStats(
        LevelStats("L1", l1_acc, l1_hit),
        LevelStats("L2", l2_acc, l2_hit),
        LevelStats("L3", l3_acc, l3_hit),
    )


class TestEquation2:
    def test_miss_count_form(self):
        m = tiny_machine()
        s = stats(1000, 900, 60, 30)
        expected = (
            100 * m.l2.latency_cycles
            + 40 * m.l3.latency_cycles
            + 10 * m.memory_latency_cycles
        )
        assert extra_miss_cycles(s, m) == expected

    def test_rate_form_equivalence(self):
        """Equation (2) as printed — (m1*c2 + m1*m2*c3 + m1*m2*m3*cm) * N —
        equals the per-miss-count form."""
        m = tiny_machine()
        s = stats(1000, 900, 60, 30)
        m1 = s.l1.miss_rate
        m2 = s.l2.miss_rate
        m3 = s.l3.miss_rate
        n = s.l1.accesses
        rate_form = (
            m1 * m.l2.latency_cycles
            + m1 * m2 * m.l3.latency_cycles
            + m1 * m2 * m3 * m.memory_latency_cycles
        ) * n
        assert rate_form == pytest.approx(extra_miss_cycles(s, m))

    def test_no_misses_no_extra_cost(self):
        m = tiny_machine()
        s = stats(500, 500, 0, 0)
        assert extra_miss_cycles(s, m) == 0.0


class TestModeledTime:
    def test_breakdown_sums(self):
        m = tiny_machine()
        s = stats(1000, 900, 60, 30)
        cost = modeled_time(s, m)
        assert cost.num_accesses == 1000
        assert cost.base_cycles == 1000 * m.base_cycles_per_access
        assert cost.total_cycles == cost.base_cycles + cost.extra_cycles
        assert cost.extra_cycles == extra_miss_cycles(s, m)

    def test_seconds_conversion(self):
        m = tiny_machine()
        s = stats(100, 100, 0, 0)
        cost = modeled_time(s, m)
        assert cost.seconds(m) == pytest.approx(100 / m.frequency_hz)

    def test_explicit_access_count(self):
        m = tiny_machine()
        s = stats(100, 100, 0, 0)
        cost = modeled_time(s, m, num_accesses=500)
        assert cost.num_accesses == 500
        assert cost.base_cycles == 500.0
