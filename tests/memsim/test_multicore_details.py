"""Additional multicore-simulator behaviour tests."""

import numpy as np
import pytest

from repro.memsim import simulate_multicore, tiny_machine


class TestQuantum:
    def test_quantum_changes_interleaving_not_work(self, rng):
        m = tiny_machine()
        streams = [rng.integers(0, 150, 400), rng.integers(200, 350, 400)]
        coarse = simulate_multicore(streams, m, affinity="compact", quantum=256)
        fine = simulate_multicore(streams, m, affinity="compact", quantum=8)
        # Total accesses identical; shared-L3 contention differs with
        # the interleaving grain.
        assert coarse.total_accesses == fine.total_accesses
        assert coarse.combined.l1.accesses == fine.combined.l1.accesses

    def test_private_levels_immune_to_quantum(self, rng):
        m = tiny_machine()
        streams = [rng.integers(0, 150, 400), rng.integers(200, 350, 400)]
        coarse = simulate_multicore(streams, m, affinity="compact", quantum=256)
        fine = simulate_multicore(streams, m, affinity="compact", quantum=8)
        # L1/L2 are private: their hit counts cannot depend on how the
        # socket interleaves its cores.
        for a, b in zip(coarse.per_core, fine.per_core):
            assert a.stats.l1.hits == b.stats.l1.hits
            assert a.stats.l2.hits == b.stats.l2.hits


class TestUnevenStreams:
    def test_cores_with_different_lengths(self, rng):
        m = tiny_machine()
        streams = [
            rng.integers(0, 50, 1000),
            rng.integers(0, 50, 10),
            rng.integers(0, 50, 0),
        ]
        mc = simulate_multicore(streams, m, affinity="scatter")
        assert [c.cost.num_accesses for c in mc.per_core] == [1000, 10, 0]

    def test_per_core_sockets_recorded(self):
        m = tiny_machine()
        mc = simulate_multicore(
            [np.arange(10)] * 4, m, affinity="compact"
        )
        assert [c.socket for c in mc.per_core] == [0, 0, 1, 1]
