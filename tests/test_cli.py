"""End-to-end tests of the command-line interface."""

import numpy as np
import pytest

from repro.cli import main
from repro.mesh import read_triangle


@pytest.fixture
def mesh_stem(tmp_path):
    stem = tmp_path / "m"
    rc = main(["generate", "stress", str(stem), "--vertices", "300", "--seed", "1"])
    assert rc == 0
    return stem


class TestGenerate:
    def test_writes_files(self, mesh_stem, capsys):
        assert mesh_stem.with_suffix(".node").exists()
        assert mesh_stem.with_suffix(".ele").exists()
        mesh = read_triangle(mesh_stem)
        assert mesh.num_vertices > 200

    def test_reports_stats(self, tmp_path, capsys):
        main(["generate", "lake", str(tmp_path / "x"), "--vertices", "300"])
        out = capsys.readouterr().out
        assert "vertices" in out and "quality" in out

    def test_rejects_unknown_domain(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["generate", "atlantis", str(tmp_path / "x")])


class TestGenerateVariants:
    def test_uniform_quality_structure(self, tmp_path, capsys):
        rc = main(
            ["generate", "crake", str(tmp_path / "u"), "--vertices", "300",
             "--quality-structure", "uniform"]
        )
        assert rc == 0
        mesh = read_triangle(tmp_path / "u")
        assert mesh.num_vertices > 200


class TestSmooth:
    def test_smooth_without_ordering_or_output(self, mesh_stem, capsys):
        rc = main(["smooth", str(mesh_stem), "--max-iterations", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "iterations" in out

    def test_smooth_storage_traversal(self, mesh_stem, capsys):
        rc = main(
            ["smooth", str(mesh_stem), "--traversal", "storage",
             "--max-iterations", "2"]
        )
        assert rc == 0

    def test_smooth_improves_quality(self, mesh_stem, tmp_path, capsys):
        out_stem = tmp_path / "smoothed"
        rc = main(["smooth", str(mesh_stem), "--output", str(out_stem)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "->" in out
        assert out_stem.with_suffix(".node").exists()

    def test_smooth_with_ordering(self, mesh_stem, capsys):
        rc = main(["smooth", str(mesh_stem), "--ordering", "rdr"])
        assert rc == 0

    def test_smooth_with_cache_report(self, mesh_stem, capsys):
        rc = main(
            ["smooth", str(mesh_stem), "--ordering", "rdr", "--report-cache",
             "--max-iterations", "2"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "L1" in out and "modeled time" in out


class TestReorder:
    def test_reorder_writes_permuted_mesh(self, mesh_stem, tmp_path, capsys):
        out_stem = tmp_path / "reordered"
        rc = main(["reorder", str(mesh_stem), str(out_stem), "--ordering", "bfs"])
        assert rc == 0
        original = read_triangle(mesh_stem)
        permuted = read_triangle(out_stem)
        assert permuted.num_vertices == original.num_vertices
        # Same vertex set, different order.
        assert not np.allclose(permuted.vertices, original.vertices)
        assert set(map(tuple, permuted.vertices)) == set(
            map(tuple, original.vertices)
        )

    def test_report_cost(self, mesh_stem, tmp_path, capsys):
        rc = main(
            ["reorder", str(mesh_stem), str(tmp_path / "r"), "--report-cost"]
        )
        assert rc == 0
        assert "smoothing iterations" in capsys.readouterr().out


class TestAnalyze:
    def test_analyze_prints_breakdown(self, mesh_stem, capsys):
        rc = main(["analyze", str(mesh_stem), "--ordering", "rdr"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "per-array breakdown" in out
        assert "coords" in out and "adjncy" in out
        assert "reuse distance" in out

    def test_analyze_saves_trace(self, mesh_stem, tmp_path, capsys):
        target = tmp_path / "trace.npz"
        rc = main(["analyze", str(mesh_stem), "--save-trace", str(target)])
        assert rc == 0
        assert target.exists()
        from repro.memsim import AccessTrace

        trace = AccessTrace.load_npz(target)
        assert len(trace) > 0


class TestExperimentAndList:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "rdr" in out and "carabiner" in out and "fig8" in out

    def test_small_experiment(self, capsys):
        rc = main(["experiment", "table1", "--scale", "0.001"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "M1" in out and "carabiner" in out

    def test_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["experiment", "fig99"])
