"""End-to-end tests of the command-line interface."""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.mesh import read_triangle


def _flatten(span_dicts):
    """Every span dict in a nested forest, depth-first."""
    for node in span_dicts:
        yield node
        yield from _flatten(node.get("children", ()))


@pytest.fixture
def mesh_stem(tmp_path):
    stem = tmp_path / "m"
    rc = main(["generate", "stress", str(stem), "--vertices", "300", "--seed", "1"])
    assert rc == 0
    return stem


class TestGenerate:
    def test_writes_files(self, mesh_stem, capsys):
        assert mesh_stem.with_suffix(".node").exists()
        assert mesh_stem.with_suffix(".ele").exists()
        mesh = read_triangle(mesh_stem)
        assert mesh.num_vertices > 200

    def test_reports_stats(self, tmp_path, capsys):
        main(["generate", "lake", str(tmp_path / "x"), "--vertices", "300"])
        out = capsys.readouterr().out
        assert "vertices" in out and "quality" in out

    def test_rejects_unknown_domain(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["generate", "atlantis", str(tmp_path / "x")])


class TestGenerateVariants:
    def test_uniform_quality_structure(self, tmp_path, capsys):
        rc = main(
            ["generate", "crake", str(tmp_path / "u"), "--vertices", "300",
             "--quality-structure", "uniform"]
        )
        assert rc == 0
        mesh = read_triangle(tmp_path / "u")
        assert mesh.num_vertices > 200


class TestSmooth:
    def test_smooth_without_ordering_or_output(self, mesh_stem, capsys):
        rc = main(["smooth", str(mesh_stem), "--max-iterations", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "iterations" in out

    def test_smooth_storage_traversal(self, mesh_stem, capsys):
        rc = main(
            ["smooth", str(mesh_stem), "--traversal", "storage",
             "--max-iterations", "2"]
        )
        assert rc == 0

    def test_smooth_improves_quality(self, mesh_stem, tmp_path, capsys):
        out_stem = tmp_path / "smoothed"
        rc = main(["smooth", str(mesh_stem), "--output", str(out_stem)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "->" in out
        assert out_stem.with_suffix(".node").exists()

    def test_smooth_with_ordering(self, mesh_stem, capsys):
        rc = main(["smooth", str(mesh_stem), "--ordering", "rdr"])
        assert rc == 0

    def test_smooth_with_cache_report(self, mesh_stem, capsys):
        rc = main(
            ["smooth", str(mesh_stem), "--ordering", "rdr", "--report-cache",
             "--max-iterations", "2"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "L1" in out and "modeled time" in out


class TestReorder:
    def test_reorder_writes_permuted_mesh(self, mesh_stem, tmp_path, capsys):
        out_stem = tmp_path / "reordered"
        rc = main(["reorder", str(mesh_stem), str(out_stem), "--ordering", "bfs"])
        assert rc == 0
        original = read_triangle(mesh_stem)
        permuted = read_triangle(out_stem)
        assert permuted.num_vertices == original.num_vertices
        # Same vertex set, different order.
        assert not np.allclose(permuted.vertices, original.vertices)
        assert set(map(tuple, permuted.vertices)) == set(
            map(tuple, original.vertices)
        )

    def test_report_cost(self, mesh_stem, tmp_path, capsys):
        rc = main(
            ["reorder", str(mesh_stem), str(tmp_path / "r"), "--report-cost"]
        )
        assert rc == 0
        assert "smoothing iterations" in capsys.readouterr().out


class TestAnalyze:
    def test_analyze_prints_breakdown(self, mesh_stem, capsys):
        rc = main(["analyze", str(mesh_stem), "--ordering", "rdr"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "per-array breakdown" in out
        assert "coords" in out and "adjncy" in out
        assert "reuse distance" in out

    def test_analyze_saves_trace(self, mesh_stem, tmp_path, capsys):
        target = tmp_path / "trace.npz"
        rc = main(["analyze", str(mesh_stem), "--save-trace", str(target)])
        assert rc == 0
        assert target.exists()
        from repro.memsim import AccessTrace

        trace = AccessTrace.load_npz(target)
        assert len(trace) > 0


class TestExperimentAndList:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "rdr" in out and "carabiner" in out and "fig8" in out

    def test_small_experiment(self, capsys):
        rc = main(["experiment", "table1", "--scale", "0.001"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "M1" in out and "carabiner" in out

    def test_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["experiment", "fig99"])


class TestSeedFlag:
    def test_generate_seed_is_reproducible(self, tmp_path):
        for stem in ("a", "b"):
            main(["generate", "ocean", str(tmp_path / stem),
                  "--vertices", "250", "--seed", "7"])
        a = read_triangle(tmp_path / "a")
        b = read_triangle(tmp_path / "b")
        assert np.array_equal(a.vertices, b.vertices)
        assert np.array_equal(a.triangles, b.triangles)

    def test_generate_seed_changes_the_mesh(self, tmp_path):
        main(["generate", "ocean", str(tmp_path / "a"),
              "--vertices", "250", "--seed", "1"])
        main(["generate", "ocean", str(tmp_path / "b"),
              "--vertices", "250", "--seed", "2"])
        a = read_triangle(tmp_path / "a")
        b = read_triangle(tmp_path / "b")
        assert not (
            a.num_vertices == b.num_vertices
            and np.array_equal(a.vertices, b.vertices)
        )

    def test_reorder_random_seed_is_reproducible(self, mesh_stem, tmp_path):
        for stem in ("a", "b"):
            main(["reorder", str(mesh_stem), str(tmp_path / stem),
                  "--ordering", "random", "--seed", "11"])
        a = read_triangle(tmp_path / "a")
        b = read_triangle(tmp_path / "b")
        assert np.array_equal(a.vertices, b.vertices)

    def test_smooth_accepts_seed(self, mesh_stem, capsys):
        rc = main(["smooth", str(mesh_stem), "--ordering", "random",
                   "--seed", "3", "--max-iterations", "2"])
        assert rc == 0


class TestEngineFlags:
    def test_smooth_accepts_engine_flags(self, mesh_stem, capsys):
        rc = main(["smooth", str(mesh_stem), "--engine", "vectorized",
                   "--sim-engine", "batched", "--report-cache",
                   "--ordering", "rdr", "--max-iterations", "2"])
        assert rc == 0
        assert "L1" in capsys.readouterr().out

    def test_rejects_unknown_engine(self, mesh_stem):
        with pytest.raises(SystemExit):
            main(["smooth", str(mesh_stem), "--engine", "turbo"])

    def test_list_shows_engine_axes(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "engines:" in out and "vectorized" in out
        assert "sim engines:" in out and "batched" in out
        assert "mem engines:" in out and "sharded" in out
        assert "backends:" in out and "numpy" in out

    def test_rejects_unknown_backend(self, mesh_stem):
        # argparse choices= derived from engine_axes(): exit status 2.
        with pytest.raises(SystemExit) as exc:
            main(["smooth", str(mesh_stem), "--backend", "tensorflow"])
        assert exc.value.code == 2

    def test_smooth_accepts_backend_flag(self, mesh_stem, capsys):
        rc = main(["smooth", str(mesh_stem), "--ordering", "rdr",
                   "--engine", "vectorized", "--backend", "numpy",
                   "--max-iterations", "2"])
        assert rc == 0
        assert "smoothed" in capsys.readouterr().out

    def test_smooth_accepts_machine_profile(self, mesh_stem, capsys):
        rc = main(["smooth", str(mesh_stem), "--ordering", "rdr",
                   "--report-cache", "--machine-profile", "gpu-generic",
                   "--max-iterations", "2"])
        assert rc == 0
        assert "cache (simulated)" in capsys.readouterr().out


class TestObsFlags:
    def test_analyze_generated_domain_with_trace_and_metrics(
        self, tmp_path, capsys
    ):
        trace = tmp_path / "trace.jsonl"
        metrics = tmp_path / "metrics.json"
        rc = main(["analyze", "--domain", "ocean", "--vertices", "200",
                   "--ordering", "rdr", "--iterations", "2",
                   "--trace-out", str(trace), "--metrics-out", str(metrics)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "wrote span trace" in out and "wrote metrics snapshot" in out

        from repro.obs import read_spans_jsonl

        names = {row["name"] for row in read_spans_jsonl(trace)}
        # The exported tree covers the whole generate -> reorder ->
        # smooth -> simulate pipeline.
        assert {"meshgen.generate", "pipeline.run_ordering",
                "pipeline.reorder", "pipeline.smooth", "smooth.run",
                "pipeline.simulate", "memsim.simulate_trace"} <= names

        snap = json.loads(metrics.read_text())
        assert snap["counters"]["memsim.l1.accesses"] > 0
        assert snap["counters"]["memsim.l1.misses"] > 0
        assert snap["histograms"]["memsim.reuse_distance"]["total"] > 0

    def test_analyze_unit_square_domain(self, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        rc = main(["analyze", "--domain", "unit-square", "--vertices", "100",
                   "--trace-out", str(trace)])
        assert rc == 0
        assert trace.exists()
        assert "per-array breakdown" in capsys.readouterr().out

    def test_analyze_without_input_or_domain_exits_2(self, capsys):
        rc = main(["analyze"])
        assert rc == 2
        assert "analyze input" in capsys.readouterr().err

    def test_smooth_trace_out(self, mesh_stem, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        rc = main(["smooth", str(mesh_stem), "--max-iterations", "2",
                   "--trace-out", str(trace)])
        assert rc == 0
        from repro.obs import read_spans_jsonl

        assert any(
            row["name"] == "smooth.run" for row in read_spans_jsonl(trace)
        )


class TestErrorHandling:
    def test_missing_input_exits_2_with_message(self, tmp_path, capsys):
        rc = main(["smooth", str(tmp_path / "nope")])
        assert rc == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and err.count("\n") == 1

    def test_lab_unknown_domain_exits_2_listing_choices(self, tmp_path, capsys):
        rc = main(["lab", "init", "--db", str(tmp_path / "lab.db"),
                   "--domains", "atlantis"])
        assert rc == 2
        err = capsys.readouterr().err
        assert "unknown domain 'atlantis'" in err
        assert "ocean" in err and err.count("\n") == 1

    def test_lab_unknown_ordering_exits_2_listing_choices(
        self, tmp_path, capsys
    ):
        rc = main(["lab", "init", "--db", str(tmp_path / "lab.db"),
                   "--orderings", "zorder"])
        assert rc == 2
        err = capsys.readouterr().err
        assert "unknown ordering 'zorder'" in err and "rdr" in err

    def test_lab_unknown_experiment_exits_2_listing_choices(
        self, tmp_path, capsys
    ):
        rc = main(["lab", "init", "--db", str(tmp_path / "lab.db"),
                   "--experiments", "nope"])
        assert rc == 2
        err = capsys.readouterr().err
        assert "unknown experiment 'nope'" in err and "pipeline" in err

    def test_bad_stream_window_exits_2(self, mesh_stem, capsys):
        rc = main(["analyze", str(mesh_stem), "--stream-window", "0"])
        assert rc == 2
        err = capsys.readouterr().err
        assert "unknown stream window '0'" in err and err.count("\n") == 1

    def test_lab_bad_stream_window_exits_2(self, tmp_path, capsys):
        rc = main(["lab", "init", "--db", str(tmp_path / "lab.db"),
                   "--stream-windows", "-3"])
        assert rc == 2
        assert "unknown stream window '-3'" in capsys.readouterr().err


class TestLab:
    def lab_args(self, tmp_path):
        return ["lab", "init", "--db", str(tmp_path / "lab.db"),
                "--domains", "ocean", "--orderings", "ori,rdr",
                "--experiments", "smooth", "--vertices", "150",
                "--max-iterations", "2"]

    def test_init_run_status_export(self, tmp_path, capsys):
        assert main(self.lab_args(tmp_path)) == 0
        assert "2 jobs queued" in capsys.readouterr().out

        assert main(["lab", "run", "--db", str(tmp_path / "lab.db"),
                     "--workers", "1"]) == 0
        out = capsys.readouterr().out
        assert "done 2, failed 0" in out
        assert "artifact cache" in out

        assert main(["lab", "status", "--db", str(tmp_path / "lab.db")]) == 0
        out = capsys.readouterr().out
        assert "done     2" in out

        target = tmp_path / "rows.json"
        assert main(["lab", "export", "--db", str(tmp_path / "lab.db"),
                     str(target)]) == 0
        rows = json.loads(target.read_text())
        assert len(rows) == 2
        assert {r["ordering"] for r in rows} == {"ori", "rdr"}
        assert all("final_quality" in r for r in rows)

    def test_init_is_idempotent_for_the_same_grid(self, tmp_path, capsys):
        assert main(self.lab_args(tmp_path)) == 0
        assert main(self.lab_args(tmp_path)) == 0
        out = capsys.readouterr().out
        assert "already holds this grid" in out
        from repro.lab import JobStore

        store = JobStore(tmp_path / "lab.db")
        assert sum(store.counts().values()) == 2
        store.close()

    def test_export_csv(self, tmp_path, capsys):
        main(self.lab_args(tmp_path))
        main(["lab", "run", "--db", str(tmp_path / "lab.db")])
        target = tmp_path / "rows.csv"
        main(["lab", "export", "--db", str(tmp_path / "lab.db"), str(target)])
        header, *body = target.read_text().splitlines()
        assert "ordering" in header and "final_quality" in header
        assert len(body) == 2

    def test_init_unknown_mem_engine_exits_2(self, tmp_path, capsys):
        rc = main(["lab", "init", "--db", str(tmp_path / "lab.db"),
                   "--mem-engines", "turbo"])
        assert rc == 2
        err = capsys.readouterr().err
        assert "unknown mem engine 'turbo'" in err and "sharded" in err

    def test_init_unknown_backend_exits_2(self, tmp_path, capsys):
        rc = main(["lab", "init", "--db", str(tmp_path / "lab.db"),
                   "--backends", "tensorflow"])
        assert rc == 2
        err = capsys.readouterr().err
        assert "unknown backend 'tensorflow'" in err and "numpy" in err

    def test_run_obs_export_with_spans(self, tmp_path, capsys):
        db = tmp_path / "lab.db"
        assert main(["lab", "init", "--db", str(db), "--domains", "ocean",
                     "--orderings", "rdr", "--experiments", "smooth",
                     "--vertices", "150", "--max-iterations", "2"]) == 0
        assert main(["lab", "run", "--db", str(db), "--obs"]) == 0
        target = tmp_path / "rows.json"
        assert main(["lab", "export", "--db", str(db), str(target),
                     "--with-spans"]) == 0
        rows = json.loads(target.read_text())
        assert len(rows) == 1
        (row,) = rows
        assert row["spans"], "job_spans telemetry should join onto the row"
        names = {s["name"] for s in _flatten(row["spans"])}
        assert "smooth.run" in names
        assert row["metrics"]["counters"]["smoothing.vertices_smoothed"] > 0

    def test_export_without_spans_keeps_rows_flat(self, tmp_path):
        db = tmp_path / "lab.db"
        main(["lab", "init", "--db", str(db), "--domains", "ocean",
              "--orderings", "rdr", "--experiments", "smooth",
              "--vertices", "150", "--max-iterations", "2"])
        main(["lab", "run", "--db", str(db), "--obs"])
        target = tmp_path / "rows.json"
        main(["lab", "export", "--db", str(db), str(target)])
        (row,) = json.loads(target.read_text())
        assert "spans" not in row

    def test_reset_requeues_failed(self, tmp_path, capsys):
        from repro.lab import JobStore

        db = tmp_path / "lab.db"
        store = JobStore(db)
        store.create_run({}, [("k", {"experiment": "smooth"})], max_attempts=1)
        job = store.claim("w")
        store.fail(job.id, "boom")
        store.close()
        assert main(["lab", "reset", "--db", str(db)]) == 0
        assert "re-queued 1" in capsys.readouterr().out


class TestLabDistributedCLI:
    def test_bad_server_url_exits_2_listing_valid_forms(self, capsys):
        rc = main(["lab", "status", "--server", "ftp://somewhere:1"])
        assert rc == 2
        err = capsys.readouterr().err
        assert "unknown server URL 'ftp://somewhere:1'" in err
        assert "http://<host>:<port>" in err and err.count("\n") == 1

    def test_work_rejects_a_pathlike_server_target(self, capsys):
        rc = main(["lab", "work", "--server", "lab.db"])
        assert rc == 2
        assert "unknown server URL" in capsys.readouterr().err

    def test_unreachable_server_exits_2_with_one_line(self, capsys):
        rc = main(["lab", "status", "--server", "http://127.0.0.1:9"])
        assert rc == 2
        err = capsys.readouterr().err
        assert err.startswith("error: job server unreachable")
        assert err.count("\n") == 1

    def test_status_watch_local_store(self, tmp_path, capsys):
        from repro.lab import JobStore

        db = tmp_path / "lab.db"
        store = JobStore(db)
        store.create_run({}, [("k", {"experiment": "smooth"})])
        job = store.claim("w")
        store.complete(job.id, {"ok": True}, wall_s=0.1)
        store.close()
        rc = main(["lab", "status", "--db", str(db), "--watch"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "watching" in out
        assert "1/1 done" in out

    def test_status_watch_against_a_live_server(self, tmp_path, capsys):
        from repro.lab import LabServer

        server = LabServer(tmp_path / "lab.db", port=0).start_background()
        try:
            rc = main(["lab", "status", "--server", server.url, "--watch"])
            assert rc == 0
            assert "0/0 done" in capsys.readouterr().out
        finally:
            server.shutdown()
