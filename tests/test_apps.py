"""Tests for the extension applications (repro.apps) and dynamic reordering."""

import numpy as np
import pytest

from repro.apps import (
    inverted_triangles,
    laplacian_matrix_dense,
    laplacian_spmv,
    patch_metric,
    smart_laplacian_smooth,
    untangle,
)
from repro.core import run_dynamic_reordering
from repro.meshgen import perturb_interior, structured_rectangle
from repro.quality import global_quality


class TestSpmv:
    def test_matches_dense_laplacian(self, ocean_mesh, rng):
        x = rng.random(ocean_mesh.num_vertices)
        out = laplacian_spmv(ocean_mesh, x)
        assert np.allclose(out.y, laplacian_matrix_dense(ocean_mesh) @ x)

    def test_traced_and_untraced_agree(self, ocean_mesh, rng):
        x = rng.random(ocean_mesh.num_vertices)
        a = laplacian_spmv(ocean_mesh, x, record_trace=True)
        b = laplacian_spmv(ocean_mesh, x, record_trace=False)
        assert np.allclose(a.y, b.y)
        assert a.trace is not None and b.trace is None

    def test_constant_vector_in_kernel(self, ocean_mesh):
        # The graph Laplacian annihilates constants.
        ones = np.ones(ocean_mesh.num_vertices)
        out = laplacian_spmv(ocean_mesh, ones)
        assert np.allclose(out.y, 0.0)

    def test_chained_iterations(self, ocean_mesh, rng):
        x = rng.random(ocean_mesh.num_vertices)
        L = laplacian_matrix_dense(ocean_mesh)
        out = laplacian_spmv(ocean_mesh, x, iterations=3)
        assert np.allclose(out.y, L @ (L @ (L @ x)))

    def test_trace_iteration_count(self, ocean_mesh, rng):
        x = rng.random(ocean_mesh.num_vertices)
        out = laplacian_spmv(ocean_mesh, x, iterations=2, record_trace=True)
        assert out.trace.num_iterations == 2

    def test_rejects_bad_shape(self, ocean_mesh):
        with pytest.raises(ValueError, match="shape"):
            laplacian_spmv(ocean_mesh, np.zeros(3))


@pytest.fixture
def tangled_mesh():
    return perturb_interior(structured_rectangle(12, 12), amplitude=0.06, seed=3)


class TestUntangle:
    def test_fixture_is_tangled(self, tangled_mesh):
        assert inverted_triangles(tangled_mesh).size > 0

    def test_untangles(self, tangled_mesh):
        out = untangle(tangled_mesh)
        assert out.untangled
        assert inverted_triangles(out.mesh).size == 0

    def test_history_reaches_zero(self, tangled_mesh):
        out = untangle(tangled_mesh)
        assert out.inverted_history[0] > 0
        assert out.inverted_history[-1] == 0

    def test_clean_mesh_is_noop(self, ocean_mesh):
        out = untangle(ocean_mesh)
        assert out.sweeps == 0
        assert np.array_equal(out.mesh.vertices, ocean_mesh.vertices)

    def test_boundary_fixed(self, tangled_mesh):
        out = untangle(tangled_mesh)
        b = tangled_mesh.boundary_mask
        assert np.array_equal(out.mesh.vertices[b], tangled_mesh.vertices[b])

    def test_trace_recorded(self, tangled_mesh):
        out = untangle(tangled_mesh, record_trace=True)
        assert out.trace is not None and len(out.trace) > 0

    def test_worst_first_traversal(self, tangled_mesh):
        out = untangle(tangled_mesh)
        areas = tangled_mesh.triangle_areas()
        xadj, tri_ids = tangled_mesh.vertex_triangles
        first = int(out.traversals[0][0])
        # First visited vertex touches the most inverted triangle of
        # any visited vertex.
        def worst(v):
            ids = tri_ids[xadj[v] : xadj[v + 1]]
            return areas[ids].min()
        assert worst(first) == min(worst(int(v)) for v in out.traversals[0])

    def test_rejects_bad_step(self, tangled_mesh):
        with pytest.raises(ValueError, match="step"):
            untangle(tangled_mesh, step=0.0)


class TestSmartLaplacian:
    def test_improves_quality(self, ocean_mesh):
        out = smart_laplacian_smooth(ocean_mesh, max_iterations=6)
        assert out.final_quality > out.initial_quality

    def test_never_inverts_elements(self, tangled_mesh):
        # Start from a clean mesh; the guard must keep it clean.
        clean = untangle(tangled_mesh).mesh
        out = smart_laplacian_smooth(clean, max_iterations=8)
        assert inverted_triangles(out.mesh).size == 0

    def test_boundary_fixed(self, ocean_mesh):
        out = smart_laplacian_smooth(ocean_mesh, max_iterations=3)
        b = ocean_mesh.boundary_mask
        assert np.array_equal(out.mesh.vertices[b], ocean_mesh.vertices[b])

    def test_patch_metric_inverted_negative(self):
        coords = np.array([[0.0, 0.0], [1.0, 0.0], [0.5, -0.5]])
        assert patch_metric(coords, np.array([[0, 1, 2]])) == -1.0

    def test_patch_metric_equilateral(self):
        coords = np.array([[0.0, 0.0], [1.0, 0.0], [0.5, np.sqrt(3) / 2]])
        assert patch_metric(coords, np.array([[0, 1, 2]])) == pytest.approx(1.0)


class TestDynamicReordering:
    def test_static_single_reorder(self, ocean_mesh):
        run = run_dynamic_reordering(ocean_mesh, "rdr", every=0, iterations=4)
        assert run.num_reorders == 1
        assert len(run.segment_seconds) == 1

    def test_dynamic_reorder_count(self, ocean_mesh):
        run = run_dynamic_reordering(ocean_mesh, "rdr", every=2, iterations=4)
        assert run.num_reorders == 2

    def test_static_beats_dynamic(self, ocean_mesh):
        static = run_dynamic_reordering(ocean_mesh, "rdr", every=0, iterations=4)
        dynamic = run_dynamic_reordering(ocean_mesh, "rdr", every=1, iterations=4)
        assert static.total_seconds < dynamic.total_seconds

    def test_quality_similar_between_strategies(self, ocean_mesh):
        static = run_dynamic_reordering(ocean_mesh, "rdr", every=0, iterations=4)
        dynamic = run_dynamic_reordering(ocean_mesh, "rdr", every=2, iterations=4)
        assert abs(static.final_quality - dynamic.final_quality) < 0.02

    def test_rejects_bad_args(self, ocean_mesh):
        with pytest.raises(ValueError, match="every"):
            run_dynamic_reordering(ocean_mesh, every=-1)
        with pytest.raises(ValueError, match="iterations"):
            run_dynamic_reordering(ocean_mesh, iterations=0)


class TestCulling:
    def test_active_set_shrinks(self, ocean_mesh):
        from repro.smoothing import laplacian_smooth

        run = laplacian_smooth(
            ocean_mesh, culling=True, max_iterations=25, tol=-np.inf
        )
        counts = run.active_counts
        assert counts[0] == ocean_mesh.interior_vertices().size
        assert counts[-1] < 0.5 * counts[0]

    def test_quality_comparable_to_full_sweeps(self, ocean_mesh):
        from repro.smoothing import laplacian_smooth

        culled = laplacian_smooth(
            ocean_mesh, culling=True, max_iterations=20, tol=-np.inf
        )
        full = laplacian_smooth(
            ocean_mesh, culling=False, max_iterations=20, tol=-np.inf
        )
        assert culled.final_quality > full.final_quality - 0.01

    def test_trace_shrinks_with_culling(self, ocean_mesh):
        from repro.smoothing import laplacian_smooth

        culled = laplacian_smooth(
            ocean_mesh, culling=True, max_iterations=20, tol=-np.inf,
            record_trace=True,
        )
        full = laplacian_smooth(
            ocean_mesh, culling=False, max_iterations=20, tol=-np.inf,
            record_trace=True,
        )
        assert len(culled.trace) < len(full.trace)

    def test_culling_requires_gauss_seidel(self):
        from repro.smoothing import LaplacianSmoother

        with pytest.raises(ValueError, match="gauss-seidel"):
            LaplacianSmoother(culling=True, update="jacobi")

    def test_terminates_when_everything_culled(self, grid_mesh):
        from repro.smoothing import laplacian_smooth

        # A nearly perfect mesh: everything culls almost immediately.
        run = laplacian_smooth(
            grid_mesh, culling=True, max_iterations=50, tol=-np.inf
        )
        assert run.converged
        assert run.iterations < 50


class TestPrefetcher:
    def test_prefetch_helps_streaming(self, rng):
        from repro.memsim import simulate_trace, tiny_machine

        stream = np.arange(2000) % 500  # sequential sweep, repeated
        base = simulate_trace(stream, tiny_machine())
        pf = simulate_trace(stream, tiny_machine(), next_line_prefetch=True)
        assert pf.l1.misses < base.l1.misses

    def test_prefetch_useless_for_random(self, rng):
        from repro.memsim import simulate_trace, tiny_machine

        stream = rng.integers(0, 5000, 2000)
        base = simulate_trace(stream, tiny_machine())
        pf = simulate_trace(stream, tiny_machine(), next_line_prefetch=True)
        # Random accesses gain little (and may even lose to pollution).
        saved = base.l1.misses - pf.l1.misses
        assert saved < 0.05 * base.l1.misses

    def test_prefetch_counter(self):
        from repro.memsim import CacheHierarchy, tiny_machine

        h = CacheHierarchy(tiny_machine(), next_line_prefetch=True)
        h.access(0)
        assert h.prefetches_issued == 1
        assert h.l1.contains(1)
