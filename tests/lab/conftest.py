"""Shared lab fixtures: the chaos harness as a reusable building block.

``fault_lab`` replaces the hand-rolled monkeypatched failure setups the
distributed suites used to carry: tests declare a
:class:`repro.lab.FaultPlan` and get back a live server + client pair
with the plan wired into both seams.
"""

import pytest

from repro.lab import DEFAULT_LEASE_S, HttpJobStore, LabServer


@pytest.fixture
def fault_lab(tmp_path):
    """Factory: ``make(plan, ...) -> (server, store)`` — a live
    :class:`LabServer` and a fault-injected :class:`HttpJobStore`
    sharing one fault plan (server middleware + client transport), torn
    down at test end.  Pass ``plan=None`` for a fault-free pair."""
    created = []

    def make(
        plan,
        *,
        lease_s=DEFAULT_LEASE_S,
        token=None,
        retries=5,
        backoff_s=0.01,
        deadline_s=60.0,
    ):
        server = LabServer(
            tmp_path / f"lab{len(created)}.db",
            port=0,
            token=token,
            lease_s=lease_s,
            clock=plan.clock if plan is not None else None,
            faults=plan,
        ).start_background()
        store = HttpJobStore(
            server.url,
            token=token,
            retries=retries,
            backoff_s=backoff_s,
            deadline_s=deadline_s,
            faults=plan,
        )
        created.append((server, store))
        return server, store

    yield make
    for server, store in created:
        store.close()
        server.shutdown()
