"""Hypothesis properties for the server's idempotency-replay cache.

The cache is what makes client retries of non-idempotent mutations
safe, so its two resource guarantees get property coverage: under
arbitrary interleavings of record / replay / time advance it never
replays a response recorded more than ``ttl_s`` ago, never replays
anything but the exact recorded response, and never grows past its
entry bound.
"""

from hypothesis import given, settings, strategies as st

from repro.lab import IdempotencyCache

TTL_S = 10.0
MAX_ENTRIES = 8

operations = st.lists(
    st.one_of(
        st.tuples(st.just("put"), st.sampled_from("abcdef")),
        st.tuples(st.just("get"), st.sampled_from("abcdef")),
        st.tuples(st.just("advance"), st.integers(min_value=1, max_value=7)),
    ),
    max_size=60,
)


@given(ops=operations)
@settings(max_examples=200, deadline=None)
def test_never_replays_stale_and_never_grows_unbounded(ops):
    clock = [0.0]
    cache = IdempotencyCache(
        ttl_s=TTL_S, max_entries=MAX_ENTRIES, clock=lambda: clock[0]
    )
    recorded: dict[str, tuple[float, dict]] = {}
    serial = 0
    for op in ops:
        if op[0] == "advance":
            clock[0] += op[1]
        elif op[0] == "put":
            serial += 1
            response = {"serial": serial}
            cache.put(op[1], response)
            recorded[op[1]] = (clock[0], response)
        else:
            response = cache.get(op[1])
            if response is not None:
                recorded_at, expected = recorded[op[1]]
                assert response == expected  # only ever the recorded one
                assert clock[0] - recorded_at <= TTL_S  # never stale
        assert len(cache) <= MAX_ENTRIES


@given(n_puts=st.integers(min_value=1, max_value=12))
@settings(max_examples=50, deadline=None)
def test_fifo_eviction_drops_the_oldest_entries(n_puts):
    cache = IdempotencyCache(ttl_s=TTL_S, max_entries=4, clock=lambda: 0.0)
    for i in range(n_puts):
        cache.put(f"k{i}", {"i": i})
    surviving = {f"k{i}" for i in range(max(0, n_puts - 4), n_puts)}
    for i in range(n_puts):
        key = f"k{i}"
        if key in surviving:
            assert cache.get(key) == {"i": i}
        else:
            assert cache.get(key) is None


def test_ttl_boundary_is_inclusive():
    clock = [0.0]
    cache = IdempotencyCache(ttl_s=TTL_S, max_entries=4, clock=lambda: clock[0])
    cache.put("k", {"v": 1})
    clock[0] = TTL_S
    assert cache.get("k") == {"v": 1}  # exactly ttl old: still replayable
    clock[0] = TTL_S + 0.1
    assert cache.get("k") is None
    assert len(cache) == 0  # the expired entry was dropped, not kept


def test_reput_moves_a_key_to_the_fifo_tail():
    cache = IdempotencyCache(ttl_s=TTL_S, max_entries=2, clock=lambda: 0.0)
    cache.put("a", {"v": 1})
    cache.put("b", {"v": 2})
    cache.put("a", {"v": 3})  # re-record: now newest
    cache.put("c", {"v": 4})  # evicts the oldest, which is b
    assert cache.get("b") is None
    assert cache.get("a") == {"v": 3}
    assert cache.get("c") == {"v": 4}
