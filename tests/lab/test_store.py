"""Job-store semantics: atomic claims, retry/backoff, lease recovery."""

import os
import time

import pytest

from repro.lab import JobStore


@pytest.fixture
def store(tmp_path):
    s = JobStore(tmp_path / "lab.db")
    yield s
    s.close()


def seed_jobs(store, n=3, **kwargs):
    specs = [(f"job-{i}", {"experiment": "pipeline", "i": i}) for i in range(n)]
    return store.create_run({"grid": True}, specs, **kwargs)


class TestCreateRun:
    def test_inserts_one_row_per_spec(self, store):
        run_id, inserted = seed_jobs(store, 3)
        assert inserted == 3
        assert store.counts(run_id)["pending"] == 3

    def test_duplicate_keys_within_a_run_are_ignored(self, store):
        specs = [("same", {"a": 1}), ("same", {"a": 1}), ("other", {"a": 2})]
        _, inserted = store.create_run({}, specs)
        assert inserted == 2

    def test_grid_round_trips(self, store):
        run_id, _ = store.create_run({"domains": ["ocean"]}, [("k", {})])
        assert store.run_grid(run_id) == {"domains": ["ocean"]}
        assert store.latest_run_id() == run_id


class TestClaim:
    def test_claim_marks_running_with_owner_and_attempt(self, store):
        seed_jobs(store)
        job = store.claim("w1")
        assert job is not None
        assert job.status == "running"
        assert job.owner == "w1"
        assert job.attempt == 1
        assert store.counts()["running"] == 1

    def test_claims_are_disjoint(self, store):
        seed_jobs(store, 2)
        a = store.claim("w1")
        b = store.claim("w2")
        assert a.id != b.id
        assert store.claim("w3") is None

    def test_backoff_hides_jobs_until_not_before(self, store):
        seed_jobs(store, 1)
        job = store.claim("w1")
        store.fail(job.id, "boom", retry_base_s=60.0)
        # Re-queued but backing off: not claimable right now.
        assert store.counts()["pending"] == 1
        assert store.claim("w1") is None
        assert store.pending_runnable() == 0
        assert store.next_not_before() > time.time() + 30


class TestCompleteAndFail:
    def test_complete_records_result(self, store):
        run_id, _ = seed_jobs(store, 1)
        job = store.claim("w1")
        assert store.complete(job.id, {"modeled_ms": 1.5}, wall_s=0.1)
        rows = store.results(run_id)
        assert len(rows) == 1
        assert rows[0]["modeled_ms"] == 1.5
        assert rows[0]["experiment"] == "pipeline"
        assert rows[0]["attempt"] == 1

    def test_complete_is_single_shot(self, store):
        seed_jobs(store, 1)
        job = store.claim("w1")
        assert store.complete(job.id, {}, wall_s=0.0)
        # A second completion (e.g. from a stale worker) is rejected, so
        # result rows can never be duplicated.
        assert not store.complete(job.id, {}, wall_s=0.0)
        assert len(store.results()) == 1

    def test_fail_retries_with_exponential_backoff(self, store):
        seed_jobs(store, 1, max_attempts=3)
        job = store.claim("w1")
        assert store.fail(job.id, "e1", retry_base_s=0.0, now=100.0) == "pending"
        job = store.claim("w1", now=200.0)
        assert job.attempt == 2
        # Backoff doubles with the attempt number.
        store.fail(job.id, "e2", retry_base_s=4.0, now=300.0)
        assert store.next_not_before() == pytest.approx(300.0 + 4.0 * 2)

    def test_fail_exhausts_to_failed(self, store):
        seed_jobs(store, 1, max_attempts=2)
        for expected in ("pending", "failed"):
            job = store.claim("w1", now=1e12)
            assert store.fail(job.id, "boom", retry_base_s=0.0) == expected
        counts = store.counts()
        assert counts["failed"] == 1 and counts["pending"] == 0


class TestRecovery:
    def test_reset_failed_restores_attempt_budget(self, store):
        seed_jobs(store, 1, max_attempts=1)
        job = store.claim("w1")
        store.fail(job.id, "boom")
        assert store.reset() == 1
        job = store.claim("w1")
        assert job.attempt == 1  # budget restored
        assert job.status == "running"

    def test_reclaim_requeues_only_expired_leases(self, store):
        seed_jobs(store, 2)
        dead = store.claim("hostA:1:0", now=1000.0)
        alive = store.claim("hostB:2:0", now=1000.0 + store.lease_s - 1.0)
        # Just before hostA's lease lapses: nothing to reclaim.
        assert store.reclaim_expired(now=1000.0 + store.lease_s - 0.5) == 0
        # After it lapses: only the silent owner's job re-queues.
        assert store.reclaim_expired(now=1000.0 + store.lease_s + 0.5) == 1
        assert store.get(dead.id).status == "pending"
        assert store.get(alive.id).status == "running"

    def test_reclaimed_attempt_stays_counted(self, store):
        seed_jobs(store, 1)
        store.claim("hostA:1:0", now=0.0)
        store.reclaim_expired(now=store.lease_s + 1.0)
        job = store.claim("w1")
        assert job.attempt == 2

    def test_remote_owner_with_live_local_pid_is_reclaimed(self, store):
        """Regression: reclaim must not probe pids.

        The pre-lease store parsed the owner id as a local pid and
        kept any job whose pid existed on *this* host.  An owner string
        carrying the pid of a live local process — here our own pid,
        standing in for a dead worker on another machine that happened
        to share it — must still be reclaimed once its lease lapses.
        """
        seed_jobs(store, 1)
        remote = store.claim(f"other-host:{os.getpid()}:0", now=50.0)
        assert store.reclaim_expired(now=50.0 + store.lease_s + 1.0) == 1
        assert store.get(remote.id).status == "pending"

    def test_remote_owner_heartbeating_is_not_reclaimed(self, store):
        """The dual failure of pid probing: a live *remote* worker whose
        pid does not exist locally used to be reclaimed out from under
        itself.  Heartbeats keep its lease fresh regardless of host."""
        seed_jobs(store, 1)
        job = store.claim("other-host:999999999:0", now=50.0)
        assert store.heartbeat(job.id, "other-host:999999999:0", now=60.0)
        # Lease now runs from the heartbeat, not the claim.
        assert store.reclaim_expired(now=50.0 + store.lease_s + 1.0) == 0
        assert store.get(job.id).status == "running"


class TestLeases:
    def test_heartbeat_extends_the_lease(self, store):
        seed_jobs(store, 1)
        job = store.claim("w1", now=100.0)
        for t in (110.0, 120.0, 130.0):
            assert store.heartbeat(job.id, "w1", now=t)
        assert store.reclaim_expired(now=130.0 + store.lease_s - 1.0) == 0
        assert store.reclaim_expired(now=130.0 + store.lease_s + 1.0) == 1

    def test_heartbeat_reports_lost_lease(self, store):
        seed_jobs(store, 1)
        job = store.claim("w1", now=100.0)
        store.reclaim_expired(now=100.0 + store.lease_s + 1.0)
        assert not store.heartbeat(job.id, "w1")
        # ... including when another worker has since re-claimed it.
        store.claim("w2")
        assert not store.heartbeat(job.id, "w1")

    def test_stale_owner_cannot_complete_a_reclaimed_job(self, store):
        """No duplicate rows after a lease lapse: the original worker's
        late completion bounces off the owner check."""
        seed_jobs(store, 1)
        job = store.claim("w1", now=100.0)
        store.reclaim_expired(now=100.0 + store.lease_s + 1.0)
        fresh = store.claim("w2")
        assert fresh.id == job.id
        assert not store.complete(job.id, {"late": True}, wall_s=1.0,
                                  worker_id="w1")
        assert store.complete(job.id, {"late": False}, wall_s=1.0,
                              worker_id="w2")
        rows = store.results()
        assert len(rows) == 1 and rows[0]["late"] is False

    def test_stale_owner_fail_is_ignored(self, store):
        seed_jobs(store, 1)
        job = store.claim("w1", now=100.0)
        store.reclaim_expired(now=100.0 + store.lease_s + 1.0)
        store.claim("w2")
        assert store.fail(job.id, "late boom", worker_id="w1") == "stale"
        assert store.get(job.id).status == "running"
