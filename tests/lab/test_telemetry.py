"""Telemetry stream: append, parse, aggregate."""

from repro.lab import TelemetryWriter, format_summary, read_events, summarize


def test_emit_and_read(tmp_path):
    path = tmp_path / "t.jsonl"
    tel = TelemetryWriter(path, worker="w0")
    tel.emit("job_done", job_id=1, wall_s=0.5)
    tel.emit("job_failed", job_id=2, error="boom", will_retry=True)
    events = list(read_events(path))
    assert [e["event"] for e in events] == ["job_done", "job_failed"]
    assert all(e["worker"] == "w0" for e in events)
    assert all("t" in e for e in events)


def test_none_path_is_a_noop():
    TelemetryWriter(None).emit("job_done")  # must not raise


def test_read_missing_file(tmp_path):
    assert list(read_events(tmp_path / "missing.jsonl")) == []


def test_torn_final_line_is_tolerated(tmp_path):
    path = tmp_path / "t.jsonl"
    TelemetryWriter(path, worker="w0").emit("job_done", wall_s=1.0)
    with path.open("a") as fh:
        fh.write('{"event": "job_do')  # a worker died mid-write
    assert summarize(path)["jobs_done"] == 1


def test_summarize_aggregates(tmp_path):
    path = tmp_path / "t.jsonl"
    w0 = TelemetryWriter(path, worker="w0")
    w1 = TelemetryWriter(path, worker="w1")
    w0.emit("job_done", experiment="pipeline", wall_s=1.0,
            cache_hits=2, cache_misses=1)
    w1.emit("job_done", experiment="smooth", wall_s=0.5,
            cache_hits=3, cache_misses=0)
    w1.emit("job_failed", error="x", will_retry=True)
    w1.emit("job_timeout")
    s = summarize(path)
    assert s["jobs_done"] == 2
    assert s["jobs_failed"] == 1
    assert s["retries"] == 1
    assert s["timeouts"] == 1
    assert s["total_wall_s"] == 1.5
    assert s["cache_hits"] == 5 and s["cache_misses"] == 1
    assert abs(s["cache_hit_rate"] - 5 / 6) < 1e-9
    assert s["per_worker"] == {"w0": 1, "w1": 1}
    assert s["per_experiment"] == {"pipeline": 1, "smooth": 1}
    assert s["makespan_s"] >= 0.0


def test_format_summary_mentions_cache_and_jobs(tmp_path):
    path = tmp_path / "t.jsonl"
    TelemetryWriter(path, worker="w0").emit(
        "job_done", wall_s=0.1, cache_hits=1, cache_misses=1
    )
    text = format_summary(summarize(path))
    assert "jobs done" in text and "artifact cache" in text and "w0" in text
