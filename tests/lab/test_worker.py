"""Worker pool: execution, retry, timeout, caching, crash recovery.

The multiprocess tests use tiny grids (a few hundred vertices, few
iterations) so the whole module stays in CI-friendly time.
"""

import json
import multiprocessing as mp
import os
import signal
import time

import pytest

from repro.lab import (
    EXPERIMENT_RUNNERS,
    ArtifactCache,
    ExperimentGrid,
    JobSpec,
    JobStore,
    execute_job,
    read_events,
    run_pool,
    summarize,
    worker_loop,
)

TINY = dict(vertices=(150,), max_iterations=2)


def init_store(db, grid, **kwargs):
    store = JobStore(db)
    specs = grid.expand()
    run_id, _ = store.create_run(
        grid.as_dict(), [(s.key(), s.as_dict()) for s in specs], **kwargs
    )
    store.close()
    return run_id, len(specs)


class TestExecuteJob:
    def test_unknown_experiment_lists_choices(self, tmp_path):
        spec = JobSpec(experiment="nope", domain="ocean", ordering="ori")
        with pytest.raises(KeyError, match="valid experiments"):
            execute_job(spec, ArtifactCache(tmp_path))

    def test_pipeline_result_shape(self, tmp_path):
        spec = JobSpec(
            experiment="pipeline", domain="ocean", ordering="rdr",
            vertices=150, max_iterations=2,
        )
        result = execute_job(spec, ArtifactCache(tmp_path))
        for key in ("modeled_ms", "L1_miss_%", "final_quality", "iterations"):
            assert key in result
        json.dumps(result)  # must be serialisable

    def test_pipeline_result_is_cached_content_addressed(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        spec = JobSpec(
            experiment="pipeline", domain="ocean", ordering="ori",
            vertices=150, max_iterations=2,
        )
        first = execute_job(spec, cache)
        hits0, _ = cache.snapshot()
        second = execute_job(spec, cache)
        hits1, misses1 = cache.snapshot()
        assert second == first
        assert hits1 == hits0 + 1  # one stats-blob hit, nothing recomputed

    def test_mesh_and_order_shared_across_experiments(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        base = dict(domain="ocean", ordering="ori", vertices=150,
                    max_iterations=2)
        execute_job(JobSpec(experiment="pipeline", **base), cache)
        execute_job(JobSpec(experiment="smooth", **base), cache)
        # The second experiment reuses the generated mesh and permutation.
        assert cache.hits["mesh"] >= 1
        assert cache.hits["order"] >= 1

    def test_cache_scale_changes_the_simulated_machine(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        base = dict(experiment="pipeline", domain="ocean", ordering="ori",
                    vertices=150, max_iterations=2)
        small = execute_job(JobSpec(cache_scale=0.25, **base), cache)
        large = execute_job(JobSpec(cache_scale=4.0, **base), cache)
        assert small["L3_misses"] >= large["L3_misses"]

    def test_timeout_raises_jobtimeout(self, tmp_path, monkeypatch):
        from repro.lab.worker import JobTimeout

        monkeypatch.setitem(
            EXPERIMENT_RUNNERS, "sleepy",
            lambda spec, cache: time.sleep(5) or {},
        )
        spec = JobSpec(experiment="sleepy", domain="ocean", ordering="ori")
        start = time.perf_counter()
        with pytest.raises(JobTimeout):
            execute_job(spec, ArtifactCache(tmp_path), timeout_s=0.2)
        assert time.perf_counter() - start < 2.0


class TestWorkerLoop:
    def test_drains_a_grid_inline(self, tmp_path):
        grid = ExperimentGrid(
            experiments=("smooth",), domains=("ocean",),
            orderings=("ori", "rdr"), **TINY,
        )
        run_id, n = init_store(tmp_path / "lab.db", grid)
        done = worker_loop(
            tmp_path / "lab.db", tmp_path / "cache", tmp_path / "t.jsonl"
        )
        assert done == n
        store = JobStore(tmp_path / "lab.db")
        assert store.counts(run_id)["done"] == n
        rows = store.results(run_id)
        assert {r["ordering"] for r in rows} == {"ori", "rdr"}
        store.close()

    def test_failing_job_retries_then_fails(self, tmp_path, monkeypatch):
        calls = {"n": 0}

        def flaky(spec, cache):
            calls["n"] += 1
            raise RuntimeError("transient")

        monkeypatch.setitem(EXPERIMENT_RUNNERS, "flaky", flaky)
        store = JobStore(tmp_path / "lab.db")
        spec = JobSpec(experiment="flaky", domain="ocean", ordering="ori")
        store.create_run({}, [(spec.key(), spec.as_dict())], max_attempts=3)
        store.close()
        worker_loop(
            tmp_path / "lab.db", tmp_path / "cache", tmp_path / "t.jsonl",
            retry_base_s=0.01,
        )
        assert calls["n"] == 3  # bounded retry
        store = JobStore(tmp_path / "lab.db")
        assert store.counts()["failed"] == 1
        job = store.jobs()[0]
        assert job.attempt == 3
        store.close()
        summary = summarize(tmp_path / "t.jsonl")
        assert summary["jobs_failed"] == 3 and summary["retries"] == 2

    def test_recovers_after_a_failure_midway(self, tmp_path, monkeypatch):
        def once(spec, cache):
            marker = tmp_path / "tripped"
            if not marker.exists():
                marker.write_text("x")
                raise RuntimeError("first attempt dies")
            return {"ok": True}

        monkeypatch.setitem(EXPERIMENT_RUNNERS, "once", once)
        store = JobStore(tmp_path / "lab.db")
        spec = JobSpec(experiment="once", domain="ocean", ordering="ori")
        store.create_run({}, [(spec.key(), spec.as_dict())], max_attempts=3)
        store.close()
        worker_loop(
            tmp_path / "lab.db", tmp_path / "cache", None, retry_base_s=0.01
        )
        store = JobStore(tmp_path / "lab.db")
        rows = store.results()
        assert len(rows) == 1 and rows[0]["ok"] is True
        assert rows[0]["attempt"] == 2
        store.close()


class TestLeaseHeartbeat:
    """Regression: heartbeat threads must not share one SQLite
    connection — connections are bound to their creating thread, so a
    shared store works for the first job's thread and then raises
    (silently, pre-fix) from every later one, letting leases lapse."""

    def _seed_jobs(self, db, n):
        store = JobStore(db, lease_s=0.4)
        specs = [
            JobSpec(experiment="smooth", domain="ocean", ordering="ori",
                    seed=s)
            for s in range(n)
        ]
        store.create_run({}, [(s.key(), s.as_dict()) for s in specs])
        return store

    def test_second_jobs_heartbeats_still_extend_the_lease(self, tmp_path):
        from repro.lab.worker import _lease_heartbeat

        db = tmp_path / "lab.db"
        store = self._seed_jobs(db, 2)
        errors = []
        for _ in range(2):  # two jobs → two distinct heartbeat threads
            job = store.claim("w")
            with _lease_heartbeat(
                lambda: JobStore(db, lease_s=0.4), job.id, "w", 0.05,
                on_error=lambda msg, n: errors.append(msg),
            ) as lost:
                # Outlive the lease: only working heartbeats keep it.
                time.sleep(0.6)
                assert store.reclaim_expired() == 0
            assert not lost.is_set()
            assert store.complete(job.id, {}, wall_s=0.0, worker_id="w")
        assert errors == []
        store.close()

    def test_worker_loop_survives_heartbeats_across_jobs(
        self, tmp_path, monkeypatch
    ):
        """Pre-fix, the second job's heartbeats raised cross-thread
        ProgrammingError and worker_loop's own close() re-raised it."""
        monkeypatch.setitem(
            EXPERIMENT_RUNNERS, "nap",
            lambda spec, cache: time.sleep(0.15) or {"ok": True},
        )
        store = JobStore(tmp_path / "lab.db")
        specs = [
            JobSpec(experiment="nap", domain="ocean", ordering="ori", seed=s)
            for s in range(2)
        ]
        store.create_run({}, [(s.key(), s.as_dict()) for s in specs])
        store.close()
        done = worker_loop(
            tmp_path / "lab.db", tmp_path / "cache", tmp_path / "t.jsonl",
            lease_s=0.4, heartbeat_s=0.05,
        )
        assert done == 2
        events = [e["event"] for e in read_events(tmp_path / "t.jsonl")]
        assert "heartbeat_error" not in events
        assert events.count("job_done") == 2

    def test_heartbeat_errors_are_reported_not_swallowed(self, tmp_path):
        from repro.lab.worker import _lease_heartbeat

        class Broken:
            def heartbeat(self, job_id, worker_id):
                raise RuntimeError("store down")

            def close(self):
                pass

        errors = []
        with _lease_heartbeat(
            Broken, 1, "w", 0.02,
            on_error=lambda msg, n: errors.append((msg, n)),
        ):
            time.sleep(0.3)
        assert errors  # first failure is reported immediately
        assert all("store down" in msg for msg, _ in errors)


class TestRunPool:
    def test_two_process_pool_drains_the_grid(self, tmp_path):
        grid = ExperimentGrid(
            experiments=("smooth", "reorder-cost"), domains=("ocean",),
            orderings=("ori", "rdr"), **TINY,
        )
        run_id, n = init_store(tmp_path / "lab.db", grid)
        counts = run_pool(
            tmp_path / "lab.db", tmp_path / "cache", tmp_path / "t.jsonl",
            workers=2,
        )
        assert counts["done"] == n and counts["pending"] == 0
        summary = summarize(tmp_path / "t.jsonl")
        assert summary["jobs_done"] == n
        assert len(summary["per_worker"]) >= 1

    def test_second_identical_grid_hits_the_cache(self, tmp_path):
        grid = ExperimentGrid(
            experiments=("pipeline",), domains=("ocean",),
            orderings=("ori", "rdr"), **TINY,
        )
        init_store(tmp_path / "lab.db", grid)
        run_pool(
            tmp_path / "lab.db", tmp_path / "cache", tmp_path / "t1.jsonl"
        )
        wall_first = summarize(tmp_path / "t1.jsonl")["total_wall_s"]
        init_store(tmp_path / "lab.db", grid)  # a fresh run, same grid
        run_pool(
            tmp_path / "lab.db", tmp_path / "cache", tmp_path / "t2.jsonl"
        )
        second = summarize(tmp_path / "t2.jsonl")
        assert second["cache_misses"] == 0
        assert second["cache_hits"] >= 2  # every job served from cache
        assert second["total_wall_s"] < wall_first

    @pytest.mark.slow
    def test_sigkilled_worker_is_resumed_without_duplicates(
        self, tmp_path, monkeypatch
    ):
        """The acceptance scenario: SIGKILL mid-grid, rerun, no dup rows."""

        def slow_smooth(spec, cache):
            time.sleep(0.25)
            return {"ok": True}

        monkeypatch.setitem(EXPERIMENT_RUNNERS, "slow", slow_smooth)
        store = JobStore(tmp_path / "lab.db")
        specs = [
            JobSpec(experiment="slow", domain="ocean", ordering="ori", seed=s)
            for s in range(4)
        ]
        store.create_run({}, [(s.key(), s.as_dict()) for s in specs])
        store.close()

        # Fork (so the monkeypatched registry carries over) and SIGKILL
        # the worker while it is mid-job.  Short lease so the orphaned
        # claim lapses quickly once the heartbeats stop.
        ctx = mp.get_context("fork")
        proc = ctx.Process(
            target=worker_loop,
            args=(tmp_path / "lab.db", tmp_path / "cache", None),
            kwargs={"lease_s": 1.0},
        )
        proc.start()
        time.sleep(0.4)
        os.kill(proc.pid, signal.SIGKILL)
        proc.join()

        store = JobStore(tmp_path / "lab.db")
        counts = store.counts()
        assert counts["done"] < 4  # it really was interrupted
        interrupted_running = counts["running"]
        store.close()

        # Same command again: waits out the lease, reclaims the orphan
        # and finishes the grid.
        counts = run_pool(
            tmp_path / "lab.db", tmp_path / "cache", None, lease_s=1.0
        )
        assert counts == {"pending": 0, "running": 0, "done": 4, "failed": 0}
        store = JobStore(tmp_path / "lab.db")
        rows = store.results()
        assert len(rows) == 4
        assert len({r["seed"] for r in rows}) == 4  # no duplicated rows
        if interrupted_running:
            # The orphaned job's first attempt stays on the books.
            assert max(r["attempt"] for r in rows) == 2
        store.close()
