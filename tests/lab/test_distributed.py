"""Distributed end-to-end: ``lab serve`` + remote workers == local run.

The acceptance scenario for the distributed lab: a served multi-axis
grid drained by two worker *processes* over HTTP — one SIGKILLed
mid-job — must export byte-identically (under ``--drop-timing``) to the
same grid run against a local SQLite store, with no duplicate rows.
"""

import multiprocessing as mp
import os
import signal
import time

import pytest

from repro.cli import main
from repro.lab import (
    EXPERIMENT_RUNNERS,
    HttpJobStore,
    JobStore,
    LabServer,
    worker_loop,
)

pytestmark = pytest.mark.slow

TOKEN = "fleet-secret"

GRID_ARGS = [
    "--domains", "ocean", "--orderings", "ori,rdr",
    "--experiments", "smooth", "--vertices", "150,200",
    "--max-iterations", "2",
]


def start_workers(ctx, url, tmp_path, n, **kwargs):
    procs = [
        ctx.Process(
            target=worker_loop,
            args=(url, tmp_path / f"cache-{seq}", None, seq),
            kwargs=kwargs,
        )
        for seq in range(n)
    ]
    for proc in procs:
        proc.start()
    return procs


class TestServeAndWork:
    def test_two_remote_workers_match_the_local_run_byte_for_byte(
        self, tmp_path
    ):
        # Reference: the same grid against a local SQLite store.
        local_db = tmp_path / "local.db"
        assert main(["lab", "init", "--db", str(local_db), *GRID_ARGS]) == 0
        assert main(["lab", "run", "--db", str(local_db)]) == 0
        local_out = tmp_path / "local.json"
        assert main(["lab", "export", "--db", str(local_db),
                     str(local_out), "--drop-timing"]) == 0

        # Distributed: serve a fresh store, init over HTTP, drain with
        # two worker processes (each its own cache and connection).
        server = LabServer(
            tmp_path / "remote.db", port=0, token=TOKEN
        ).start_background()
        try:
            assert main(["lab", "init", "--server", server.url,
                         "--token", TOKEN, *GRID_ARGS]) == 0
            procs = start_workers(
                mp.get_context("spawn"), server.url, tmp_path, 2, token=TOKEN
            )
            for proc in procs:
                proc.join(timeout=120)
                assert proc.exitcode == 0
            remote_out = tmp_path / "remote.json"
            assert main(["lab", "export", "--server", server.url,
                         "--token", TOKEN, str(remote_out),
                         "--drop-timing"]) == 0
            counts = HttpJobStore(server.url, token=TOKEN).counts()
            assert counts == {"pending": 0, "running": 0,
                              "done": 4, "failed": 0}
        finally:
            server.shutdown()

        assert local_out.read_bytes() == remote_out.read_bytes()

    def test_sigkilled_remote_worker_recovers_via_lease_expiry(
        self, tmp_path, monkeypatch
    ):
        def slow_smooth(spec, cache):
            time.sleep(0.25)
            return {"ok": True, "seed": spec.seed}

        monkeypatch.setitem(EXPERIMENT_RUNNERS, "slow", slow_smooth)
        server = LabServer(
            tmp_path / "fleet.db", port=0, lease_s=1.0
        ).start_background()
        try:
            store = HttpJobStore(server.url)
            from repro.lab import JobSpec

            specs = [
                JobSpec(experiment="slow", domain="ocean", ordering="ori",
                        seed=s)
                for s in range(4)
            ]
            store.create_run({}, [(s.key(), s.as_dict()) for s in specs])

            # Worker A (forked so the monkeypatched runner carries over)
            # is SIGKILLed mid-job: no heartbeats, no cleanup.
            ctx = mp.get_context("fork")
            (victim,) = start_workers(ctx, server.url, tmp_path, 1)
            time.sleep(0.4)
            os.kill(victim.pid, signal.SIGKILL)
            victim.join()
            counts = store.counts()
            assert counts["done"] < 4  # it really was interrupted
            interrupted = counts["running"]

            # Worker B notices the lapsed lease (via reclaim) and
            # finishes the whole grid.
            (survivor,) = start_workers(ctx, server.url, tmp_path, 1)
            survivor.join(timeout=60)
            assert survivor.exitcode == 0

            assert store.counts() == {"pending": 0, "running": 0,
                                      "done": 4, "failed": 0}
            rows = store.results()
            assert len(rows) == 4
            assert {r["seed"] for r in rows} == {0, 1, 2, 3}  # no dups
            if interrupted:
                # The orphan's first attempt stays on the books.
                assert max(r["attempt"] for r in rows) == 2
        finally:
            server.shutdown()

    def test_lab_work_cli_end_to_end(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)  # lab work writes host-local files
        server = LabServer(
            tmp_path / "lab.db", port=0, token=TOKEN
        ).start_background()
        try:
            assert main(["lab", "init", "--server", server.url,
                         "--token", TOKEN, "--domains", "ocean",
                         "--orderings", "rdr", "--experiments", "smooth",
                         "--vertices", "150", "--max-iterations", "2"]) == 0
            rc = main(["lab", "work", "--server", server.url,
                       "--token", TOKEN])
            assert rc == 0
            out = capsys.readouterr().out
            assert "done 1, failed 0" in out
            assert (tmp_path / "lab-work.telemetry.jsonl").exists()
        finally:
            server.shutdown()
