"""End-to-end chaos determinism: two same-seed ``run_chaos`` runs must
fire identical fault logs and produce byte-identical timing-free
exports, with every invariant holding under drops, a 5xx burst and a
mid-job worker kill.
"""

import json

import pytest

from repro.cli import main
from repro.lab import ExperimentGrid, run_chaos

pytestmark = pytest.mark.slow


def small_grid() -> ExperimentGrid:
    return ExperimentGrid(
        experiments=("smooth",),
        domains=("ocean",),
        orderings=("ori", "rdr"),
        vertices=(120, 160),
        max_iterations=2,
    ).validate()


def test_same_seed_runs_are_identical_and_invariant(tmp_path):
    grid = small_grid()
    reports = [
        run_chaos(
            grid,
            seed=5,
            workdir=tmp_path / name,
            workers=2,
            kill_after=1,
            lease_s=2.0,
        )
        for name in ("a", "b")
    ]
    for report in reports:
        assert report["ok"], report["violations"]
        assert report["checks"]["export_matches_reference"]
        assert report["worker_incarnations"] == 2  # one kill, one survivor

    # Identical fault logs (same faults, same order, no timestamps)...
    assert reports[0]["fault_log"] == reports[1]["fault_log"]
    assert (tmp_path / "a" / "fault_log.json").read_bytes() == (
        tmp_path / "b" / "fault_log.json"
    ).read_bytes()
    # ...and byte-identical exports, which also equal the fault-free
    # reference export (transitively: chaos cost nothing but retries).
    export_a = (tmp_path / "a" / "chaos_export.json").read_bytes()
    assert export_a == (tmp_path / "b" / "chaos_export.json").read_bytes()
    assert export_a == (tmp_path / "a" / "reference_export.json").read_bytes()

    # The acceptance plan really covered the interesting failure modes.
    kinds = {entry["kind"] for entry in reports[0]["fault_log"]}
    assert {
        "drop_response",
        "http_5xx_burst",
        "kill_worker_after_n_jobs",
    } <= kinds


def test_different_seeds_give_different_fault_logs(tmp_path):
    grid = small_grid()
    a = run_chaos(grid, seed=1, workdir=tmp_path / "s1", lease_s=2.0)
    b = run_chaos(grid, seed=2, workdir=tmp_path / "s2", lease_s=2.0)
    assert a["ok"] and b["ok"]
    assert a["fault_log"] != b["fault_log"]


def test_chaos_cli_writes_a_passing_report(tmp_path, capsys):
    report_path = tmp_path / "report.json"
    code = main(
        [
            "lab",
            "chaos",
            "--seed",
            "7",
            "--workdir",
            str(tmp_path / "work"),
            "--report",
            str(report_path),
            "--vertices",
            "120,160",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "export_matches_reference" in out and "FAIL" not in out
    report = json.loads(report_path.read_text())
    assert report["ok"] is True
    assert report["fault_counts"]["kill_worker_after_n_jobs"] >= 1
    for name in ("fault_log.json", "chaos_export.json",
                 "reference_export.json"):
        assert (tmp_path / "work" / name).exists()
