"""Grid expansion, spec identity, and name validation."""

import json

import pytest

from repro.lab import ExperimentGrid, JobSpec, UnknownNameError


class TestExpand:
    def test_cell_count_is_the_product(self):
        grid = ExperimentGrid(
            experiments=("pipeline", "smooth"),
            domains=("ocean", "lake"),
            orderings=("ori", "rdr", "bfs"),
            vertices=(200, 400),
            seeds=(0, 1),
            cache_scales=(0.5, 1.0),
        )
        assert len(grid.expand()) == 2 * 2 * 3 * 2 * 2 * 2

    def test_expansion_is_deterministic(self):
        grid = ExperimentGrid(domains=("ocean", "lake"), seeds=(0, 1))
        assert grid.expand() == grid.expand()

    def test_keys_are_unique(self):
        grid = ExperimentGrid(
            domains=("ocean", "lake"), orderings=("ori", "rdr"), seeds=(0, 1)
        )
        keys = [spec.key() for spec in grid.expand()]
        assert len(keys) == len(set(keys))

    def test_key_reflects_every_field(self):
        a = JobSpec(experiment="pipeline", domain="ocean", ordering="ori")
        b = JobSpec(
            experiment="pipeline", domain="ocean", ordering="ori", cache_scale=2.0
        )
        assert a.key() != b.key()

    def test_stream_windows_axis_expands(self):
        grid = ExperimentGrid(
            orderings=("ori",), stream_windows=(None, 4096)
        )
        specs = grid.expand()
        assert len(specs) == 2
        assert {s.stream_window_events for s in specs} == {None, 4096}
        assert specs[0].key() != specs[1].key()
        for spec in specs:
            cfg = spec.to_run_config()
            assert cfg.stream_window_events == spec.stream_window_events
            cfg.validate()


class TestRoundTrip:
    def test_grid_survives_json(self):
        grid = ExperimentGrid(
            domains=("ocean",), seeds=(0, 3), vertices=(250,),
            stream_windows=(None, 1 << 20),
        )
        restored = ExperimentGrid.from_dict(json.loads(json.dumps(grid.as_dict())))
        assert restored == grid

    def test_spec_survives_json(self):
        spec = JobSpec(
            experiment="smooth", domain="lake", ordering="rdr", seed=7,
            cache_scale=0.5,
        )
        assert JobSpec.from_dict(json.loads(json.dumps(spec.as_dict()))) == spec

    def test_spec_from_dict_ignores_bookkeeping_fields(self):
        data = JobSpec(
            experiment="pipeline", domain="ocean", ordering="ori"
        ).as_dict()
        data["job_id"] = 12
        assert JobSpec.from_dict(data).domain == "ocean"


class TestValidate:
    def test_valid_grid_passes(self):
        grid = ExperimentGrid(
            experiments=("pipeline", "smooth", "reorder-cost"),
            domains=("ocean",),
            orderings=("ori", "rdr"),
        )
        assert grid.validate() is grid

    @pytest.mark.parametrize(
        "kwargs, fragment",
        [
            ({"domains": ("atlantis",)}, "unknown domain 'atlantis'"),
            ({"orderings": ("zorder",)}, "unknown ordering 'zorder'"),
            ({"experiments": ("nope",)}, "unknown experiment 'nope'"),
            ({"stream_windows": (0,)}, "unknown stream window '0'"),
        ],
    )
    def test_unknown_names_raise_with_choices(self, kwargs, fragment):
        with pytest.raises(UnknownNameError) as exc:
            ExperimentGrid(**kwargs).validate()
        message = str(exc.value)
        assert fragment in message
        assert "valid" in message and "," in message  # lists the choices
