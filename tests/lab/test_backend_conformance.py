"""Backend conformance: one suite, every ``JobStoreBackend``.

The same contract tests run against the local SQLite backend and the
HTTP backend (a live in-process :class:`LabServer` fronting its own
SQLite file), so any wire-schema drift between client and server fails
here rather than in a fleet.  A third parametrization re-runs the HTTP
cases under a seeded fault plan — dropped and truncated responses, an
opening 5xx burst, injected delays — and the contract must still hold:
faults may cost retries, never semantics.

Fake ``now`` timestamps are placed in the *future* (wall clock + 1h):
the server also reclaims lazily against real time, so a small fake
timestamp would make a freshly claimed job look long-expired.
"""

import time
from pathlib import Path

import pytest

from repro.lab import (
    DEFAULT_LEASE_S,
    FaultPlan,
    FaultRule,
    HttpJobStore,
    JobStore,
    LabServer,
    UnknownNameError,
    open_backend,
)

TOKEN = "conformance-secret"


def _conformance_plan() -> FaultPlan:
    """Faults spread over the first ~dozen requests of every case:
    enough that most cases hit at least one, none fatal to a client
    with a few retries."""
    return FaultPlan(
        seed=99,
        rules=(
            FaultRule("drop_response", at=(2, 5, 9, 14)),
            FaultRule("truncate_body", at=(3, 12)),
            FaultRule("http_5xx_burst", endpoint="claim", at=(1,), count=2),
            FaultRule("delay", at=(4,), delay_s=0.01),
        ),
    )


@pytest.fixture(params=["sqlite", "http", "http-chaos"])
def backend(request, tmp_path):
    if request.param == "sqlite":
        store = JobStore(tmp_path / "lab.db")
        yield store
        store.close()
    else:
        plan = _conformance_plan() if request.param == "http-chaos" else None
        server = LabServer(
            tmp_path / "lab.db", port=0, token=TOKEN, faults=plan
        )
        server.start_background()
        store = HttpJobStore(
            server.url,
            token=TOKEN,
            retries=5,
            backoff_s=0.01,
            faults=plan,
        )
        yield store
        store.close()
        server.shutdown()


@pytest.fixture
def base():
    """Future timestamp base for deterministic lease arithmetic."""
    return time.time() + 3600.0


def seed(backend, n=3, **kwargs):
    specs = [(f"job-{i}", {"experiment": "pipeline", "i": i}) for i in range(n)]
    return backend.create_run({"grid": True}, specs, **kwargs)


class TestRuns:
    def test_ping(self, backend):
        assert backend.ping() is True

    def test_create_run_counts_one_row_per_spec(self, backend):
        run_id, inserted = seed(backend, 3)
        assert inserted == 3
        counts = backend.counts(run_id)
        assert counts["pending"] == 3
        assert counts["running"] == counts["done"] == counts["failed"] == 0

    def test_duplicate_keys_within_a_run_are_ignored(self, backend):
        specs = [("same", {"a": 1}), ("same", {"a": 1}), ("other", {"a": 2})]
        _, inserted = backend.create_run({}, specs)
        assert inserted == 2

    def test_run_provenance_round_trips(self, backend):
        run_id, _ = backend.create_run({"domains": ["ocean"]}, [("k", {})])
        assert backend.latest_run_id() == run_id
        assert backend.run_grid(run_id) == {"domains": ["ocean"]}
        assert backend.run_grid(run_id + 999) is None


class TestClaimReport:
    def test_claim_complete_results(self, backend):
        run_id, _ = seed(backend, 1)
        job = backend.claim("w1")
        assert job is not None
        assert job.status == "running"
        assert job.owner == "w1"
        assert job.attempt == 1
        assert backend.complete(job.id, {"score": 1.5}, wall_s=0.25)
        rows = backend.results(run_id)
        assert len(rows) == 1
        assert rows[0]["score"] == 1.5
        assert rows[0]["i"] == 0  # spec fields flatten into the row

    def test_claims_are_disjoint_and_finite(self, backend):
        seed(backend, 2)
        a = backend.claim("w1")
        b = backend.claim("w2")
        assert a.id != b.id
        assert backend.claim("w3") is None

    def test_complete_is_single_shot(self, backend):
        seed(backend, 1)
        job = backend.claim("w1")
        assert backend.complete(job.id, {}, wall_s=0.0)
        assert not backend.complete(job.id, {}, wall_s=0.0)
        assert len(backend.results()) == 1

    def test_fail_requeues_with_backoff_then_exhausts(self, backend, base):
        seed(backend, 1, max_attempts=2)
        job = backend.claim("w1", now=base)
        assert backend.fail(job.id, "e1", retry_base_s=60.0, now=base) == "pending"
        # Backing off: counted pending but not claimable.
        assert backend.counts()["pending"] == 1
        assert backend.claim("w1", now=base) is None
        assert backend.next_not_before() > base
        job = backend.claim("w1", now=base + 1e6)
        assert job.attempt == 2
        assert backend.fail(job.id, "e2", now=base + 1e6) == "failed"
        assert backend.counts()["failed"] == 1

    def test_fail_on_a_missing_job_reports_missing(self, backend):
        seed(backend, 1)
        assert backend.fail(99999, "boom") == "missing"


class TestLeases:
    def test_heartbeat_extends_the_lease(self, backend, base):
        seed(backend, 1)
        job = backend.claim("w1", now=base)
        assert backend.heartbeat(job.id, "w1", now=base + 10.0)
        # The original lease would have lapsed; the heartbeat's has not.
        assert backend.reclaim_expired(now=base + DEFAULT_LEASE_S + 5.0) == 0
        assert (
            backend.reclaim_expired(now=base + 10.0 + DEFAULT_LEASE_S + 1.0)
            == 1
        )
        assert backend.get(job.id).status == "pending"

    def test_heartbeat_from_a_non_owner_is_rejected(self, backend, base):
        seed(backend, 1)
        job = backend.claim("w1", now=base)
        assert not backend.heartbeat(job.id, "w2", now=base + 1.0)

    def test_reclaim_keeps_fresh_leases(self, backend, base):
        seed(backend, 2)
        stale = backend.claim("w1", now=base)
        fresh = backend.claim("w2", now=base + DEFAULT_LEASE_S - 1.0)
        assert backend.reclaim_expired(now=base + DEFAULT_LEASE_S + 0.5) == 1
        assert backend.get(stale.id).status == "pending"
        assert backend.get(fresh.id).status == "running"

    def test_stale_owner_cannot_duplicate_a_result_row(self, backend, base):
        seed(backend, 1)
        job = backend.claim("w1", now=base)
        backend.reclaim_expired(now=base + DEFAULT_LEASE_S + 1.0)
        again = backend.claim("w2", now=base + DEFAULT_LEASE_S + 2.0)
        assert again.id == job.id and again.attempt == 2
        assert not backend.complete(
            job.id, {"late": True}, wall_s=9.0, worker_id="w1"
        )
        assert backend.complete(
            job.id, {"late": False}, wall_s=0.1, worker_id="w2"
        )
        rows = backend.results()
        assert len(rows) == 1 and rows[0]["late"] is False

    def test_stale_owner_fail_is_ignored(self, backend, base):
        seed(backend, 1)
        job = backend.claim("w1", now=base)
        backend.reclaim_expired(now=base + DEFAULT_LEASE_S + 1.0)
        backend.claim("w2", now=base + DEFAULT_LEASE_S + 2.0)
        assert backend.fail(job.id, "late boom", worker_id="w1") == "stale"
        assert backend.get(job.id).status == "running"


class TestInspection:
    def test_jobs_and_get_agree(self, backend):
        run_id, _ = seed(backend, 2)
        jobs = backend.jobs(run_id)
        assert [j.key for j in jobs] == ["job-0", "job-1"]
        first = backend.get(jobs[0].id)
        assert first.key == jobs[0].key
        assert first.spec == {"experiment": "pipeline", "i": 0}
        assert backend.get(99999) is None

    def test_reset_restores_attempt_budget(self, backend):
        seed(backend, 1, max_attempts=1)
        job = backend.claim("w1")
        assert backend.fail(job.id, "boom") == "failed"
        assert backend.reset() == 1
        job = backend.claim("w1")
        assert job.attempt == 1 and job.status == "running"


class TestOpenBackend:
    def test_paths_and_sqlite_scheme_open_the_local_store(self, tmp_path):
        for target in (
            tmp_path / "a.db",
            str(tmp_path / "b.db"),
            f"sqlite://{tmp_path / 'c.db'}",
        ):
            store = open_backend(target)
            assert isinstance(store, JobStore)
            assert store.ping()  # touch the file into existence
            store.close()
        assert Path(tmp_path / "c.db").exists()  # scheme prefix stripped

    def test_http_urls_open_the_client_backend(self):
        store = open_backend("http://127.0.0.1:8642", token="t")
        assert isinstance(store, HttpJobStore)
        assert store.token == "t"
        assert isinstance(open_backend("https://example.org"), HttpJobStore)

    def test_unknown_scheme_lists_valid_backends(self):
        with pytest.raises(UnknownNameError) as excinfo:
            open_backend("ftp://somewhere/lab.db")
        message = str(excinfo.value)
        assert "unknown store backend 'ftp'" in message
        assert "sqlite" in message and "http" in message
