"""The ``lab status --watch`` view, driven by fake clocks and queues."""

import io

from repro.lab import format_watch_line, watch_status


class TestFormatWatchLine:
    def test_placeholders_before_any_progress(self):
        line = format_watch_line(
            {"pending": 3, "running": 1, "done": 0, "failed": 0}, None, None
        )
        assert line == "0/4 done | 1 running | 3 pending | 0 failed | - rows/s | ETA -"

    def test_rate_and_eta_formatting(self):
        line = format_watch_line(
            {"pending": 10, "running": 2, "done": 8, "failed": 0}, 0.5, 83.0
        )
        assert "0.50 rows/s" in line
        assert "ETA 1:23" in line


class FakeQueue:
    """Scripted counts with a lock-stepped clock (1s per refresh)."""

    def __init__(self, frames):
        self.frames = list(frames)
        self.t = 0.0
        self.sleeps = []

    def fetch(self):
        frame = self.frames.pop(0) if len(self.frames) > 1 else self.frames[0]
        return dict(frame)

    def clock(self):
        return self.t

    def sleep(self, s):
        self.sleeps.append(s)
        self.t += s


def run_watch(frames, **kwargs):
    queue = FakeQueue(frames)
    out = io.StringIO()
    final = watch_status(
        queue.fetch,
        interval_s=1.0,
        out=out,
        clock=queue.clock,
        sleep=queue.sleep,
        **kwargs,
    )
    return final, out.getvalue().splitlines(), queue


class TestWatchStatus:
    def test_stops_when_the_queue_drains(self):
        frames = [
            {"pending": 2, "running": 1, "done": 1, "failed": 0},
            {"pending": 0, "running": 1, "done": 3, "failed": 0},
            {"pending": 0, "running": 0, "done": 4, "failed": 0},
        ]
        final, lines, queue = run_watch(frames)
        assert final == frames[-1]
        assert len(lines) == 3
        assert len(queue.sleeps) == 2  # no sleep after the final frame

    def test_rate_is_finished_jobs_per_second(self):
        frames = [
            {"pending": 2, "running": 1, "done": 1, "failed": 0},
            {"pending": 0, "running": 1, "done": 3, "failed": 0},
            {"pending": 0, "running": 0, "done": 4, "failed": 0},
        ]
        _, lines, _ = run_watch(frames)
        assert "- rows/s" in lines[0]  # one sample: no slope yet
        assert "2.00 rows/s" in lines[1]  # 1 -> 3 finished over 1s
        # 3 finished over 2s from the first sample.
        assert "1.50 rows/s" in lines[2]

    def test_failed_jobs_count_as_finished_for_the_rate(self):
        frames = [
            {"pending": 1, "running": 1, "done": 0, "failed": 0},
            {"pending": 0, "running": 1, "done": 0, "failed": 1},
            {"pending": 0, "running": 0, "done": 1, "failed": 1},
        ]
        _, lines, _ = run_watch(frames)
        assert "1.00 rows/s" in lines[1]

    def test_max_refreshes_bounds_an_idle_watch(self):
        frames = [{"pending": 5, "running": 0, "done": 0, "failed": 0}]
        final, lines, _ = run_watch(frames, max_refreshes=3)
        assert len(lines) == 3
        assert final["pending"] == 5
