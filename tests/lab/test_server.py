"""Server behaviours the backend contract doesn't cover: HTTP status
codes, bearer-token auth, request metrics and client transport errors.
"""

import json
import urllib.error
import urllib.request

import pytest

from repro.lab import (
    HttpJobStore,
    LabServer,
    PROTOCOL_VERSION,
    StoreConnectionError,
)


@pytest.fixture
def server(tmp_path):
    srv = LabServer(tmp_path / "lab.db", port=0).start_background()
    yield srv
    srv.shutdown()


@pytest.fixture
def auth_server(tmp_path):
    srv = LabServer(
        tmp_path / "lab.db", port=0, token="hunter2"
    ).start_background()
    yield srv
    srv.shutdown()


def raw_request(url, body=None):
    """Status code + decoded JSON, even for error responses."""
    data = None if body is None else json.dumps(body).encode()
    try:
        with urllib.request.urlopen(
            urllib.request.Request(url, data=data), timeout=5
        ) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


class TestHttpErrors:
    def test_unknown_endpoint_is_404(self, server):
        code, payload = raw_request(f"{server.url}/api/frobnicate")
        assert code == 404
        assert "unknown endpoint" in payload["error"]

    def test_path_outside_api_is_404(self, server):
        code, _ = raw_request(f"{server.url}/metrics")
        assert code == 404

    def test_invalid_json_body_is_400(self, server):
        request = urllib.request.Request(
            f"{server.url}/api/claim", data=b"not json{"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=5)
        assert excinfo.value.code == 400

    def test_missing_field_is_400(self, server):
        code, payload = raw_request(f"{server.url}/api/claim", body={})
        assert code == 400
        assert "worker_id" in payload["error"]

    def test_non_integer_query_param_is_400(self, server):
        code, payload = raw_request(f"{server.url}/api/status?run=abc")
        assert code == 400
        assert "must be an integer" in payload["error"]


class TestAuth:
    def test_ping_is_exempt_from_auth(self, auth_server):
        code, payload = raw_request(f"{auth_server.url}/api/ping")
        assert code == 200
        assert payload["protocol"] == PROTOCOL_VERSION

    def test_missing_token_is_401(self, auth_server):
        code, payload = raw_request(f"{auth_server.url}/api/status")
        assert code == 401
        assert "bearer token" in payload["error"]

    def test_wrong_token_raises_store_error_without_retry(self, auth_server):
        store = HttpJobStore(auth_server.url, token="wrong", retries=3)
        with pytest.raises(StoreConnectionError, match="401"):
            store.counts()

    def test_right_token_passes(self, auth_server):
        store = HttpJobStore(auth_server.url, token="hunter2")
        assert store.counts()["pending"] == 0


class TestMetrics:
    def test_requests_are_counted_and_timed(self, server):
        store = HttpJobStore(server.url)
        store.create_run({}, [("k", {"experiment": "smooth"})])
        store.claim("w1")
        metrics = store.status()["metrics"]
        counters = metrics["counters"]
        assert counters["lab.server.requests.create_run"] == 1
        assert counters["lab.server.requests.claim"] == 1
        assert metrics["histograms"]["lab.server.latency_ms"]["total"] >= 2

    def test_errors_are_counted(self, server):
        raw_request(f"{server.url}/api/frobnicate")
        metrics = HttpJobStore(server.url).status()["metrics"]
        assert metrics["counters"]["lab.server.errors"] >= 1


class TestIdempotency:
    """A mutation whose response was lost must replay, not re-execute."""

    def seed(self, server, n=2):
        store = HttpJobStore(server.url)
        store.create_run(
            {},
            [(f"k{i}", {"experiment": "smooth", "seed": i}) for i in range(n)],
        )
        return store

    def test_same_idem_key_replays_the_recorded_response(self, server):
        self.seed(server)
        body = {"worker_id": "w1", "idem": "claim-abc"}
        _, first = raw_request(f"{server.url}/api/claim", body=body)
        _, second = raw_request(f"{server.url}/api/claim", body=body)
        assert second == first  # same job, not a second claim
        assert server.store.counts()["running"] == 1
        metrics = HttpJobStore(server.url).status()["metrics"]
        assert metrics["counters"]["lab.server.idem_replays"] == 1

    def test_non_string_idem_is_400(self, server):
        code, payload = raw_request(
            f"{server.url}/api/claim", body={"worker_id": "w", "idem": 7}
        )
        assert code == 400
        assert "idem" in payload["error"]

    def test_retried_claim_after_lost_response_strands_nothing(
        self, server, monkeypatch
    ):
        self.seed(server)
        self._drop_first_response(monkeypatch, "/api/claim")
        store = HttpJobStore(server.url, backoff_s=0.01)
        job = store.claim("w1")
        assert job is not None
        counts = store.counts()
        assert counts["running"] == 1 and counts["pending"] == 1

    def test_retried_complete_after_lost_response_reports_success(
        self, server, monkeypatch
    ):
        store = self.seed(server)
        job = store.claim("w1")
        self._drop_first_response(monkeypatch, "/api/complete")
        retrying = HttpJobStore(server.url, backoff_s=0.01)
        # Pre-fix this returned False (owner check saw the job already
        # done) and the worker logged job_lease_lost for a finished job.
        assert retrying.complete(
            job.id, {"ok": True}, wall_s=0.1, worker_id="w1"
        )
        assert store.counts()["done"] == 1

    @staticmethod
    def _drop_first_response(monkeypatch, path):
        """Let the first request to ``path`` execute server-side, then
        raise as if its response never came back."""
        real = urllib.request.urlopen
        dropped = []

        def flaky(request, timeout=None):
            response = real(request, timeout=timeout)
            if path in request.full_url and not dropped:
                dropped.append(True)
                response.read()
                raise TimeoutError("response lost in transit")
            return response

        monkeypatch.setattr(urllib.request, "urlopen", flaky)


class TestPerRunStatus:
    def test_status_queue_fields_respect_the_run_filter(self, server):
        store = HttpJobStore(server.url)
        run1, _ = store.create_run(
            {}, [("a", {"experiment": "smooth", "seed": 0})]
        )
        run2, _ = store.create_run(
            {},
            [(f"b{i}", {"experiment": "smooth", "seed": i}) for i in range(3)],
        )
        job = store.claim("w1")
        assert job.run_id == run1
        store.complete(job.id, {}, wall_s=0.0, worker_id="w1")

        assert store.status(run1)["pending_runnable"] == 0
        assert store.status(run1)["next_not_before"] is None
        assert store.status(run2)["pending_runnable"] == 3
        assert store.status(run2)["next_not_before"] is not None
        assert store.status()["pending_runnable"] == 3


class TestClientTransport:
    def test_unreachable_server_raises_after_retries(self):
        store = HttpJobStore(
            "http://127.0.0.1:9", retries=1, backoff_s=0.01, timeout_s=0.2
        )
        with pytest.raises(StoreConnectionError, match="unreachable"):
            store.ping()

    def test_protocol_mismatch_is_rejected(self, server, monkeypatch):
        import repro.lab.server as srv_mod

        # Make only the *server* speak a future protocol; the client
        # must refuse rather than soldier on against an unknown wire.
        monkeypatch.setitem(
            srv_mod._GET_ROUTES,
            "ping",
            lambda lab, query: {"ok": True, "protocol": PROTOCOL_VERSION + 1},
        )
        store = HttpJobStore(server.url)
        with pytest.raises(StoreConnectionError, match="protocol"):
            store.ping()

    def test_status_payload_reports_lease_and_uptime(self, server):
        status = HttpJobStore(server.url).status()
        assert status["lease_s"] == server.store.lease_s
        assert status["uptime_s"] >= 0
