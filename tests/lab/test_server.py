"""Server behaviours the backend contract doesn't cover: HTTP status
codes, bearer-token auth, request metrics and client transport errors.
"""

import json
import urllib.error
import urllib.request

import pytest

from repro.lab import (
    HttpJobStore,
    LabServer,
    PROTOCOL_VERSION,
    StoreConnectionError,
)


@pytest.fixture
def server(tmp_path):
    srv = LabServer(tmp_path / "lab.db", port=0).start_background()
    yield srv
    srv.shutdown()


@pytest.fixture
def auth_server(tmp_path):
    srv = LabServer(
        tmp_path / "lab.db", port=0, token="hunter2"
    ).start_background()
    yield srv
    srv.shutdown()


def raw_request(url, body=None):
    """Status code + decoded JSON, even for error responses."""
    data = None if body is None else json.dumps(body).encode()
    try:
        with urllib.request.urlopen(
            urllib.request.Request(url, data=data), timeout=5
        ) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


class TestHttpErrors:
    def test_unknown_endpoint_is_404(self, server):
        code, payload = raw_request(f"{server.url}/api/frobnicate")
        assert code == 404
        assert "unknown endpoint" in payload["error"]

    def test_path_outside_api_is_404(self, server):
        code, _ = raw_request(f"{server.url}/metrics")
        assert code == 404

    def test_invalid_json_body_is_400(self, server):
        request = urllib.request.Request(
            f"{server.url}/api/claim", data=b"not json{"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=5)
        assert excinfo.value.code == 400

    def test_missing_field_is_400(self, server):
        code, payload = raw_request(f"{server.url}/api/claim", body={})
        assert code == 400
        assert "worker_id" in payload["error"]

    def test_non_integer_query_param_is_400(self, server):
        code, payload = raw_request(f"{server.url}/api/status?run=abc")
        assert code == 400
        assert "must be an integer" in payload["error"]


class TestAuth:
    def test_ping_is_exempt_from_auth(self, auth_server):
        code, payload = raw_request(f"{auth_server.url}/api/ping")
        assert code == 200
        assert payload["protocol"] == PROTOCOL_VERSION

    def test_missing_token_is_401(self, auth_server):
        code, payload = raw_request(f"{auth_server.url}/api/status")
        assert code == 401
        assert "bearer token" in payload["error"]

    def test_wrong_token_raises_store_error_without_retry(self, auth_server):
        store = HttpJobStore(auth_server.url, token="wrong", retries=3)
        with pytest.raises(StoreConnectionError, match="401"):
            store.counts()

    def test_right_token_passes(self, auth_server):
        store = HttpJobStore(auth_server.url, token="hunter2")
        assert store.counts()["pending"] == 0


class TestMetrics:
    def test_requests_are_counted_and_timed(self, server):
        store = HttpJobStore(server.url)
        store.create_run({}, [("k", {"experiment": "smooth"})])
        store.claim("w1")
        metrics = store.status()["metrics"]
        counters = metrics["counters"]
        assert counters["lab.server.requests.create_run"] == 1
        assert counters["lab.server.requests.claim"] == 1
        assert metrics["histograms"]["lab.server.latency_ms"]["total"] >= 2

    def test_errors_are_counted(self, server):
        raw_request(f"{server.url}/api/frobnicate")
        metrics = HttpJobStore(server.url).status()["metrics"]
        assert metrics["counters"]["lab.server.errors"] >= 1


class TestClientTransport:
    def test_unreachable_server_raises_after_retries(self):
        store = HttpJobStore(
            "http://127.0.0.1:9", retries=1, backoff_s=0.01, timeout_s=0.2
        )
        with pytest.raises(StoreConnectionError, match="unreachable"):
            store.ping()

    def test_protocol_mismatch_is_rejected(self, server, monkeypatch):
        import repro.lab.server as srv_mod

        # Make only the *server* speak a future protocol; the client
        # must refuse rather than soldier on against an unknown wire.
        monkeypatch.setitem(
            srv_mod._GET_ROUTES,
            "ping",
            lambda lab, query: {"ok": True, "protocol": PROTOCOL_VERSION + 1},
        )
        store = HttpJobStore(server.url)
        with pytest.raises(StoreConnectionError, match="protocol"):
            store.ping()

    def test_status_payload_reports_lease_and_uptime(self, server):
        status = HttpJobStore(server.url).status()
        assert status["lease_s"] == server.store.lease_s
        assert status["uptime_s"] >= 0
