"""Content-addressed artifact cache: keying, round-trips, accounting."""

import numpy as np
import pytest

from repro.lab import ArtifactCache, cache_key
from repro.meshgen import structured_rectangle


@pytest.fixture
def cache(tmp_path):
    return ArtifactCache(tmp_path / "artifacts")


class TestKeying:
    def test_key_is_stable(self):
        params = {"domain": "ocean", "vertices": 300}
        assert cache_key("mesh", params) == cache_key("mesh", params)

    def test_key_ignores_dict_order(self):
        assert cache_key("mesh", {"a": 1, "b": 2}) == cache_key(
            "mesh", {"b": 2, "a": 1}
        )

    def test_key_separates_kinds_and_params(self):
        params = {"a": 1}
        assert cache_key("mesh", params) != cache_key("order", params)
        assert cache_key("mesh", {"a": 1}) != cache_key("mesh", {"a": 2})


class TestMesh:
    def test_miss_then_hit(self, cache):
        calls = []

        def build():
            calls.append(1)
            return structured_rectangle(4, 4, name="grid")

        params = {"domain": "grid"}
        first = cache.mesh(params, build)
        second = cache.mesh(params, build)
        assert len(calls) == 1
        np.testing.assert_array_equal(first.vertices, second.vertices)
        np.testing.assert_array_equal(first.triangles, second.triangles)
        assert cache.hits["mesh"] == 1 and cache.misses["mesh"] == 1

    def test_different_params_are_distinct_artifacts(self, cache):
        cache.mesh({"n": 4}, lambda: structured_rectangle(4, 4))
        cache.mesh({"n": 5}, lambda: structured_rectangle(5, 5))
        assert cache.misses["mesh"] == 2
        assert cache.hits["mesh"] == 0


class TestArrayAndBlob:
    def test_array_round_trip(self, cache):
        arr = np.arange(10, dtype=np.int64)[::-1].copy()
        got = cache.array("order", {"k": 1}, lambda: arr)
        np.testing.assert_array_equal(got, arr)
        cached = cache.array("order", {"k": 1}, lambda: 1 / 0)  # must not run
        np.testing.assert_array_equal(cached, arr)

    def test_json_blob_round_trip(self, cache):
        blob = {"modeled_ms": 1.25, "L1_misses": 42}
        assert cache.json_blob("stats", {"k": 1}, lambda: blob) == blob
        assert cache.json_blob("stats", {"k": 1}, lambda: {}) == blob

    def test_no_tmp_files_left_behind(self, cache):
        cache.array("order", {"k": 1}, lambda: np.arange(3))
        cache.json_blob("stats", {"k": 1}, lambda: {"x": 1})
        leftovers = [p for p in cache.root.iterdir() if ".tmp." in p.name]
        assert leftovers == []


class TestAccounting:
    def test_stats_and_snapshot(self, cache):
        cache.json_blob("stats", {"k": 1}, lambda: {})
        cache.json_blob("stats", {"k": 1}, lambda: {})
        cache.array("order", {"k": 1}, lambda: np.arange(2))
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 2
        assert stats["by_kind"]["stats"] == {"hits": 1, "misses": 1}
        assert cache.snapshot() == (1, 2)
