"""Property: randomized claim / expire / complete / fail interleavings
never duplicate a result row.

The exactly-once guarantee rests on two mechanisms — ``reclaim_expired``
only re-queues lapsed leases, and owner-checked ``complete``/``fail``
only land for the current owner — and it must hold for *any* order of
operations, not just the orchestrations the worker loop produces.  The
same driver runs against the SQLite backend (tier-1) and a live HTTP
server (slow).
"""

import tempfile
import time
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.lab import DEFAULT_LEASE_S, HttpJobStore, JobStore, LabServer

N_JOBS = 4
JOB_IDS = tuple(range(1, N_JOBS + 1))
WORKERS = ("w1", "w2", "w3")

operations = st.lists(
    st.one_of(
        st.tuples(st.just("claim"), st.sampled_from(WORKERS)),
        st.tuples(
            st.just("complete"),
            st.sampled_from(JOB_IDS),
            st.sampled_from(WORKERS),
        ),
        st.tuples(
            st.just("fail"), st.sampled_from(JOB_IDS), st.sampled_from(WORKERS)
        ),
        st.tuples(
            st.just("heartbeat"),
            st.sampled_from(JOB_IDS),
            st.sampled_from(WORKERS),
        ),
        st.tuples(
            st.just("advance"),
            st.integers(min_value=1, max_value=int(DEFAULT_LEASE_S * 1.5)),
        ),
        st.tuples(st.just("reclaim")),
    ),
    max_size=40,
)


def drive(store, ops, base):
    """Apply an op soup, checking the exactly-once invariants after
    every step.  Timestamps are virtual (``base`` lies an hour in the
    future so the server's real-clock lazy reclaim never interferes)."""
    run_id, _ = store.create_run(
        {}, [(f"k{i}", {"i": i}) for i in range(N_JOBS)]
    )
    elapsed = 0.0
    done_ever: set[int] = set()
    for op in ops:
        now = base + elapsed
        if op[0] == "advance":
            elapsed += op[1]
        elif op[0] == "claim":
            store.claim(op[1], now=now)
        elif op[0] == "complete":
            store.complete(
                op[1], {"by": op[2]}, wall_s=0.0, worker_id=op[2], now=now
            )
        elif op[0] == "fail":
            store.fail(
                op[1], "boom", retry_base_s=1.0, worker_id=op[2], now=now
            )
        elif op[0] == "heartbeat":
            store.heartbeat(op[1], op[2], now=now)
        else:
            store.reclaim_expired(now=now)

        rows = store.results(run_id)
        ids = [row["job_id"] for row in rows]
        assert len(set(ids)) == len(ids), f"duplicate result rows: {ids}"
        assert store.counts(run_id)["done"] == len(rows)
        done_ever.update(ids)
        assert set(ids) == done_ever, "a done job left the done state"


@given(ops=operations)
@settings(max_examples=40, deadline=None)
def test_sqlite_interleavings_never_duplicate_result_rows(ops):
    with tempfile.TemporaryDirectory() as tmp:
        store = JobStore(Path(tmp) / "lab.db")
        try:
            drive(store, ops, base=time.time() + 3600.0)
        finally:
            store.close()


@pytest.mark.slow
@given(ops=operations)
@settings(max_examples=10, deadline=None)
def test_live_server_interleavings_never_duplicate_result_rows(ops):
    with tempfile.TemporaryDirectory() as tmp:
        server = LabServer(Path(tmp) / "lab.db", port=0).start_background()
        store = HttpJobStore(server.url, backoff_s=0.01)
        try:
            drive(store, ops, base=time.time() + 3600.0)
        finally:
            store.close()
            server.shutdown()
