"""Unit tests for the chaos harness: fault rules, the three injection
seams, the retry/deadline fixes they forced, and the invariant checker.
"""

import time

import pytest

from repro.lab import (
    FaultPlan,
    FaultRule,
    JobStore,
    StoreConnectionError,
    WorkerKilled,
    check_invariants,
    drop_timing_rows,
    worker_loop,
)


def seed_jobs(store, n=3, *, runnable=False, **kwargs):
    """Queue ``n`` jobs; ``runnable=True`` makes them real (tiny) smooth
    specs a worker can actually execute."""
    if runnable:
        specs = [
            (
                f"k{i}",
                {
                    "experiment": "smooth",
                    "domain": "ocean",
                    "ordering": "ori",
                    "vertices": 60,
                    "seed": i,
                    "max_iterations": 1,
                },
            )
            for i in range(n)
        ]
    else:
        specs = [(f"k{i}", {"experiment": "smooth", "i": i}) for i in range(n)]
    return store.create_run({}, specs, **kwargs)


def idem_replays(store) -> int:
    counters = store.status()["metrics"]["counters"]
    return int(counters.get("lab.server.idem_replays", 0))


class TestFaultRules:
    def test_unknown_kind_is_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultRule("segfault")

    def test_standard_plan_is_seed_deterministic(self):
        a = FaultPlan.standard(7, n_jobs=10)
        b = FaultPlan.standard(7, n_jobs=10)
        c = FaultPlan.standard(8, n_jobs=10)
        assert a.rules == b.rules
        assert a.rules != c.rules
        kinds = {rule.kind for rule in a.rules}
        assert {
            "drop_response",
            "http_5xx_burst",
            "truncate_body",
            "duplicate_request",
            "clock_skew",
            "kill_worker_after_n_jobs",
        } <= kinds

    def test_standard_plan_needs_jobs(self):
        with pytest.raises(ValueError, match="at least one job"):
            FaultPlan.standard(0, n_jobs=0)


class TestTransportSeam:
    def test_dropped_response_is_replayed_not_reexecuted(self, fault_lab):
        plan = FaultPlan(rules=(FaultRule("drop_response", jobs=(1,)),))
        _, store = fault_lab(plan)
        seed_jobs(store, 2)
        job = store.claim("w1")
        assert job is not None and job.id == 1
        counts = store.counts()
        # A re-executed claim would have stranded a second running job.
        assert counts["running"] == 1 and counts["pending"] == 1
        assert idem_replays(store) == 1
        assert plan.fault_counts() == {"drop_response": 1}

    def test_truncated_body_is_retried_and_replayed(self, fault_lab):
        plan = FaultPlan(
            rules=(FaultRule("truncate_body", endpoint="complete", jobs=(1,)),)
        )
        _, store = fault_lab(plan)
        seed_jobs(store, 1)
        job = store.claim("w1")
        assert store.complete(job.id, {"ok": True}, wall_s=0.0)
        assert store.counts()["done"] == 1
        assert len(store.results()) == 1
        assert idem_replays(store) == 1

    def test_duplicate_request_lands_once(self, fault_lab):
        plan = FaultPlan(
            rules=(
                FaultRule("duplicate_request", endpoint="complete", jobs=(1,)),
            )
        )
        _, store = fault_lab(plan)
        seed_jobs(store, 1)
        job = store.claim("w1")
        assert store.complete(job.id, {"ok": True}, wall_s=0.0)
        assert len(store.results()) == 1
        assert idem_replays(store) == 1

    def test_clock_skew_shifts_the_plan_clock(self, fault_lab):
        plan = FaultPlan(
            rules=(
                FaultRule(
                    "clock_skew", endpoint="complete", jobs=(1,), skew_s=5.0
                ),
            )
        )
        _, store = fault_lab(plan)
        seed_jobs(store, 1)
        job = store.claim("w1")
        before = plan.clock() - time.time()
        assert store.complete(job.id, {}, wall_s=0.0)
        after = plan.clock() - time.time()
        assert before < 1.0 and after > 4.0

    def test_expected_replays_ignores_non_mutating_endpoints(self):
        plan = FaultPlan(rules=(FaultRule("drop_response", at=(1,)),))
        with pytest.raises(Exception):
            plan.after_receive("status", None, {"counts": {}}, 1)
        assert plan.fault_counts() == {"drop_response": 1}
        assert plan.expected_idem_replays() == 0  # GET carries no idem key


class TestServerSeam:
    def test_burst_returns_503_then_recovers(self, fault_lab):
        plan = FaultPlan(
            rules=(
                FaultRule("http_5xx_burst", endpoint="claim", at=(1,), count=2),
            )
        )
        server, store = fault_lab(plan)
        seed_jobs(store, 1)
        job = store.claim("w1")  # two 503s, then the real claim
        assert job is not None
        assert plan.fault_counts() == {"http_5xx_burst": 2}
        counters = store.status()["metrics"]["counters"]
        assert counters["lab.server.faults.http_5xx_burst"] == 2
        # The burst hit before idempotency recording: no replays.
        assert idem_replays(store) == 0

    def test_burst_past_retries_raises_with_attempt_count(self, fault_lab):
        plan = FaultPlan(
            rules=(
                FaultRule(
                    "http_5xx_burst", endpoint="claim", at=(1,), count=50
                ),
            )
        )
        _, store = fault_lab(plan, retries=2, backoff_s=0.01)
        seed_jobs(store, 1)
        with pytest.raises(
            StoreConnectionError, match=r"unreachable .* 3 attempt\(s\)"
        ):
            store.claim("w1")

    def test_deadline_caps_the_retry_window(self, fault_lab):
        plan = FaultPlan(
            rules=(
                FaultRule(
                    "http_5xx_burst", endpoint="claim", at=(1,), count=1000
                ),
            )
        )
        _, store = fault_lab(
            plan, retries=100, backoff_s=0.2, deadline_s=0.5
        )
        seed_jobs(store, 1)
        start = time.monotonic()
        with pytest.raises(StoreConnectionError, match="unreachable"):
            store.claim("w1")
        assert time.monotonic() - start < 5.0


class TestWorkerSeam:
    def test_kill_leaves_the_job_recoverable(self, tmp_path):
        plan = FaultPlan(
            rules=(
                FaultRule("kill_worker_after_n_jobs", worker_seq=0, count=1),
            )
        )
        db = tmp_path / "lab.db"
        store = JobStore(db, lease_s=0.2)
        run_id, _ = seed_jobs(store, 3, runnable=True)

        with pytest.raises(WorkerKilled):
            worker_loop(
                str(db),
                tmp_path / "cache",
                None,
                0,
                lease_s=0.2,
                faults=plan,
            )
        counts = store.counts(run_id)
        # One job completed, the second died executed-but-unreported.
        assert counts["done"] == 1 and counts["running"] == 1
        assert plan.fault_counts()["kill_worker_after_n_jobs"] == 1

        # A surviving worker reclaims the lease and drains the rest.
        time.sleep(0.3)
        worker_loop(
            str(db), tmp_path / "cache", None, 1, lease_s=0.2, faults=plan
        )
        report = check_invariants(store, run_id)
        assert report.ok, report.summary()
        store.close()


class TestInvariants:
    def test_undrained_queue_is_a_violation(self, tmp_path):
        store = JobStore(tmp_path / "lab.db")
        seed_jobs(store, 2)
        store.claim("w1")
        report = check_invariants(store)
        assert not report.ok
        assert not report.checks["queue_drained"]
        assert "not drained" in report.summary()
        assert check_invariants(store, expect_drained=False).ok
        store.close()

    def test_replay_mismatch_is_a_violation(self, tmp_path):
        store = JobStore(tmp_path / "lab.db")
        plan = FaultPlan(rules=(FaultRule("drop_response", jobs=(1,)),))
        seed_jobs(store, 1)
        job = store.claim("w1")
        store.complete(job.id, {}, wall_s=0.0)
        with pytest.raises(Exception):
            plan.after_receive("complete", {"job_id": 1}, {}, 1)
        # The plan injected one loss but the server replayed nothing.
        report = check_invariants(store, plan=plan, idem_replays=0)
        assert not report.checks["idem_replays_match_injected_losses"]
        assert check_invariants(store, plan=plan, idem_replays=1).ok
        store.close()

    def test_drop_timing_rows_strips_run_history(self):
        rows = [{"a": 1, "wall_s": 0.5, "attempt": 2, "job_id": 3}]
        assert drop_timing_rows(rows) == [{"a": 1, "job_id": 3}]
