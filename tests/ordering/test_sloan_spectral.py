"""Unit tests for the Sloan and spectral orderings."""

import numpy as np
import pytest

from repro.mesh import TriMesh
from repro.ordering import (
    fiedler_vector,
    invert_permutation,
    random_ordering,
    sloan_ordering,
    spectral_ordering,
)


def edge_spans(mesh, order):
    inv = invert_permutation(order)
    edges = mesh.edges()
    return np.abs(inv[edges[:, 0]] - inv[edges[:, 1]])


class TestSloan:
    def test_is_permutation(self, ocean_mesh):
        order = sloan_ordering(ocean_mesh)
        assert np.array_equal(np.sort(order), np.arange(ocean_mesh.num_vertices))

    def test_profile_much_better_than_random(self, ocean_mesh):
        sloan = edge_spans(ocean_mesh, sloan_ordering(ocean_mesh)).mean()
        rand = edge_spans(ocean_mesh, random_ordering(ocean_mesh, seed=0)).mean()
        assert sloan < 0.2 * rand

    def test_deterministic(self, ocean_mesh):
        assert np.array_equal(sloan_ordering(ocean_mesh), sloan_ordering(ocean_mesh))

    def test_disconnected_mesh(self):
        mesh = TriMesh(
            np.array([[0, 0], [1, 0], [0, 1], [5, 5], [6, 5], [5, 6.0]]),
            np.array([[0, 1, 2], [3, 4, 5]]),
        )
        order = sloan_ordering(mesh)
        assert np.array_equal(np.sort(order), np.arange(6))

    def test_empty_mesh(self):
        mesh = TriMesh(np.empty((0, 2)), np.empty((0, 3), dtype=int))
        assert sloan_ordering(mesh).size == 0


class TestSpectral:
    def test_is_permutation(self, ocean_mesh):
        order = spectral_ordering(ocean_mesh)
        assert np.array_equal(np.sort(order), np.arange(ocean_mesh.num_vertices))

    def test_fiedler_vector_smooth_on_mesh(self, ocean_mesh):
        f = fiedler_vector(ocean_mesh)
        g = ocean_mesh.adjacency
        src = np.repeat(np.arange(ocean_mesh.num_vertices), g.degrees())
        local = np.abs(f[src] - f[g.adjncy]).mean()
        globl = np.abs(f[:, None] - f[None, :]).mean() if f.size < 2000 else np.abs(
            np.diff(np.sort(f))
        ).sum()
        # Neighbor differences are tiny vs the global spread.
        assert local < 0.15 * (f.max() - f.min())

    def test_spans_much_better_than_random(self, ocean_mesh):
        spec = edge_spans(ocean_mesh, spectral_ordering(ocean_mesh)).mean()
        rand = edge_spans(ocean_mesh, random_ordering(ocean_mesh, seed=0)).mean()
        assert spec < 0.2 * rand

    def test_sweep_is_spatially_coherent(self, ocean_mesh):
        order = spectral_ordering(ocean_mesh)
        walk = ocean_mesh.vertices[order]
        step = np.linalg.norm(np.diff(walk, axis=0), axis=1).mean()
        rand_step = np.linalg.norm(
            np.diff(ocean_mesh.vertices[random_ordering(ocean_mesh, seed=0)], axis=0),
            axis=1,
        ).mean()
        # A Fiedler sweep is 1-D-coherent: consecutive vertices share a
        # level set but may sit anywhere along it, so the Euclidean step
        # improves moderately (the edge-span metric above is the sharp
        # one).
        assert step < 0.8 * rand_step

    def test_deterministic_given_seed(self, ocean_mesh):
        a = spectral_ordering(ocean_mesh, seed=3)
        b = spectral_ordering(ocean_mesh, seed=3)
        assert np.array_equal(a, b)
