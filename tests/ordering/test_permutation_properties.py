"""Property suite (hypothesis) for the ordering algorithms.

Two families of properties:

* every registered ordering returns a valid permutation of ``0..n-1``
  on arbitrary perturbed meshes, for arbitrary seeds;
* *label equivariance*: orderings driven purely by geometry or by
  per-vertex quality (hilbert, morton, qsort, rdr) produce the same
  permuted mesh — hence the same access trace and the same
  reuse-distance histogram — no matter how the input mesh's vertices
  were labeled beforehand. Orderings that consult adjacency-list or
  storage order (ori, bfs, dfs, rcm, degree ties, random, ...) are
  deliberately excluded: their output legitimately depends on the
  labeling.

Equivariance is the property the paper's locality claims lean on: the
reuse profile of RDR is a function of the mesh and its quality field,
not of the accidental input numbering.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro  # noqa: F401  (registers all orderings, incl. rdr/oracle)
from repro.memsim import MemoryLayout, reuse_distances
from repro.meshgen import perturb_interior, structured_rectangle
from repro.ordering import ORDERINGS, apply_ordering, get_ordering
from repro.smoothing import trace_for_traversal

FAST = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

#: Orderings whose output is a function of geometry/quality only (on
#: generic inputs: distinct coordinates, distinct qualities).
EQUIVARIANT = ["hilbert", "morton", "qsort", "rdr"]


def _mesh(nx, ny, seed):
    # Equivariance only holds on generic inputs: tied sort keys are
    # legitimately broken by label order. perturb_interior leaves the
    # boundary exactly symmetric (tied qualities), so add a jitter that
    # is a pure function of position — it commutes with relabeling and
    # makes every coordinate/quality distinct.
    mesh = perturb_interior(
        structured_rectangle(nx, ny), amplitude=0.05, seed=seed
    )
    v = mesh.vertices
    jitter = 1e-4 * np.sin(
        v * np.array([173.0, 149.0]) + v[:, ::-1] * 97.0 + 13.0
    )
    return mesh.with_vertices(v + jitter)


@pytest.mark.parametrize("name", sorted(ORDERINGS))
def test_ordering_returns_valid_permutation(name, ocean_mesh):
    order = get_ordering(name)(ocean_mesh, seed=0)
    assert order.shape == (ocean_mesh.num_vertices,)
    assert np.array_equal(np.sort(order), np.arange(ocean_mesh.num_vertices))


@FAST
@given(
    name=st.sampled_from(sorted(ORDERINGS)),
    nx=st.integers(min_value=3, max_value=9),
    ny=st.integers(min_value=3, max_value=9),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_ordering_valid_permutation_random_meshes(name, nx, ny, seed):
    mesh = _mesh(nx, ny, seed)
    order = get_ordering(name)(mesh, seed=seed)
    assert np.array_equal(np.sort(order), np.arange(mesh.num_vertices))


def _reuse_histogram(mesh):
    """Reuse-distance histogram of the storage-traversal trace."""
    trace = trace_for_traversal(mesh, mesh.interior_vertices())
    lines = MemoryLayout.for_mesh(mesh).lines(trace)
    dists = reuse_distances(lines)
    return np.bincount(dists[dists >= 0])


@FAST
@given(
    name=st.sampled_from(EQUIVARIANT),
    nx=st.integers(min_value=4, max_value=9),
    ny=st.integers(min_value=4, max_value=9),
    mesh_seed=st.integers(min_value=0, max_value=2**16),
    relabel_seed=st.integers(min_value=0, max_value=2**16),
)
def test_equivariant_orderings_ignore_input_labels(
    name, nx, ny, mesh_seed, relabel_seed
):
    mesh = _mesh(nx, ny, mesh_seed)
    relabel = np.random.default_rng(relabel_seed).permutation(
        mesh.num_vertices
    )
    relabeled = mesh.permute(relabel)

    ordered_a, _ = apply_ordering(mesh, name, seed=0)
    ordered_b, _ = apply_ordering(relabeled, name, seed=0)

    # The final layouts coincide vertex for vertex...
    assert np.allclose(
        ordered_a.vertices, ordered_b.vertices, rtol=0, atol=0
    )
    assert np.array_equal(
        ordered_a.adjacency.xadj, ordered_b.adjacency.xadj
    )
    assert np.array_equal(
        ordered_a.adjacency.adjncy, ordered_b.adjacency.adjncy
    )
    # ...so the reuse-distance histogram is exactly invariant.
    assert np.array_equal(
        _reuse_histogram(ordered_a), _reuse_histogram(ordered_b)
    )


@FAST
@given(
    nx=st.integers(min_value=4, max_value=9),
    ny=st.integers(min_value=4, max_value=9),
    seed=st.integers(min_value=0, max_value=2**16),
    relabel_seed=st.integers(min_value=0, max_value=2**16),
)
def test_reuse_distances_invariant_under_line_renaming(
    nx, ny, seed, relabel_seed
):
    """Reuse distances depend only on the *pattern* of repeats, not on
    the line ids themselves: renaming ids preserves all distances."""
    mesh = _mesh(nx, ny, seed)
    trace = trace_for_traversal(mesh, mesh.interior_vertices())
    lines = MemoryLayout.for_mesh(mesh).lines(trace)
    rng = np.random.default_rng(relabel_seed)
    rename = rng.permutation(int(lines.max()) + 1)
    assert np.array_equal(
        reuse_distances(lines), reuse_distances(rename[lines])
    )
