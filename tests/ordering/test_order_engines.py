"""Differential suite for the ``order_engine`` axis.

The contract of ``order_engine="batched"`` is *exactness*: for every
registered ordering name, the batched implementation (or the reference
fallback when no batched variant exists) returns the **element-wise
identical** permutation for every mesh, seed and quality signal.  These
tests pin that contract across structured, perturbed, generated-domain
and randomized meshes — any divergence is a bug in the batched engine,
never an acceptable approximation.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro  # noqa: F401  (registers all orderings, incl. rdr/oracle)
from repro.config import UnknownNameError
from repro.core import rdr_chain_heads
from repro.meshgen import generate_domain_mesh, perturb_interior, structured_rectangle
from repro.ordering import (
    BATCHED_ORDERINGS,
    ORDER_ENGINES,
    ORDERINGS,
    get_ordering,
)
from repro.quality import patch_quality, vertex_quality

FAST = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _mesh(nx, ny, seed):
    return perturb_interior(
        structured_rectangle(nx, ny), amplitude=0.05, seed=seed
    )


@pytest.fixture(scope="module")
def domain_meshes(grid_mesh, bumpy_mesh, ocean_mesh):
    meshes = [grid_mesh, bumpy_mesh, ocean_mesh,
              generate_domain_mesh("lake", target_vertices=250, seed=2)]
    return [(m, patch_quality(m, base=vertex_quality(m))) for m in meshes]


class TestEngineAxis:
    def test_order_engines_tuple(self):
        assert ORDER_ENGINES == ("reference", "batched")

    def test_unknown_engine_rejected(self):
        with pytest.raises(UnknownNameError, match="unknown order engine"):
            get_ordering("bfs", order_engine="turbo")

    def test_unknown_ordering_rejected_with_choices(self):
        with pytest.raises(KeyError, match="unknown ordering"):
            get_ordering("zigzag", order_engine="batched")

    def test_batched_names_are_a_subset_of_reference_names(self):
        assert set(BATCHED_ORDERINGS) <= set(ORDERINGS)

    def test_core_orderings_have_batched_variants(self):
        # The expensive traversal/chain orderings must not silently lose
        # their vectorized implementation.
        assert {"bfs", "rbfs", "rcm", "sloan", "rdr", "oracle"} <= set(
            BATCHED_ORDERINGS
        )

    def test_unbatched_name_falls_back_to_reference(self):
        # hilbert is pure array code already; no batched variant.
        assert "hilbert" not in BATCHED_ORDERINGS
        assert get_ordering("hilbert", order_engine="batched") is (
            get_ordering("hilbert")
        )


@pytest.mark.parametrize("name", sorted(ORDERINGS))
@pytest.mark.parametrize("seed", [0, 3])
def test_batched_matches_reference_on_domains(domain_meshes, name, seed):
    for mesh, rank_q in domain_meshes:
        ref = get_ordering(name)(mesh, seed=seed, qualities=rank_q)
        bat = get_ordering(name, order_engine="batched")(
            mesh, seed=seed, qualities=rank_q
        )
        assert np.array_equal(ref, bat), (
            f"{name!r} diverges on {mesh.name!r} (seed={seed})"
        )


@pytest.mark.parametrize("name", sorted(BATCHED_ORDERINGS))
@FAST
@given(
    nx=st.integers(min_value=3, max_value=9),
    ny=st.integers(min_value=3, max_value=9),
    mesh_seed=st.integers(min_value=0, max_value=5),
    seed=st.integers(min_value=0, max_value=1_000),
)
def test_batched_matches_reference_on_random_meshes(
    name, nx, ny, mesh_seed, seed
):
    mesh = _mesh(nx, ny, mesh_seed)
    rank_q = patch_quality(mesh, base=vertex_quality(mesh))
    ref = get_ordering(name)(mesh, seed=seed, qualities=rank_q)
    bat = get_ordering(name, order_engine="batched")(
        mesh, seed=seed, qualities=rank_q
    )
    assert np.array_equal(ref, bat)


def test_batched_without_explicit_qualities(domain_meshes):
    # Quality-aware orderings recompute the signal internally; both
    # engines must do so identically.
    for mesh, _ in domain_meshes:
        for name in sorted(BATCHED_ORDERINGS):
            ref = get_ordering(name)(mesh)
            bat = get_ordering(name, order_engine="batched")(mesh)
            assert np.array_equal(ref, bat), f"{name!r} on {mesh.name!r}"


def test_rdr_chain_heads_engine_equivalence(domain_meshes):
    for mesh, rank_q in domain_meshes:
        ref = rdr_chain_heads(mesh, qualities=rank_q)
        bat = rdr_chain_heads(
            mesh, qualities=rank_q, order_engine="batched"
        )
        assert np.array_equal(ref, bat)


def test_batched_is_deterministic_across_repeats(ocean_mesh):
    # The per-graph plan caches must not leak state between calls.
    rank_q = patch_quality(ocean_mesh, base=vertex_quality(ocean_mesh))
    for name in sorted(BATCHED_ORDERINGS):
        fn = get_ordering(name, order_engine="batched")
        first = fn(ocean_mesh, seed=0, qualities=rank_q)
        again = fn(ocean_mesh, seed=0, qualities=rank_q)
        assert np.array_equal(first, again), name


def test_batched_rdr_tracks_quality_changes(bumpy_mesh):
    # The quality-keyed plan cache must miss when the signal changes.
    q1 = patch_quality(bumpy_mesh, base=vertex_quality(bumpy_mesh))
    rng = np.random.default_rng(0)
    q2 = rng.permutation(q1)
    fn_ref = get_ordering("rdr")
    fn_bat = get_ordering("rdr", order_engine="batched")
    assert np.array_equal(
        fn_ref(bumpy_mesh, qualities=q1), fn_bat(bumpy_mesh, qualities=q1)
    )
    assert np.array_equal(
        fn_ref(bumpy_mesh, qualities=q2), fn_bat(bumpy_mesh, qualities=q2)
    )
