"""Unit tests for the ordering registry and permutation utilities."""

import numpy as np
import pytest

import repro  # noqa: F401  (registers all orderings, incl. rdr/oracle)
from repro.ordering import (
    ORDERINGS,
    apply_ordering,
    check_permutation,
    get_ordering,
    invert_permutation,
    register_ordering,
)


EXPECTED_ORDERINGS = {
    "ori",
    "random",
    "bfs",
    "rbfs",
    "dfs",
    "rcm",
    "hilbert",
    "morton",
    "qsort",
    "degree",
    "sloan",
    "spectral",
    "rdr",
    "oracle",
}


class TestRegistry:
    def test_all_expected_orderings_registered(self):
        assert EXPECTED_ORDERINGS <= set(ORDERINGS)

    def test_get_ordering(self):
        fn = get_ordering("bfs")
        assert callable(fn)

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown ordering"):
            get_ordering("nope")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_ordering("bfs")(lambda mesh, seed=0, qualities=None: None)

    @pytest.mark.parametrize("name", sorted(EXPECTED_ORDERINGS))
    def test_every_ordering_returns_permutation(self, name, ocean_mesh):
        order = get_ordering(name)(ocean_mesh, seed=0)
        check_permutation(order, ocean_mesh.num_vertices)

    @pytest.mark.parametrize("name", sorted(EXPECTED_ORDERINGS - {"random"}))
    def test_deterministic(self, name, ocean_mesh):
        fn = get_ordering(name)
        assert np.array_equal(fn(ocean_mesh, seed=0), fn(ocean_mesh, seed=0))


class TestApplyOrdering:
    def test_returns_permuted_mesh_and_order(self, ocean_mesh):
        permuted, order = apply_ordering(ocean_mesh, "bfs")
        assert permuted.num_vertices == ocean_mesh.num_vertices
        assert np.allclose(permuted.vertices, ocean_mesh.vertices[order])

    def test_identity_for_ori(self, ocean_mesh):
        permuted, order = apply_ordering(ocean_mesh, "ori")
        assert np.array_equal(order, np.arange(ocean_mesh.num_vertices))


class TestPermutationUtilities:
    def test_invert_roundtrip(self, rng):
        order = rng.permutation(57)
        inv = invert_permutation(order)
        assert np.array_equal(order[inv], np.arange(57))
        assert np.array_equal(inv[order], np.arange(57))

    def test_check_permutation_accepts_valid(self):
        out = check_permutation([2, 0, 1], 3)
        assert out.dtype == np.int64

    def test_check_permutation_rejects_duplicates(self):
        with pytest.raises(ValueError, match="missing"):
            check_permutation([0, 0, 2], 3)

    def test_check_permutation_rejects_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            check_permutation([0, 1, 3], 3)

    def test_check_permutation_rejects_wrong_shape(self):
        with pytest.raises(ValueError, match="shape"):
            check_permutation([0, 1], 3)
