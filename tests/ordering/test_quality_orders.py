"""Unit tests for quality/degree-sort orderings."""

import numpy as np

from repro.ordering import degree_ordering, quality_sort_ordering
from repro.quality import vertex_quality


class TestQualitySort:
    def test_sorted_by_increasing_quality(self, ocean_mesh):
        q = vertex_quality(ocean_mesh)
        order = quality_sort_ordering(ocean_mesh, qualities=q)
        assert (np.diff(q[order]) >= 0).all()

    def test_computes_quality_when_missing(self, ocean_mesh):
        a = quality_sort_ordering(ocean_mesh)
        b = quality_sort_ordering(
            ocean_mesh, qualities=vertex_quality(ocean_mesh)
        )
        assert np.array_equal(a, b)

    def test_stable_tie_breaking(self, grid_mesh):
        q = np.zeros(grid_mesh.num_vertices)  # all tied
        order = quality_sort_ordering(grid_mesh, qualities=q)
        assert np.array_equal(order, np.arange(grid_mesh.num_vertices))


class TestDegreeSort:
    def test_sorted_by_degree(self, ocean_mesh):
        order = degree_ordering(ocean_mesh)
        deg = ocean_mesh.adjacency.degrees()
        assert (np.diff(deg[order]) >= 0).all()
