"""Unit tests for space-filling-curve orderings."""

import numpy as np
import pytest

from repro.ordering import hilbert_indices, hilbert_ordering, morton_ordering
from repro.ordering.base import invert_permutation


class TestHilbertIndices:
    def test_bijective_on_small_grid(self):
        # All 16 cells of a 4x4 grid get distinct indices 0..15.
        side = 4
        xs, ys = np.meshgrid(np.arange(side), np.arange(side), indexing="ij")
        pts = np.stack([xs.ravel(), ys.ravel()], axis=1).astype(float)
        idx = hilbert_indices(pts, bits=2)
        assert sorted(idx.tolist()) == list(range(16))

    def test_curve_is_connected(self):
        # Consecutive Hilbert indices are grid neighbors (the defining
        # locality property of the curve).
        side = 8
        xs, ys = np.meshgrid(np.arange(side), np.arange(side), indexing="ij")
        pts = np.stack([xs.ravel(), ys.ravel()], axis=1).astype(float)
        idx = hilbert_indices(pts, bits=3)
        order = np.argsort(idx)
        walk = pts[order]
        steps = np.abs(np.diff(walk, axis=0)).sum(axis=1)
        assert (steps == 1).all()

    def test_degenerate_extent_handled(self):
        pts = np.array([[0.0, 1.0], [0.0, 2.0], [0.0, 3.0]])
        idx = hilbert_indices(pts)
        assert len(set(idx.tolist())) == 3


class TestHilbertOrdering:
    def test_spatial_locality(self, ocean_mesh):
        order = hilbert_ordering(ocean_mesh)
        walk = ocean_mesh.vertices[order]
        hilbert_step = np.linalg.norm(np.diff(walk, axis=0), axis=1).mean()
        random_step = np.linalg.norm(
            np.diff(ocean_mesh.vertices, axis=0), axis=1
        ).mean()
        assert hilbert_step < random_step

    def test_reduces_edge_span_vs_random(self, ocean_mesh):
        from repro.ordering import random_ordering

        edges = ocean_mesh.edges()

        def mean_span(order):
            inv = invert_permutation(order)
            return float(np.abs(inv[edges[:, 0]] - inv[edges[:, 1]]).mean())

        assert mean_span(hilbert_ordering(ocean_mesh)) < 0.3 * mean_span(
            random_ordering(ocean_mesh, seed=0)
        )


class TestMortonOrdering:
    def test_valid_permutation(self, ocean_mesh):
        order = morton_ordering(ocean_mesh)
        assert np.array_equal(
            np.sort(order), np.arange(ocean_mesh.num_vertices)
        )

    def test_differs_from_hilbert(self, ocean_mesh):
        assert not np.array_equal(
            morton_ordering(ocean_mesh), hilbert_ordering(ocean_mesh)
        )
