"""Unit tests for graph-traversal orderings (BFS, DFS, RCM, ...)."""

import numpy as np
import pytest

from repro.mesh import TriMesh
from repro.ordering import (
    bfs_ordering,
    dfs_ordering,
    random_ordering,
    rcm_ordering,
    reverse_bfs_ordering,
)
from repro.ordering.base import invert_permutation


def bfs_levels(mesh, start):
    """Graph distance from start, for checking BFS level structure."""
    from collections import deque

    g = mesh.adjacency
    dist = np.full(mesh.num_vertices, -1)
    dist[start] = 0
    q = deque([start])
    while q:
        v = q.popleft()
        for w in g.neighbors(v):
            if dist[w] == -1:
                dist[w] = dist[v] + 1
                q.append(int(w))
    return dist


class TestBFS:
    def test_starts_at_seed(self, ocean_mesh):
        assert bfs_ordering(ocean_mesh, seed=5)[0] == 5

    def test_levels_non_decreasing(self, ocean_mesh):
        order = bfs_ordering(ocean_mesh, seed=0)
        dist = bfs_levels(ocean_mesh, 0)
        levels = dist[order]
        assert (np.diff(levels) >= 0).all()

    def test_bandwidth_bounded(self, ocean_mesh):
        # Mesh neighbors end up close in BFS order (within two levels).
        order = bfs_ordering(ocean_mesh, seed=0)
        inv = invert_permutation(order)
        edges = ocean_mesh.edges()
        span = np.abs(inv[edges[:, 0]] - inv[edges[:, 1]])
        dist = bfs_levels(ocean_mesh, 0)
        level_sizes = np.bincount(dist[dist >= 0])
        assert span.max() <= 2 * level_sizes.max()

    def test_disconnected_graph_covered(self):
        # Two separate triangles.
        mesh = TriMesh(
            np.array([[0, 0], [1, 0], [0, 1], [5, 5], [6, 5], [5, 6.0]]),
            np.array([[0, 1, 2], [3, 4, 5]]),
        )
        order = bfs_ordering(mesh, seed=0)
        assert np.array_equal(np.sort(order), np.arange(6))


class TestReverseBFS:
    def test_is_reverse_of_bfs(self, ocean_mesh):
        fwd = bfs_ordering(ocean_mesh, seed=0)
        rev = reverse_bfs_ordering(ocean_mesh, seed=0)
        assert np.array_equal(rev, fwd[::-1])


class TestDFS:
    def test_starts_at_seed(self, ocean_mesh):
        assert dfs_ordering(ocean_mesh, seed=3)[0] == 3

    def test_preorder_parent_before_child(self, tiny_mesh):
        order = dfs_ordering(tiny_mesh, seed=0)
        # 0's smallest neighbor comes right after 0.
        assert order[0] == 0
        assert order[1] in set(tiny_mesh.adjacency.neighbors(0).tolist())

    def test_differs_from_bfs_on_real_mesh(self, ocean_mesh):
        assert not np.array_equal(
            dfs_ordering(ocean_mesh, seed=0), bfs_ordering(ocean_mesh, seed=0)
        )


class TestRCM:
    def test_reduces_bandwidth_vs_random(self, ocean_mesh):
        edges = ocean_mesh.edges()

        def bandwidth(order):
            inv = invert_permutation(order)
            return int(np.abs(inv[edges[:, 0]] - inv[edges[:, 1]]).max())

        rcm_bw = bandwidth(rcm_ordering(ocean_mesh))
        rand_bw = bandwidth(random_ordering(ocean_mesh, seed=0))
        assert rcm_bw < 0.5 * rand_bw

    def test_empty_ok(self):
        mesh = TriMesh(np.empty((0, 2)), np.empty((0, 3), dtype=int))
        assert rcm_ordering(mesh).size == 0


class TestRandom:
    def test_seed_dependence(self, ocean_mesh):
        a = random_ordering(ocean_mesh, seed=1)
        b = random_ordering(ocean_mesh, seed=2)
        assert not np.array_equal(a, b)

    def test_seed_reproducible(self, ocean_mesh):
        a = random_ordering(ocean_mesh, seed=1)
        b = random_ordering(ocean_mesh, seed=1)
        assert np.array_equal(a, b)
