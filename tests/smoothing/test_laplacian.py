"""Unit tests for the Laplacian smoother."""

import numpy as np
import pytest

from repro.quality import global_quality
from repro.smoothing import (
    DEFAULT_CONVERGENCE_TOL,
    LaplacianSmoother,
    laplacian_smooth,
    smooth_iteration_jacobi,
)


class TestJacobiSweep:
    def test_single_interior_vertex_moves_to_centroid(self, tiny_mesh):
        g = tiny_mesh.adjacency
        out = smooth_iteration_jacobi(
            tiny_mesh.vertices, g.xadj, g.adjncy, tiny_mesh.interior_mask
        )
        expected = tiny_mesh.vertices[[0, 1, 2, 3]].mean(axis=0)
        assert np.allclose(out[4], expected)

    def test_boundary_fixed(self, tiny_mesh):
        g = tiny_mesh.adjacency
        out = smooth_iteration_jacobi(
            tiny_mesh.vertices, g.xadj, g.adjncy, tiny_mesh.interior_mask
        )
        assert np.array_equal(out[:4], tiny_mesh.vertices[:4])

    def test_matches_manual_computation(self, bumpy_mesh):
        g = bumpy_mesh.adjacency
        out = smooth_iteration_jacobi(
            bumpy_mesh.vertices, g.xadj, g.adjncy, bumpy_mesh.interior_mask
        )
        for v in bumpy_mesh.interior_vertices()[:10]:
            nbrs = g.neighbors(v)
            assert np.allclose(out[v], bumpy_mesh.vertices[nbrs].mean(axis=0))

    def test_input_not_mutated(self, tiny_mesh):
        g = tiny_mesh.adjacency
        before = tiny_mesh.vertices.copy()
        smooth_iteration_jacobi(
            tiny_mesh.vertices, g.xadj, g.adjncy, tiny_mesh.interior_mask
        )
        assert np.array_equal(tiny_mesh.vertices, before)

    def test_empty_adjacency(self):
        coords = np.zeros((3, 2))
        out = smooth_iteration_jacobi(
            coords,
            np.zeros(4, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.ones(3, dtype=bool),
        )
        assert np.array_equal(out, coords)


class TestSmoother:
    def test_quality_monotonically_improves(self, ocean_mesh):
        result = laplacian_smooth(ocean_mesh, max_iterations=10)
        hist = result.quality_history
        assert all(b >= a - 1e-12 for a, b in zip(hist, hist[1:]))
        assert result.final_quality > result.initial_quality

    def test_converges_with_papers_criterion(self, ocean_mesh):
        result = laplacian_smooth(ocean_mesh, tol=DEFAULT_CONVERGENCE_TOL)
        assert result.converged
        assert result.iterations < 50
        # Improvement at the last step dropped below the criterion.
        assert (
            result.quality_history[-1] - result.quality_history[-2]
            < DEFAULT_CONVERGENCE_TOL
        )

    def test_boundary_never_moves(self, ocean_mesh):
        result = laplacian_smooth(ocean_mesh, max_iterations=5)
        b = ocean_mesh.boundary_mask
        assert np.array_equal(result.mesh.vertices[b], ocean_mesh.vertices[b])

    def test_input_mesh_unchanged(self, ocean_mesh):
        before = ocean_mesh.vertices.copy()
        laplacian_smooth(ocean_mesh, max_iterations=3)
        assert np.array_equal(ocean_mesh.vertices, before)

    def test_max_iterations_cap(self, ocean_mesh):
        result = laplacian_smooth(ocean_mesh, max_iterations=2, tol=-np.inf)
        assert result.iterations == 2
        assert not result.converged

    @pytest.mark.parametrize("traversal", ["greedy", "storage"])
    def test_both_traversals_improve_quality(self, ocean_mesh, traversal):
        result = laplacian_smooth(
            ocean_mesh, traversal=traversal, max_iterations=4
        )
        assert result.improvement > 0

    def test_jacobi_and_gauss_seidel_both_converge(self, ocean_mesh):
        gs = laplacian_smooth(ocean_mesh, update="gauss-seidel", max_iterations=8)
        jac = laplacian_smooth(ocean_mesh, update="jacobi", max_iterations=8)
        assert gs.improvement > 0 and jac.improvement > 0

    def test_gauss_seidel_uses_updated_neighbors(self, tiny_mesh):
        # Make a 2-interior-vertex mesh where in-place updates differ
        # from Jacobi: split the apex into two interior vertices.
        import repro.meshgen as mg

        mesh = mg.perturb_interior(
            mg.structured_rectangle(4, 4), amplitude=0.05, seed=2
        )
        gs = laplacian_smooth(
            mesh, update="gauss-seidel", max_iterations=1, tol=-np.inf
        )
        jac = laplacian_smooth(mesh, update="jacobi", max_iterations=1, tol=-np.inf)
        assert not np.allclose(gs.mesh.vertices, jac.mesh.vertices)

    def test_traversals_recorded(self, ocean_mesh):
        result = laplacian_smooth(ocean_mesh, max_iterations=3, tol=-np.inf)
        assert len(result.traversals) == 3
        for seq in result.traversals:
            assert np.array_equal(np.sort(seq), ocean_mesh.interior_vertices())

    def test_wall_time_recorded(self, ocean_mesh):
        result = laplacian_smooth(ocean_mesh, max_iterations=1)
        assert result.wall_time_s > 0

    def test_greedy_qualities_initial_fixes_traversal(self, ocean_mesh):
        result = laplacian_smooth(
            ocean_mesh,
            greedy_qualities="initial",
            rank_passes=0,
            max_iterations=3,
            tol=-np.inf,
        )
        assert np.array_equal(result.traversals[0], result.traversals[1])

    def test_greedy_qualities_current_adapts(self, ocean_mesh):
        result = laplacian_smooth(
            ocean_mesh,
            greedy_qualities="current",
            rank_passes=0,
            max_iterations=3,
            tol=-np.inf,
        )
        assert not np.array_equal(result.traversals[0], result.traversals[1])


class TestSmootherTrace:
    def test_trace_recorded_on_request(self, ocean_mesh):
        result = laplacian_smooth(
            ocean_mesh, record_trace=True, max_iterations=2, tol=-np.inf
        )
        assert result.trace is not None
        assert result.trace.num_iterations == 2
        assert len(result.trace) > 0

    def test_no_trace_by_default(self, ocean_mesh):
        assert laplacian_smooth(ocean_mesh, max_iterations=1).trace is None

    def test_trace_matches_standalone_generation(self, ocean_mesh):
        from repro.smoothing import trace_for_traversal

        result = laplacian_smooth(
            ocean_mesh, record_trace=True, max_iterations=1, tol=-np.inf
        )
        regenerated = trace_for_traversal(ocean_mesh, result.traversals[0])
        assert np.array_equal(result.trace.indices, regenerated.indices)
        assert np.array_equal(result.trace.array_ids, regenerated.array_ids)

    def test_trace_length_formula(self, ocean_mesh):
        from repro.smoothing import accesses_per_vertex

        result = laplacian_smooth(
            ocean_mesh, record_trace=True, max_iterations=1, tol=-np.inf
        )
        expected = sum(
            accesses_per_vertex(ocean_mesh, int(v))
            for v in result.traversals[0]
        )
        assert len(result.trace) == expected


class TestValidation:
    def test_bad_update(self):
        with pytest.raises(ValueError, match="update"):
            LaplacianSmoother(update="magic")

    def test_bad_greedy_qualities(self):
        with pytest.raises(ValueError, match="greedy_qualities"):
            LaplacianSmoother(greedy_qualities="sometimes")

    def test_smoothed_quality_close_to_one_on_convex_patch(self, tiny_mesh):
        result = laplacian_smooth(tiny_mesh, max_iterations=30)
        assert global_quality(result.mesh) > global_quality(tiny_mesh)
