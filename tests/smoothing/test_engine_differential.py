"""Differential suite: ``engine="vectorized"`` against the reference.

The two engines must be observationally equivalent — same traversals,
byte-identical access traces, same culling activity, and the same
coordinates. Coordinates are compared at ``rtol=1e-12``: the wavefront
kernel's segment sum (``np.add.reduceat``, strict left-to-right) and
the reference kernel's ``ndarray.mean`` (pairwise above NumPy's 8-wide
block) may differ in the last ulp for vertices of degree >= 8. Jacobi
runs are bitwise identical because both engines share
``smooth_iteration_jacobi``.

Runs use ``tol=-inf`` with a fixed iteration count where a last-ulp
quality difference could otherwise flip a convergence decision, plus
full convergence-driven runs on the session meshes to exercise the real
stopping rule.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.meshgen import perturb_interior, structured_rectangle
from repro.smoothing import ENGINES, LaplacianSmoother, laplacian_smooth

FAST = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _run_both(mesh, **kwargs):
    results = {}
    for engine in ENGINES:
        results[engine] = laplacian_smooth(mesh, engine=engine, **kwargs)
    return results["reference"], results["vectorized"]


def assert_equivalent(ref, vec, *, bitwise=False):
    assert ref.iterations == vec.iterations
    assert ref.converged == vec.converged
    assert ref.active_counts == vec.active_counts
    for a, b in zip(ref.traversals, vec.traversals):
        assert np.array_equal(a, b)
    if bitwise:
        assert np.array_equal(ref.mesh.vertices, vec.mesh.vertices)
    else:
        assert np.allclose(
            ref.mesh.vertices, vec.mesh.vertices, rtol=1e-12, atol=0.0
        )
    if ref.trace is not None or vec.trace is not None:
        assert np.array_equal(ref.trace.array_ids, vec.trace.array_ids)
        assert np.array_equal(ref.trace.indices, vec.trace.indices)
        assert np.array_equal(ref.trace.is_write, vec.trace.is_write)
        assert np.array_equal(
            ref.trace.iteration_starts, vec.trace.iteration_starts
        )


@pytest.mark.parametrize("traversal", ["storage", "greedy"])
@pytest.mark.parametrize(
    "mesh_fixture", ["grid_mesh", "bumpy_mesh", "ocean_mesh"]
)
def test_engines_match_to_convergence(mesh_fixture, traversal, request):
    mesh = request.getfixturevalue(mesh_fixture)
    ref, vec = _run_both(
        mesh, traversal=traversal, max_iterations=30, record_trace=True
    )
    assert_equivalent(ref, vec)
    assert ref.converged


@pytest.mark.parametrize("greedy_qualities", ["current", "initial"])
def test_engines_match_greedy_variants(bumpy_mesh, greedy_qualities):
    ref, vec = _run_both(
        bumpy_mesh,
        traversal="greedy",
        greedy_qualities=greedy_qualities,
        max_iterations=6,
        tol=-np.inf,
        record_trace=True,
    )
    assert_equivalent(ref, vec)
    assert ref.iterations == 6


def test_engines_match_with_culling(bumpy_mesh):
    ref, vec = _run_both(
        bumpy_mesh,
        traversal="storage",
        culling=True,
        max_iterations=25,
        record_trace=True,
    )
    assert_equivalent(ref, vec)
    # Culling actually engaged: the active set shrank along the way.
    assert ref.active_counts[-1] < ref.active_counts[0]


def test_engines_match_jacobi_bitwise(ocean_mesh):
    ref, vec = _run_both(
        ocean_mesh,
        update="jacobi",
        max_iterations=8,
        tol=-np.inf,
        record_trace=True,
    )
    assert_equivalent(ref, vec, bitwise=True)


@FAST
@given(
    nx=st.integers(min_value=3, max_value=12),
    ny=st.integers(min_value=3, max_value=12),
    # Strictly positive amplitude keeps the quality field generic: on an
    # exactly symmetric mesh the greedy ranking has tied keys, and a
    # legitimate last-ulp coordinate difference between the engines can
    # flip the order of a tie (not an engine bug).
    amplitude=st.floats(min_value=0.01, max_value=0.08),
    seed=st.integers(min_value=0, max_value=2**16),
    traversal=st.sampled_from(["storage", "greedy"]),
    iterations=st.integers(min_value=1, max_value=5),
)
def test_engines_match_on_random_meshes(
    nx, ny, amplitude, seed, traversal, iterations
):
    mesh = perturb_interior(
        structured_rectangle(nx, ny), amplitude=amplitude, seed=seed
    )
    ref, vec = _run_both(
        mesh,
        traversal=traversal,
        max_iterations=iterations,
        tol=-np.inf,
        record_trace=True,
    )
    assert_equivalent(ref, vec)
    assert ref.iterations == iterations


def test_unknown_engine_rejected():
    with pytest.raises(ValueError, match="unknown engine"):
        LaplacianSmoother(engine="turbo")


def test_csr_segment_mean_matches_scalar_loop(ocean_mesh):
    from repro.smoothing import csr_segment_mean

    g = ocean_mesh.adjacency
    coords = ocean_mesh.vertices
    verts = ocean_mesh.interior_vertices()
    got = csr_segment_mean(coords, g.xadj, g.adjncy, verts)
    for row, v in zip(got, verts.tolist()):
        lo, hi = g.xadj[v], g.xadj[v + 1]
        want = coords[g.adjncy[lo:hi]].sum(axis=0) / (hi - lo)
        assert np.allclose(row, want, rtol=1e-12, atol=0.0)


def test_csr_segment_mean_empty_selection(ocean_mesh):
    from repro.smoothing import csr_segment_mean

    g = ocean_mesh.adjacency
    out = csr_segment_mean(
        ocean_mesh.vertices, g.xadj, g.adjncy, np.empty(0, dtype=np.int64)
    )
    assert out.shape == (0, 2)


def test_smooth_wavefronts_single_sweep_matches_reference(bumpy_mesh):
    from repro.parallel.scheduler import wavefront_schedule
    from repro.smoothing import smooth_wavefronts

    g = bumpy_mesh.adjacency
    seq = bumpy_mesh.interior_vertices()
    batched, offsets = wavefront_schedule(seq, g.xadj, g.adjncy)

    vec = bumpy_mesh.vertices.copy()
    smooth_wavefronts(vec, g.xadj, g.adjncy, batched, offsets)

    ref = bumpy_mesh.vertices.copy()
    for v in seq.tolist():
        lo, hi = g.xadj[v], g.xadj[v + 1]
        ref[v] = ref[g.adjncy[lo:hi]].mean(axis=0)

    assert np.allclose(vec, ref, rtol=1e-12, atol=0.0)
