"""Unit tests for the smoothing access-trace model."""

import numpy as np
import pytest

from repro.memsim.trace import ARRAY_IDS, TraceBuilder
from repro.smoothing import (
    accesses_per_vertex,
    append_smooth_accesses,
    trace_for_traversal,
)


class TestAccessModel:
    def test_single_vertex_access_sequence(self, tiny_mesh):
        g = tiny_mesh.adjacency
        tb = TraceBuilder()
        append_smooth_accesses(tb, g.xadj, g.adjncy, 4)
        trace = tb.build()
        names = {v: k for k, v in ARRAY_IDS.items()}
        kinds = [names[i] for i in trace.array_ids.tolist()]
        deg = 4
        assert kinds == (
            ["flags"] + ["xadj"] * 2 + ["adjncy"] * deg + ["coords"] * deg + ["coords"]
        )
        # The only write is the final coords store.
        assert trace.is_write.tolist() == [False] * (3 + 2 * deg) + [True]

    def test_neighbor_coords_match_adjacency(self, tiny_mesh):
        g = tiny_mesh.adjacency
        tb = TraceBuilder()
        append_smooth_accesses(tb, g.xadj, g.adjncy, 4)
        trace = tb.build()
        coords_reads = trace.indices[
            (trace.array_ids == ARRAY_IDS["coords"]) & ~trace.is_write
        ]
        assert np.array_equal(coords_reads, g.neighbors(4))

    def test_accesses_per_vertex_formula(self, ocean_mesh):
        g = ocean_mesh.adjacency
        for v in (0, 5, 17):
            tb = TraceBuilder()
            append_smooth_accesses(tb, g.xadj, g.adjncy, v)
            assert len(tb) == accesses_per_vertex(ocean_mesh, v)


class TestTraceForTraversal:
    def test_iteration_boundaries(self, tiny_mesh):
        seq = np.array([4])
        trace = trace_for_traversal(tiny_mesh, [seq, seq, seq])
        assert trace.num_iterations == 3
        per_iter = len(trace) // 3
        for k in range(3):
            sub = trace.iteration(k)
            assert len(sub) == per_iter
            assert np.array_equal(sub.indices, trace.iteration(0).indices)

    def test_single_array_counts_as_one_iteration(self, tiny_mesh):
        trace = trace_for_traversal(tiny_mesh, np.array([4]))
        assert trace.num_iterations == 1

    def test_meta_propagates(self, tiny_mesh):
        trace = trace_for_traversal(tiny_mesh, np.array([4]), ordering="x")
        assert trace.meta["ordering"] == "x"
        assert trace.meta["mesh"] == "tiny"

    def test_depends_only_on_connectivity(self, ocean_mesh):
        seq = ocean_mesh.interior_vertices()[:25]
        a = trace_for_traversal(ocean_mesh, seq)
        moved = ocean_mesh.with_vertices(ocean_mesh.vertices + 3.0)
        b = trace_for_traversal(moved, seq)
        assert np.array_equal(a.indices, b.indices)
        assert np.array_equal(a.array_ids, b.array_ids)
