"""Unit tests for smoothing traversal policies."""

import numpy as np
import pytest

from repro.quality import vertex_quality
from repro.smoothing import (
    TRAVERSALS,
    greedy_traversal,
    make_traversal,
    storage_traversal,
)


class TestStorageTraversal:
    def test_interior_in_ascending_order(self, ocean_mesh):
        seq = storage_traversal(ocean_mesh)
        assert np.array_equal(seq, ocean_mesh.interior_vertices())
        assert (np.diff(seq) > 0).all()

    def test_subset_respected(self, ocean_mesh):
        subset = ocean_mesh.interior_vertices()[10:20]
        seq = storage_traversal(ocean_mesh, subset=subset)
        assert np.array_equal(seq, np.sort(subset))


class TestGreedyTraversal:
    def test_visits_every_interior_vertex_once(self, ocean_mesh):
        q = vertex_quality(ocean_mesh)
        seq = greedy_traversal(ocean_mesh, q)
        assert np.array_equal(np.sort(seq), ocean_mesh.interior_vertices())

    def test_starts_at_worst_interior(self, ocean_mesh):
        q = vertex_quality(ocean_mesh)
        seq = greedy_traversal(ocean_mesh, q)
        interior = ocean_mesh.interior_vertices()
        assert seq[0] == interior[np.argmin(q[interior])]

    def test_chains_follow_worst_neighbor(self, ocean_mesh):
        q = vertex_quality(ocean_mesh)
        seq = greedy_traversal(ocean_mesh, q)
        g = ocean_mesh.adjacency
        interior = set(ocean_mesh.interior_vertices().tolist())
        visited = {int(seq[0])}
        for prev, cur in zip(seq[:-1], seq[1:]):
            cand = [
                w
                for w in g.neighbors(prev).tolist()
                if w in interior and w not in visited
            ]
            if cand:
                # Chain continued: must be the worst unvisited neighbor.
                expected = min(cand, key=lambda w: (q[w], 0))
                assert q[cur] <= q[expected] or cur == expected
                assert cur in cand
            visited.add(int(cur))

    def test_subset_chains_stay_inside(self, ocean_mesh):
        q = vertex_quality(ocean_mesh)
        subset = ocean_mesh.interior_vertices()[:40]
        seq = greedy_traversal(ocean_mesh, q, subset=subset)
        assert set(seq.tolist()) == set(subset.tolist())

    def test_boundary_vertices_never_visited(self, ocean_mesh):
        q = vertex_quality(ocean_mesh)
        seq = greedy_traversal(ocean_mesh, q)
        assert not ocean_mesh.boundary_mask[seq].any()

    def test_rejects_bad_quality_shape(self, ocean_mesh):
        with pytest.raises(ValueError, match="shape"):
            greedy_traversal(ocean_mesh, np.zeros(3))

    def test_ordering_independent_logical_sequence(self, ocean_mesh, rng):
        """With distinct qualities, the greedy traversal visits the same
        logical vertices in the same order regardless of storage."""
        q = vertex_quality(ocean_mesh)
        q = q + rng.uniform(0, 1e-9, q.size)  # break exact ties
        seq_base = greedy_traversal(ocean_mesh, q)
        order = rng.permutation(ocean_mesh.num_vertices)
        permuted = ocean_mesh.permute(order)
        seq_perm = greedy_traversal(permuted, q[order])
        assert np.array_equal(order[seq_perm], seq_base)


class TestMakeTraversal:
    def test_dispatch(self, ocean_mesh):
        q = vertex_quality(ocean_mesh)
        assert np.array_equal(
            make_traversal("storage", ocean_mesh), storage_traversal(ocean_mesh)
        )
        assert np.array_equal(
            make_traversal("greedy", ocean_mesh, q),
            greedy_traversal(ocean_mesh, q),
        )

    def test_greedy_requires_qualities(self, ocean_mesh):
        with pytest.raises(ValueError, match="requires qualities"):
            make_traversal("greedy", ocean_mesh)

    def test_unknown_name(self, ocean_mesh):
        with pytest.raises(KeyError, match="unknown traversal"):
            make_traversal("zigzag", ocean_mesh)

    def test_registry(self):
        assert set(TRAVERSALS) == {"storage", "greedy"}
