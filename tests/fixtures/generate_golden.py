"""Regenerate the golden-trace regression fixtures.

Run from the repository root::

    PYTHONPATH=src python tests/fixtures/generate_golden.py

The fixtures pin the observable behavior of the trace -> layout ->
cache -> timing chain on three small, fully deterministic
configurations. ``tests/memsim/test_golden_traces.py`` recomputes each
configuration and compares against these files *exactly* (traces, line
streams and cache counters are integers; modeled cycles are compared at
``rtol=1e-12``), so any unintended change to
:mod:`repro.memsim.trace`, :mod:`repro.memsim.layout`,
:mod:`repro.memsim.cache` or :mod:`repro.memsim.timing` — or to the
smoothing traversals that feed them — shows up as a diff against a
committed artifact rather than as silent drift.

Regenerate (and commit the diff) only when an intentional
behavior change invalidates the pinned values.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path

import numpy as np

FIXTURE_DIR = Path(__file__).resolve().parent / "golden"


def golden_configs():
    """The pinned configurations, importable by the regression test."""
    from repro.meshgen import perturb_interior, structured_rectangle

    def bumpy():
        return perturb_interior(
            structured_rectangle(9, 9, name="bumpy"), amplitude=0.04, seed=3
        )

    def grid():
        return structured_rectangle(6, 7, name="grid")

    return {
        "bumpy_storage_gs": dict(
            mesh=bumpy,
            smooth=dict(
                traversal="storage", update="gauss-seidel", max_iterations=2
            ),
            machine_scale=0.02,
        ),
        "bumpy_greedy_gs": dict(
            mesh=bumpy,
            smooth=dict(
                traversal="greedy", update="gauss-seidel", max_iterations=3
            ),
            machine_scale=0.05,
        ),
        "grid_storage_jacobi": dict(
            mesh=grid,
            smooth=dict(
                traversal="storage", update="jacobi", max_iterations=2
            ),
            machine_scale=0.02,
        ),
    }


def compute_golden(name: str, config: dict) -> tuple[dict[str, np.ndarray], dict]:
    """The arrays and scalar stats one configuration pins."""
    from repro.memsim import (
        MemoryLayout,
        modeled_time,
        reuse_distances,
        simulate_trace,
        westmere_ex,
    )
    from repro.smoothing import laplacian_smooth

    mesh = config["mesh"]()
    result = laplacian_smooth(
        mesh, tol=-np.inf, record_trace=True, **config["smooth"]
    )
    trace = result.trace
    machine = westmere_ex(scale=config["machine_scale"])
    layout = MemoryLayout.for_mesh(mesh, line_size=machine.line_size)
    lines = layout.lines(trace)
    stats = simulate_trace(lines, machine)
    cost = modeled_time(stats, machine, num_accesses=lines.size)
    distances = reuse_distances(lines)
    arrays = {
        "array_ids": trace.array_ids,
        "indices": trace.indices,
        "is_write": trace.is_write,
        "iteration_starts": trace.iteration_starts,
        "lines": lines,
        "reuse_distances": distances,
    }
    scalars = {
        "mesh": mesh.name,
        "num_vertices": int(mesh.num_vertices),
        "iterations": int(result.iterations),
        "num_events": int(trace.array_ids.size),
        "levels": {
            level.name: {"accesses": int(level.accesses), "hits": int(level.hits)}
            for level in (stats.l1, stats.l2, stats.l3)
        },
        "cost": asdict(cost),
    }
    return arrays, scalars


def main() -> None:
    FIXTURE_DIR.mkdir(parents=True, exist_ok=True)
    all_scalars = {}
    for name, config in golden_configs().items():
        arrays, scalars = compute_golden(name, config)
        np.savez_compressed(FIXTURE_DIR / f"{name}.npz", **arrays)
        all_scalars[name] = scalars
        print(f"{name}: {scalars['num_events']} events, "
              f"L1 hits {scalars['levels']['L1']['hits']}")
    (FIXTURE_DIR / "golden_stats.json").write_text(
        json.dumps(all_scalars, indent=2, sort_keys=True) + "\n"
    )
    print(f"wrote {len(all_scalars)} fixtures to {FIXTURE_DIR}")


if __name__ == "__main__":
    main()
