"""Unit tests for patch-aggregated (rank-smoothed) quality."""

import numpy as np
import pytest

from repro.quality import patch_quality, vertex_quality


class TestPatchQuality:
    def test_zero_passes_is_identity(self, ocean_mesh):
        base = vertex_quality(ocean_mesh)
        assert np.array_equal(patch_quality(ocean_mesh, passes=0), base)

    def test_base_passthrough(self, ocean_mesh):
        base = np.linspace(0, 1, ocean_mesh.num_vertices)
        out = patch_quality(ocean_mesh, passes=0, base=base)
        assert np.array_equal(out, base)
        assert out is not base  # defensive copy

    def test_reduces_local_variance(self, ocean_mesh):
        base = vertex_quality(ocean_mesh)
        smooth = patch_quality(ocean_mesh, passes=4, base=base)
        g = ocean_mesh.adjacency
        src = np.repeat(np.arange(ocean_mesh.num_vertices), g.degrees())
        local_base = np.abs(base[src] - base[g.adjncy]).mean()
        local_smooth = np.abs(smooth[src] - smooth[g.adjncy]).mean()
        assert local_smooth < 0.5 * local_base

    def test_values_stay_in_range(self, ocean_mesh):
        base = vertex_quality(ocean_mesh)
        smooth = patch_quality(ocean_mesh, passes=6, base=base)
        assert smooth.min() >= base.min() - 1e-12
        assert smooth.max() <= base.max() + 1e-12

    def test_constant_field_fixed_point(self, ocean_mesh):
        base = np.full(ocean_mesh.num_vertices, 0.7)
        out = patch_quality(ocean_mesh, passes=3, base=base)
        assert np.allclose(out, 0.7)

    def test_isolated_vertex_keeps_value(self):
        from repro.mesh import TriMesh

        mesh = TriMesh(
            np.array([[0, 0], [1, 0], [0, 1], [9, 9.0]]), np.array([[0, 1, 2]])
        )
        base = np.array([0.1, 0.2, 0.3, 0.9])
        out = patch_quality(mesh, passes=5, base=base)
        assert out[3] == pytest.approx(0.9)

    def test_rejects_negative_passes(self, ocean_mesh):
        with pytest.raises(ValueError, match=">= 0"):
            patch_quality(ocean_mesh, passes=-1)

    def test_rejects_bad_base_shape(self, ocean_mesh):
        with pytest.raises(ValueError, match="per vertex"):
            patch_quality(ocean_mesh, base=np.zeros(3))

    def test_permutation_equivariant(self, ocean_mesh, rng):
        order = rng.permutation(ocean_mesh.num_vertices)
        base = vertex_quality(ocean_mesh)
        a = patch_quality(ocean_mesh, passes=3, base=base)[order]
        b = patch_quality(
            ocean_mesh.permute(order), passes=3, base=base[order]
        )
        assert np.allclose(a, b)
