"""Unit tests for triangle and vertex quality metrics."""

import numpy as np
import pytest

from repro.mesh import TriMesh
from repro.quality import (
    TRIANGLE_METRICS,
    aspect_ratio_quality,
    edge_length_ratio,
    global_quality,
    min_angle_quality,
    triangle_edge_lengths,
    vertex_quality,
)


def single_triangle(p0, p1, p2) -> TriMesh:
    return TriMesh(np.array([p0, p1, p2], dtype=float), np.array([[0, 1, 2]]))


EQUILATERAL = single_triangle([0, 0], [1, 0], [0.5, np.sqrt(3) / 2])
RIGHT_ISO = single_triangle([0, 0], [1, 0], [0, 1])
SLIVER = single_triangle([0, 0], [1, 0], [0.5, 1e-4])


class TestTriangleEdgeLengths:
    def test_unit_equilateral(self):
        lengths = triangle_edge_lengths(EQUILATERAL)
        assert np.allclose(lengths, 1.0)

    def test_opposite_vertex_convention(self):
        lengths = triangle_edge_lengths(RIGHT_ISO)
        # Edge opposite vertex 0 is the hypotenuse.
        assert lengths[0, 0] == pytest.approx(np.sqrt(2.0))
        assert lengths[0, 1] == pytest.approx(1.0)
        assert lengths[0, 2] == pytest.approx(1.0)


class TestEdgeLengthRatio:
    def test_equilateral_is_one(self):
        assert edge_length_ratio(EQUILATERAL)[0] == pytest.approx(1.0)

    def test_right_isoceles(self):
        assert edge_length_ratio(RIGHT_ISO)[0] == pytest.approx(1 / np.sqrt(2))

    def test_sliver_near_zero(self):
        assert edge_length_ratio(SLIVER)[0] < 0.51  # min/max of degenerate

    def test_scale_invariant(self):
        big = single_triangle([0, 0], [100, 0], [50, 50 * np.sqrt(3)])
        assert edge_length_ratio(big)[0] == pytest.approx(1.0)

    def test_range(self, ocean_mesh):
        q = edge_length_ratio(ocean_mesh)
        assert (q >= 0).all() and (q <= 1).all()


class TestMinAngleQuality:
    def test_equilateral_is_one(self):
        assert min_angle_quality(EQUILATERAL)[0] == pytest.approx(1.0)

    def test_right_isoceles(self):
        assert min_angle_quality(RIGHT_ISO)[0] == pytest.approx(45 / 60)

    def test_range(self, ocean_mesh):
        q = min_angle_quality(ocean_mesh)
        assert (q >= 0).all() and (q <= 1 + 1e-12).all()


class TestAspectRatioQuality:
    def test_equilateral_is_one(self):
        assert aspect_ratio_quality(EQUILATERAL)[0] == pytest.approx(1.0)

    def test_sliver_near_zero(self):
        assert aspect_ratio_quality(SLIVER)[0] < 0.01

    def test_orientation_independent(self):
        cw = single_triangle([0, 0], [0.5, np.sqrt(3) / 2], [1, 0])
        assert aspect_ratio_quality(cw)[0] == pytest.approx(1.0)


class TestVertexQuality:
    def test_average_of_incident_triangles(self, tiny_mesh):
        tq = edge_length_ratio(tiny_mesh)
        vq = vertex_quality(tiny_mesh, triangle_quality=tq)
        # Apex (vertex 4) touches all four triangles.
        assert vq[4] == pytest.approx(tq.mean())
        # Corner 0 touches triangles 0 and 3.
        assert vq[0] == pytest.approx((tq[0] + tq[3]) / 2)

    def test_isolated_vertex_quality_one(self):
        mesh = TriMesh(
            np.array([[0, 0], [1, 0], [0, 1], [5, 5.0]]), np.array([[0, 1, 2]])
        )
        assert vertex_quality(mesh)[3] == 1.0

    def test_metric_selection(self, ocean_mesh):
        a = vertex_quality(ocean_mesh, metric="edge_length_ratio")
        b = vertex_quality(ocean_mesh, metric="min_angle")
        assert not np.allclose(a, b)

    def test_unknown_metric(self, ocean_mesh):
        with pytest.raises(KeyError, match="unknown metric"):
            vertex_quality(ocean_mesh, metric="bogus")

    def test_precomputed_triangle_quality_used(self, tiny_mesh):
        forced = np.full(tiny_mesh.num_triangles, 0.5)
        vq = vertex_quality(tiny_mesh, triangle_quality=forced)
        assert np.allclose(vq, 0.5)

    def test_permutation_equivariant(self, ocean_mesh, rng):
        order = rng.permutation(ocean_mesh.num_vertices)
        q = vertex_quality(ocean_mesh)
        qp = vertex_quality(ocean_mesh.permute(order))
        assert np.allclose(qp, q[order])


class TestGlobalQuality:
    def test_is_mean_of_vertex_quality(self, ocean_mesh):
        vq = vertex_quality(ocean_mesh)
        assert global_quality(ocean_mesh) == pytest.approx(vq.mean())

    def test_accepts_precomputed(self, ocean_mesh):
        vq = vertex_quality(ocean_mesh)
        assert global_quality(ocean_mesh, vertex_values=vq) == pytest.approx(
            vq.mean()
        )

    def test_registry_contains_all_metrics(self):
        assert set(TRIANGLE_METRICS) == {
            "edge_length_ratio",
            "min_angle",
            "aspect_ratio",
        }
