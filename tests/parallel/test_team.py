"""Unit tests for the real thread team (wall-clock smoothing)."""

import numpy as np
import pytest

from repro.parallel import parallel_smooth
from repro.smoothing import laplacian_smooth


class TestParallelSmooth:
    def test_single_thread_matches_jacobi_smoother(self, ocean_mesh):
        iters = 3
        par = parallel_smooth(ocean_mesh, num_threads=1, iterations=iters)
        ser = laplacian_smooth(
            ocean_mesh, update="jacobi", max_iterations=iters, tol=-np.inf
        )
        assert np.allclose(par.mesh.vertices, ser.mesh.vertices)

    @pytest.mark.parametrize("threads", [2, 4])
    def test_thread_count_does_not_change_result(self, ocean_mesh, threads):
        a = parallel_smooth(ocean_mesh, num_threads=1, iterations=4)
        b = parallel_smooth(ocean_mesh, num_threads=threads, iterations=4)
        assert np.allclose(a.mesh.vertices, b.mesh.vertices)

    def test_quality_improves(self, ocean_mesh):
        out = parallel_smooth(ocean_mesh, num_threads=2, iterations=6)
        assert out.quality_after > out.quality_before

    def test_boundary_fixed(self, ocean_mesh):
        out = parallel_smooth(ocean_mesh, num_threads=3, iterations=4)
        b = ocean_mesh.boundary_mask
        assert np.array_equal(out.mesh.vertices[b], ocean_mesh.vertices[b])

    def test_zero_iterations_identity(self, ocean_mesh):
        out = parallel_smooth(ocean_mesh, num_threads=2, iterations=0)
        assert np.array_equal(out.mesh.vertices, ocean_mesh.vertices)

    def test_metadata(self, ocean_mesh):
        out = parallel_smooth(ocean_mesh, num_threads=2, iterations=2)
        assert out.num_threads == 2
        assert out.iterations == 2
        assert out.wall_time_s > 0

    def test_rejects_bad_args(self, ocean_mesh):
        with pytest.raises(ValueError, match="num_threads"):
            parallel_smooth(ocean_mesh, num_threads=0, iterations=1)
        with pytest.raises(ValueError, match="iterations"):
            parallel_smooth(ocean_mesh, num_threads=1, iterations=-1)

    def test_input_mesh_unchanged(self, ocean_mesh):
        before = ocean_mesh.vertices.copy()
        parallel_smooth(ocean_mesh, num_threads=2, iterations=3)
        assert np.array_equal(ocean_mesh.vertices, before)
