"""Properties of the wavefront (level) schedule behind the vectorized
Gauss-Seidel engine.

The schedule must (a) repartition the traversal sequence without losing
or duplicating vertices, (b) place no two adjacent vertices in the same
level, and (c) respect the sequential dependence order: every neighbor
that precedes a vertex in the traversal lands in a strictly lower
level. Together these make the level-by-level batched sweep reproduce
the sequential sweep's values (pinned numerically by the engine
differential suite).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.meshgen import perturb_interior, structured_rectangle
from repro.parallel.scheduler import wavefront_schedule
from repro.quality import vertex_quality
from repro.smoothing import make_traversal

FAST = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def check_schedule(seq, xadj, adjncy, batched, offsets):
    # (a) Same multiset of vertices, valid level boundaries.
    assert np.array_equal(np.sort(batched), np.sort(seq))
    assert offsets[0] == 0 and offsets[-1] == seq.size
    assert np.all(np.diff(offsets) > 0)

    level_of = {}
    for k in range(offsets.size - 1):
        for v in batched[offsets[k] : offsets[k + 1]].tolist():
            level_of[v] = k

    pos = {int(v): i for i, v in enumerate(seq)}
    for k in range(offsets.size - 1):
        level = batched[offsets[k] : offsets[k + 1]].tolist()
        members = set(level)
        for v in level:
            neighbors = adjncy[xadj[v] : xadj[v + 1]].tolist()
            # (b) Levels are independent sets of the adjacency graph.
            assert not (set(neighbors) & members - {v})
            # (c) Earlier-in-sequence neighbors sit in lower levels.
            for u in neighbors:
                if u in pos and pos[u] < pos[v]:
                    assert level_of[u] < level_of[v]


@pytest.mark.parametrize("traversal", ["storage", "greedy"])
def test_schedule_valid_on_mesh_traversals(ocean_mesh, traversal):
    g = ocean_mesh.adjacency
    q = vertex_quality(ocean_mesh)
    seq = make_traversal(traversal, ocean_mesh, q)
    batched, offsets = wavefront_schedule(seq, g.xadj, g.adjncy)
    check_schedule(seq, g.xadj, g.adjncy, batched, offsets)


def test_schedule_of_empty_sequence(ocean_mesh):
    g = ocean_mesh.adjacency
    batched, offsets = wavefront_schedule(
        np.empty(0, dtype=np.int64), g.xadj, g.adjncy
    )
    assert batched.size == 0
    assert offsets.size == 1 and offsets[0] == 0


@FAST
@given(
    nx=st.integers(min_value=3, max_value=10),
    ny=st.integers(min_value=3, max_value=10),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_schedule_valid_on_random_subsets(nx, ny, seed):
    """Arbitrary subsets in arbitrary order (the culling case) schedule
    correctly too."""
    mesh = perturb_interior(
        structured_rectangle(nx, ny), amplitude=0.03, seed=seed
    )
    g = mesh.adjacency
    rng = np.random.default_rng(seed)
    interior = mesh.interior_vertices()
    take = rng.random(interior.size) < 0.7
    seq = rng.permutation(interior[take])
    batched, offsets = wavefront_schedule(seq, g.xadj, g.adjncy)
    check_schedule(seq, g.xadj, g.adjncy, batched, offsets)


def test_schedule_preserves_within_level_order(ocean_mesh):
    """Within a level, vertices keep their traversal order (the sort is
    stable), so the batched trace layout is deterministic."""
    g = ocean_mesh.adjacency
    seq = ocean_mesh.interior_vertices()
    batched, offsets = wavefront_schedule(seq, g.xadj, g.adjncy)
    pos = {int(v): i for i, v in enumerate(seq)}
    for k in range(offsets.size - 1):
        level = [pos[int(v)] for v in batched[offsets[k] : offsets[k + 1]]]
        assert level == sorted(level)
