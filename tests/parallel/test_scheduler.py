"""Unit tests for the static scheduler and parallel trace generation."""

import numpy as np
import pytest

from repro.parallel import parallel_traces, partition_interior, partitioned_traversals
from repro.quality import vertex_quality


class TestPartitionInterior:
    def test_blocks_cover_interior_exactly(self, ocean_mesh):
        blocks = partition_interior(ocean_mesh, 4)
        merged = np.concatenate(blocks)
        assert np.array_equal(merged, ocean_mesh.interior_vertices())

    def test_block_sizes_balanced(self, ocean_mesh):
        blocks = partition_interior(ocean_mesh, 7)
        sizes = [b.size for b in blocks]
        assert max(sizes) - min(sizes) <= 1

    def test_blocks_contiguous_in_storage(self, ocean_mesh):
        blocks = partition_interior(ocean_mesh, 3)
        for a, b in zip(blocks, blocks[1:]):
            assert a[-1] < b[0]

    def test_more_parts_than_vertices(self, tiny_mesh):
        blocks = partition_interior(tiny_mesh, 8)
        assert len(blocks) == 8
        assert sum(b.size for b in blocks) == 1

    def test_rejects_zero_parts(self, ocean_mesh):
        with pytest.raises(ValueError, match=">= 1"):
            partition_interior(ocean_mesh, 0)


class TestPartitionedTraversals:
    def test_each_thread_owns_its_block(self, ocean_mesh):
        q = vertex_quality(ocean_mesh)
        blocks = partition_interior(ocean_mesh, 4)
        seqs = partitioned_traversals(ocean_mesh, 4, qualities=q)
        for block, seq in zip(blocks, seqs):
            assert set(seq.tolist()) == set(block.tolist())

    def test_storage_mode(self, ocean_mesh):
        seqs = partitioned_traversals(ocean_mesh, 3, traversal="storage")
        blocks = partition_interior(ocean_mesh, 3)
        for block, seq in zip(blocks, seqs):
            assert np.array_equal(seq, block)

    def test_union_is_serial_workload(self, ocean_mesh):
        q = vertex_quality(ocean_mesh)
        seqs = partitioned_traversals(ocean_mesh, 5, qualities=q)
        merged = np.sort(np.concatenate(seqs))
        assert np.array_equal(merged, ocean_mesh.interior_vertices())


class TestParallelTraces:
    def test_one_trace_per_core(self, ocean_mesh):
        q = vertex_quality(ocean_mesh)
        traces = parallel_traces(ocean_mesh, 3, iterations=2, qualities=q)
        assert len(traces) == 3
        for k, t in enumerate(traces):
            assert t.num_iterations == 2
            assert t.meta["core"] == k

    def test_iterations_repeat_trace(self, ocean_mesh):
        q = vertex_quality(ocean_mesh)
        traces = parallel_traces(ocean_mesh, 2, iterations=3, qualities=q)
        t = traces[0]
        first = t.iteration(0)
        for k in (1, 2):
            assert np.array_equal(t.iteration(k).indices, first.indices)

    def test_total_work_independent_of_cores(self, ocean_mesh):
        q = vertex_quality(ocean_mesh)
        for p in (1, 4):
            traces = parallel_traces(ocean_mesh, p, iterations=1, qualities=q)
            total = sum(len(t) for t in traces)
            if p == 1:
                serial_total = total
        assert total == serial_total
