"""Unified run configuration: one ``config=`` object instead of a kwarg zoo.

Before this module, engine selection sprawled into three parallel kwarg
families — ``engine=`` (smoothing), ``sim_engine=`` (cache simulator),
``mem_engine=`` (multicore replay) — duplicated with ``seed=`` across
``run_ordering``, ``run_parallel_ordering``, ``simulate_trace``,
``simulate_multicore``, the CLI, the bench layer and the lab grid.
:class:`RunConfig` is the single frozen value object all of those accept
as ``config=``:

* ``engine`` — smoothing execution engine (``reference``/``vectorized``),
* ``sim_engine`` — cache simulator (``reference``/``batched``),
* ``mem_engine`` — multicore replay (``sequential``/``sharded``),
* ``order_engine`` — vertex-ordering engine (``reference``/``batched``;
  both produce identical permutations, the batched one vectorizes the
  traversal/chain machinery),
* ``backend`` — array namespace the fast engines execute on
  (``numpy``/``cupy``/``torch``, see :mod:`repro.backend`; names
  validate everywhere, uninstalled backends fall back to numpy at
  execution time),
* ``seed`` — the stochastic-ordering seed,
* ``machine_profile`` — calibration profile for the default machine
  (``None`` keeps each API's historical default: serial pipelines
  calibrate ``"serial"``, parallel ones ``"scaling"``),
* ``trace_mode`` — where the smoother's access trace goes
  (``materialize``/``spill``/``fused``, see :mod:`repro.memsim.sink`):
  buffered into one in-memory ``AccessTrace``, streamed to the chunked
  on-disk format, or fed window-by-window straight into the streaming
  simulators so the monolithic trace never exists,
* ``stream_window_events`` — when set, cache simulation replays the
  line stream in bounded windows of this many events through the
  streaming engines (bit-identical counts, memory bounded by one
  window) instead of materializing per-level index structures over the
  whole stream; in ``fused``/``spill`` trace modes it also sets the
  sink's window size,
* ``obs`` — an :class:`ObsConfig` controlling span/metrics capture.

Legacy kwargs keep working through :func:`resolve_config`, which maps
them onto a ``RunConfig`` and emits a :class:`DeprecationWarning`
attributed to the caller (``stacklevel``), so the test suite can run
with ``error::DeprecationWarning`` filtered to ``repro.*`` and fail any
*internal* call site still using the old spelling while external callers
merely see the warning.

Engine-name validation is shared with the CLI and the lab grid:
:func:`engine_axes` exposes the valid names per axis and
:class:`UnknownNameError` (re-exported by :mod:`repro.lab.grid`) carries
the one-line "valid X: ..." message the CLI prints with exit status 2.
"""

from __future__ import annotations

import warnings
from dataclasses import asdict, dataclass, field, fields, replace

__all__ = [
    "DEFAULT_RUN_CONFIG",
    "MACHINE_PROFILES",
    "ObsConfig",
    "RunConfig",
    "UnknownNameError",
    "engine_axes",
    "resolve_config",
]

#: Calibration profiles understood by
#: :func:`repro.memsim.machine.calibrated_machine`.
MACHINE_PROFILES = ("gpu-generic", "serial", "scaling")


class UnknownNameError(ValueError):
    """An unknown domain/ordering/experiment/engine name, with the valid
    choices.

    The CLI turns this into a one-line message and exit status 2.
    """

    def __init__(self, kind: str, name: str, choices):
        self.kind = kind
        self.name = name
        self.choices = sorted(choices)
        super().__init__(
            f"unknown {kind} {name!r}; valid {kind}s: {', '.join(self.choices)}"
        )


def engine_axes() -> dict[str, tuple[str, ...]]:
    """Valid engine names per axis, keyed by the ``RunConfig`` field.

    Imported lazily so this module stays dependency-free at import time
    (the smoothing and memsim packages import it back for their shims).
    """
    from .backend import BACKEND_NAMES
    from .memsim.batched import SIM_ENGINES
    from .memsim.multicore import MEM_ENGINES
    from .memsim.sink import TRACE_MODES
    from .ordering.base import ORDER_ENGINES
    from .smoothing.laplacian import ENGINES

    return {
        "engine": tuple(ENGINES),
        "sim_engine": tuple(SIM_ENGINES),
        "mem_engine": tuple(MEM_ENGINES),
        "order_engine": tuple(ORDER_ENGINES),
        "backend": tuple(BACKEND_NAMES),
        "trace_mode": tuple(TRACE_MODES),
    }


@dataclass(frozen=True)
class ObsConfig:
    """Observability flags carried by a :class:`RunConfig`.

    ``enabled`` turns span/metrics collection on for APIs that honour it
    (:func:`repro.obs.activated`); the paths, when set, receive the JSONL
    span log and the flat metrics snapshot once the traced call returns.
    """

    enabled: bool = False
    trace_path: str | None = None
    metrics_path: str | None = None

    def as_dict(self) -> dict:
        """Plain-dict form (JSON-serialisable)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "ObsConfig":
        """Rebuild from :meth:`as_dict` output (unknown keys ignored)."""
        names = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in names})


@dataclass(frozen=True)
class RunConfig:
    """The unified engine/seed/profile/observability selection.

    Frozen and hashable, so it can key caches and ride inside frozen
    specs (:class:`repro.lab.grid.JobSpec`,
    :class:`repro.bench.experiments.BenchConfig`).
    """

    engine: str = "reference"
    sim_engine: str = "reference"
    mem_engine: str = "sequential"
    order_engine: str = "reference"
    backend: str = "numpy"
    trace_mode: str = "materialize"
    seed: int = 0
    machine_profile: str | None = None
    stream_window_events: int | None = None
    obs: ObsConfig = field(default_factory=ObsConfig)

    def validate(self) -> "RunConfig":
        """Check every engine name and the machine profile; returns self.

        Raises :class:`UnknownNameError` (a ``ValueError``) naming the
        valid choices for the first offending axis.
        """
        for axis, choices in engine_axes().items():
            if getattr(self, axis) not in choices:
                raise UnknownNameError(
                    axis.replace("_", " "), getattr(self, axis), choices
                )
        if self.machine_profile is not None and (
            self.machine_profile not in MACHINE_PROFILES
        ):
            raise UnknownNameError(
                "machine profile", self.machine_profile, MACHINE_PROFILES
            )
        if self.stream_window_events is not None and (
            not isinstance(self.stream_window_events, int)
            or isinstance(self.stream_window_events, bool)
            or self.stream_window_events < 1
        ):
            raise ValueError(
                "stream_window_events must be a positive int or None, "
                f"got {self.stream_window_events!r}"
            )
        return self

    def replace(self, **changes) -> "RunConfig":
        """A copy with the given fields replaced."""
        return replace(self, **changes)

    def as_dict(self) -> dict:
        """Plain-dict form (``obs`` nested; JSON-serialisable)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "RunConfig":
        """Rebuild from :meth:`as_dict` output (unknown keys ignored)."""
        names = {f.name for f in fields(cls)}
        kwargs = {k: v for k, v in data.items() if k in names}
        if isinstance(kwargs.get("obs"), dict):
            kwargs["obs"] = ObsConfig.from_dict(kwargs["obs"])
        return cls(**kwargs)


DEFAULT_RUN_CONFIG = RunConfig()


def resolve_config(
    config: RunConfig | None,
    *,
    stacklevel: int = 3,
    **legacy,
) -> RunConfig:
    """Merge deprecated per-kwarg engine selection into a ``RunConfig``.

    ``legacy`` holds the old kwargs keyed by their ``RunConfig`` field
    name, with ``None`` meaning "not passed".  Passing any of them emits
    a :class:`DeprecationWarning` attributed ``stacklevel`` frames up
    (default: the caller of the public API doing the resolving);
    combining them with an explicit ``config=`` raises ``TypeError``
    because the call would be ambiguous.
    """
    supplied = {k: v for k, v in legacy.items() if v is not None}
    if not supplied:
        return config if config is not None else DEFAULT_RUN_CONFIG
    names = ", ".join(sorted(supplied))
    warnings.warn(
        f"the {names} keyword(s) are deprecated; pass "
        f"config=RunConfig({', '.join(f'{k}=...' for k in sorted(supplied))}) "
        "instead",
        DeprecationWarning,
        stacklevel=stacklevel,
    )
    if config is not None:
        raise TypeError(
            f"cannot combine config= with the deprecated {names} keyword(s)"
        )
    return RunConfig(**supplied)
