"""repro — reproduction of "Locality-Aware Laplacian Mesh Smoothing"
(Aupy, Park, Raghavan; ICPP 2016, arXiv:1606.00803).

Quick tour
----------
>>> from repro import generate_domain_mesh, compare_orderings
>>> mesh = generate_domain_mesh("ocean", target_vertices=800)
>>> runs = compare_orderings(mesh, ["ori", "bfs", "rdr"], fixed_iterations=2)
>>> runs["rdr"].modeled_seconds < runs["ori"].modeled_seconds
True

Packages
--------
``repro.mesh``       mesh containers, CSR adjacency, I/O, validation
``repro.meshgen``    Bowyer-Watson Delaunay + the nine paper domains
``repro.quality``    edge-length-ratio (and other) quality metrics
``repro.ordering``   ordering registry + ORI/random/BFS/DFS/RCM/Hilbert/...
``repro.core``       the paper's RDR ordering and end-to-end pipelines
``repro.smoothing``  Laplacian smoother, traversals, access-trace model
``repro.memsim``     reuse distance, LRU cache hierarchy, Eq.(2) timing
``repro.parallel``   static scheduling, thread team, multicore traces
``repro.bench``      experiment drivers, one per paper table/figure
``repro.config``     the unified ``RunConfig`` engine/seed/obs selection
``repro.obs``        span tracer, metrics registry, exporters
``repro.lab``        durable experiment sweeps (job store + worker pool)
"""

from . import obs
from . import core as _core  # registers the "rdr" ordering
from .config import ObsConfig, RunConfig, engine_axes
from .core import (
    DEFAULT_CACHE_SCALE,
    OrderedRun,
    ParallelRun,
    break_even_iterations,
    compare_orderings,
    measure_reordering_cost,
    rdr_chain_heads,
    rdr_ordering,
    run_ordering,
    run_parallel_ordering,
)
from .mesh import TriMesh, read_json, read_triangle, write_json, write_triangle
from .meshgen import (
    PAPER_SUITE,
    delaunay,
    generate_domain_mesh,
    list_domains,
    paper_suite,
    structured_rectangle,
)
from .memsim import (
    MemoryLayout,
    profile_from_distances,
    reuse_distances,
    simulate_trace,
    tiny_machine,
    westmere_ex,
)
from .ordering import ORDERINGS, apply_ordering, get_ordering, invert_permutation
from .parallel import parallel_smooth
from .quality import global_quality, vertex_quality
from .smoothing import LaplacianSmoother, laplacian_smooth, trace_for_traversal

__version__ = "1.0.0"

__all__ = [
    "DEFAULT_CACHE_SCALE",
    "LaplacianSmoother",
    "MemoryLayout",
    "ORDERINGS",
    "ObsConfig",
    "OrderedRun",
    "PAPER_SUITE",
    "ParallelRun",
    "RunConfig",
    "TriMesh",
    "apply_ordering",
    "break_even_iterations",
    "compare_orderings",
    "delaunay",
    "engine_axes",
    "generate_domain_mesh",
    "get_ordering",
    "global_quality",
    "invert_permutation",
    "laplacian_smooth",
    "list_domains",
    "measure_reordering_cost",
    "obs",
    "paper_suite",
    "parallel_smooth",
    "profile_from_distances",
    "rdr_chain_heads",
    "rdr_ordering",
    "read_json",
    "read_triangle",
    "reuse_distances",
    "run_ordering",
    "run_parallel_ordering",
    "simulate_trace",
    "structured_rectangle",
    "tiny_machine",
    "trace_for_traversal",
    "vertex_quality",
    "westmere_ex",
    "write_json",
    "write_triangle",
]
