"""Pluggable job-store backends: the contract every store speaks.

:class:`JobStoreBackend` is the interface extracted from the original
SQLite-only ``lab/store.py``: everything the grid expander, the worker
pool and the CLI need from a store — create/claim/heartbeat/complete/
fail/reclaim plus the inspection calls behind ``lab status`` and
``lab export``.  Two backends implement it:

* :class:`repro.lab.store.JobStore` — the local SQLite file (WAL mode,
  ``BEGIN IMMEDIATE`` claims), unchanged semantics;
* :class:`repro.lab.http_store.HttpJobStore` — a thin JSON-over-HTTP
  client for a ``repro-lms lab serve`` job server, which lets workers on
  any host drain the same queue.

Liveness is heartbeat-lease based everywhere: a claim carries a lease
(``lease_expires = now + lease_s``), workers extend it with
:meth:`~JobStoreBackend.heartbeat` while a job executes, and
:meth:`~JobStoreBackend.reclaim_expired` re-queues running jobs whose
lease lapsed.  Unlike the earlier pid-probing reclaim this works across
hosts, where owner pids are meaningless.

:func:`open_backend` maps a *store target* — a filesystem path,
``sqlite://<path>`` or ``http(s)://host:port`` — onto the right backend;
unknown schemes raise :class:`repro.config.UnknownNameError` so the CLI
can exit 2 with the usual one-line "valid store backends: ..." message.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Iterable

from ..config import UnknownNameError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from .faults import FaultPlan
    from .store import Job

__all__ = [
    "DEFAULT_LEASE_S",
    "JobStoreBackend",
    "STORE_BACKENDS",
    "open_backend",
]

#: Default claim-lease duration.  Workers heartbeat at a fraction of
#: this, so a SIGKILLed worker's jobs become reclaimable after at most
#: one lease period.
DEFAULT_LEASE_S = 30.0


class JobStoreBackend(ABC):
    """The store contract shared by the SQLite and HTTP backends.

    All mutating calls accept an optional ``now`` timestamp so tests
    (and the backend-conformance suite) can drive lease and backoff
    logic deterministically; production callers leave it ``None``.
    """

    # -- run / job creation ---------------------------------------------
    @abstractmethod
    def create_run(
        self,
        grid: dict,
        specs: Iterable[tuple[str, dict]],
        *,
        max_attempts: int = 3,
        now: float | None = None,
    ) -> tuple[int, int]:
        """Insert a run and its expanded ``(key, spec)`` jobs; returns
        ``(run_id, jobs_inserted)``.  Duplicate keys within a run are
        ignored."""

    @abstractmethod
    def latest_run_id(self) -> int | None:
        """The most recently created run id (or ``None``)."""

    @abstractmethod
    def run_grid(self, run_id: int) -> dict | None:
        """The grid dict a run was created from (or ``None``)."""

    # -- claim / heartbeat / complete / fail ----------------------------
    @abstractmethod
    def claim(self, worker_id: str, *, now: float | None = None) -> "Job | None":
        """Atomically claim one runnable pending job under a fresh
        lease, or return ``None`` if nothing is claimable."""

    @abstractmethod
    def heartbeat(
        self, job_id: int, worker_id: str, *, now: float | None = None
    ) -> bool:
        """Extend the lease on a running job still owned by
        ``worker_id``.  Returns ``False`` when the lease was lost (the
        job was reclaimed or finished elsewhere) — the worker should
        abandon the job without reporting."""

    @abstractmethod
    def complete(
        self,
        job_id: int,
        result: dict,
        *,
        wall_s: float,
        worker_id: str | None = None,
        now: float | None = None,
    ) -> bool:
        """Mark a running job done.  With ``worker_id`` the write only
        lands if that worker still owns the job, so a reclaimed job can
        never produce a duplicate result row.  Returns ``False`` if the
        job was not running (or owned by someone else)."""

    @abstractmethod
    def fail(
        self,
        job_id: int,
        error: str,
        *,
        retry_base_s: float = 1.0,
        worker_id: str | None = None,
        now: float | None = None,
    ) -> str:
        """Record a failure: re-queue with exponential backoff or mark
        ``failed`` once attempts are exhausted.  Returns the new status
        (``"pending"``/``"failed"``, or ``"missing"``/``"stale"`` when
        the job vanished or is no longer owned)."""

    # -- recovery --------------------------------------------------------
    @abstractmethod
    def reclaim_expired(self, *, now: float | None = None) -> int:
        """Re-queue running jobs whose lease has lapsed (their worker
        stopped heartbeating — crashed, SIGKILLed, or unreachable).
        Returns the number reclaimed; spent attempts stay counted."""

    @abstractmethod
    def reset(
        self,
        *,
        statuses: tuple[str, ...] = ("failed",),
        run_id: int | None = None,
        now: float | None = None,
    ) -> int:
        """Flip jobs in ``statuses`` back to pending with a fresh
        attempt budget; returns the number re-queued."""

    # -- inspection ------------------------------------------------------
    @abstractmethod
    def get(self, job_id: int) -> "Job | None":
        """One job by id (or ``None``)."""

    @abstractmethod
    def counts(self, run_id: int | None = None) -> dict[str, int]:
        """``{status: count}`` over all four statuses."""

    @abstractmethod
    def pending_runnable(
        self, run_id: int | None = None, *, now: float | None = None
    ) -> int:
        """Pending jobs whose backoff has elapsed (claimable now),
        optionally restricted to one run."""

    @abstractmethod
    def next_not_before(self, run_id: int | None = None) -> float | None:
        """Earliest ``not_before`` among pending jobs (backoff waits),
        optionally restricted to one run."""

    @abstractmethod
    def results(self, run_id: int | None = None) -> list[dict]:
        """Flat result rows for every done job, in job-id order."""

    @abstractmethod
    def jobs(self, run_id: int | None = None) -> "list[Job]":
        """All job rows (optionally for one run), in id order."""

    # -- lifecycle -------------------------------------------------------
    @abstractmethod
    def close(self) -> None:
        """Release connections; the backend may be reopened lazily."""

    def ping(self) -> bool:
        """Cheap reachability probe (HTTP round-trip / SQLite open)."""
        self.counts()
        return True


def _split_target(target: str) -> tuple[str | None, str]:
    """``("http", "http://h:p")`` / ``("sqlite", "path")`` / ``(None, path)``."""
    if "://" not in target:
        return None, target
    scheme, _, rest = target.partition("://")
    if scheme == "sqlite":
        return "sqlite", rest
    return scheme, target


def open_backend(
    target: str | Path,
    *,
    lease_s: float = DEFAULT_LEASE_S,
    token: str | None = None,
    timeout_s: float = 10.0,
    retries: int = 3,
    backoff_s: float = 0.2,
    clock: Callable[[], float] | None = None,
    faults: "FaultPlan | None" = None,
) -> JobStoreBackend:
    """Open the job-store backend a *target* names.

    ``target`` is a SQLite path (``lab.db`` / ``sqlite:///runs/lab.db``)
    or a job-server URL (``http://host:8642``).  ``lease_s``/``clock``
    apply to the SQLite backend (the HTTP server owns lease policy and
    time for its clients); ``token``/``timeout_s``/``retries``/
    ``faults`` apply to HTTP — the chaos harness threads a
    :class:`repro.lab.faults.FaultPlan` here to perturb the transport.
    """
    from .http_store import HttpJobStore
    from .store import JobStore

    if isinstance(target, Path):
        return JobStore(target, lease_s=lease_s, clock=clock)
    scheme, rest = _split_target(str(target))
    if scheme is None or scheme == "sqlite":
        return JobStore(rest, lease_s=lease_s, clock=clock)
    if scheme in ("http", "https"):
        return HttpJobStore(
            rest,
            token=token,
            timeout_s=timeout_s,
            retries=retries,
            backoff_s=backoff_s,
            faults=faults,
        )
    raise UnknownNameError("store backend", scheme, list(STORE_BACKENDS))


#: Backend names :func:`open_backend` accepts as URL schemes.
STORE_BACKENDS = ("sqlite", "http", "https")
