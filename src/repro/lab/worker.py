"""Worker pool: claim jobs from a store backend, execute, report back.

Each worker is one OS process running :func:`worker_loop`: claim a
pending job (atomically, via the store), execute it under a wall-clock
timeout, and either write the result row or record a failure — failures
re-queue with exponential backoff until ``max_attempts`` is exhausted.
The pool (:func:`run_pool`) first reclaims jobs whose lease lapsed,
then spawns N processes and joins them; every process opens its own
store connection and telemetry append stream, so there is no shared
in-memory state to lose.

The store is any :class:`repro.lab.backends.JobStoreBackend` *target* —
a local SQLite path or a ``lab serve`` URL — so the same pool drains a
local file and a remote fleet queue identically (``repro-lms lab work
--server http://host:8642``).  While a job executes, a side thread
extends its claim lease via :meth:`~JobStoreBackend.heartbeat`; a
worker SIGKILLed mid-job simply stops heartbeating and the job
re-queues on lease expiry, claimable by any surviving worker on any
host.  Completions are owner-checked, so a worker that lost its lease
(e.g. it stalled past the lease without heartbeating) cannot duplicate
the reclaimed job's result row.

Experiments are looked up in :data:`EXPERIMENT_RUNNERS`:

``pipeline``
    The full paper pipeline — generate (cached), order (cached
    permutation), smooth with tracing, simulate the cache hierarchy on a
    machine calibrated to ``footprint x cache_scale``, and return the
    :func:`repro.core.run_summary` row.  The whole row is additionally
    cached content-addressed, so re-running an identical grid costs one
    cache read per job.
``smooth``
    Quality-convergence only (no memory simulation).
``reorder-cost``
    Section 5.4's reordering-cost measurement.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import signal
import socket
import threading
import time
import traceback
from contextlib import contextmanager
from pathlib import Path
from typing import Callable

from .. import obs
from ..core.pipeline import run_ordering, run_summary
from ..core.cost import measure_reordering_cost
from ..memsim import MemoryLayout, calibrated_machine
from ..meshgen import generate_domain_mesh
from ..mesh import TriMesh
from ..ordering import get_ordering
from ..quality import DEFAULT_RANK_PASSES, global_quality, patch_quality, vertex_quality
from ..smoothing import laplacian_smooth
from .artifacts import ArtifactCache
from .backends import DEFAULT_LEASE_S, JobStoreBackend, open_backend
from .grid import JobSpec
from .telemetry import TelemetryWriter

__all__ = [
    "EXPERIMENT_RUNNERS",
    "JobTimeout",
    "execute_job",
    "run_pool",
    "worker_loop",
]


class JobTimeout(Exception):
    """A job exceeded its wall-clock budget."""


# ---------------------------------------------------------------------------
# Experiment runners
# ---------------------------------------------------------------------------
def _cached_mesh(spec: JobSpec, cache: ArtifactCache) -> TriMesh:
    return cache.mesh(
        spec.mesh_params(),
        lambda: generate_domain_mesh(
            spec.domain,
            target_vertices=spec.vertices,
            seed=spec.seed,
            quality_structure=spec.quality_structure,
        ),
    )


def _cached_order(spec: JobSpec, cache: ArtifactCache, mesh: TriMesh):
    """The permutation under the same rank-smoothed signal _prepare uses.

    The cache key deliberately excludes ``order_engine``: both engines
    return the same permutation by contract (pinned by the differential
    suite), so jobs differing only in that axis share the cached array.
    """
    params = {
        **spec.mesh_params(),
        "ordering": spec.ordering,
        "rank_passes": DEFAULT_RANK_PASSES,
    }

    def build():
        rank_q = patch_quality(
            mesh, passes=DEFAULT_RANK_PASSES, base=vertex_quality(mesh)
        )
        fn = get_ordering(spec.ordering, order_engine=spec.order_engine)
        return fn(mesh, seed=spec.seed, qualities=rank_q)

    return cache.array("order", params, build)


def _run_pipeline(spec: JobSpec, cache: ArtifactCache) -> dict:
    def compute() -> dict:
        import tempfile

        mesh = _cached_mesh(spec, cache)
        order = _cached_order(spec, cache, mesh)
        layout = MemoryLayout.for_mesh(mesh)
        machine = calibrated_machine(
            max(1, int(layout.total_bytes * spec.cache_scale))
        )
        # The spec's trace_mode runs as-is so the row's provenance
        # column matches the grid cell (the fused/materialize rows must
        # agree bit for bit — that is the axis's point in a sweep).
        # Spill jobs stream through a temporary directory that is
        # discarded with the trace; only the summary row survives.
        with tempfile.TemporaryDirectory(prefix="repro-lab-spill-") as td:
            run = run_ordering(
                mesh,
                spec.ordering,
                config=spec.to_run_config(),
                machine=machine,
                fixed_iterations=spec.max_iterations,
                precomputed_order=order,
                trace_dir=(
                    Path(td) / "trace"
                    if spec.trace_mode == "spill"
                    else None
                ),
            )
        return run_summary(run)

    return cache.json_blob("stats", spec.as_dict(), compute)


def _run_smooth(spec: JobSpec, cache: ArtifactCache) -> dict:
    def compute() -> dict:
        mesh = _cached_mesh(spec, cache)
        order = _cached_order(spec, cache, mesh)
        result = laplacian_smooth(
            mesh.permute(order),
            config=spec.to_run_config(),
            max_iterations=spec.max_iterations,
        )
        return {
            "iterations": result.iterations,
            "converged": bool(result.converged),
            "initial_quality": result.initial_quality,
            "final_quality": result.final_quality,
        }

    return cache.json_blob("smooth", spec.as_dict(), compute)


def _run_parallel_pipeline(spec: JobSpec, cache: ArtifactCache) -> dict:
    """Multicore scaling cell: memsim replay over a static partition
    (``max_iterations`` doubles as the traced iteration count; core
    count is the machine's socket count, so with ``mem_engine=sharded``
    every shard is one worker process under scatter affinity)."""

    def compute() -> dict:
        from ..core.pipeline import default_machine_for, run_parallel_ordering

        mesh = _cached_mesh(spec, cache)
        machine = default_machine_for(mesh, profile="scaling")
        run = run_parallel_ordering(
            mesh,
            spec.ordering,
            machine.num_sockets,
            config=spec.to_run_config(),
            machine=machine,
            iterations=spec.max_iterations,
        )
        return run.summary()

    return cache.json_blob("parallel", spec.as_dict(), compute)


def _run_reorder_cost(spec: JobSpec, cache: ArtifactCache) -> dict:
    def compute() -> dict:
        mesh = _cached_mesh(spec, cache)
        cost = measure_reordering_cost(
            mesh, spec.ordering, order_engine=spec.order_engine
        )
        return {
            "quality": global_quality(mesh),
            "reorder_ms": cost.ordering_seconds * 1e3,
            "iteration_ms": cost.iteration_seconds * 1e3,
            "iterations_equivalent": cost.iterations_equivalent,
        }

    return cache.json_blob("reorder-cost", spec.as_dict(), compute)


EXPERIMENT_RUNNERS: dict[str, Callable[[JobSpec, ArtifactCache], dict]] = {
    "pipeline": _run_pipeline,
    "smooth": _run_smooth,
    "reorder-cost": _run_reorder_cost,
    "parallel-pipeline": _run_parallel_pipeline,
}


def execute_job(spec: JobSpec, cache: ArtifactCache, *, timeout_s: float = 0) -> dict:
    """Run one job, optionally under a SIGALRM wall-clock budget."""
    try:
        runner = EXPERIMENT_RUNNERS[spec.experiment]
    except KeyError:
        raise KeyError(
            f"unknown experiment {spec.experiment!r}; "
            f"valid experiments: {', '.join(sorted(EXPERIMENT_RUNNERS))}"
        ) from None
    use_alarm = (
        timeout_s > 0
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not use_alarm:
        return runner(spec, cache)

    def on_alarm(signum, frame):
        raise JobTimeout(f"job exceeded {timeout_s:.0f}s")

    previous = signal.signal(signal.SIGALRM, on_alarm)
    signal.setitimer(signal.ITIMER_REAL, timeout_s)
    try:
        return runner(spec, cache)
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)


# ---------------------------------------------------------------------------
# Worker loop and pool
# ---------------------------------------------------------------------------
@contextmanager
def _lease_heartbeat(
    make_store: Callable[[], JobStoreBackend],
    job_id: int,
    worker_id: str,
    interval_s: float,
    on_error: Callable[[str, int], None] | None = None,
):
    """Extend the job's lease from a side thread while the body runs.

    Yields a ``lost`` event that is set if the store reports the lease
    gone (the job was reclaimed); the worker then abandons the job
    without reporting.  The thread opens its own backend via
    ``make_store`` and closes it before exiting, because SQLite
    connections are bound to the thread that creates them — a shared
    connection would work for the first job's heartbeat thread and then
    raise from every later one.  Transient heartbeat errors don't kill
    the thread (if the server is briefly unreachable the lease may
    lapse, and the owner-checked ``complete`` is what keeps that safe),
    but they are reported through ``on_error(message, consecutive)`` so
    a persistently failing heartbeat is visible in telemetry.
    """
    stop = threading.Event()
    lost = threading.Event()

    def report(exc: Exception, consecutive: int) -> None:
        if on_error is None:
            return
        # First failure immediately, then every 10th while it persists.
        if consecutive == 1 or consecutive % 10 == 0:
            try:
                on_error(
                    "".join(
                        traceback.format_exception_only(type(exc), exc)
                    ).strip(),
                    consecutive,
                )
            except Exception:
                pass

    def beat() -> None:
        store: JobStoreBackend | None = None
        failures = 0
        try:
            while not stop.wait(interval_s):
                try:
                    if store is None:
                        store = make_store()
                    if not store.heartbeat(job_id, worker_id):
                        lost.set()
                        return
                    failures = 0
                except Exception as exc:
                    failures += 1
                    report(exc, failures)
        finally:
            if store is not None:
                try:
                    store.close()
                except Exception:
                    pass

    thread = threading.Thread(target=beat, daemon=True)
    thread.start()
    try:
        yield lost
    finally:
        stop.set()
        thread.join(timeout=1.0)


def _heartbeat_interval(store: JobStoreBackend, heartbeat_s: float | None) -> float:
    """A third of the store's lease (several beats per lease period)."""
    if heartbeat_s is not None:
        return max(heartbeat_s, 0.02)
    lease = getattr(store, "lease_s", None)
    if lease is None:
        try:
            lease = store.status().get("lease_s")  # HTTP backend
        except Exception:
            lease = None
    return max(float(lease or DEFAULT_LEASE_S) / 3.0, 0.02)


def worker_loop(
    store_target: str | Path,
    cache_dir: str | Path,
    telemetry_path: str | Path | None,
    worker_seq: int = 0,
    *,
    job_timeout_s: float = 300.0,
    retry_base_s: float = 0.5,
    max_jobs: int | None = None,
    poll_s: float = 0.05,
    obs_spans: bool = False,
    lease_s: float = DEFAULT_LEASE_S,
    token: str | None = None,
    heartbeat_s: float | None = None,
    backoff_s: float = 0.2,
    faults=None,
) -> int:
    """Claim-and-execute until the queue drains; returns jobs completed.

    Runs as the body of each pool process, and inline (in-process) for
    ``--workers 1`` and for tests.  ``store_target`` is a SQLite path or
    a job-server URL; ``lease_s`` applies to the local backend (the
    server owns lease policy for remote workers) and ``token``
    authenticates against a served store.  With ``obs_spans``, every job
    runs under a fresh :func:`repro.obs.capture` tracer and its span
    tree and metrics snapshot are appended to the telemetry stream as a
    ``job_spans`` event (joinable to rows by ``job_id``; see
    ``repro-lms lab export --with-spans``).

    ``faults`` (a :class:`repro.lab.faults.FaultPlan`) perturbs this
    worker's transport and can raise
    :class:`~repro.lab.faults.WorkerKilled` between a job's execution
    and its report — the in-process stand-in for SIGKILL.  Heartbeat
    threads stay fault-free: a real SIGKILL stops the whole process, it
    does not selectively garble heartbeats.
    """
    worker_id = f"{socket.gethostname()}:{os.getpid()}:{worker_seq}"
    store = open_backend(
        store_target,
        lease_s=lease_s,
        token=token,
        backoff_s=backoff_s,
        faults=faults,
    )

    # Each job's heartbeat thread opens (and closes) its own backend:
    # SQLite connections are usable only from their creating thread, so
    # a connection shared across the per-job heartbeat threads would
    # fail from the second job onward.
    def hb_factory() -> JobStoreBackend:
        return open_backend(store_target, lease_s=lease_s, token=token)

    beat_s = _heartbeat_interval(store, heartbeat_s)
    cache = ArtifactCache(cache_dir)
    tel = TelemetryWriter(telemetry_path, worker=worker_id)
    tel.emit("worker_started")
    completed = 0
    try:
        while max_jobs is None or completed < max_jobs:
            job = store.claim(worker_id)
            if job is None:
                counts = store.counts()
                if counts["pending"] == 0 and counts["running"] == 0:
                    break  # queue drained
                # Jobs are either backing off, or running elsewhere (and
                # may yet fail, re-queue, or die and leave an expired
                # lease): reclaim lapsed leases, then wait for whichever
                # is next.
                if counts["running"] and store.reclaim_expired():
                    continue
                next_at = store.next_not_before()
                delay = poll_s
                if counts["pending"] and next_at is not None:
                    delay = max(poll_s, min(next_at - time.time(), 1.0))
                time.sleep(delay)
                continue
            spec = JobSpec.from_dict(job.spec)
            tel.emit("job_claimed", job_id=job.id, key=job.key, attempt=job.attempt)
            hits0, misses0 = cache.snapshot()
            start = time.perf_counter()
            spans: list | None = None
            metrics_snapshot: dict | None = None

            def hb_error(message: str, consecutive: int, *, _job_id=job.id):
                tel.emit(
                    "heartbeat_error",
                    job_id=_job_id,
                    error=message,
                    consecutive=consecutive,
                )

            with _lease_heartbeat(
                hb_factory, job.id, worker_id, beat_s, on_error=hb_error
            ) as lost:
                try:
                    if obs_spans:
                        with obs.capture() as tracer:
                            result = execute_job(
                                spec, cache, timeout_s=job_timeout_s
                            )
                        spans = tracer.export()
                        metrics_snapshot = tracer.metrics.snapshot()
                    else:
                        result = execute_job(spec, cache, timeout_s=job_timeout_s)
                except JobTimeout as exc:
                    tel.emit("job_timeout", job_id=job.id, error=str(exc))
                    status = store.fail(
                        job.id, str(exc),
                        retry_base_s=retry_base_s, worker_id=worker_id,
                    )
                    tel.emit(
                        "job_failed",
                        job_id=job.id,
                        error=str(exc),
                        will_retry=status == "pending",
                    )
                except Exception as exc:
                    error = "".join(
                        traceback.format_exception_only(type(exc), exc)
                    ).strip()
                    status = store.fail(
                        job.id, error,
                        retry_base_s=retry_base_s, worker_id=worker_id,
                    )
                    tel.emit(
                        "job_failed",
                        job_id=job.id,
                        error=error,
                        will_retry=status == "pending",
                    )
                else:
                    wall = time.perf_counter() - start
                    hits1, misses1 = cache.snapshot()
                    if faults is not None:
                        # May raise WorkerKilled (a BaseException, so it
                        # escapes this handler chain): the job dies
                        # executed-but-unreported, exactly the window a
                        # SIGKILL between execute and complete leaves.
                        faults.job_executed(worker_seq)
                    if lost.is_set():
                        # The lease lapsed and the job was reclaimed:
                        # someone else owns (or already re-ran) it, so
                        # this result must not be reported.
                        tel.emit("job_lease_lost", job_id=job.id)
                    elif store.complete(
                        job.id, result, wall_s=wall, worker_id=worker_id
                    ):
                        completed += 1
                        tel.emit(
                            "job_done",
                            job_id=job.id,
                            experiment=spec.experiment,
                            wall_s=wall,
                            cache_hits=hits1 - hits0,
                            cache_misses=misses1 - misses0,
                        )
                        if obs_spans:
                            tel.emit(
                                "job_spans",
                                job_id=job.id,
                                spans=spans,
                                metrics=metrics_snapshot,
                            )
                    else:
                        tel.emit("job_lease_lost", job_id=job.id)
    finally:
        tel.emit("worker_exit", completed=completed)
        store.close()
    return completed


def run_pool(
    store_target: str | Path,
    cache_dir: str | Path,
    telemetry_path: str | Path | None,
    *,
    workers: int = 1,
    job_timeout_s: float = 300.0,
    retry_base_s: float = 0.5,
    max_jobs: int | None = None,
    obs_spans: bool = False,
    lease_s: float = DEFAULT_LEASE_S,
    token: str | None = None,
    heartbeat_s: float | None = None,
) -> dict[str, int]:
    """Reclaim lapsed leases, run ``workers`` processes to drain the
    queue, and return the final status counts.

    ``store_target`` is a SQLite path (``lab run``) or a job-server URL
    (``lab work --server``); worker processes each open their own
    backend connection, so the pool body is identical either way.
    """
    store = open_backend(store_target, lease_s=lease_s, token=token)
    reclaimed = store.reclaim_expired()
    TelemetryWriter(telemetry_path).emit(
        "run_started", workers=workers, reclaimed=reclaimed
    )
    # SQLite connections must not cross a fork: close before spawning.
    store.close()

    worker_kwargs = {
        "job_timeout_s": job_timeout_s,
        "retry_base_s": retry_base_s,
        "max_jobs": max_jobs,
        "obs_spans": obs_spans,
        "lease_s": lease_s,
        "token": token,
        "heartbeat_s": heartbeat_s,
    }
    if workers <= 1:
        worker_loop(store_target, cache_dir, telemetry_path, 0, **worker_kwargs)
    else:
        procs = [
            mp.Process(
                target=worker_loop,
                args=(store_target, cache_dir, telemetry_path, seq),
                kwargs=worker_kwargs,
            )
            for seq in range(workers)
        ]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join()

    counts = store.counts()
    TelemetryWriter(telemetry_path).emit("run_finished", **counts)
    store.close()
    return counts
