"""Content-addressed artifact cache shared by all lab workers.

Heavy intermediates — generated meshes, computed permutations, simulated
hierarchy results — are keyed by a SHA-256 digest of their canonical
parameter dict and stored as files, so any job (in any worker process,
in any later run) that needs the same artifact reads it back instead of
recomputing.  Writes go through a per-process temporary file and
``os.replace``, so concurrent workers racing on the same key both end up
with a complete artifact and one of the two identical copies wins.

Hit/miss counters are per-process; workers snapshot them around each job
and report the delta through telemetry, which is how a run's cache
effectiveness is audited (``lab status`` / ``telemetry summary``).
"""

from __future__ import annotations

import hashlib
import json
import os
from collections import Counter
from pathlib import Path
from typing import Any, Callable

import numpy as np

from ..mesh import TriMesh
from ..mesh.io import read_json, write_json

__all__ = ["ArtifactCache", "cache_key"]


def cache_key(kind: str, params: dict) -> str:
    """Stable content address for ``(kind, params)``."""
    blob = json.dumps({"kind": kind, "params": params}, sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()[:24]


class ArtifactCache:
    """Filesystem cache of meshes / arrays / JSON blobs by content key."""

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits: Counter[str] = Counter()
        self.misses: Counter[str] = Counter()

    def path(self, kind: str, params: dict, suffix: str) -> Path:
        return self.root / f"{kind}-{cache_key(kind, params)}{suffix}"

    def _publish(self, path: Path, write: Callable[[Path], None]) -> None:
        tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
        write(tmp)
        os.replace(tmp, path)

    # -- typed entry points ---------------------------------------------
    def mesh(self, params: dict, build: Callable[[], TriMesh]) -> TriMesh:
        """A generated mesh, persisted in the JSON mesh format."""
        path = self.path("mesh", params, ".json")
        if path.exists():
            self.hits["mesh"] += 1
            return read_json(path)
        self.misses["mesh"] += 1
        mesh = build()
        self._publish(path, lambda tmp: write_json(mesh, tmp))
        return mesh

    def array(
        self, kind: str, params: dict, build: Callable[[], np.ndarray]
    ) -> np.ndarray:
        """A numpy array artifact (e.g. a computed permutation)."""
        path = self.path(kind, params, ".npy")
        if path.exists():
            self.hits[kind] += 1
            return np.load(path)
        self.misses[kind] += 1
        arr = np.asarray(build())

        def write(tmp: Path) -> None:
            # Through a handle: np.save would append ".npy" to the bare
            # tmp name and break the atomic rename.
            with open(tmp, "wb") as fh:
                np.save(fh, arr)

        self._publish(path, write)
        return arr

    def json_blob(self, kind: str, params: dict, build: Callable[[], dict]) -> dict:
        """A JSON-serialisable result (e.g. simulated hierarchy stats)."""
        path = self.path(kind, params, ".json")
        if path.exists():
            self.hits[kind] += 1
            return json.loads(path.read_text())
        self.misses[kind] += 1
        blob = build()
        self._publish(
            path, lambda tmp: tmp.write_text(json.dumps(blob, sort_keys=True))
        )
        return blob

    # -- accounting ------------------------------------------------------
    def stats(self) -> dict[str, Any]:
        return {
            "hits": sum(self.hits.values()),
            "misses": sum(self.misses.values()),
            "by_kind": {
                kind: {"hits": self.hits[kind], "misses": self.misses[kind]}
                for kind in sorted(set(self.hits) | set(self.misses))
            },
        }

    def snapshot(self) -> tuple[int, int]:
        """(total hits, total misses) — cheap, for per-job deltas."""
        return sum(self.hits.values()), sum(self.misses.values())
