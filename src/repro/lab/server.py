"""HTTP job server: ``repro-lms lab serve`` — the fleet-facing store.

A stdlib-only (:mod:`http.server`) threaded JSON-over-HTTP front end for
a :class:`repro.lab.store.JobStore`, exposing the full
:class:`repro.lab.backends.JobStoreBackend` contract so workers on any
host can claim, heartbeat and report jobs with
:class:`repro.lab.http_store.HttpJobStore`.

Wire protocol (all JSON, ``POST /api/<verb>`` for mutations,
``GET /api/<view>`` for inspection):

==============  =====================================  =======================
endpoint        request body / query                   response
==============  =====================================  =======================
claim           ``{worker_id, now?}``                  ``{job: Job|null}``
heartbeat       ``{job_id, worker_id, now?}``          ``{ok: bool}``
complete        ``{job_id, result, wall_s,             ``{completed: bool}``
                worker_id?, now?}``
fail            ``{job_id, error, retry_base_s?,       ``{status: str}``
                worker_id?, now?}``
create_run      ``{grid, specs, max_attempts?, now?}`` ``{run_id, inserted}``
reclaim         ``{now?}``                             ``{reclaimed: int}``
reset           ``{statuses?, run_id?, now?}``         ``{reset: int}``
ping            —                                      ``{ok, server, protocol}``
status          ``?run=N``                             counts + queue + metrics
results         ``?run=N``                             ``{rows: [...]}``
jobs / job      ``?run=N`` / ``?id=N``                 wire jobs
grid / latest   ``?run=N`` / —                         run provenance
==============  =====================================  =======================

``Job`` values travel as :meth:`repro.lab.store.Job.as_wire` dicts, and
the optional ``now`` timestamps are the same determinism hooks the
backend contract exposes for tests.  Every POST body may carry an
``idem`` string — a client-generated idempotency key: the server
remembers the response it sent for each key (for
:data:`IDEMPOTENCY_TTL_S`), and a request replaying a seen key gets the
recorded response back without re-executing.  This is what makes client
retries of non-idempotent mutations (``claim``, ``complete``,
``create_run``) safe when a response is lost in transit.
Authentication is a shared bearer token (``Authorization: Bearer
<token>``, compared in constant time) checked on every endpoint except
``ping``; run the server without a token only on trusted networks.  Every request is counted and timed into a
:class:`repro.obs.MetricsRegistry` (``lab.server.requests.<endpoint>``
counters, a ``lab.server.latency_ms`` histogram) surfaced under
``metrics`` in the ``status`` response.

Liveness is server-driven: expired leases are reclaimed lazily before
claims (at most every ``lease_s / 2``), so a SIGKILLed remote worker's
jobs re-queue without any worker-side cooperation.
"""

from __future__ import annotations

import hmac
import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable
from urllib.parse import parse_qs, urlparse

from ..obs import MetricsRegistry
from .backends import DEFAULT_LEASE_S
from .store import Job, JobStore

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from .faults import FaultPlan

__all__ = ["IdempotencyCache", "LabServer", "PROTOCOL_VERSION"]

#: Bumped whenever the wire schema changes incompatibly; clients check
#: it against the ``ping`` response.
PROTOCOL_VERSION = 1

#: Millisecond latency buckets for the request histogram (sub-ms to 4s).
_LATENCY_EDGES_MS = (0.25, 0.5, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096)

#: How long a recorded idempotency-key response stays replayable.  Must
#: comfortably exceed a client's whole retry window (default: 4 attempts
#: x 10 s timeout plus backoff, well under a minute).
IDEMPOTENCY_TTL_S = 600.0


class _ApiError(Exception):
    """An error response with an HTTP status code."""

    def __init__(self, code: int, message: str):
        super().__init__(message)
        self.code = code


class IdempotencyCache:
    """TTL'd, FIFO-bounded idempotency-key → response cache.

    Entries land in insertion order and :meth:`put` re-inserts an
    existing key at the tail, so FIFO eviction always drops the entry
    recorded longest ago.  :meth:`get` expires entries lazily against
    ``clock`` — a response older than ``ttl_s`` is never replayed, it is
    deleted and the caller re-executes.  The bound and the TTL together
    are what keep a long-lived server's replay memory finite; both are
    pinned by the hypothesis suite in ``tests/lab``.
    """

    def __init__(
        self,
        *,
        ttl_s: float | None = None,  # defaults to IDEMPOTENCY_TTL_S
        max_entries: int = 4096,
        clock: Callable[[], float] = time.time,
    ):
        self.ttl_s = IDEMPOTENCY_TTL_S if ttl_s is None else float(ttl_s)
        self.max_entries = int(max_entries)
        self._clock = clock
        self._entries: dict[str, tuple[float, dict]] = {}

    def get(self, key: str) -> dict | None:
        """The recorded response for ``key``, or ``None`` if absent or
        recorded more than ``ttl_s`` ago (expired entries are dropped)."""
        entry = self._entries.get(key)
        if entry is None:
            return None
        recorded_at, response = entry
        if self._clock() - recorded_at > self.ttl_s:
            del self._entries[key]
            return None
        return response

    def put(self, key: str, response: dict) -> None:
        """Record ``key``'s response, evicting oldest entries past the
        bound.  Re-putting a key moves it to the FIFO tail, keeping
        eviction order identical to recording order."""
        self._entries.pop(key, None)
        while len(self._entries) >= self.max_entries:
            del self._entries[next(iter(self._entries))]
        self._entries[key] = (self._clock(), response)

    def __len__(self) -> int:
        return len(self._entries)


class LabServer:
    """Threaded HTTP front end serving one SQLite job store.

    The store connection is shared across request threads behind a
    lock (SQLite serialises writes anyway, and every operation is a
    short transaction), which keeps the server a single process with a
    single WAL file — the same durability story as local runs.
    """

    def __init__(
        self,
        db_path: str | Path,
        *,
        host: str = "127.0.0.1",
        port: int = 8642,
        token: str | None = None,
        lease_s: float = DEFAULT_LEASE_S,
        clock: Callable[[], float] | None = None,
        faults: "FaultPlan | None" = None,
    ):
        self._clock = clock or time.time
        self.store = JobStore(
            db_path, lease_s=lease_s, cross_thread=True, clock=clock
        )
        self.token = token
        self.faults = faults
        self.metrics = MetricsRegistry()
        self.started_at = self._clock()
        self._lock = threading.Lock()
        self._reclaim_every = max(lease_s / 2.0, 0.25)
        self._next_reclaim = 0.0
        # idem key -> recorded response; replayed on client retry.
        self._idem = IdempotencyCache(clock=self._clock)
        handler = type("_BoundLabHandler", (_LabHandler,), {"lab": self})
        self.httpd = ThreadingHTTPServer((host, port), handler)
        self.httpd.daemon_threads = True
        self._thread: threading.Thread | None = None

    # -- lifecycle -------------------------------------------------------
    @property
    def host(self) -> str:
        return self.httpd.server_address[0]

    @property
    def port(self) -> int:
        """The bound port (useful with ``port=0`` → ephemeral)."""
        return self.httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def serve_forever(self) -> None:
        """Block serving requests until :meth:`shutdown`."""
        self.httpd.serve_forever(poll_interval=0.1)

    def start_background(self) -> "LabServer":
        """Serve from a daemon thread (tests / embedded use); returns self."""
        self._thread = threading.Thread(target=self.serve_forever, daemon=True)
        self._thread.start()
        return self

    def shutdown(self) -> None:
        """Stop serving and close the store."""
        self.httpd.shutdown()
        self.httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        with self._lock:
            self.store.close()

    # -- endpoint implementations (called under self._lock) -------------
    def _maybe_reclaim(self, now: float | None) -> None:
        """Lazily re-queue lapsed leases, at most every ``lease_s/2``."""
        wall = self._clock() if now is None else now
        if wall >= self._next_reclaim:
            reclaimed = self.store.reclaim_expired(now=now)
            if reclaimed:
                self.metrics.counter("lab.server.reclaimed").add(reclaimed)
            self._next_reclaim = wall + self._reclaim_every

    def _post_claim(self, body: dict) -> dict:
        now = body.get("now")
        self._maybe_reclaim(now)
        job = self.store.claim(_require(body, "worker_id", str), now=now)
        return {"job": job.as_wire() if job is not None else None}

    def _post_heartbeat(self, body: dict) -> dict:
        ok = self.store.heartbeat(
            _require(body, "job_id", int),
            _require(body, "worker_id", str),
            now=body.get("now"),
        )
        return {"ok": ok}

    def _post_complete(self, body: dict) -> dict:
        completed = self.store.complete(
            _require(body, "job_id", int),
            _require(body, "result", dict),
            wall_s=float(_require(body, "wall_s", (int, float))),
            worker_id=body.get("worker_id"),
            now=body.get("now"),
        )
        return {"completed": completed}

    def _post_fail(self, body: dict) -> dict:
        status = self.store.fail(
            _require(body, "job_id", int),
            _require(body, "error", str),
            retry_base_s=float(body.get("retry_base_s", 1.0)),
            worker_id=body.get("worker_id"),
            now=body.get("now"),
        )
        return {"status": status}

    def _post_create_run(self, body: dict) -> dict:
        specs = _require(body, "specs", list)
        run_id, inserted = self.store.create_run(
            _require(body, "grid", dict),
            [(key, spec) for key, spec in specs],
            max_attempts=int(body.get("max_attempts", 3)),
            now=body.get("now"),
        )
        return {"run_id": run_id, "inserted": inserted}

    def _post_reclaim(self, body: dict) -> dict:
        return {"reclaimed": self.store.reclaim_expired(now=body.get("now"))}

    def _post_reset(self, body: dict) -> dict:
        statuses = tuple(body.get("statuses", ("failed",)))
        return {
            "reset": self.store.reset(
                statuses=statuses,
                run_id=body.get("run_id"),
                now=body.get("now"),
            )
        }

    def _get_ping(self, query: dict) -> dict:
        return {"ok": True, "server": "repro-lab", "protocol": PROTOCOL_VERSION}

    def _get_status(self, query: dict) -> dict:
        run_id = _query_int(query, "run")
        self._maybe_reclaim(None)
        return {
            "counts": self.store.counts(run_id),
            "pending_runnable": self.store.pending_runnable(run_id),
            "next_not_before": self.store.next_not_before(run_id),
            "latest_run": self.store.latest_run_id(),
            "lease_s": self.store.lease_s,
            "uptime_s": self._clock() - self.started_at,
            "metrics": self.metrics.snapshot(),
        }

    def _get_results(self, query: dict) -> dict:
        return {"rows": self.store.results(_query_int(query, "run"))}

    def _get_jobs(self, query: dict) -> dict:
        jobs = self.store.jobs(_query_int(query, "run"))
        return {"jobs": [j.as_wire() for j in jobs]}

    def _get_job(self, query: dict) -> dict:
        job_id = _query_int(query, "id")
        if job_id is None:
            raise _ApiError(400, "missing query parameter 'id'")
        job: Job | None = self.store.get(job_id)
        return {"job": job.as_wire() if job is not None else None}

    def _get_grid(self, query: dict) -> dict:
        run_id = _query_int(query, "run")
        if run_id is None:
            raise _ApiError(400, "missing query parameter 'run'")
        return {"grid": self.store.run_grid(run_id)}

    def _get_latest_run(self, query: dict) -> dict:
        return {"run_id": self.store.latest_run_id()}


def _require(body: dict, field: str, types) -> Any:
    value = body.get(field)
    if value is None or not isinstance(value, types):
        raise _ApiError(400, f"missing or invalid field {field!r}")
    return value


def _query_int(query: dict, name: str) -> int | None:
    values = query.get(name)
    if not values:
        return None
    try:
        return int(values[0])
    except ValueError:
        raise _ApiError(400, f"query parameter {name!r} must be an integer")


_POST_ROUTES = {
    "claim": LabServer._post_claim,
    "heartbeat": LabServer._post_heartbeat,
    "complete": LabServer._post_complete,
    "fail": LabServer._post_fail,
    "create_run": LabServer._post_create_run,
    "reclaim": LabServer._post_reclaim,
    "reset": LabServer._post_reset,
}

_GET_ROUTES = {
    "ping": LabServer._get_ping,
    "status": LabServer._get_status,
    "results": LabServer._get_results,
    "jobs": LabServer._get_jobs,
    "job": LabServer._get_job,
    "grid": LabServer._get_grid,
    "latest_run": LabServer._get_latest_run,
}


class _LabHandler(BaseHTTPRequestHandler):
    """Routes ``/api/<name>`` onto the bound :class:`LabServer`."""

    lab: LabServer  # bound via a subclass attribute per server
    protocol_version = "HTTP/1.1"

    # -- plumbing --------------------------------------------------------
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # request logging would swamp worker polling; metrics cover it.

    def _send_json(self, code: int, payload: dict) -> None:
        blob = json.dumps(payload).encode()
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(blob)))
        self.end_headers()
        self.wfile.write(blob)

    def _authorized(self, endpoint: str) -> bool:
        if self.lab.token is None or endpoint == "ping":
            return True
        header = self.headers.get("Authorization", "")
        # Constant-time compare: a plain == would leak how much of the
        # token matched through response timing.
        return hmac.compare_digest(
            header.encode(), f"Bearer {self.lab.token}".encode()
        )

    def _dispatch(self, routes: dict, payload_reader, *, mutating: bool) -> None:
        parsed = urlparse(self.path)
        name = parsed.path.removeprefix("/api/")
        route = routes.get(name) if parsed.path.startswith("/api/") else None
        lab = self.lab
        lab.metrics.counter(f"lab.server.requests.{name or 'unknown'}").add()
        if route is None:
            lab.metrics.counter("lab.server.errors").add()
            self._send_json(404, {"error": f"unknown endpoint {parsed.path!r}"})
            return
        if not self._authorized(name):
            lab.metrics.counter("lab.server.errors").add()
            self._send_json(401, {"error": "missing or invalid bearer token"})
            return
        if lab.faults is not None:
            # Fault middleware sits before idempotency handling on
            # purpose: an injected 5xx means the request never executed
            # and never recorded a response, exactly like a crash
            # between accept() and dispatch.
            fault = lab.faults.server_request(name)
            if fault is not None:
                code, kind = fault
                lab.metrics.counter(f"lab.server.faults.{kind}").add()
                lab.metrics.counter("lab.server.errors").add()
                self._send_json(code, {"error": f"injected fault: {kind}"})
                return
        start = time.perf_counter()
        try:
            payload = payload_reader(parsed)
            idem = payload.pop("idem", None) if mutating else None
            if idem is not None and not isinstance(idem, str):
                raise _ApiError(400, "field 'idem' must be a string")
            with lab._lock:
                response = lab._idem.get(idem) if idem else None
                if response is not None:
                    lab.metrics.counter("lab.server.idem_replays").add()
                else:
                    response = route(lab, payload)
                    if idem:
                        lab._idem.put(idem, response)
        except _ApiError as exc:
            lab.metrics.counter("lab.server.errors").add()
            self._send_json(exc.code, {"error": str(exc)})
            return
        except Exception as exc:  # pragma: no cover - defensive
            lab.metrics.counter("lab.server.errors").add()
            self._send_json(500, {"error": f"{type(exc).__name__}: {exc}"})
            return
        lab.metrics.histogram(
            "lab.server.latency_ms", _LATENCY_EDGES_MS
        ).observe_one((time.perf_counter() - start) * 1e3)
        self._send_json(200, response)

    def _read_body(self, parsed) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b"{}"
        try:
            body = json.loads(raw or b"{}")
        except json.JSONDecodeError:
            raise _ApiError(400, "request body is not valid JSON")
        if not isinstance(body, dict):
            raise _ApiError(400, "request body must be a JSON object")
        return body

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        self._dispatch(_POST_ROUTES, self._read_body, mutating=True)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._dispatch(
            _GET_ROUTES, lambda parsed: parse_qs(parsed.query), mutating=False
        )
