"""HTTP client backend: a remote job store behind ``lab serve``.

:class:`HttpJobStore` implements the full
:class:`repro.lab.backends.JobStoreBackend` contract by calling the
JSON endpoints of a :class:`repro.lab.server.LabServer`, so the worker
pool (and ``lab status`` / ``lab export``) run unchanged on any host
pointed at a server URL.  Built on :mod:`urllib.request` only — no new
dependencies.

Transport policy: every call has a request timeout and is retried with
exponential backoff on connection errors, timeouts and 5xx responses
(4xx responses are protocol errors and raise immediately — retrying a
rejected request cannot help).  When retries are exhausted the call
raises :class:`StoreConnectionError`, which the CLI turns into a
one-line message and exit status 2.  Retrying mutations is safe because
every POST carries a client-generated idempotency key (``idem``), held
constant across the retries of one logical call: if the first attempt
landed server-side but its response was lost, the retry replays the
recorded response instead of re-executing — so a retried ``claim``
cannot strand a second job under this worker, and a retried
``complete`` whose first attempt landed still reports success rather
than tripping the owner check and miscounting the job as lease-lost.
"""

from __future__ import annotations

import json
import random
import time
import urllib.error
import urllib.request
import uuid
from typing import TYPE_CHECKING, Any, Iterable
from urllib.parse import urlencode

from .backends import JobStoreBackend
from .store import Job, STATUSES

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from .faults import FaultPlan

__all__ = ["HttpJobStore", "StoreConnectionError"]


class StoreConnectionError(RuntimeError):
    """The job server could not be reached (after retries) or answered
    with a non-JSON/unexpected payload.  The CLI maps this to exit 2."""


class HttpJobStore(JobStoreBackend):
    """JSON-over-HTTP :class:`JobStoreBackend` for a ``lab serve`` URL."""

    def __init__(
        self,
        url: str,
        *,
        token: str | None = None,
        timeout_s: float = 10.0,
        retries: int = 3,
        backoff_s: float = 0.2,
        deadline_s: float = 60.0,
        faults: "FaultPlan | None" = None,
    ):
        self.url = url.rstrip("/")
        self.token = token
        self.timeout_s = float(timeout_s)
        self.retries = int(retries)
        self.backoff_s = float(backoff_s)
        self.deadline_s = float(deadline_s)
        self.faults = faults
        # Jitter spreads synchronized worker retries apart; it only
        # perturbs sleep lengths, never which requests are sent, so
        # chaos runs stay deterministic.
        self._jitter = random.Random()

    # -- transport -------------------------------------------------------
    def _request(
        self,
        endpoint: str,
        *,
        body: dict | None = None,
        query: dict | None = None,
    ) -> dict:
        """One endpoint call with bounded, jittered retry.

        ``body`` selects POST (mutations), ``query`` GET (inspection).
        POST bodies get a fresh idempotency key that stays fixed across
        the retries of this one call, so a mutation whose response was
        lost in transit is replayed — not re-executed — by the server.

        Backoff doubles per attempt with up to +100% random jitter, and
        the whole call is capped by ``deadline_s`` wall time — a long
        5xx burst fails the call instead of stalling a worker forever.
        """
        url = f"{self.url}/api/{endpoint}"
        if query:
            params = {k: v for k, v in query.items() if v is not None}
            if params:
                url += "?" + urlencode(params)
        data = None
        if body is not None:
            payload = {k: v for k, v in body.items() if v is not None}
            payload["idem"] = uuid.uuid4().hex
            data = json.dumps(payload).encode()
        headers = {"Content-Type": "application/json"}
        if self.token is not None:
            headers["Authorization"] = f"Bearer {self.token}"
        started = time.monotonic()
        last_error: Exception | None = None
        attempts = 0
        for attempt in range(1, self.retries + 2):
            if attempt > 1:
                delay = self.backoff_s * 2 ** (attempt - 2)
                delay *= 1.0 + self._jitter.random()
                remaining = self.deadline_s - (time.monotonic() - started)
                if remaining <= 0:
                    break
                time.sleep(min(delay, remaining))
            attempts = attempt
            if self.faults is not None:
                actions = self.faults.before_send(endpoint, body, attempt)
            else:
                actions = None
            request = urllib.request.Request(url, data=data, headers=headers)
            try:
                if actions is not None and actions.delay_s > 0:
                    time.sleep(actions.delay_s)
                if actions is not None and actions.duplicate:
                    # Fire the same request twice, discarding the first
                    # response — the wire-level double-send the idem key
                    # exists to absorb.
                    with urllib.request.urlopen(
                        urllib.request.Request(url, data=data, headers=headers),
                        timeout=self.timeout_s,
                    ) as dup:
                        dup.read()
                with urllib.request.urlopen(
                    request, timeout=self.timeout_s
                ) as response:
                    raw = response.read()
                reply = json.loads(raw)
                if self.faults is not None:
                    # Post-receive faults (drop/truncate) raise here,
                    # after the server has executed and recorded the
                    # response — the lost-in-transit case.
                    self.faults.after_receive(endpoint, body, reply, attempt)
                return reply
            except urllib.error.HTTPError as exc:
                if exc.code < 500:
                    # Protocol-level rejection (auth, bad request):
                    # retrying the same request cannot succeed.
                    detail = _error_detail(exc)
                    raise StoreConnectionError(
                        f"job server at {self.url} rejected "
                        f"{endpoint!r}: {detail}"
                    ) from exc
                last_error = exc
            except (urllib.error.URLError, ConnectionError, TimeoutError) as exc:
                last_error = exc
            except json.JSONDecodeError as exc:
                last_error = exc
        elapsed = time.monotonic() - started
        raise StoreConnectionError(
            f"job server unreachable at {self.url} "
            f"(after {attempts} attempt(s) in {elapsed:.1f}s): {last_error}"
        ) from last_error

    def ping(self) -> bool:
        """Round-trip ``/api/ping`` and verify the protocol version."""
        from .server import PROTOCOL_VERSION

        reply = self._request("ping", query={})
        if reply.get("protocol") != PROTOCOL_VERSION:
            raise StoreConnectionError(
                f"job server at {self.url} speaks protocol "
                f"{reply.get('protocol')!r}, client expects {PROTOCOL_VERSION}"
            )
        return True

    # -- run / job creation ---------------------------------------------
    def create_run(
        self,
        grid: dict,
        specs: Iterable[tuple[str, dict]],
        *,
        max_attempts: int = 3,
        now: float | None = None,
    ) -> tuple[int, int]:
        reply = self._request(
            "create_run",
            body={
                "grid": grid,
                "specs": [[key, spec] for key, spec in specs],
                "max_attempts": max_attempts,
                "now": now,
            },
        )
        return int(reply["run_id"]), int(reply["inserted"])

    def latest_run_id(self) -> int | None:
        run_id = self._request("latest_run", query={}).get("run_id")
        return int(run_id) if run_id is not None else None

    def run_grid(self, run_id: int) -> dict | None:
        return self._request("grid", query={"run": run_id}).get("grid")

    # -- claim / heartbeat / complete / fail ----------------------------
    def claim(self, worker_id: str, *, now: float | None = None) -> Job | None:
        reply = self._request(
            "claim", body={"worker_id": worker_id, "now": now}
        )
        wire = reply.get("job")
        return Job.from_wire(wire) if wire is not None else None

    def heartbeat(
        self, job_id: int, worker_id: str, *, now: float | None = None
    ) -> bool:
        reply = self._request(
            "heartbeat",
            body={"job_id": job_id, "worker_id": worker_id, "now": now},
        )
        return bool(reply.get("ok"))

    def complete(
        self,
        job_id: int,
        result: dict,
        *,
        wall_s: float,
        worker_id: str | None = None,
        now: float | None = None,
    ) -> bool:
        reply = self._request(
            "complete",
            body={
                "job_id": job_id,
                "result": result,
                "wall_s": wall_s,
                "worker_id": worker_id,
                "now": now,
            },
        )
        return bool(reply.get("completed"))

    def fail(
        self,
        job_id: int,
        error: str,
        *,
        retry_base_s: float = 1.0,
        worker_id: str | None = None,
        now: float | None = None,
    ) -> str:
        reply = self._request(
            "fail",
            body={
                "job_id": job_id,
                "error": error,
                "retry_base_s": retry_base_s,
                "worker_id": worker_id,
                "now": now,
            },
        )
        return str(reply.get("status"))

    # -- recovery --------------------------------------------------------
    def reclaim_expired(self, *, now: float | None = None) -> int:
        return int(self._request("reclaim", body={"now": now})["reclaimed"])

    def reset(
        self,
        *,
        statuses: tuple[str, ...] = ("failed",),
        run_id: int | None = None,
        now: float | None = None,
    ) -> int:
        reply = self._request(
            "reset",
            body={"statuses": list(statuses), "run_id": run_id, "now": now},
        )
        return int(reply["reset"])

    # -- inspection ------------------------------------------------------
    def get(self, job_id: int) -> Job | None:
        wire = self._request("job", query={"id": job_id}).get("job")
        return Job.from_wire(wire) if wire is not None else None

    def counts(self, run_id: int | None = None) -> dict[str, int]:
        reply = self.status(run_id)
        counts = reply.get("counts", {})
        return {status: int(counts.get(status, 0)) for status in STATUSES}

    def status(self, run_id: int | None = None) -> dict:
        """The server's full status payload (counts, queue, metrics)."""
        return self._request("status", query={"run": run_id})

    def pending_runnable(
        self, run_id: int | None = None, *, now: float | None = None
    ) -> int:
        return int(self.status(run_id).get("pending_runnable", 0))

    def next_not_before(self, run_id: int | None = None) -> float | None:
        value = self.status(run_id).get("next_not_before")
        return float(value) if value is not None else None

    def results(self, run_id: int | None = None) -> list[dict]:
        return list(self._request("results", query={"run": run_id})["rows"])

    def jobs(self, run_id: int | None = None) -> list[Job]:
        wires = self._request("jobs", query={"run": run_id})["jobs"]
        return [Job.from_wire(w) for w in wires]

    # -- lifecycle -------------------------------------------------------
    def close(self) -> None:
        pass  # connections are per-request; nothing to release.


def _error_detail(exc: urllib.error.HTTPError) -> str:
    """The server's JSON ``error`` field, or the bare HTTP status."""
    try:
        payload = json.loads(exc.read())
        return f"{exc.code} {payload.get('error', '')}".strip()
    except Exception:
        return f"HTTP {exc.code}"
