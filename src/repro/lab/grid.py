"""Experiment grids: the cartesian product a ``lab`` run sweeps.

A grid is ``experiments x domains x orderings x vertex budgets x
cache scales x seeds``; :meth:`ExperimentGrid.expand` turns it into one
:class:`JobSpec` per cell.  Specs are plain frozen dataclasses with a
canonical string key, which doubles as the job-identity key in the
store (``UNIQUE(run_id, key)``) and feeds the content-addressed
artifact cache.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields
from itertools import product

# UnknownNameError moved to repro.config (the CLI and RunConfig.validate
# share it); re-exported here for backward compatibility.
from ..config import RunConfig, UnknownNameError, engine_axes
from ..meshgen import list_domains
from ..ordering import ORDERINGS

__all__ = ["ExperimentGrid", "JobSpec", "UnknownNameError", "validate_names"]


@dataclass(frozen=True)
class JobSpec:
    """One experiment cell — everything a worker needs to execute it."""

    experiment: str
    domain: str
    ordering: str
    vertices: int = 300
    seed: int = 0
    cache_scale: float = 1.0
    quality_structure: str = "ramp"
    max_iterations: int = 8
    engine: str = "reference"
    sim_engine: str = "reference"
    mem_engine: str = "sequential"
    order_engine: str = "reference"
    backend: str = "numpy"
    trace_mode: str = "materialize"
    stream_window_events: int | None = None

    def key(self) -> str:
        """Canonical identity string (job uniqueness + cache keying)."""
        return "|".join(f"{f.name}={getattr(self, f.name)}" for f in fields(self))

    def as_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "JobSpec":
        names = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in names})

    @classmethod
    def from_run_config(cls, config: RunConfig, **kwargs) -> "JobSpec":
        """A spec whose engine axes and seed come from ``config``;
        everything else (experiment, domain, ...) via ``kwargs``."""
        return cls(
            **{axis: getattr(config, axis) for axis in engine_axes()},
            seed=config.seed,
            stream_window_events=config.stream_window_events,
            **kwargs,
        )

    def to_run_config(self) -> RunConfig:
        """The :class:`repro.config.RunConfig` projection of this spec
        (what the worker runners pass to the pipeline APIs)."""
        return RunConfig(
            **{axis: getattr(self, axis) for axis in engine_axes()},
            seed=self.seed,
            stream_window_events=self.stream_window_events,
        )

    def mesh_params(self) -> dict:
        """The parameters that determine the generated mesh (cache key)."""
        return {
            "domain": self.domain,
            "vertices": self.vertices,
            "seed": self.seed,
            "quality_structure": self.quality_structure,
        }


def validate_names(
    *,
    domains: tuple[str, ...] = (),
    orderings: tuple[str, ...] = (),
    experiments: tuple[str, ...] = (),
    engines: tuple[str, ...] = (),
    sim_engines: tuple[str, ...] = (),
    mem_engines: tuple[str, ...] = (),
    order_engines: tuple[str, ...] = (),
    backends: tuple[str, ...] = (),
    trace_modes: tuple[str, ...] = (),
) -> None:
    """Raise :class:`UnknownNameError` for the first unknown name."""
    from .worker import EXPERIMENT_RUNNERS  # late: worker imports JobSpec

    known_domains = list_domains()
    for name in domains:
        if name not in known_domains:
            raise UnknownNameError("domain", name, known_domains)
    for name in orderings:
        if name not in ORDERINGS:
            raise UnknownNameError("ordering", name, list(ORDERINGS))
    for name in experiments:
        if name not in EXPERIMENT_RUNNERS:
            raise UnknownNameError("experiment", name, list(EXPERIMENT_RUNNERS))
    # Engine axes share one validation loop with repro.config — the
    # plural keyword for axis "x" is "xs" (engines, ..., backends).
    supplied = {
        "engine": engines,
        "sim_engine": sim_engines,
        "mem_engine": mem_engines,
        "order_engine": order_engines,
        "backend": backends,
        "trace_mode": trace_modes,
    }
    for axis, choices in engine_axes().items():
        for name in supplied.get(axis, ()):
            if name not in choices:
                raise UnknownNameError(
                    axis.replace("_", " "), name, list(choices)
                )


@dataclass(frozen=True)
class ExperimentGrid:
    """A sweep specification, expandable into :class:`JobSpec` cells."""

    experiments: tuple[str, ...] = ("pipeline",)
    domains: tuple[str, ...] = ("ocean",)
    orderings: tuple[str, ...] = ("ori", "rdr")
    vertices: tuple[int, ...] = (300,)
    seeds: tuple[int, ...] = (0,)
    cache_scales: tuple[float, ...] = (1.0,)
    quality_structure: str = "ramp"
    max_iterations: int = 8
    engines: tuple[str, ...] = ("reference",)
    sim_engines: tuple[str, ...] = ("reference",)
    mem_engines: tuple[str, ...] = ("sequential",)
    order_engines: tuple[str, ...] = ("reference",)
    backends: tuple[str, ...] = ("numpy",)
    trace_modes: tuple[str, ...] = ("materialize",)
    stream_windows: tuple[int | None, ...] = (None,)

    def validate(self) -> "ExperimentGrid":
        validate_names(
            domains=self.domains,
            orderings=self.orderings,
            experiments=self.experiments,
            engines=self.engines,
            sim_engines=self.sim_engines,
            mem_engines=self.mem_engines,
            order_engines=self.order_engines,
            backends=self.backends,
            trace_modes=self.trace_modes,
        )
        for window in self.stream_windows:
            if window is not None and (
                not isinstance(window, int) or window < 1
            ):
                raise UnknownNameError(
                    "stream window", str(window), ["None", "any int >= 1"]
                )
        return self

    def expand(self) -> list[JobSpec]:
        """One spec per grid cell, in deterministic order."""
        return [
            JobSpec(
                experiment=experiment,
                domain=domain,
                ordering=ordering,
                vertices=vertices,
                seed=seed,
                cache_scale=scale,
                quality_structure=self.quality_structure,
                max_iterations=self.max_iterations,
                engine=engine,
                sim_engine=sim_engine,
                mem_engine=mem_engine,
                order_engine=order_engine,
                backend=backend,
                trace_mode=trace_mode,
                stream_window_events=stream_window,
            )
            for experiment, domain, ordering, vertices, scale, seed, engine,
            sim_engine, mem_engine, order_engine, backend, trace_mode,
            stream_window
            in product(
                self.experiments,
                self.domains,
                self.orderings,
                self.vertices,
                self.cache_scales,
                self.seeds,
                self.engines,
                self.sim_engines,
                self.mem_engines,
                self.order_engines,
                self.backends,
                self.trace_modes,
                self.stream_windows,
            )
        ]

    def as_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "ExperimentGrid":
        names = {f.name for f in fields(cls)}
        kwargs = {k: v for k, v in data.items() if k in names}
        for key in (
            "experiments", "domains", "orderings", "vertices", "seeds",
            "cache_scales", "engines", "sim_engines", "mem_engines",
            "order_engines", "backends", "trace_modes", "stream_windows",
        ):
            if key in kwargs:
                kwargs[key] = tuple(kwargs[key])
        return cls(**kwargs)
