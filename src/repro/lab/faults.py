"""Deterministic chaos harness: seeded fault injection + invariants.

The distributed lab's correctness story — exactly-once results under
crashes, lost responses and retries — was previously pinned by a few
hand-written regressions.  This module turns that into a systematic,
*deterministic* fault-injection layer:

* :class:`FaultRule` / :class:`FaultPlan` — a declarative schedule of
  faults (``drop_response``, ``delay``, ``http_5xx_burst``,
  ``truncate_body``, ``duplicate_request``, ``clock_skew``,
  ``kill_worker_after_n_jobs``) built from a seed.  All randomness
  happens at *plan-build* time (:meth:`FaultPlan.standard` samples
  target job ids and burst windows with ``random.Random(seed)``);
  runtime decisions are keyed by job id or by per-rule occurrence
  counters, never by wall clock or a live RNG, so two runs of the same
  plan fire the same faults in the same order and produce identical
  fault logs (log entries deliberately carry no timestamps).

* Three injection seams, all opt-in via a ``faults=`` parameter:
  the :class:`~repro.lab.http_store.HttpJobStore` transport
  (:meth:`FaultPlan.before_send` / :meth:`FaultPlan.after_receive` —
  delays, duplicated sends, dropped/truncated responses *after* the
  server executed), a server middleware hook in
  :class:`~repro.lab.server.LabServer` (:meth:`FaultPlan.server_request`
  — 5xx bursts before any execution or idempotency recording), and the
  worker loop (:meth:`FaultPlan.job_executed` — raising
  :class:`WorkerKilled` between a job's execution and its report, the
  in-process stand-in for SIGKILL).

* :func:`check_invariants` — the trust layer: after a run, every job is
  done exactly once, result rows are unique and match the done set,
  attempts stayed within budget, leases are reclaimed or held, and the
  server's idempotency-replay counter equals exactly the number of
  injected response losses and duplicate sends on mutating endpoints.

* :func:`run_chaos` — the end-to-end harness behind ``repro-lms lab
  chaos``: run a grid fault-free against a local store, re-run it
  through a live :class:`LabServer` under a standard fault plan with
  sequentially respawned workers, then check invariants and compare the
  two ``--drop-timing`` exports byte for byte.

Determinism requires the chaos run's discipline, which
:func:`run_chaos` enforces: one worker incarnation at a time (claims
are then fully ordered), fault-free heartbeat backends (a SIGKILL
stops a whole process; it does not garble heartbeats), and rules that
only target the deterministic prefix of the request stream (content-
keyed job rules, small early occurrence windows) — never the
timing-dependent tail of idle polls and heartbeats.
"""

from __future__ import annotations

import json
import random
import threading
import time
import urllib.error
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

from ..obs import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from .backends import JobStoreBackend

__all__ = [
    "FAULT_KINDS",
    "FaultPlan",
    "FaultRule",
    "InvariantReport",
    "MUTATING_ENDPOINTS",
    "WorkerKilled",
    "check_invariants",
    "drop_timing_rows",
    "export_bytes",
    "run_chaos",
]

#: Every fault kind a :class:`FaultRule` may carry.
FAULT_KINDS = (
    "drop_response",
    "delay",
    "http_5xx_burst",
    "truncate_body",
    "duplicate_request",
    "clock_skew",
    "kill_worker_after_n_jobs",
)

#: POST endpoints that carry an idempotency key.  A response loss or a
#: duplicated send on one of these produces exactly one server-side
#: idempotency replay — the accounting :func:`check_invariants` checks.
MUTATING_ENDPOINTS = (
    "claim",
    "heartbeat",
    "complete",
    "fail",
    "create_run",
    "reclaim",
    "reset",
)

#: Fault kinds evaluated client-side before a request is sent.
_PRE_SEND_KINDS = ("delay", "duplicate_request", "clock_skew")

#: Fault kinds evaluated client-side after a response was received
#: (i.e. after the server executed and recorded the response).
_POST_RECEIVE_KINDS = ("drop_response", "truncate_body")


class WorkerKilled(BaseException):
    """A worker was chaos-killed between executing a job and reporting
    it.  Deliberately a ``BaseException``: it must escape the worker
    loop's ``except Exception`` failure handling the way a real SIGKILL
    escapes everything, leaving the job running under a live lease."""


@dataclass(frozen=True)
class FaultRule:
    """One declarative fault.

    A rule targets requests either by content (``jobs`` — job ids
    matched against the request body or the claim reply) or by position
    (``at`` — 1-based occurrence indices of matching requests, counted
    per rule).  ``endpoint`` restricts matching to one API endpoint
    (``None`` matches all — use only with ``jobs`` targeting, since
    occurrence counters over *all* endpoints include timing-dependent
    polls).  Content-targeted rules fire once per job; occurrence-
    targeted rules fire once per listed index.

    Kind-specific fields: ``count`` is the burst length for
    ``http_5xx_burst`` and the pre-kill job budget for
    ``kill_worker_after_n_jobs`` (the worker's ``count + 1``-th executed
    job dies unreported); ``delay_s`` for ``delay``; ``skew_s`` for
    ``clock_skew``; ``worker_seq`` for kills.
    """

    kind: str
    endpoint: str | None = None
    jobs: tuple[int, ...] = ()
    at: tuple[int, ...] = ()
    count: int = 1
    delay_s: float = 0.0
    skew_s: float = 0.0
    worker_seq: int = 0

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; "
                f"valid kinds: {', '.join(FAULT_KINDS)}"
            )


@dataclass
class TransportActions:
    """What :meth:`FaultPlan.before_send` asks the transport to do."""

    delay_s: float = 0.0
    duplicate: bool = False


class FaultPlan:
    """A seeded, deterministic schedule of faults plus its fire log.

    Thread-safe: the transport seams run in worker threads while
    :meth:`server_request` runs in server handler threads.  ``log`` is
    the ordered list of fired faults (no timestamps — it is part of the
    determinism contract), and ``metrics`` counts fires per kind under
    ``lab.faults.<kind>``.
    """

    def __init__(self, seed: int = 0, rules: tuple[FaultRule, ...] = ()):
        self.seed = int(seed)
        self.rules = tuple(rules)
        self.metrics = MetricsRegistry()
        self.log: list[dict] = []
        self._lock = threading.RLock()
        self._skew = 0.0
        self._seq = 0
        self._occurrences = [0] * len(self.rules)
        self._fired: set[tuple[int, tuple]] = set()
        self._worker_jobs: dict[int, int] = {}

    # -- construction ----------------------------------------------------
    @classmethod
    def standard(
        cls,
        seed: int,
        n_jobs: int,
        *,
        workers: int = 2,
        kill_after: int = 1,
    ) -> "FaultPlan":
        """The ``lab chaos`` schedule: sample (with ``seed``) dropped
        ``complete`` responses for about a third of the jobs, one
        dropped ``claim`` response, one truncated body, one duplicated
        send, small delays, a forward clock skew, an early 5xx burst on
        ``claim``, and one kill per worker but the last.

        Job ids are assumed ``1..n_jobs`` — what a fresh store assigns
        to a freshly created run, in spec order.
        """
        if n_jobs < 1:
            raise ValueError("standard plan needs at least one job")
        rng = random.Random(seed)
        job_ids = list(range(1, n_jobs + 1))

        def sample(n: int) -> tuple[int, ...]:
            return tuple(sorted(rng.sample(job_ids, min(n, n_jobs))))

        rules = [
            FaultRule(
                "drop_response", endpoint="complete",
                jobs=sample(max(1, n_jobs // 3)),
            ),
            FaultRule("drop_response", endpoint="claim", at=(1,)),
            FaultRule(
                "truncate_body", endpoint="complete",
                jobs=(rng.choice(job_ids),),
            ),
            FaultRule(
                "duplicate_request", endpoint="complete",
                jobs=(rng.choice(job_ids),),
            ),
            FaultRule(
                "delay", endpoint="complete",
                jobs=sample(max(1, n_jobs // 4)), delay_s=0.02,
            ),
            # Forward skew, small enough that live leases survive it
            # (well under lease_s minus the heartbeat interval).
            FaultRule(
                "clock_skew", endpoint="complete",
                jobs=(rng.choice(job_ids),), skew_s=0.5,
            ),
            # Early burst: occurrences 2..3 of claim are within the
            # deterministic prefix of any run with >= 2 jobs.
            FaultRule(
                "http_5xx_burst", endpoint="claim",
                at=(rng.randint(2, 3),), count=2,
            ),
        ]
        for seq in range(max(1, workers - 1)):
            rules.append(
                FaultRule(
                    "kill_worker_after_n_jobs",
                    worker_seq=seq,
                    count=kill_after,
                )
            )
        return cls(seed=seed, rules=tuple(rules))

    # -- bookkeeping -----------------------------------------------------
    def clock(self) -> float:
        """Wall time plus the accumulated injected skew — hand this to
        the server/store as their ``clock``."""
        with self._lock:
            return time.time() + self._skew

    def fault_counts(self) -> dict[str, int]:
        """``{kind: fires}`` over the log."""
        counts: dict[str, int] = {}
        with self._lock:
            for entry in self.log:
                counts[entry["kind"]] = counts.get(entry["kind"], 0) + 1
        return counts

    def expected_idem_replays(self) -> int:
        """How many server idempotency replays this plan's fires must
        have caused: one per response loss (drop/truncate) and one per
        duplicated send, on mutating endpoints only.  Injected 5xx hit
        before idempotency recording, so bursts never add replays."""
        with self._lock:
            return sum(
                1
                for entry in self.log
                if entry["kind"]
                in ("drop_response", "truncate_body", "duplicate_request")
                and entry.get("endpoint") in MUTATING_ENDPOINTS
            )

    def _record(self, idx: int, rule: FaultRule, key: tuple, **fields) -> None:
        """Append a fire to the log (caller holds the lock)."""
        self._fired.add((idx, key))
        self._seq += 1
        entry = {"seq": self._seq, "kind": rule.kind}
        entry.update({k: v for k, v in fields.items() if v is not None})
        self.log.append(entry)
        self.metrics.counter(f"lab.faults.{rule.kind}").add()

    def _match(
        self,
        idx: int,
        rule: FaultRule,
        endpoint: str,
        job_id: int | None,
        attempt: int,
    ) -> tuple | None:
        """The fire key if ``rule`` matches this request, else ``None``.

        Occurrence counters tick only on first attempts, so client
        retries (whose count depends on prior faults) never shift which
        logical call an ``at`` index names.
        """
        if rule.endpoint is not None and rule.endpoint != endpoint:
            return None
        if rule.jobs:
            if job_id is None or job_id not in rule.jobs:
                return None
            key = ("job", job_id)
            return None if (idx, key) in self._fired else key
        if rule.at:
            if attempt != 1:
                return None
            self._occurrences[idx] += 1
            occurrence = self._occurrences[idx]
            if occurrence not in rule.at:
                return None
            return ("occurrence", occurrence)
        return None

    # -- client transport seam (HttpJobStore._request) -------------------
    def before_send(
        self, endpoint: str, body: dict | None, attempt: int
    ) -> TransportActions | None:
        """Pre-send faults for one request: delay, duplicate, skew."""
        actions = TransportActions()
        job_id = body.get("job_id") if body else None
        with self._lock:
            for idx, rule in enumerate(self.rules):
                if rule.kind not in _PRE_SEND_KINDS:
                    continue
                key = self._match(idx, rule, endpoint, job_id, attempt)
                if key is None:
                    continue
                if rule.kind == "delay":
                    actions.delay_s += rule.delay_s
                    self._record(
                        idx, rule, key,
                        endpoint=endpoint, job_id=job_id, delay_s=rule.delay_s,
                    )
                elif rule.kind == "duplicate_request":
                    actions.duplicate = True
                    self._record(
                        idx, rule, key, endpoint=endpoint, job_id=job_id
                    )
                else:  # clock_skew
                    self._skew += rule.skew_s
                    self._record(
                        idx, rule, key,
                        endpoint=endpoint, job_id=job_id, skew_s=rule.skew_s,
                    )
        if actions.delay_s or actions.duplicate:
            return actions
        return None

    def after_receive(
        self, endpoint: str, body: dict | None, reply: dict, attempt: int
    ) -> None:
        """Post-receive faults: the server executed and recorded its
        response, but the client never sees it.  Raises the same
        exception types a real lost/garbled response produces, so the
        transport's retry path is exercised unmodified."""
        job_id = body.get("job_id") if body else None
        if job_id is None and isinstance(reply, dict):
            job = reply.get("job")
            if isinstance(job, dict):
                job_id = job.get("id")
        with self._lock:
            for idx, rule in enumerate(self.rules):
                if rule.kind not in _POST_RECEIVE_KINDS:
                    continue
                key = self._match(idx, rule, endpoint, job_id, attempt)
                if key is None:
                    continue
                self._record(idx, rule, key, endpoint=endpoint, job_id=job_id)
                if rule.kind == "drop_response":
                    raise urllib.error.URLError("injected drop_response")
                raise json.JSONDecodeError("injected truncate_body", '""', 0)

    # -- server middleware seam (LabServer._dispatch) --------------------
    def server_request(self, endpoint: str) -> tuple[int, str] | None:
        """``(status_code, kind)`` if this request should be rejected
        with an injected 5xx, else ``None``.  Burst windows are
        occurrence-based per rule: fire on occurrences ``at[0]`` through
        ``at[0] + count - 1`` of the rule's endpoint."""
        with self._lock:
            for idx, rule in enumerate(self.rules):
                if rule.kind != "http_5xx_burst":
                    continue
                if rule.endpoint is not None and rule.endpoint != endpoint:
                    continue
                self._occurrences[idx] += 1
                occurrence = self._occurrences[idx]
                start = rule.at[0] if rule.at else 1
                if start <= occurrence < start + rule.count:
                    self._seq += 1
                    self.log.append(
                        {
                            "seq": self._seq,
                            "kind": rule.kind,
                            "endpoint": endpoint,
                            "occurrence": occurrence,
                        }
                    )
                    self.metrics.counter(f"lab.faults.{rule.kind}").add()
                    return 503, rule.kind
        return None

    # -- worker seam (worker_loop) ---------------------------------------
    def job_executed(self, worker_seq: int) -> None:
        """Called by a chaos worker after executing (not yet reporting)
        each job; raises :class:`WorkerKilled` when a kill rule for this
        worker says its budget is spent — the job dies executed but
        unreported, under a live lease."""
        with self._lock:
            self._worker_jobs[worker_seq] = (
                self._worker_jobs.get(worker_seq, 0) + 1
            )
            executed = self._worker_jobs[worker_seq]
            for idx, rule in enumerate(self.rules):
                if rule.kind != "kill_worker_after_n_jobs":
                    continue
                if rule.worker_seq != worker_seq:
                    continue
                key = ("kill", worker_seq)
                if (idx, key) in self._fired:
                    continue
                if executed >= rule.count + 1:
                    self._record(
                        idx, rule, key,
                        worker_seq=worker_seq, jobs_executed=executed,
                    )
                    raise WorkerKilled(
                        f"worker {worker_seq} chaos-killed after "
                        f"{rule.count} job(s)"
                    )


# ---------------------------------------------------------------------------
# Invariants
# ---------------------------------------------------------------------------
@dataclass
class InvariantReport:
    """The outcome of :func:`check_invariants`."""

    checks: dict[str, bool]
    violations: list[str] = field(default_factory=list)
    counts: dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        passed = sum(1 for ok in self.checks.values() if ok)
        head = f"{passed}/{len(self.checks)} invariants hold"
        if self.ok:
            return head
        return head + "; " + "; ".join(self.violations)


def check_invariants(
    store: "JobStoreBackend",
    run_id: int | None = None,
    *,
    plan: FaultPlan | None = None,
    idem_replays: int | None = None,
    now: float | None = None,
    expect_drained: bool = True,
) -> InvariantReport:
    """Check the lab's exactly-once / lease / replay invariants.

    Reclaims lapsed leases first (crash recovery is part of the
    contract under test), then checks: the queue drained (when
    ``expect_drained``), every done job has exactly one result row and
    vice versa, no attempt budget was exceeded, running jobs hold an
    owner while pending jobs hold none, and — when ``plan`` and the
    server's observed ``idem_replays`` are given — the replay counter
    equals exactly the plan's injected response losses and duplicates.
    """
    checks: dict[str, bool] = {}
    violations: list[str] = []

    def check(name: str, ok: bool, message: str) -> None:
        checks[name] = bool(ok)
        if not ok:
            violations.append(message)

    store.reclaim_expired(now=now)
    counts = store.counts(run_id)
    jobs = store.jobs(run_id)
    results = store.results(run_id)

    if expect_drained:
        check(
            "queue_drained",
            counts["pending"] == 0
            and counts["running"] == 0
            and counts["failed"] == 0,
            f"queue not drained: {counts}",
        )
    done_ids = sorted(j.id for j in jobs if j.status == "done")
    result_ids = [row["job_id"] for row in results]
    check(
        "no_duplicate_result_rows",
        len(set(result_ids)) == len(result_ids),
        f"duplicate result rows for job ids "
        f"{sorted(set(i for i in result_ids if result_ids.count(i) > 1))}",
    )
    check(
        "one_result_row_per_done_job",
        sorted(result_ids) == done_ids,
        f"result rows {sorted(result_ids)} != done jobs {done_ids}",
    )
    over_budget = [
        j.id
        for j in jobs
        if j.status == "done" and not (1 <= j.attempt <= j.max_attempts)
    ]
    check(
        "attempts_within_budget",
        not over_budget,
        f"jobs finished outside their attempt budget: {over_budget}",
    )
    ownerless = [j.id for j in jobs if j.status == "running" and not j.owner]
    stale_owner = [j.id for j in jobs if j.status == "pending" and j.owner]
    check(
        "leases_reclaimed_or_held",
        not ownerless and not stale_owner,
        f"ownerless running jobs {ownerless}, "
        f"pending jobs with stale owners {stale_owner}",
    )
    if plan is not None and idem_replays is not None:
        expected = plan.expected_idem_replays()
        check(
            "idem_replays_match_injected_losses",
            idem_replays == expected,
            f"server replayed {idem_replays} idempotent request(s), "
            f"plan injected {expected} response loss(es)/duplicate(s)",
        )
    return InvariantReport(checks=checks, violations=violations, counts=counts)


# ---------------------------------------------------------------------------
# Export comparison helpers (shared with `lab export --drop-timing`)
# ---------------------------------------------------------------------------
def drop_timing_rows(rows: list[dict]) -> list[dict]:
    """Result rows without run history (``wall_s``, ``attempt``): what
    must be byte-identical across reruns, retries and chaos."""
    return [
        {k: v for k, v in row.items() if k not in ("wall_s", "attempt")}
        for row in rows
    ]


def export_bytes(rows: list[dict]) -> bytes:
    """Rows serialized exactly like ``lab export`` writes JSON."""
    return json.dumps(rows, indent=2, default=str).encode()


# ---------------------------------------------------------------------------
# End-to-end harness (repro-lms lab chaos)
# ---------------------------------------------------------------------------
def run_chaos(
    grid,
    *,
    seed: int = 0,
    workdir: str | Path,
    workers: int = 2,
    kill_after: int = 1,
    lease_s: float = 2.0,
    max_attempts: int = 8,
    job_timeout_s: float = 120.0,
    plan: FaultPlan | None = None,
    report_path: str | Path | None = None,
) -> dict:
    """Run ``grid`` fault-free locally, re-run it through a live server
    under ``plan`` (default: :meth:`FaultPlan.standard`), then check
    invariants and compare the two timing-free exports byte for byte.

    Workers run as sequential in-process incarnations: one incarnation
    claims and executes with the fault plan wired in until it either
    drains the queue or is chaos-killed, in which case the next
    incarnation takes over (and first waits out the dead worker's lease
    before reclaiming its job) — the single-machine rendition of a
    fleet losing workers one at a time.  Sequential incarnations are
    also what makes the fault log reproducible: claims are fully
    ordered, so content- and occurrence-keyed rules fire identically
    on every run with the same seed.
    """
    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    from .http_store import HttpJobStore
    from .server import LabServer
    from .store import JobStore
    from .worker import worker_loop

    specs = grid.expand()
    pairs = [(spec.key(), spec.as_dict()) for spec in specs]
    grid_dict = grid.as_dict() if hasattr(grid, "as_dict") else {}
    cache_dir = workdir / "cache"

    # 1. Fault-free reference on a local store (also warms the cache, so
    # the chaos run exercises the lab layer, not the numerics again).
    reference_db = workdir / "reference.db"
    ref_store = JobStore(reference_db)
    ref_run, _ = ref_store.create_run(
        grid_dict, pairs, max_attempts=max_attempts
    )
    ref_store.close()
    worker_loop(
        str(reference_db), cache_dir, None, 0, job_timeout_s=job_timeout_s
    )
    ref_store = JobStore(reference_db)
    reference_rows = drop_timing_rows(ref_store.results(ref_run))
    ref_store.close()
    reference_export = export_bytes(reference_rows)

    # 2. Chaos run: live server owning the (skewable) clock, workers
    # carrying the fault plan.
    if plan is None:
        plan = FaultPlan.standard(
            seed, n_jobs=len(pairs), workers=workers, kill_after=kill_after
        )
    server = LabServer(
        workdir / "chaos.db",
        port=0,
        lease_s=lease_s,
        clock=plan.clock,
        faults=plan,
    ).start_background()
    incarnations = 0
    try:
        control = HttpJobStore(server.url)  # orchestration stays fault-free
        run_id, _ = control.create_run(
            grid_dict, pairs, max_attempts=max_attempts
        )
        seq = 0
        while True:
            if seq > workers + 8:
                raise RuntimeError(
                    f"chaos workers respawned {seq} times without draining "
                    f"the queue; counts: {control.counts(run_id)}"
                )
            incarnations += 1
            try:
                # Tiny retry backoff keeps each incarnation's remaining
                # work comfortably shorter than the lease, so a killed
                # job is always reclaimed *after* the pending queue
                # drains — which is what makes claim order (and hence
                # the fault log) reproducible.
                worker_loop(
                    server.url,
                    cache_dir,
                    str(workdir / "telemetry.jsonl"),
                    seq,
                    job_timeout_s=job_timeout_s,
                    backoff_s=0.02,
                    faults=plan,
                )
            except WorkerKilled:
                seq += 1
                continue
            break
        status = control.status(run_id)
        idem_replays = int(
            status["metrics"]["counters"].get("lab.server.idem_replays", 0)
        )
        invariants = check_invariants(
            control, run_id, plan=plan, idem_replays=idem_replays
        )
        chaos_rows = drop_timing_rows(control.results(run_id))
    finally:
        server.shutdown()

    chaos_export = export_bytes(chaos_rows)
    matches = chaos_export == reference_export
    (workdir / "fault_log.json").write_text(json.dumps(plan.log, indent=2))
    (workdir / "reference_export.json").write_bytes(reference_export)
    (workdir / "chaos_export.json").write_bytes(chaos_export)

    violations = list(invariants.violations)
    if not matches:
        violations.append(
            "chaos export differs from the fault-free reference export"
        )
    report = {
        "ok": invariants.ok and matches,
        "seed": plan.seed,
        "jobs": len(pairs),
        "worker_incarnations": incarnations,
        "checks": {**invariants.checks, "export_matches_reference": matches},
        "violations": violations,
        "counts": invariants.counts,
        "fault_counts": plan.fault_counts(),
        "idem_replays": idem_replays,
        "fault_log": plan.log,
        "workdir": str(workdir),
    }
    if report_path is not None:
        Path(report_path).write_text(json.dumps(report, indent=2))
    return report
