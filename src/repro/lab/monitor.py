"""Live progress view: ``repro-lms lab status --watch``.

:func:`watch_status` polls a counts source — a local store or a running
job server, anything satisfying the
:class:`repro.lab.backends.JobStoreBackend` counts contract — and
prints one line per refresh with per-status counts, the observed
completion throughput (rows/sec over a sliding window of samples, i.e.
the same signal job telemetry carries), and the ETA that rate implies
for the jobs still pending or running.  It exits on its own once the
queue drains, so it can tail a fleet run unattended.

The clock, sleeper and output stream are injectable for tests.
"""

from __future__ import annotations

import sys
import time
from collections import deque
from typing import Callable, TextIO

__all__ = ["format_watch_line", "watch_status"]

#: Sliding-window length (samples) for the throughput estimate.
_WINDOW = 30


def format_watch_line(
    counts: dict[str, int], rate: float | None, eta_s: float | None
) -> str:
    """One status line: counts, rows/sec and ETA (``-`` while unknown)."""
    total = sum(counts.values())
    done = counts.get("done", 0)
    parts = [
        f"{done}/{total} done",
        f"{counts.get('running', 0)} running",
        f"{counts.get('pending', 0)} pending",
        f"{counts.get('failed', 0)} failed",
        f"{rate:.2f} rows/s" if rate is not None else "- rows/s",
    ]
    if eta_s is None:
        parts.append("ETA -")
    else:
        minutes, seconds = divmod(int(round(eta_s)), 60)
        parts.append(f"ETA {minutes:d}:{seconds:02d}")
    return " | ".join(parts)


def watch_status(
    fetch_counts: Callable[[], dict[str, int]],
    *,
    interval_s: float = 2.0,
    max_refreshes: int | None = None,
    out: TextIO | None = None,
    clock: Callable[[], float] = time.monotonic,
    sleep: Callable[[float], None] = time.sleep,
) -> dict[str, int]:
    """Poll ``fetch_counts`` until the queue drains; returns the final
    counts.

    Throughput is the slope of finished jobs (done + failed) across the
    sample window; ETA divides the outstanding jobs by it.  Both print
    as ``-`` until two samples with progress exist.  ``max_refreshes``
    bounds the loop for scripted/CI use.
    """
    out = sys.stdout if out is None else out
    samples: deque[tuple[float, int]] = deque(maxlen=_WINDOW)
    refreshes = 0
    while True:
        counts = fetch_counts()
        finished = counts.get("done", 0) + counts.get("failed", 0)
        outstanding = counts.get("pending", 0) + counts.get("running", 0)
        samples.append((clock(), finished))
        rate = eta_s = None
        t0, n0 = samples[0]
        t1, n1 = samples[-1]
        if t1 > t0 and n1 > n0:
            rate = (n1 - n0) / (t1 - t0)
            eta_s = outstanding / rate
        out.write(format_watch_line(counts, rate, eta_s) + "\n")
        out.flush()
        refreshes += 1
        if outstanding == 0:
            return counts
        if max_refreshes is not None and refreshes >= max_refreshes:
            return counts
        sleep(interval_s)
