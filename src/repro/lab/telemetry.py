"""JSONL run telemetry: one event per line, appended by every worker.

Workers emit ``job_claimed`` / ``job_done`` / ``job_failed`` /
``job_timeout`` events (plus worker lifecycle markers) into a single
append-only ``.jsonl`` file.  Each write is one small ``O_APPEND`` write
of one line, which POSIX keeps atomic across processes, so no locking is
needed.  :func:`summarize` folds a stream back into the aggregate view
``lab status`` prints: job counts, wall time, cache hit/miss totals and
per-worker throughput — the cache-hit counts are how a re-run's artifact
reuse is verified.
"""

from __future__ import annotations

import json
import time
from collections import Counter
from pathlib import Path
from typing import Any, Iterator

__all__ = ["TelemetryWriter", "format_summary", "read_events", "summarize"]


class TelemetryWriter:
    """Appends timestamped JSON events for one worker (or the driver)."""

    def __init__(self, path: str | Path | None, worker: str = "driver"):
        self.path = Path(path) if path is not None else None
        self.worker = worker

    def emit(self, event: str, **fields: Any) -> None:
        if self.path is None:
            return
        record = {"t": time.time(), "event": event, "worker": self.worker}
        record.update(fields)
        line = json.dumps(record, sort_keys=True)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a") as fh:
            fh.write(line + "\n")


def read_events(path: str | Path) -> Iterator[dict]:
    """Parsed events in file order (tolerates a torn final line)."""
    path = Path(path)
    if not path.exists():
        return
    for raw in path.read_text().splitlines():
        raw = raw.strip()
        if not raw:
            continue
        try:
            yield json.loads(raw)
        except json.JSONDecodeError:
            continue


def summarize(path: str | Path) -> dict:
    """Aggregate a telemetry stream into run-level statistics."""
    jobs_done = jobs_failed = timeouts = retries = 0
    cache_hits = cache_misses = 0
    wall = 0.0
    per_worker: Counter[str] = Counter()
    per_experiment: Counter[str] = Counter()
    t_first = t_last = None
    for ev in read_events(path):
        t = ev.get("t")
        if isinstance(t, (int, float)):
            t_first = t if t_first is None else min(t_first, t)
            t_last = t if t_last is None else max(t_last, t)
        kind = ev.get("event")
        if kind == "job_done":
            jobs_done += 1
            wall += float(ev.get("wall_s", 0.0))
            cache_hits += int(ev.get("cache_hits", 0))
            cache_misses += int(ev.get("cache_misses", 0))
            per_worker[ev.get("worker", "?")] += 1
            per_experiment[ev.get("experiment", "?")] += 1
        elif kind == "job_failed":
            jobs_failed += 1
            if ev.get("will_retry"):
                retries += 1
        elif kind == "job_timeout":
            timeouts += 1
    return {
        "jobs_done": jobs_done,
        "jobs_failed": jobs_failed,
        "timeouts": timeouts,
        "retries": retries,
        "total_wall_s": wall,
        "makespan_s": (t_last - t_first) if t_first is not None else 0.0,
        "cache_hits": cache_hits,
        "cache_misses": cache_misses,
        "cache_hit_rate": (
            cache_hits / (cache_hits + cache_misses)
            if cache_hits + cache_misses
            else 0.0
        ),
        "per_worker": dict(sorted(per_worker.items())),
        "per_experiment": dict(sorted(per_experiment.items())),
    }


def format_summary(summary: dict) -> str:
    """Human-readable block for ``lab status``."""
    lines = [
        f"jobs done:      {summary['jobs_done']} "
        f"(failed {summary['jobs_failed']}, retried {summary['retries']}, "
        f"timed out {summary['timeouts']})",
        f"wall time:      {summary['total_wall_s']:.2f} s worker-summed, "
        f"{summary['makespan_s']:.2f} s makespan",
        f"artifact cache: {summary['cache_hits']} hits / "
        f"{summary['cache_misses']} misses "
        f"({summary['cache_hit_rate']:.0%} hit rate)",
    ]
    if summary["per_worker"]:
        parts = ", ".join(f"{w}: {n}" for w, n in summary["per_worker"].items())
        lines.append(f"per worker:     {parts}")
    return "\n".join(lines)
