"""SQLite-backed job store: the local :class:`JobStoreBackend`.

The store is the durable heart of :mod:`repro.lab`: an experiment grid
is expanded once into job rows, and any number of worker processes then
claim, execute and complete those rows.  Everything that matters for
crash-recovery lives in the database:

* ``runs`` — one row per ``lab init`` (the grid spec as JSON, for
  provenance and re-expansion);
* ``jobs`` — one row per grid cell with ``status`` (``pending`` →
  ``running`` → ``done``/``failed``), ``owner`` (worker id,
  ``<host>:<pid>:<seq>``), ``attempt``/``max_attempts``, a
  ``not_before`` timestamp implementing exponential backoff between
  retries, and ``lease_expires`` implementing heartbeat liveness.

Concurrency model: every worker opens its own connection (WAL mode,
generous busy timeout) and claims jobs inside a ``BEGIN IMMEDIATE``
transaction, so exactly one worker wins each pending row.  A claim
grants a lease (``lease_expires = now + lease_s``) that the worker
extends via :meth:`JobStore.heartbeat` while the job executes; a worker
killed mid-job simply stops heartbeating, and
:meth:`JobStore.reclaim_expired` flips its lapsed rows back to
``pending``.  Leases replace the earlier pid-probing reclaim, which
assumed owner pids were local and therefore broke the moment workers
ran on another host (a live remote worker could be "reclaimed" because
its pid did not exist here, and a dead remote worker could be kept
forever because its pid happened to match a local process).  Duplicate
result rows are impossible twice over: job identity is enforced by a
``UNIQUE(run_id, key)`` constraint, and completions are owner-checked
so a reclaimed job's original worker cannot report late.
"""

from __future__ import annotations

import json
import sqlite3
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Callable, Iterable

from .backends import DEFAULT_LEASE_S, JobStoreBackend

__all__ = ["Job", "JobStore", "STATUSES"]

STATUSES = ("pending", "running", "done", "failed")

_SCHEMA = """
CREATE TABLE IF NOT EXISTS runs (
    id      INTEGER PRIMARY KEY AUTOINCREMENT,
    created REAL NOT NULL,
    grid    TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS jobs (
    id            INTEGER PRIMARY KEY AUTOINCREMENT,
    run_id        INTEGER NOT NULL REFERENCES runs(id),
    key           TEXT NOT NULL,
    spec          TEXT NOT NULL,
    status        TEXT NOT NULL DEFAULT 'pending',
    owner         TEXT,
    attempt       INTEGER NOT NULL DEFAULT 0,
    max_attempts  INTEGER NOT NULL DEFAULT 3,
    not_before    REAL NOT NULL DEFAULT 0,
    lease_expires REAL NOT NULL DEFAULT 0,
    claimed_at    REAL,
    finished_at   REAL,
    wall_s        REAL,
    result        TEXT,
    error         TEXT,
    UNIQUE (run_id, key)
);
CREATE INDEX IF NOT EXISTS jobs_status ON jobs (status, not_before);
"""


@dataclass(frozen=True)
class Job:
    """One claimed (or inspected) job row."""

    id: int
    run_id: int
    key: str
    spec: dict
    status: str
    owner: str | None
    attempt: int
    max_attempts: int

    @classmethod
    def from_row(cls, row: sqlite3.Row) -> "Job":
        return cls(
            id=row["id"],
            run_id=row["run_id"],
            key=row["key"],
            spec=json.loads(row["spec"]),
            status=row["status"],
            owner=row["owner"],
            attempt=row["attempt"],
            max_attempts=row["max_attempts"],
        )

    # -- wire form (the HTTP backend ships jobs as plain dicts) ---------
    def as_wire(self) -> dict:
        """JSON-safe dict form, inverse of :meth:`from_wire`."""
        return asdict(self)

    @classmethod
    def from_wire(cls, data: dict) -> "Job":
        """Rebuild a job from its :meth:`as_wire` dict."""
        return cls(
            id=int(data["id"]),
            run_id=int(data["run_id"]),
            key=data["key"],
            spec=dict(data["spec"]),
            status=data["status"],
            owner=data.get("owner"),
            attempt=int(data["attempt"]),
            max_attempts=int(data["max_attempts"]),
        )


class JobStore(JobStoreBackend):
    """Durable multi-process job queue over a single SQLite file.

    ``lease_s`` is the claim-lease duration; ``cross_thread=True`` opens
    the connection with ``check_same_thread=False`` for callers that
    serialise access themselves (the HTTP job server).  ``clock``
    replaces ``time.time`` as the source of "now" for every mutator
    whose caller left ``now=None`` — the chaos harness injects a skewed
    clock here to drive lease and backoff arithmetic under fault plans.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        lease_s: float = DEFAULT_LEASE_S,
        cross_thread: bool = False,
        clock: Callable[[], float] | None = None,
    ):
        self.path = Path(path)
        self.lease_s = float(lease_s)
        self._cross_thread = cross_thread
        self._clock = clock or time.time
        self._conn: sqlite3.Connection | None = None

    # -- connection management ------------------------------------------
    @property
    def conn(self) -> sqlite3.Connection:
        if self._conn is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            conn = sqlite3.connect(
                self.path,
                timeout=30.0,
                check_same_thread=not self._cross_thread,
            )
            conn.row_factory = sqlite3.Row
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA busy_timeout=30000")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.executescript(_SCHEMA)
            cols = {
                row["name"]
                for row in conn.execute("PRAGMA table_info(jobs)")
            }
            if "lease_expires" not in cols:  # pre-lease databases
                conn.execute(
                    "ALTER TABLE jobs ADD COLUMN "
                    "lease_expires REAL NOT NULL DEFAULT 0"
                )
            conn.commit()
            self._conn = conn
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    # -- run / job creation ---------------------------------------------
    def create_run(
        self,
        grid: dict,
        specs: Iterable[tuple[str, dict]],
        *,
        max_attempts: int = 3,
        now: float | None = None,
    ) -> tuple[int, int]:
        """Insert a run and its expanded jobs.

        ``specs`` is an iterable of ``(key, spec_dict)``.  Duplicate keys
        within the run are ignored (``INSERT OR IGNORE``), so re-running
        ``lab init`` with the same grid cannot duplicate jobs.  Returns
        ``(run_id, jobs_inserted)``.
        """
        now = self._clock() if now is None else now
        conn = self.conn
        with conn:
            cur = conn.execute(
                "INSERT INTO runs (created, grid) VALUES (?, ?)",
                (now, json.dumps(grid, sort_keys=True)),
            )
            run_id = int(cur.lastrowid)
            inserted = 0
            for key, spec in specs:
                cur = conn.execute(
                    "INSERT OR IGNORE INTO jobs "
                    "(run_id, key, spec, max_attempts) VALUES (?, ?, ?, ?)",
                    (run_id, key, json.dumps(spec, sort_keys=True), max_attempts),
                )
                inserted += cur.rowcount
        return run_id, inserted

    def latest_run_id(self) -> int | None:
        row = self.conn.execute("SELECT MAX(id) AS m FROM runs").fetchone()
        return int(row["m"]) if row["m"] is not None else None

    def run_grid(self, run_id: int) -> dict | None:
        row = self.conn.execute(
            "SELECT grid FROM runs WHERE id = ?", (run_id,)
        ).fetchone()
        return json.loads(row["grid"]) if row else None

    # -- claim / heartbeat / complete / fail ----------------------------
    def claim(self, worker_id: str, *, now: float | None = None) -> Job | None:
        """Atomically claim one runnable pending job (or return ``None``).

        ``BEGIN IMMEDIATE`` takes the database write lock up front, so
        two workers can never claim the same row.  The claim carries a
        lease of ``lease_s`` seconds that :meth:`heartbeat` extends.
        """
        now = self._clock() if now is None else now
        conn = self.conn
        try:
            conn.execute("BEGIN IMMEDIATE")
            row = conn.execute(
                "SELECT * FROM jobs WHERE status = 'pending' AND not_before <= ? "
                "ORDER BY id LIMIT 1",
                (now,),
            ).fetchone()
            if row is None:
                conn.execute("ROLLBACK")
                return None
            conn.execute(
                "UPDATE jobs SET status = 'running', owner = ?, "
                "attempt = attempt + 1, claimed_at = ?, lease_expires = ? "
                "WHERE id = ?",
                (worker_id, now, now + self.lease_s, row["id"]),
            )
            conn.execute("COMMIT")
        except sqlite3.OperationalError:
            try:
                conn.execute("ROLLBACK")
            except sqlite3.OperationalError:
                pass
            return None
        claimed = self.get(int(row["id"]))
        assert claimed is not None
        return claimed

    def heartbeat(
        self, job_id: int, worker_id: str, *, now: float | None = None
    ) -> bool:
        """Extend the lease on a job this worker still owns.

        Returns ``False`` when the lease was lost — the job was
        reclaimed (and possibly re-claimed by another worker) or already
        finished — in which case the worker should abandon it.
        """
        now = self._clock() if now is None else now
        with self.conn as conn:
            cur = conn.execute(
                "UPDATE jobs SET lease_expires = ? "
                "WHERE id = ? AND status = 'running' AND owner = ?",
                (now + self.lease_s, job_id, worker_id),
            )
        return cur.rowcount == 1

    def complete(
        self,
        job_id: int,
        result: dict,
        *,
        wall_s: float,
        worker_id: str | None = None,
        now: float | None = None,
    ) -> bool:
        """Mark a running job done; returns False if it was not running
        (e.g. its lease expired and it was reclaimed).  With
        ``worker_id`` the write additionally requires current ownership,
        so a worker that lost its lease cannot overwrite the reclaimed
        job's fresh attempt."""
        now = self._clock() if now is None else now
        sql = (
            "UPDATE jobs SET status = 'done', result = ?, wall_s = ?, "
            "finished_at = ?, error = NULL "
            "WHERE id = ? AND status = 'running'"
        )
        params: list[Any] = [
            json.dumps(result, sort_keys=True), wall_s, now, job_id,
        ]
        if worker_id is not None:
            sql += " AND owner = ?"
            params.append(worker_id)
        with self.conn as conn:
            cur = conn.execute(sql, params)
        return cur.rowcount == 1

    def fail(
        self,
        job_id: int,
        error: str,
        *,
        retry_base_s: float = 1.0,
        worker_id: str | None = None,
        now: float | None = None,
    ) -> str:
        """Record a failure: retry with exponential backoff, or mark
        ``failed`` once attempts are exhausted.  Returns the new status
        (``"stale"`` when ``worker_id`` no longer owns the job)."""
        now = self._clock() if now is None else now
        with self.conn as conn:
            row = conn.execute(
                "SELECT attempt, max_attempts, status, owner FROM jobs "
                "WHERE id = ?",
                (job_id,),
            ).fetchone()
            if row is None:
                return "missing"
            if worker_id is not None and (
                row["status"] != "running" or row["owner"] != worker_id
            ):
                return "stale"
            if row["attempt"] >= row["max_attempts"]:
                status, not_before = "failed", now
            else:
                status = "pending"
                not_before = now + retry_base_s * 2 ** (row["attempt"] - 1)
            conn.execute(
                "UPDATE jobs SET status = ?, error = ?, not_before = ?, "
                "finished_at = ? WHERE id = ?",
                (status, error[:2000], not_before, now, job_id),
            )
        return status

    # -- recovery --------------------------------------------------------
    def reclaim_expired(self, *, now: float | None = None) -> int:
        """Reset ``running`` jobs whose lease has lapsed.

        A SIGKILLed (or unplugged) worker stops heartbeating, its leases
        expire, and this flips its rows back to ``pending`` — which is
        what lets any surviving worker, or the next ``lab run``, pick
        them up.  The attempt already spent stays counted.  Works for
        owners on any host, since it never inspects pids.
        """
        now = self._clock() if now is None else now
        with self.conn as conn:
            cur = conn.execute(
                "UPDATE jobs SET status = 'pending', owner = NULL, "
                "not_before = ? WHERE status = 'running' AND lease_expires <= ?",
                (now, now),
            )
        return cur.rowcount

    def reset(
        self,
        *,
        statuses: tuple[str, ...] = ("failed",),
        run_id: int | None = None,
        now: float | None = None,
    ) -> int:
        """Flip jobs in ``statuses`` back to pending with a fresh attempt
        budget (the CLI's ``lab reset`` / reset-failed semantics)."""
        now = self._clock() if now is None else now
        marks = ", ".join("?" for _ in statuses)
        sql = (
            f"UPDATE jobs SET status = 'pending', owner = NULL, attempt = 0, "
            f"error = NULL, not_before = ? WHERE status IN ({marks})"
        )
        params: list[Any] = [now, *statuses]
        if run_id is not None:
            sql += " AND run_id = ?"
            params.append(run_id)
        with self.conn as conn:
            cur = conn.execute(sql, params)
        return cur.rowcount

    # -- inspection ------------------------------------------------------
    def get(self, job_id: int) -> Job | None:
        row = self.conn.execute(
            "SELECT * FROM jobs WHERE id = ?", (job_id,)
        ).fetchone()
        return Job.from_row(row) if row else None

    def counts(self, run_id: int | None = None) -> dict[str, int]:
        sql = "SELECT status, COUNT(*) AS n FROM jobs"
        params: tuple = ()
        if run_id is not None:
            sql += " WHERE run_id = ?"
            params = (run_id,)
        sql += " GROUP BY status"
        out = {status: 0 for status in STATUSES}
        for row in self.conn.execute(sql, params):
            out[row["status"]] = row["n"]
        return out

    def pending_runnable(
        self, run_id: int | None = None, *, now: float | None = None
    ) -> int:
        now = self._clock() if now is None else now
        sql = (
            "SELECT COUNT(*) AS n FROM jobs "
            "WHERE status = 'pending' AND not_before <= ?"
        )
        params: list[Any] = [now]
        if run_id is not None:
            sql += " AND run_id = ?"
            params.append(run_id)
        return int(self.conn.execute(sql, params).fetchone()["n"])

    def next_not_before(self, run_id: int | None = None) -> float | None:
        """Earliest ``not_before`` among pending jobs (for backoff waits)."""
        sql = "SELECT MIN(not_before) AS m FROM jobs WHERE status = 'pending'"
        params: tuple = ()
        if run_id is not None:
            sql += " AND run_id = ?"
            params = (run_id,)
        row = self.conn.execute(sql, params).fetchone()
        return float(row["m"]) if row["m"] is not None else None

    def results(self, run_id: int | None = None) -> list[dict]:
        """Flat result rows for every done job: spec fields + result
        fields + bookkeeping (shaped like ``bench_results/*.json`` rows)."""
        sql = "SELECT * FROM jobs WHERE status = 'done'"
        params: tuple = ()
        if run_id is not None:
            sql += " AND run_id = ?"
            params = (run_id,)
        sql += " ORDER BY id"
        rows = []
        for row in self.conn.execute(sql, params):
            flat: dict[str, Any] = dict(json.loads(row["spec"]))
            flat.update(json.loads(row["result"] or "{}"))
            flat["job_id"] = row["id"]
            flat["run_id"] = row["run_id"]
            flat["attempt"] = row["attempt"]
            flat["wall_s"] = row["wall_s"]
            rows.append(flat)
        return rows

    def jobs(self, run_id: int | None = None) -> list[Job]:
        sql = "SELECT * FROM jobs"
        params: tuple = ()
        if run_id is not None:
            sql += " WHERE run_id = ?"
            params = (run_id,)
        sql += " ORDER BY id"
        return [Job.from_row(r) for r in self.conn.execute(sql, params)]
