"""SQLite-backed job store for experiment orchestration.

The store is the durable heart of :mod:`repro.lab`: an experiment grid
is expanded once into job rows, and any number of worker processes then
claim, execute and complete those rows.  Everything that matters for
crash-recovery lives in the database:

* ``runs`` — one row per ``lab init`` (the grid spec as JSON, for
  provenance and re-expansion);
* ``jobs`` — one row per grid cell with ``status`` (``pending`` →
  ``running`` → ``done``/``failed``), ``owner`` (worker id,
  ``<pid>:<seq>``), ``attempt``/``max_attempts`` and a ``not_before``
  timestamp implementing exponential backoff between retries.

Concurrency model: every worker opens its own connection (WAL mode,
generous busy timeout) and claims jobs inside a ``BEGIN IMMEDIATE``
transaction, so exactly one worker wins each pending row.  A worker
killed mid-job leaves the row ``running`` with a dead owner pid;
:meth:`JobStore.reclaim_dead` flips such rows back to ``pending`` at the
start of the next ``lab run``, which is what makes an interrupted run
resumable with the same command and no duplicated result rows (job
identity is enforced by a ``UNIQUE(run_id, key)`` constraint).
"""

from __future__ import annotations

import json
import os
import sqlite3
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable

__all__ = ["Job", "JobStore", "STATUSES"]

STATUSES = ("pending", "running", "done", "failed")

_SCHEMA = """
CREATE TABLE IF NOT EXISTS runs (
    id      INTEGER PRIMARY KEY AUTOINCREMENT,
    created REAL NOT NULL,
    grid    TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS jobs (
    id           INTEGER PRIMARY KEY AUTOINCREMENT,
    run_id       INTEGER NOT NULL REFERENCES runs(id),
    key          TEXT NOT NULL,
    spec         TEXT NOT NULL,
    status       TEXT NOT NULL DEFAULT 'pending',
    owner        TEXT,
    attempt      INTEGER NOT NULL DEFAULT 0,
    max_attempts INTEGER NOT NULL DEFAULT 3,
    not_before   REAL NOT NULL DEFAULT 0,
    claimed_at   REAL,
    finished_at  REAL,
    wall_s       REAL,
    result       TEXT,
    error        TEXT,
    UNIQUE (run_id, key)
);
CREATE INDEX IF NOT EXISTS jobs_status ON jobs (status, not_before);
"""


@dataclass(frozen=True)
class Job:
    """One claimed (or inspected) job row."""

    id: int
    run_id: int
    key: str
    spec: dict
    status: str
    owner: str | None
    attempt: int
    max_attempts: int

    @classmethod
    def from_row(cls, row: sqlite3.Row) -> "Job":
        return cls(
            id=row["id"],
            run_id=row["run_id"],
            key=row["key"],
            spec=json.loads(row["spec"]),
            status=row["status"],
            owner=row["owner"],
            attempt=row["attempt"],
            max_attempts=row["max_attempts"],
        )


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - exists but not ours
        return True
    return True


class JobStore:
    """Durable multi-process job queue over a single SQLite file."""

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._conn: sqlite3.Connection | None = None

    # -- connection management ------------------------------------------
    @property
    def conn(self) -> sqlite3.Connection:
        if self._conn is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            conn = sqlite3.connect(self.path, timeout=30.0)
            conn.row_factory = sqlite3.Row
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA busy_timeout=30000")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.executescript(_SCHEMA)
            conn.commit()
            self._conn = conn
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    # -- run / job creation ---------------------------------------------
    def create_run(
        self,
        grid: dict,
        specs: Iterable[tuple[str, dict]],
        *,
        max_attempts: int = 3,
        now: float | None = None,
    ) -> tuple[int, int]:
        """Insert a run and its expanded jobs.

        ``specs`` is an iterable of ``(key, spec_dict)``.  Duplicate keys
        within the run are ignored (``INSERT OR IGNORE``), so re-running
        ``lab init`` with the same grid cannot duplicate jobs.  Returns
        ``(run_id, jobs_inserted)``.
        """
        now = time.time() if now is None else now
        conn = self.conn
        with conn:
            cur = conn.execute(
                "INSERT INTO runs (created, grid) VALUES (?, ?)",
                (now, json.dumps(grid, sort_keys=True)),
            )
            run_id = int(cur.lastrowid)
            inserted = 0
            for key, spec in specs:
                cur = conn.execute(
                    "INSERT OR IGNORE INTO jobs "
                    "(run_id, key, spec, max_attempts) VALUES (?, ?, ?, ?)",
                    (run_id, key, json.dumps(spec, sort_keys=True), max_attempts),
                )
                inserted += cur.rowcount
        return run_id, inserted

    def latest_run_id(self) -> int | None:
        row = self.conn.execute("SELECT MAX(id) AS m FROM runs").fetchone()
        return int(row["m"]) if row["m"] is not None else None

    def run_grid(self, run_id: int) -> dict | None:
        row = self.conn.execute(
            "SELECT grid FROM runs WHERE id = ?", (run_id,)
        ).fetchone()
        return json.loads(row["grid"]) if row else None

    # -- claim / complete / fail ----------------------------------------
    def claim(self, worker_id: str, *, now: float | None = None) -> Job | None:
        """Atomically claim one runnable pending job (or return ``None``).

        ``BEGIN IMMEDIATE`` takes the database write lock up front, so
        two workers can never claim the same row.
        """
        now = time.time() if now is None else now
        conn = self.conn
        try:
            conn.execute("BEGIN IMMEDIATE")
            row = conn.execute(
                "SELECT * FROM jobs WHERE status = 'pending' AND not_before <= ? "
                "ORDER BY id LIMIT 1",
                (now,),
            ).fetchone()
            if row is None:
                conn.execute("ROLLBACK")
                return None
            conn.execute(
                "UPDATE jobs SET status = 'running', owner = ?, "
                "attempt = attempt + 1, claimed_at = ? WHERE id = ?",
                (worker_id, now, row["id"]),
            )
            conn.execute("COMMIT")
        except sqlite3.OperationalError:
            try:
                conn.execute("ROLLBACK")
            except sqlite3.OperationalError:
                pass
            return None
        claimed = self.get(int(row["id"]))
        assert claimed is not None
        return claimed

    def complete(
        self,
        job_id: int,
        result: dict,
        *,
        wall_s: float,
        now: float | None = None,
    ) -> bool:
        """Mark a running job done; returns False if it was not running
        (e.g. it was reclaimed from under a stalled worker)."""
        now = time.time() if now is None else now
        with self.conn as conn:
            cur = conn.execute(
                "UPDATE jobs SET status = 'done', result = ?, wall_s = ?, "
                "finished_at = ?, error = NULL "
                "WHERE id = ? AND status = 'running'",
                (json.dumps(result, sort_keys=True), wall_s, now, job_id),
            )
        return cur.rowcount == 1

    def fail(
        self,
        job_id: int,
        error: str,
        *,
        retry_base_s: float = 1.0,
        now: float | None = None,
    ) -> str:
        """Record a failure: retry with exponential backoff, or mark
        ``failed`` once attempts are exhausted.  Returns the new status."""
        now = time.time() if now is None else now
        with self.conn as conn:
            row = conn.execute(
                "SELECT attempt, max_attempts FROM jobs WHERE id = ?", (job_id,)
            ).fetchone()
            if row is None:
                return "missing"
            if row["attempt"] >= row["max_attempts"]:
                status, not_before = "failed", now
            else:
                status = "pending"
                not_before = now + retry_base_s * 2 ** (row["attempt"] - 1)
            conn.execute(
                "UPDATE jobs SET status = ?, error = ?, not_before = ?, "
                "finished_at = ? WHERE id = ?",
                (status, error[:2000], not_before, now, job_id),
            )
        return status

    # -- recovery --------------------------------------------------------
    def reclaim_dead(self, *, now: float | None = None) -> int:
        """Reset ``running`` jobs whose owner process no longer exists.

        The owner id is ``<pid>:<seq>``; a SIGKILLed worker leaves its
        rows running forever, and this is what lets the next ``lab run``
        pick them back up.  The attempt already spent stays counted.
        """
        now = time.time() if now is None else now
        conn = self.conn
        rows = conn.execute(
            "SELECT id, owner FROM jobs WHERE status = 'running'"
        ).fetchall()
        reclaimed = 0
        with conn:
            for row in rows:
                owner = row["owner"] or ""
                try:
                    pid = int(owner.split(":", 1)[0])
                except ValueError:
                    pid = -1
                if pid <= 0 or not _pid_alive(pid):
                    conn.execute(
                        "UPDATE jobs SET status = 'pending', owner = NULL, "
                        "not_before = ? WHERE id = ? AND status = 'running'",
                        (now, row["id"]),
                    )
                    reclaimed += 1
        return reclaimed

    def reset(
        self,
        *,
        statuses: tuple[str, ...] = ("failed",),
        run_id: int | None = None,
        now: float | None = None,
    ) -> int:
        """Flip jobs in ``statuses`` back to pending with a fresh attempt
        budget (the CLI's ``lab reset`` / reset-failed semantics)."""
        now = time.time() if now is None else now
        marks = ", ".join("?" for _ in statuses)
        sql = (
            f"UPDATE jobs SET status = 'pending', owner = NULL, attempt = 0, "
            f"error = NULL, not_before = ? WHERE status IN ({marks})"
        )
        params: list[Any] = [now, *statuses]
        if run_id is not None:
            sql += " AND run_id = ?"
            params.append(run_id)
        with self.conn as conn:
            cur = conn.execute(sql, params)
        return cur.rowcount

    # -- inspection ------------------------------------------------------
    def get(self, job_id: int) -> Job | None:
        row = self.conn.execute(
            "SELECT * FROM jobs WHERE id = ?", (job_id,)
        ).fetchone()
        return Job.from_row(row) if row else None

    def counts(self, run_id: int | None = None) -> dict[str, int]:
        sql = "SELECT status, COUNT(*) AS n FROM jobs"
        params: tuple = ()
        if run_id is not None:
            sql += " WHERE run_id = ?"
            params = (run_id,)
        sql += " GROUP BY status"
        out = {status: 0 for status in STATUSES}
        for row in self.conn.execute(sql, params):
            out[row["status"]] = row["n"]
        return out

    def pending_runnable(self, *, now: float | None = None) -> int:
        now = time.time() if now is None else now
        row = self.conn.execute(
            "SELECT COUNT(*) AS n FROM jobs "
            "WHERE status = 'pending' AND not_before <= ?",
            (now,),
        ).fetchone()
        return int(row["n"])

    def next_not_before(self) -> float | None:
        """Earliest ``not_before`` among pending jobs (for backoff waits)."""
        row = self.conn.execute(
            "SELECT MIN(not_before) AS m FROM jobs WHERE status = 'pending'"
        ).fetchone()
        return float(row["m"]) if row["m"] is not None else None

    def results(self, run_id: int | None = None) -> list[dict]:
        """Flat result rows for every done job: spec fields + result
        fields + bookkeeping (shaped like ``bench_results/*.json`` rows)."""
        sql = "SELECT * FROM jobs WHERE status = 'done'"
        params: tuple = ()
        if run_id is not None:
            sql += " AND run_id = ?"
            params = (run_id,)
        sql += " ORDER BY id"
        rows = []
        for row in self.conn.execute(sql, params):
            flat: dict[str, Any] = dict(json.loads(row["spec"]))
            flat.update(json.loads(row["result"] or "{}"))
            flat["job_id"] = row["id"]
            flat["run_id"] = row["run_id"]
            flat["attempt"] = row["attempt"]
            flat["wall_s"] = row["wall_s"]
            rows.append(flat)
        return rows

    def jobs(self, run_id: int | None = None) -> list[Job]:
        sql = "SELECT * FROM jobs"
        params: tuple = ()
        if run_id is not None:
            sql += " WHERE run_id = ?"
            params = (run_id,)
        sql += " ORDER BY id"
        return [Job.from_row(r) for r in self.conn.execute(sql, params)]
