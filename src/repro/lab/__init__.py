"""Experiment orchestration: durable sweeps over the paper pipeline.

``repro.lab`` turns the in-process bench layer into a resumable —
and distributable — experiment service:

* :mod:`~repro.lab.grid` — the sweep specification
  (:class:`ExperimentGrid` → :class:`JobSpec` cells);
* :mod:`~repro.lab.backends` — the :class:`JobStoreBackend` contract
  (claim / heartbeat / complete / fail / reclaim + inspection) and the
  :func:`open_backend` target resolver;
* :mod:`~repro.lab.store` — the local SQLite backend: atomic claims,
  bounded retry with exponential backoff, heartbeat-lease recovery;
* :mod:`~repro.lab.server` / :mod:`~repro.lab.http_store` — the
  ``lab serve`` HTTP job server and its client backend, which let
  workers on any host drain the same queue;
* :mod:`~repro.lab.artifacts` — a content-addressed cache of meshes,
  permutations and simulated results shared by all workers on a host;
* :mod:`~repro.lab.worker` — the multi-process pool that drains the
  queue, plus :mod:`~repro.lab.telemetry` (JSONL event stream and its
  aggregator) and :mod:`~repro.lab.monitor` (the live ``status
  --watch`` view).

CLI surface: ``repro-lms lab
init|run|serve|work|status|reset|export|chaos``.  The
:mod:`~repro.lab.faults` module is the chaos harness behind ``lab
chaos``: deterministic seeded fault injection (:class:`FaultPlan`)
plus the exactly-once/lease/replay invariant checker
(:func:`check_invariants`).
"""

from .artifacts import ArtifactCache, cache_key
from .backends import (
    DEFAULT_LEASE_S,
    JobStoreBackend,
    STORE_BACKENDS,
    open_backend,
)
from .faults import (
    FAULT_KINDS,
    FaultPlan,
    FaultRule,
    InvariantReport,
    WorkerKilled,
    check_invariants,
    drop_timing_rows,
    run_chaos,
)
from .grid import ExperimentGrid, JobSpec, UnknownNameError, validate_names
from .http_store import HttpJobStore, StoreConnectionError
from .monitor import format_watch_line, watch_status
from .server import IdempotencyCache, LabServer, PROTOCOL_VERSION
from .store import Job, JobStore, STATUSES
from .telemetry import TelemetryWriter, format_summary, read_events, summarize
from .worker import (
    EXPERIMENT_RUNNERS,
    JobTimeout,
    execute_job,
    run_pool,
    worker_loop,
)

__all__ = [
    "ArtifactCache",
    "DEFAULT_LEASE_S",
    "EXPERIMENT_RUNNERS",
    "ExperimentGrid",
    "FAULT_KINDS",
    "FaultPlan",
    "FaultRule",
    "HttpJobStore",
    "IdempotencyCache",
    "InvariantReport",
    "Job",
    "JobSpec",
    "JobStore",
    "JobStoreBackend",
    "JobTimeout",
    "LabServer",
    "PROTOCOL_VERSION",
    "STATUSES",
    "STORE_BACKENDS",
    "StoreConnectionError",
    "TelemetryWriter",
    "UnknownNameError",
    "WorkerKilled",
    "cache_key",
    "check_invariants",
    "drop_timing_rows",
    "execute_job",
    "format_summary",
    "format_watch_line",
    "open_backend",
    "read_events",
    "run_chaos",
    "run_pool",
    "summarize",
    "validate_names",
    "watch_status",
    "worker_loop",
]
