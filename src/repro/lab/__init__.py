"""Experiment orchestration: durable sweeps over the paper pipeline.

``repro.lab`` turns the in-process bench layer into a resumable
experiment service with four pieces:

* :mod:`~repro.lab.grid` — the sweep specification
  (:class:`ExperimentGrid` → :class:`JobSpec` cells);
* :mod:`~repro.lab.store` — a SQLite job queue with atomic claims,
  bounded retry with exponential backoff, and orphan reclaim;
* :mod:`~repro.lab.artifacts` — a content-addressed cache of meshes,
  permutations and simulated results shared by all workers;
* :mod:`~repro.lab.worker` — the multi-process pool that drains the
  queue, plus :mod:`~repro.lab.telemetry` (JSONL event stream and its
  aggregator).

CLI surface: ``repro-lms lab init|run|status|reset|export``.
"""

from .artifacts import ArtifactCache, cache_key
from .grid import ExperimentGrid, JobSpec, UnknownNameError, validate_names
from .store import Job, JobStore, STATUSES
from .telemetry import TelemetryWriter, format_summary, read_events, summarize
from .worker import (
    EXPERIMENT_RUNNERS,
    JobTimeout,
    execute_job,
    run_pool,
    worker_loop,
)

__all__ = [
    "ArtifactCache",
    "EXPERIMENT_RUNNERS",
    "ExperimentGrid",
    "Job",
    "JobSpec",
    "JobStore",
    "JobTimeout",
    "STATUSES",
    "TelemetryWriter",
    "UnknownNameError",
    "cache_key",
    "execute_job",
    "format_summary",
    "read_events",
    "run_pool",
    "summarize",
    "validate_names",
    "worker_loop",
]
