"""The always-available numpy backend, plus the protocol base class.

``ArrayBackend`` documents the contract; ``NumpyBackend`` implements it
with zero-copy transfers, so engine code written against the protocol
runs the identical op stream the direct-numpy engines ran before the
abstraction existed (the parity bench in
``benchmarks/test_backend_parity.py`` gates that this costs < 10%).
"""

from __future__ import annotations

import numpy as np

__all__ = ["ArrayBackend", "NumpyBackend"]


class ArrayBackend:
    """The array-namespace contract every backend implements.

    ``xp`` exposes the underlying module (numpy / cupy / torch) as an
    escape hatch; the named methods below cover the operations where
    the namespaces disagree, so engine code stays backend-agnostic.
    Dtype attributes (``int64``, ``float64``, ``bool_``) are the
    backend-native dtype objects.
    """

    name: str = "abstract"

    @property
    def xp(self):
        """The backing array module."""
        raise NotImplementedError

    # -- device transfer ------------------------------------------------
    def asarray(self, a, dtype=None):
        """Move host data into this backend's memory space."""
        raise NotImplementedError

    def to_numpy(self, a):
        """Bring a backend array back to host numpy."""
        raise NotImplementedError

    # -- construction ---------------------------------------------------
    def zeros(self, shape, dtype):
        raise NotImplementedError

    def full(self, shape, value, dtype):
        raise NotImplementedError

    def arange(self, n):
        raise NotImplementedError

    # -- segment reductions ---------------------------------------------
    def reduceat(self, values, starts):
        """Segment sums along axis 0 (``np.add.reduceat`` semantics).

        ``starts`` are monotone non-decreasing row offsets beginning at
        0; segment ``i`` sums ``values[starts[i]:starts[i+1]]`` (the
        last one runs to the end).  Engines guarantee every segment is
        non-empty.
        """
        raise NotImplementedError

    def segment_mean(self, values, starts, counts):
        """Segment means: :meth:`reduceat` divided by float ``counts``."""
        sums = self.reduceat(values, starts)
        if sums.ndim > 1:
            return sums / counts[:, None]
        return sums / counts

    # -- sorting and searching ------------------------------------------
    def argsort(self, a, *, stable=False):
        """Indices sorting ``a``; ``stable=True`` matches numpy's
        stable order exactly (ties keep stream position)."""
        raise NotImplementedError

    def searchsorted(self, a, v, *, side="left"):
        raise NotImplementedError

    def scatter_min(self, target, index, values):
        """In-place ``target[index] = min(target[index], values)`` with
        duplicate indices all participating (``np.minimum.at``)."""
        raise NotImplementedError

    def flatnonzero(self, a):
        """Indices of the true/nonzero entries of a 1-d array."""
        raise NotImplementedError

    # -- rng and synchronization ----------------------------------------
    def seed_rng(self, seed: int):
        """Seed the backend's RNG machinery and return a generator
        handle (backend-specific type)."""
        raise NotImplementedError

    def synchronize(self) -> None:
        """Block until queued device work completes (no-op on host)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ArrayBackend {self.name}>"


class NumpyBackend(ArrayBackend):
    """Host numpy: zero-copy transfers, the reference op stream."""

    name = "numpy"

    int64 = np.int64
    float64 = np.float64
    bool_ = np.bool_

    @property
    def xp(self):
        return np

    def asarray(self, a, dtype=None):
        return np.asarray(a, dtype=dtype)

    def to_numpy(self, a):
        return np.asarray(a)

    def zeros(self, shape, dtype):
        return np.zeros(shape, dtype=dtype)

    def full(self, shape, value, dtype):
        return np.full(shape, value, dtype=dtype)

    def arange(self, n):
        return np.arange(n, dtype=np.int64)

    def reduceat(self, values, starts):
        return np.add.reduceat(values, starts, axis=0)

    def argsort(self, a, *, stable=False):
        return np.argsort(a, kind="stable" if stable else None)

    def searchsorted(self, a, v, *, side="left"):
        return np.searchsorted(a, v, side=side)

    def scatter_min(self, target, index, values):
        np.minimum.at(target, index, values)

    def flatnonzero(self, a):
        return np.flatnonzero(a)

    def seed_rng(self, seed: int):
        return np.random.default_rng(seed)

    def synchronize(self) -> None:
        pass
