"""Array backends: one namespace layer under every fast engine.

The three hot paths (vectorized smoothing, batched memsim, frontier
orderings) are whole-array programs.  :class:`ArrayBackend` abstracts
the handful of array operations they need — device transfer, segment
reduction, stable sorting, searchsorted, RNG seeding and a
synchronization hook — so the same engine code runs on numpy (always
available), CuPy, or Torch.  Backends are selected by name through
:func:`get_backend`, mirroring the engine registries: unknown names
raise :class:`repro.config.UnknownNameError` (CLI exit status 2), and
known-but-uninstalled backends fall back to numpy with a
RuntimeWarning, so a backend-less environment runs every configuration.

Conventions the engines rely on:

- ``asarray`` moves host data into the backend's memory space and
  ``to_numpy`` brings it back; both feed the
  ``backend.to_device_bytes`` / ``backend.to_host_bytes`` obs counters
  (numpy is zero-copy and counts nothing).
- ``reduceat(values, starts)`` is ``np.add.reduceat`` semantics along
  axis 0: segment sums over contiguous row ranges given monotone start
  offsets.
- ``argsort(a, stable=True)`` must match numpy's stable order exactly —
  the ordering engines' permutations are pinned element-wise against
  the numpy path.
"""

from __future__ import annotations

import warnings

from ..config import UnknownNameError
from .numpy_backend import ArrayBackend, NumpyBackend

__all__ = [
    "ArrayBackend",
    "BACKEND_NAMES",
    "NumpyBackend",
    "available_backends",
    "get_backend",
]

#: Every name ``RunConfig.backend`` accepts, installed or not.  Configs
#: and grids validate against this tuple so a grid authored on a GPU
#: host parses anywhere; execution falls back per-host in get_backend.
BACKEND_NAMES = ("numpy", "cupy", "torch")

_INSTANCES: dict[str, ArrayBackend] = {}
_WARNED: set[str] = set()


def _load(name: str) -> ArrayBackend:
    """Instantiate backend ``name``; ImportError when not installed."""
    if name == "numpy":
        return NumpyBackend()
    if name == "cupy":
        from .cupy_backend import CupyBackend

        return CupyBackend()
    if name == "torch":
        from .torch_backend import TorchBackend

        return TorchBackend()
    raise AssertionError(name)  # pragma: no cover - guarded by caller


def get_backend(name: str = "numpy") -> ArrayBackend:
    """The registered :class:`ArrayBackend` called ``name``.

    Unknown names raise :class:`~repro.config.UnknownNameError`; known
    names whose library is not installed return the numpy backend with
    a one-time RuntimeWarning (the backend-less CI path).
    """
    if name not in BACKEND_NAMES:
        raise UnknownNameError("backend", name, BACKEND_NAMES)
    cached = _INSTANCES.get(name)
    if cached is not None:
        return cached
    try:
        backend = _load(name)
    except ImportError:
        if name not in _WARNED:
            _WARNED.add(name)
            warnings.warn(
                f"array backend {name!r} is not installed; "
                "falling back to numpy",
                RuntimeWarning,
                stacklevel=2,
            )
        backend = get_backend("numpy")
    _INSTANCES[name] = backend
    return backend


def available_backends() -> tuple[str, ...]:
    """The backend names whose libraries import on this host."""
    out = []
    for name in BACKEND_NAMES:
        try:
            _INSTANCES.setdefault(name, _load(name))
        except ImportError:
            continue
        if _INSTANCES[name].name == name:
            out.append(name)
    return tuple(out)
