"""CuPy backend: CUDA arrays behind the numpy-compatible namespace.

The module imports without cupy installed; instantiating
:class:`CupyBackend` then raises ImportError, which
:func:`repro.backend.get_backend` catches and falls back to numpy.
Segment sums use ``cupyx.scatter_add`` (CuPy ufuncs lack ``reduceat``),
and stable argsort is emulated with ``lexsort`` over (position, key)
since CuPy's sort has no ``kind`` parameter.
"""

from __future__ import annotations

import numpy as np

try:
    import cupy
    import cupyx
except ImportError:  # pragma: no cover - exercised on GPU-less hosts
    cupy = None
    cupyx = None

from .. import obs
from .numpy_backend import ArrayBackend

__all__ = ["CupyBackend"]


class CupyBackend(ArrayBackend):
    """CuPy arrays on the current CUDA device."""

    name = "cupy"

    def __init__(self) -> None:
        if cupy is None:
            raise ImportError("cupy is not installed")
        self.int64 = cupy.int64
        self.float64 = cupy.float64
        self.bool_ = cupy.bool_

    @property
    def xp(self):
        return cupy

    def asarray(self, a, dtype=None):
        if not isinstance(a, cupy.ndarray) and obs.is_enabled():
            obs.add("backend.to_device_bytes", int(np.asarray(a).nbytes))
        return cupy.asarray(a, dtype=dtype)

    def to_numpy(self, a):
        if isinstance(a, cupy.ndarray) and obs.is_enabled():
            obs.add("backend.to_host_bytes", int(a.nbytes))
        return cupy.asnumpy(a)

    def zeros(self, shape, dtype):
        return cupy.zeros(shape, dtype=dtype)

    def full(self, shape, value, dtype):
        return cupy.full(shape, value, dtype=dtype)

    def arange(self, n):
        return cupy.arange(int(n), dtype=cupy.int64)

    def reduceat(self, values, starts):
        n = values.shape[0]
        lengths = cupy.diff(starts, append=n)
        seg = cupy.repeat(
            cupy.arange(starts.shape[0], dtype=cupy.int64), lengths
        )
        out = cupy.zeros(
            (starts.shape[0],) + tuple(values.shape[1:]), dtype=values.dtype
        )
        cupyx.scatter_add(out, seg, values)
        return out

    def argsort(self, a, *, stable=False):
        if not stable:
            return cupy.argsort(a)
        # lexsort's last key is primary: sort by a, ties by position.
        return cupy.lexsort(
            cupy.stack((cupy.arange(a.shape[0], dtype=cupy.int64), a))
        )

    def searchsorted(self, a, v, *, side="left"):
        return cupy.searchsorted(a, v, side=side)

    def scatter_min(self, target, index, values):
        cupyx.scatter_min(target, index, values)

    def flatnonzero(self, a):
        return cupy.flatnonzero(a)

    def seed_rng(self, seed: int):
        cupy.random.seed(int(seed))
        return cupy.random.default_rng(int(seed))

    def synchronize(self) -> None:  # pragma: no cover - GPU only
        cupy.cuda.get_current_stream().synchronize()
