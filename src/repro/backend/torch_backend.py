"""Torch backend: CUDA when available, CPU tensors otherwise.

The module imports without torch installed; instantiating
:class:`TorchBackend` then raises ImportError, which
:func:`repro.backend.get_backend` catches and falls back to numpy.
Segment sums use ``index_add_`` (torch has no ``reduceat``), stable
sorts use torch's ``argsort(stable=True)``, and every host<->device
transfer feeds the ``backend.to_device_bytes`` /
``backend.to_host_bytes`` obs counters.
"""

from __future__ import annotations

import numpy as np

try:
    import torch
except ImportError:  # pragma: no cover - exercised on torch-less hosts
    torch = None

from .. import obs
from .numpy_backend import ArrayBackend

__all__ = ["TorchBackend"]


class TorchBackend(ArrayBackend):
    """Torch tensors on ``cuda`` when present, else CPU."""

    name = "torch"

    def __init__(self) -> None:
        if torch is None:
            raise ImportError("torch is not installed")
        self.device = torch.device(
            "cuda" if torch.cuda.is_available() else "cpu"
        )
        self.int64 = torch.int64
        self.float64 = torch.float64
        self.bool_ = torch.bool
        self._np_to_torch = {
            np.dtype(np.float64): torch.float64,
            np.dtype(np.float32): torch.float32,
            np.dtype(np.int64): torch.int64,
            np.dtype(np.int32): torch.int32,
            np.dtype(np.int8): torch.int8,
            np.dtype(np.uint8): torch.uint8,
            np.dtype(np.bool_): torch.bool,
        }

    @property
    def xp(self):
        return torch

    def asarray(self, a, dtype=None):
        if isinstance(a, torch.Tensor):
            t = a
        else:
            arr = np.ascontiguousarray(a)
            if obs.is_enabled():
                obs.add("backend.to_device_bytes", int(arr.nbytes))
            t = torch.from_numpy(arr)
        if dtype is not None:
            try:
                want = self._np_to_torch.get(np.dtype(dtype), dtype)
            except TypeError:  # already a torch dtype
                want = dtype
            t = t.to(want)
        return t.to(self.device)

    def to_numpy(self, a):
        if not isinstance(a, torch.Tensor):
            return np.asarray(a)
        out = a.detach().cpu().numpy()
        if obs.is_enabled():
            obs.add("backend.to_host_bytes", int(out.nbytes))
        return out

    def zeros(self, shape, dtype):
        return torch.zeros(shape, dtype=dtype, device=self.device)

    def full(self, shape, value, dtype):
        return torch.full(
            shape if isinstance(shape, tuple) else (shape,),
            value,
            dtype=dtype,
            device=self.device,
        )

    def arange(self, n):
        return torch.arange(int(n), dtype=torch.int64, device=self.device)

    def reduceat(self, values, starts):
        n = values.shape[0]
        lengths = torch.diff(
            starts,
            append=torch.tensor([n], dtype=starts.dtype, device=starts.device),
        )
        seg = torch.repeat_interleave(
            torch.arange(starts.shape[0], device=starts.device), lengths
        )
        out = torch.zeros(
            (starts.shape[0],) + tuple(values.shape[1:]),
            dtype=values.dtype,
            device=values.device,
        )
        out.index_add_(0, seg, values)
        return out

    def argsort(self, a, *, stable=False):
        return torch.argsort(a, stable=stable)

    def searchsorted(self, a, v, *, side="left"):
        return torch.searchsorted(a, v, right=(side == "right"))

    def scatter_min(self, target, index, values):
        target.scatter_reduce_(0, index, values, reduce="amin")

    def flatnonzero(self, a):
        return torch.nonzero(a, as_tuple=False).reshape(-1)

    def seed_rng(self, seed: int):
        gen = torch.Generator(device=self.device)
        gen.manual_seed(int(seed))
        return gen

    def synchronize(self) -> None:
        if self.device.type == "cuda":  # pragma: no cover - GPU only
            torch.cuda.synchronize()
