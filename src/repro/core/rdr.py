"""RDR — the paper's Reuse-Distance-Reducing ordering (Algorithm 2).

The ordering mimics the quality-greedy traversal of the Laplacian
smoother so that *storage order matches access order*:

1. take the worst-quality interior vertex not yet processed,
2. append its not-yet-ordered neighbors, sorted by increasing quality,
3. continue the chain at its worst-quality unprocessed neighbor,
4. when the chain dies out, return to step 1.

Theorem 1 of the paper proves every vertex is ordered exactly once; the
implementation asserts this invariant. One documented deviation: on
meshes where some vertex is unreachable through the interior-seeded
chains (possible only for pathological or disconnected inputs, which
Theorem 1's setting excludes), remaining vertices are appended in
increasing-quality order instead of being dropped.

The chain walk is also exposed as :func:`rdr_chain_heads` for tests and
for the reordering-cost accounting of Section 5.4 (the walk does the
same work as one smoothing iteration, which is the paper's cost
estimate for the pre-computation).

Batched engine
--------------
``order_engine="batched"`` runs the same algorithm through a compiled
*ordering plan* (see :class:`_RdrQualityPlan`): the quality-sorted
padded neighbor matrix, the seed cursor and the chain schedule are
built once per ``(graph, qualities)`` pair and cached on the graph, and
each call then *materializes* the permutation from the schedule with a
closed-form array computation — for every vertex ``w``, the chain step
that appends ``w`` is the earliest-processed head among ``w``'s
neighbors that precedes ``w``'s own head position, and ``w``'s rank
within that step is its position in the head's quality-sorted neighbor
row; one stable argsort of the fused ``(step, rank)`` key yields the
permutation.  The result is element-identical to :func:`rdr_ordering`
(chain heads are tie-free, so the claim is unambiguous); the
differential suite pins it across domains and seeds.
"""

from __future__ import annotations

import hashlib
from array import array
from dataclasses import dataclass, field

import numpy as np

from .. import obs
from ..mesh import TriMesh
from ..ordering.base import register_batched_ordering, register_ordering
from ..ordering.batched import FrontierPlan, frontier_plan
from ..quality import vertex_quality

__all__ = [
    "rdr_ordering",
    "sorted_neighbor_lists",
    "rdr_chain_heads",
    "first_touch_ordering",
    "batched_rdr_ordering",
    "batched_first_touch_ordering",
]


def sorted_neighbor_lists(
    mesh: TriMesh, qualities: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """CSR adjacency with each row re-sorted by increasing quality.

    Returns ``(xadj, adjncy_by_quality)``. Ties break on vertex index
    (stable sort), making the ordering deterministic.
    """
    g = mesh.adjacency
    rows = np.repeat(
        np.arange(mesh.num_vertices, dtype=np.int64), g.degrees()
    )
    perm = np.lexsort((g.adjncy, qualities[g.adjncy], rows))
    return g.xadj, g.adjncy[perm]


@register_ordering("rdr")
def rdr_ordering(
    mesh: TriMesh,
    *,
    seed: int = 0,
    qualities: np.ndarray | None = None,
) -> np.ndarray:
    """Algorithm 2 of the paper. Returns ``order`` with ``order[new] = old``."""
    n = mesh.num_vertices
    if qualities is None:
        qualities = vertex_quality(mesh)
    qualities = np.asarray(qualities, dtype=np.float64)
    if qualities.shape != (n,):
        raise ValueError(f"qualities must have shape ({n},)")

    xadj, nbrs = sorted_neighbor_lists(mesh, qualities)
    processed = np.zeros(n, dtype=bool)
    ordered = np.zeros(n, dtype=bool)  # the paper's `sorted` array
    vnew = np.empty(n, dtype=np.int64)
    pos = 0

    interior = mesh.interior_vertices()
    seeds = interior[np.argsort(qualities[interior], kind="stable")]

    for i in seeds:
        if processed[i]:
            continue
        if not ordered[i]:
            vnew[pos] = i
            pos += 1
            ordered[i] = True
        processed[i] = True
        # l <- unprocessed neighbors of i, by increasing quality
        row = nbrs[xadj[i] : xadj[i + 1]]
        chain = row[~processed[row]]
        while chain.size:
            fresh = chain[~ordered[chain]]
            k = fresh.size
            if k:
                vnew[pos : pos + k] = fresh
                pos += k
                ordered[fresh] = True
            head = chain[0]
            processed[head] = True
            row = nbrs[xadj[head] : xadj[head + 1]]
            chain = row[~processed[row]]

    if pos < n:
        # Deviation from Theorem 1's setting (see module docstring):
        # append unreachable leftovers by increasing quality.
        rest = np.flatnonzero(~ordered)
        rest = rest[np.argsort(qualities[rest], kind="stable")]
        vnew[pos : pos + rest.size] = rest
        pos += rest.size
        ordered[rest] = True
    assert pos == n, "RDR must order every vertex exactly once"
    return vnew


@register_ordering("oracle")
def first_touch_ordering(
    mesh: TriMesh,
    *,
    seed: int = 0,
    qualities: np.ndarray | None = None,
) -> np.ndarray:
    """First-touch ("oracle") ordering: the alignment upper bound.

    Simulates the quality-greedy smoothing traversal and stores every
    vertex at the position of its *first access* (as a smoothed vertex
    or as a neighbor read). By construction the first smoothing
    iteration then reads memory in a nearly monotone stream, so this
    ordering bounds from above what any a-priori reordering — RDR
    included — can achieve for that traversal. RDR approximates it
    without simulating the smoother (Algorithm 2's walk is the cheap
    surrogate); the gap between ``rdr`` and ``oracle`` measured by the
    ablation benches quantifies the cost of that approximation.
    """
    # Imported here: traversal depends on quality, and the smoothing
    # package imports memsim — a top-level import would be cyclic.
    from ..smoothing.traversal import greedy_traversal

    n = mesh.num_vertices
    if qualities is None:
        qualities = vertex_quality(mesh)
    seq = greedy_traversal(mesh, np.asarray(qualities, dtype=np.float64))
    g = mesh.adjacency
    xadj, adjncy = g.xadj, g.adjncy
    seen = np.zeros(n, dtype=bool)
    order = np.empty(n, dtype=np.int64)
    pos = 0
    for v in seq.tolist():
        if not seen[v]:
            seen[v] = True
            order[pos] = v
            pos += 1
        nbrs = adjncy[xadj[v] : xadj[v + 1]]
        fresh = nbrs[~seen[nbrs]]
        k = fresh.size
        if k:
            order[pos : pos + k] = fresh
            seen[fresh] = True
            pos += k
    if pos < n:
        rest = np.flatnonzero(~seen)
        order[pos : pos + rest.size] = rest
        pos += rest.size
    assert pos == n
    return order


def rdr_chain_heads(
    mesh: TriMesh,
    *,
    qualities: np.ndarray | None = None,
    order_engine: str = "reference",
) -> np.ndarray:
    """The sequence of chain heads (processed vertices) of Algorithm 2.

    This is exactly the vertex sequence a quality-greedy smoothing
    iteration would smooth, which is why the paper prices the reordering
    at "approximately one iteration" (Section 5.4). Exposed separately so
    tests can check that RDR's storage order tracks the traversal and so
    the greedy smoother and RDR stay behaviourally aligned.

    ``order_engine="batched"`` serves the heads from the cached ordering
    plan (identical sequence, amortized cost).
    """
    n = mesh.num_vertices
    if qualities is None:
        qualities = vertex_quality(mesh)
    if order_engine == "batched":
        if n == 0:
            return np.empty(0, dtype=np.int64)
        plan = frontier_plan(mesh.adjacency)
        qplan = _quality_plan(mesh, plan, np.asarray(qualities, dtype=np.float64))
        heads, _ = qplan.rdr_schedule(plan)
        return heads.copy()
    xadj, nbrs = sorted_neighbor_lists(mesh, np.asarray(qualities, dtype=np.float64))
    processed = np.zeros(n, dtype=bool)
    heads: list[int] = []
    interior = mesh.interior_vertices()
    seeds = interior[np.argsort(qualities[interior], kind="stable")]
    for i in seeds:
        if processed[i]:
            continue
        processed[i] = True
        heads.append(int(i))
        row = nbrs[xadj[i] : xadj[i + 1]]
        chain = row[~processed[row]]
        while chain.size:
            head = int(chain[0])
            processed[head] = True
            heads.append(head)
            row = nbrs[xadj[head] : xadj[head + 1]]
            chain = row[~processed[row]]
    return np.asarray(heads, dtype=np.int64)


# ---------------------------------------------------------------------------
# Batched engine: compiled ordering plans + closed-form materialization
# ---------------------------------------------------------------------------
@dataclass
class _RdrQualityPlan:
    """Quality-keyed half of the RDR/oracle ordering plan.

    Holds everything Algorithm 2 derives from ``(graph, qualities)``:
    the quality rank of each vertex, the quality-sorted padded neighbor
    rows (the padded form of :func:`sorted_neighbor_lists`), each
    vertex's rank inside every neighbor's sorted row, and the argsorted
    seed cursor.  The chain schedules (RDR's head sequence and the
    oracle's greedy-traversal sequence) are computed on first use and
    memoized — they are the only sequential part of the algorithm, so a
    warm plan turns an ordering call into a fingerprint check plus a
    handful of array ops.

    One plan is cached per graph (keyed by a SHA-1 of the quality and
    interior-mask bytes); supplying different qualities simply rebuilds
    it.
    """

    digest: bytes
    qrank: np.ndarray        # (n+1,) quality rank; sentinel rank 2n
    sorted_rows: np.ndarray  # (n, dmax) quality-sorted padded rows
    sorted_pos: np.ndarray   # (n, dmax) rank of v in sorted row of its j-th nbr
    seeds: np.ndarray        # interior vertices by increasing quality
    interior: np.ndarray
    _rdr_heads: np.ndarray | None = field(default=None, repr=False)
    _rdr_starts: np.ndarray | None = field(default=None, repr=False)
    _oracle_heads: np.ndarray | None = field(default=None, repr=False)

    def rdr_schedule(self, plan: FrontierPlan) -> tuple[np.ndarray, np.ndarray]:
        """``(heads, chain_starts)`` of Algorithm 2's walk (memoized)."""
        if self._rdr_heads is None:
            proc = bytearray(plan.n + 1)
            proc[plan.n] = 1
            self._rdr_heads, self._rdr_starts = _chain_walk(
                self.sorted_rows, self.seeds, proc
            )
        return self._rdr_heads, self._rdr_starts

    def oracle_schedule(self, plan: FrontierPlan) -> np.ndarray:
        """The greedy-traversal sequence (memoized).

        Identical to ``greedy_traversal(mesh, qualities)``: only
        interior vertices are eligible, so the walk starts with every
        non-interior vertex pre-marked visited; probing the
        quality-sorted row then yields the worst-quality eligible
        unvisited neighbor, exactly the traversal's ``argmin``.
        """
        if self._oracle_heads is None:
            vis0 = np.ones(plan.n + 1, dtype=np.uint8)
            vis0[self.interior] = 0
            self._oracle_heads, _ = _chain_walk(
                self.sorted_rows, self.seeds, bytearray(vis0.tobytes())
            )
        return self._oracle_heads


def _chain_walk(
    sorted_rows: np.ndarray, seeds: np.ndarray, done: bytearray
) -> tuple[np.ndarray, np.ndarray]:
    """The sequential chain walk shared by RDR and the oracle.

    From each seed not yet marked in ``done``, follow the chain to the
    first unmarked entry of each head's quality-sorted row until the
    chain dies; restart at the next seed.  Returns ``(heads,
    chain_starts)`` with ``chain_starts`` indexing the first head of
    each chain.  This is the only O(n)-sequential piece of the batched
    engine; it runs once per plan and its result is memoized.

    The rows are walked through a flat ``array.array`` rather than
    ``tolist()``: a list-of-lists boxes every entry as a Python int
    (~200 MiB at a million vertices), while the flat buffer stays at 4
    bytes per entry and unboxes only the entries the walk touches.
    """
    n, dmax = sorted_rows.shape
    code = "i" if n < 2**31 else "q"
    dtype = np.int32 if code == "i" else np.int64
    rows = array(code)
    rows.frombytes(np.ascontiguousarray(sorted_rows, dtype=dtype).tobytes())
    seq = array(code)
    seq.frombytes(np.ascontiguousarray(seeds, dtype=dtype).tobytes())
    heads = array(code)
    starts = array(code)
    append = heads.append
    for s in seq:
        if done[s]:
            continue
        starts.append(len(heads))
        h = s
        while True:
            done[h] = 1
            append(h)
            base = h * dmax
            for j in range(base, base + dmax):
                w = rows[j]
                if not done[w]:
                    break
            else:
                break
            h = w
    return (
        np.frombuffer(heads, dtype=dtype).astype(np.int64),
        np.frombuffer(starts, dtype=dtype).astype(np.int64),
    )


def _quality_plan(
    mesh: TriMesh, plan: FrontierPlan, qualities: np.ndarray
) -> _RdrQualityPlan:
    """The (cached) quality-keyed plan for ``mesh.adjacency``."""
    graph = mesh.adjacency
    interior = mesh.interior_vertices()
    digest = hashlib.sha1(
        qualities.tobytes() + mesh.interior_mask.tobytes()
    ).digest()
    cached = getattr(graph, "_rdr_quality_plan", None)
    if cached is not None and cached.digest == digest:
        return cached
    n, dmax = plan.n, plan.dmax
    qrank = np.empty(n + 1, dtype=np.int64)
    qrank[np.argsort(qualities, kind="stable")] = np.arange(n, dtype=np.int64)
    qrank[n] = 2 * n  # sentinel sorts after every real vertex
    if dmax:
        # The n-by-dmax temporaries dominate the ordering stage's peak
        # RSS at million-vertex scale; each is freed as soon as the
        # next derivation no longer needs it, and the positional arrays
        # (values < dmax or < n) stay at 32 bits.
        ranks = qrank.take(plan.padded[:n].ravel()).reshape(n, dmax)
        argsorted = np.argsort(ranks, axis=1, kind="stable")
        del ranks
        sorted_rows = np.take_along_axis(plan.padded[:n], argsorted, axis=1)
        # Inverse of the row argsort: position of each adjacency column
        # in the sorted row, pushed through the reverse-edge map so
        # sorted_pos[v, j] = rank of v inside sorted_rows[padded[v, j]].
        inv = np.empty((n, dmax), dtype=np.int32)
        np.put_along_axis(
            inv,
            argsorted,
            np.broadcast_to(np.arange(dmax, dtype=np.int32), (n, dmax)),
            axis=1,
        )
        del argsorted
        flat = inv[plan.rows_r, plan.cols_r]
        del inv
        sorted_pos = np.zeros((n, dmax), dtype=np.int32)
        sorted_pos[plan.rows_r, plan.cols_r] = flat[plan.reverse_index()]
        del flat
    else:
        sorted_rows = np.empty((n, 0), dtype=np.int64)
        sorted_pos = np.empty((n, 0), dtype=np.int64)
    qplan = _RdrQualityPlan(
        digest=digest,
        qrank=qrank,
        sorted_rows=sorted_rows,
        sorted_pos=sorted_pos,
        seeds=interior[np.argsort(qualities[interior], kind="stable")],
        interior=interior,
    )
    object.__setattr__(graph, "_rdr_quality_plan", qplan)
    return qplan


def _materialize(
    plan: FrontierPlan,
    heads: np.ndarray,
    rank_in_head_row: np.ndarray,
    leftover_key: np.ndarray,
) -> np.ndarray:
    """Closed-form permutation from a chain schedule.

    Vertex ``w`` is appended by the earliest-processed head ``u`` among
    its neighbors with ``position(u) < position(w's own head slot)``;
    its rank within that append step is ``rank_in_head_row[w, j]``
    (``u = padded[w, j]``).  Heads with no earlier appending neighbor
    are the chain seeds — they self-append at their own step with rank
    0 (chain successors are always appended by their predecessor
    first).  Vertices never reached get ``leftover_key`` ranks past
    every chain step.  Head positions are unique, so the fused
    ``step * (dmax + 2) + rank`` key is tie-free and one stable argsort
    reproduces Algorithm 2's append order exactly.
    """
    n, dmax = plan.n, plan.dmax
    nonhead = n + 2
    ht = np.full(n + 1, nonhead, dtype=np.int64)
    ht[heads] = np.arange(heads.size, dtype=np.int64)
    step = np.empty(n, dtype=np.int64)
    rank = np.empty(n, dtype=np.int64)
    if dmax:
        nbr_ht = ht.take(plan.padded[:n].ravel()).reshape(n, dmax)
        earlier = nbr_ht < ht[:n, None]
        big = (n + 3) * dmax
        best = np.where(
            earlier, nbr_ht * dmax + rank_in_head_row, big
        ).min(axis=1)
        step[:] = best // dmax
        rank[:] = best - step * dmax + 1  # append ranks start after self
        covered = best < big
    else:
        covered = np.zeros(n, dtype=bool)
    own = ht[:n]
    self_appended = ~covered & (own < nonhead)
    step[self_appended] = own[self_appended]
    rank[self_appended] = 0
    leftover = ~covered & ~self_appended
    step[leftover] = (n + 4) + leftover_key[leftover]
    rank[leftover] = 0
    return np.argsort(step * (dmax + 2) + rank, kind="stable")


def _observe_chains(starts: np.ndarray, total: int) -> None:
    if obs.is_enabled() and total:
        bounds = np.append(starts, total)
        obs.observe("ordering.chain_length", np.diff(bounds))


@register_batched_ordering("rdr")
def batched_rdr_ordering(
    mesh: TriMesh,
    *,
    seed: int = 0,
    qualities: np.ndarray | None = None,
) -> np.ndarray:
    """Plan-compiled Algorithm 2; identical to :func:`rdr_ordering`."""
    n = mesh.num_vertices
    if n == 0:
        return np.empty(0, dtype=np.int64)
    if qualities is None:
        qualities = vertex_quality(mesh)
    qualities = np.asarray(qualities, dtype=np.float64)
    if qualities.shape != (n,):
        raise ValueError(f"qualities must have shape ({n},)")
    plan = frontier_plan(mesh.adjacency)
    qplan = _quality_plan(mesh, plan, qualities)
    heads, starts = qplan.rdr_schedule(plan)
    _observe_chains(starts, heads.size)
    return _materialize(plan, heads, qplan.sorted_pos, qplan.qrank[:n])


@register_batched_ordering("oracle")
def batched_first_touch_ordering(
    mesh: TriMesh,
    *,
    seed: int = 0,
    qualities: np.ndarray | None = None,
) -> np.ndarray:
    """Plan-compiled first-touch; identical to
    :func:`first_touch_ordering`.

    The reference appends each traversal vertex's unseen neighbors in
    adjacency order and leftovers in index order, so the materialization
    ranks by position in the *unsorted* row
    (:meth:`FrontierPlan.reverse_cols`) and uses a constant leftover
    key (the stable argsort then keeps index order).
    """
    n = mesh.num_vertices
    if n == 0:
        return np.empty(0, dtype=np.int64)
    if qualities is None:
        qualities = vertex_quality(mesh)
    qualities = np.asarray(qualities, dtype=np.float64)
    plan = frontier_plan(mesh.adjacency)
    qplan = _quality_plan(mesh, plan, qualities)
    heads = qplan.oracle_schedule(plan)
    return _materialize(
        plan, heads, plan.reverse_cols(), np.zeros(n, dtype=np.int64)
    )
