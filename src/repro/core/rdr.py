"""RDR — the paper's Reuse-Distance-Reducing ordering (Algorithm 2).

The ordering mimics the quality-greedy traversal of the Laplacian
smoother so that *storage order matches access order*:

1. take the worst-quality interior vertex not yet processed,
2. append its not-yet-ordered neighbors, sorted by increasing quality,
3. continue the chain at its worst-quality unprocessed neighbor,
4. when the chain dies out, return to step 1.

Theorem 1 of the paper proves every vertex is ordered exactly once; the
implementation asserts this invariant. One documented deviation: on
meshes where some vertex is unreachable through the interior-seeded
chains (possible only for pathological or disconnected inputs, which
Theorem 1's setting excludes), remaining vertices are appended in
increasing-quality order instead of being dropped.

The chain walk is also exposed as :func:`rdr_chain_heads` for tests and
for the reordering-cost accounting of Section 5.4 (the walk does the
same work as one smoothing iteration, which is the paper's cost
estimate for the pre-computation).
"""

from __future__ import annotations

import numpy as np

from ..mesh import TriMesh
from ..ordering.base import register_ordering
from ..quality import vertex_quality

__all__ = [
    "rdr_ordering",
    "sorted_neighbor_lists",
    "rdr_chain_heads",
    "first_touch_ordering",
]


def sorted_neighbor_lists(
    mesh: TriMesh, qualities: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """CSR adjacency with each row re-sorted by increasing quality.

    Returns ``(xadj, adjncy_by_quality)``. Ties break on vertex index
    (stable sort), making the ordering deterministic.
    """
    g = mesh.adjacency
    rows = np.repeat(
        np.arange(mesh.num_vertices, dtype=np.int64), g.degrees()
    )
    perm = np.lexsort((g.adjncy, qualities[g.adjncy], rows))
    return g.xadj, g.adjncy[perm]


@register_ordering("rdr")
def rdr_ordering(
    mesh: TriMesh,
    *,
    seed: int = 0,
    qualities: np.ndarray | None = None,
) -> np.ndarray:
    """Algorithm 2 of the paper. Returns ``order`` with ``order[new] = old``."""
    n = mesh.num_vertices
    if qualities is None:
        qualities = vertex_quality(mesh)
    qualities = np.asarray(qualities, dtype=np.float64)
    if qualities.shape != (n,):
        raise ValueError(f"qualities must have shape ({n},)")

    xadj, nbrs = sorted_neighbor_lists(mesh, qualities)
    processed = np.zeros(n, dtype=bool)
    ordered = np.zeros(n, dtype=bool)  # the paper's `sorted` array
    vnew = np.empty(n, dtype=np.int64)
    pos = 0

    interior = mesh.interior_vertices()
    seeds = interior[np.argsort(qualities[interior], kind="stable")]

    for i in seeds:
        if processed[i]:
            continue
        if not ordered[i]:
            vnew[pos] = i
            pos += 1
            ordered[i] = True
        processed[i] = True
        # l <- unprocessed neighbors of i, by increasing quality
        row = nbrs[xadj[i] : xadj[i + 1]]
        chain = row[~processed[row]]
        while chain.size:
            fresh = chain[~ordered[chain]]
            k = fresh.size
            if k:
                vnew[pos : pos + k] = fresh
                pos += k
                ordered[fresh] = True
            head = chain[0]
            processed[head] = True
            row = nbrs[xadj[head] : xadj[head + 1]]
            chain = row[~processed[row]]

    if pos < n:
        # Deviation from Theorem 1's setting (see module docstring):
        # append unreachable leftovers by increasing quality.
        rest = np.flatnonzero(~ordered)
        rest = rest[np.argsort(qualities[rest], kind="stable")]
        vnew[pos : pos + rest.size] = rest
        pos += rest.size
        ordered[rest] = True
    assert pos == n, "RDR must order every vertex exactly once"
    return vnew


@register_ordering("oracle")
def first_touch_ordering(
    mesh: TriMesh,
    *,
    seed: int = 0,
    qualities: np.ndarray | None = None,
) -> np.ndarray:
    """First-touch ("oracle") ordering: the alignment upper bound.

    Simulates the quality-greedy smoothing traversal and stores every
    vertex at the position of its *first access* (as a smoothed vertex
    or as a neighbor read). By construction the first smoothing
    iteration then reads memory in a nearly monotone stream, so this
    ordering bounds from above what any a-priori reordering — RDR
    included — can achieve for that traversal. RDR approximates it
    without simulating the smoother (Algorithm 2's walk is the cheap
    surrogate); the gap between ``rdr`` and ``oracle`` measured by the
    ablation benches quantifies the cost of that approximation.
    """
    # Imported here: traversal depends on quality, and the smoothing
    # package imports memsim — a top-level import would be cyclic.
    from ..smoothing.traversal import greedy_traversal

    n = mesh.num_vertices
    if qualities is None:
        qualities = vertex_quality(mesh)
    seq = greedy_traversal(mesh, np.asarray(qualities, dtype=np.float64))
    g = mesh.adjacency
    xadj, adjncy = g.xadj, g.adjncy
    seen = np.zeros(n, dtype=bool)
    order = np.empty(n, dtype=np.int64)
    pos = 0
    for v in seq.tolist():
        if not seen[v]:
            seen[v] = True
            order[pos] = v
            pos += 1
        nbrs = adjncy[xadj[v] : xadj[v + 1]]
        fresh = nbrs[~seen[nbrs]]
        k = fresh.size
        if k:
            order[pos : pos + k] = fresh
            seen[fresh] = True
            pos += k
    if pos < n:
        rest = np.flatnonzero(~seen)
        order[pos : pos + rest.size] = rest
        pos += rest.size
    assert pos == n
    return order


def rdr_chain_heads(
    mesh: TriMesh,
    *,
    qualities: np.ndarray | None = None,
) -> np.ndarray:
    """The sequence of chain heads (processed vertices) of Algorithm 2.

    This is exactly the vertex sequence a quality-greedy smoothing
    iteration would smooth, which is why the paper prices the reordering
    at "approximately one iteration" (Section 5.4). Exposed separately so
    tests can check that RDR's storage order tracks the traversal and so
    the greedy smoother and RDR stay behaviourally aligned.
    """
    n = mesh.num_vertices
    if qualities is None:
        qualities = vertex_quality(mesh)
    xadj, nbrs = sorted_neighbor_lists(mesh, np.asarray(qualities, dtype=np.float64))
    processed = np.zeros(n, dtype=bool)
    heads: list[int] = []
    interior = mesh.interior_vertices()
    seeds = interior[np.argsort(qualities[interior], kind="stable")]
    for i in seeds:
        if processed[i]:
            continue
        processed[i] = True
        heads.append(int(i))
        row = nbrs[xadj[i] : xadj[i + 1]]
        chain = row[~processed[row]]
        while chain.size:
            head = int(chain[0])
            processed[head] = True
            heads.append(head)
            row = nbrs[xadj[head] : xadj[head + 1]]
            chain = row[~processed[row]]
    return np.asarray(heads, dtype=np.int64)
