"""End-to-end pipelines: order -> smooth -> trace -> simulate -> report.

These helpers wire the substrates together the way every experiment
does, so benchmarks and examples stay declarative:

* :func:`run_ordering` — permute a mesh under a named ordering, smooth
  it with trace recording, translate the trace to cache lines, simulate
  the hierarchy, and evaluate the Equation-(2) time model.
* :func:`compare_orderings` — the above for several orderings of the
  same mesh (sharing the base smoothing work where possible).
* :func:`run_parallel_ordering` — the multicore version over a static
  partition (Figures 10-13).

Per-vertex quality is geometric, so the quality of a vertex does not
change under a permutation — the pipelines compute qualities once on the
base mesh and carry ``qualities[order]`` to the permuted mesh.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from pathlib import Path

from .. import obs
from ..config import (
    DEFAULT_RUN_CONFIG,
    RunConfig,
    UnknownNameError,
    engine_axes,
    resolve_config,
)
from ..mesh import TriMesh
from ..memsim import (
    COLD,
    DEFAULT_FUSED_WINDOW_EVENTS,
    AccessTrace,
    ChunkedTrace,
    FusedAnalysis,
    FusedSink,
    HierarchyStats,
    LineSink,
    MachineSpec,
    MemoryLayout,
    MulticoreResult,
    ReuseProfile,
    SpillSink,
    calibrated_machine,
    modeled_time,
    profile_from_distances,
    replay_chunked_trace,
    reuse_distances,
    simulate_multicore,
    simulate_trace,
)
from ..memsim.timing import CostBreakdown
from ..ordering import apply_ordering
from ..parallel import parallel_traces
from ..quality import DEFAULT_RANK_PASSES, patch_quality, vertex_quality
from ..smoothing import LaplacianSmoother, SmoothingResult
from ..smoothing.trace import append_smooth_accesses_batch, traversal_events

__all__ = [
    "DEFAULT_CACHE_SCALE",
    "OrderedRun",
    "ParallelRun",
    "compare_orderings",
    "default_machine_for",
    "run_ordering",
    "run_parallel_ordering",
    "run_summary",
]

#: Retained for API compatibility with scale-based experiments that run
#: at a fixed fraction of the paper's mesh sizes on the unscaled
#: Westmere-EX description; the pipelines default to the
#: footprint-calibrated machine instead (see
#: :func:`repro.memsim.calibrated_machine`).
DEFAULT_CACHE_SCALE = 0.01


def default_machine_for(mesh: TriMesh, *, profile: str = "serial") -> MachineSpec:
    """Footprint-calibrated Westmere-shaped machine for a mesh."""
    layout = MemoryLayout.for_mesh(mesh)
    return calibrated_machine(layout.total_bytes, profile=profile)


@dataclass
class OrderedRun:
    """Everything measured about one (mesh, ordering) execution.

    Under ``trace_mode="materialize"`` the full trace and line stream
    are retained (:attr:`trace`, :attr:`lines`, :attr:`distances`).
    Under ``fused``/``spill`` the monolithic trace never existed —
    :attr:`fused` carries the streaming analysis instead (reuse profiles
    keep working through :meth:`reuse_profile`), :attr:`trace_dir`
    points at the spilled chunked trace when one was written, and the
    raw-array accessors raise ``RuntimeError`` with a pointer at the
    materialized mode.
    """

    mesh_name: str
    ordering: str
    order: np.ndarray
    mesh: TriMesh
    smoothing: SmoothingResult
    machine: MachineSpec
    layout: MemoryLayout
    lines: np.ndarray
    cache: HierarchyStats
    cost: CostBreakdown
    config: RunConfig = DEFAULT_RUN_CONFIG
    fused: FusedAnalysis | None = field(default=None, repr=False)
    trace_dir: Path | None = None
    _distances: np.ndarray | None = field(default=None, repr=False)

    @property
    def trace_mode(self) -> str:
        return self.config.trace_mode

    @property
    def trace(self) -> AccessTrace:
        if self.smoothing.trace is None:
            raise RuntimeError(
                f"no materialized trace under trace_mode="
                f"{self.config.trace_mode!r}; rerun with "
                "trace_mode='materialize' (or open trace_dir for spill)"
            )
        return self.smoothing.trace

    @property
    def modeled_seconds(self) -> float:
        return self.cost.seconds(self.machine)

    @property
    def distances(self) -> np.ndarray:
        """Reuse distances of the whole trace (computed lazily, cached)."""
        if self._distances is None:
            if self.fused is not None:
                raise RuntimeError(
                    "per-event reuse distances are not retained in "
                    f"trace_mode={self.config.trace_mode!r}; use "
                    "reuse_profile() or rerun with "
                    "trace_mode='materialize'"
                )
            self._distances = reuse_distances(self.lines)
        return self._distances

    def reuse_profile(self, *, iteration: int | None = 0) -> ReuseProfile:
        """Reuse-distance summary, by default of the first iteration
        (the population the paper's Table 2 reports)."""
        if self.fused is not None:
            return self.fused.reuse_profile(iteration=iteration)
        if iteration is None:
            return profile_from_distances(self.distances)
        trace = self.trace.iteration(iteration)
        lines = self.layout.lines(trace)
        return profile_from_distances(reuse_distances(lines))


def _prepare(
    mesh: TriMesh,
    ordering: str,
    qualities: np.ndarray | None,
    seed: int,
    rank_passes: int = DEFAULT_RANK_PASSES,
    precomputed_order: np.ndarray | None = None,
    order_engine: str = "reference",
    backend: str = "numpy",
) -> tuple[TriMesh, np.ndarray, np.ndarray]:
    """Rank-smooth the quality signal and permute the mesh under it.

    The same patch-widened signal drives the ordering here and the
    greedy traversal inside the smoother, keeping the two aligned (the
    alignment is what RDR exploits).

    ``precomputed_order`` skips the (potentially expensive) ordering
    computation and permutes by the given order instead — the hook
    :mod:`repro.lab` uses to reuse cached permutations across jobs.  The
    caller is responsible for the order matching what the named
    ordering would have produced under the same quality signal.
    """
    if qualities is None:
        qualities = vertex_quality(mesh)
    rank_q = patch_quality(mesh, passes=rank_passes, base=qualities)
    if precomputed_order is not None:
        order = np.asarray(precomputed_order, dtype=np.int64)
        permuted = mesh.permute(order)
    else:
        permuted, order = apply_ordering(
            mesh, ordering, seed=seed, qualities=rank_q,
            order_engine=order_engine, backend=backend,
        )
    return permuted, order, rank_q[order]


def run_ordering(
    mesh: TriMesh,
    ordering: str,
    *,
    config: RunConfig | None = None,
    machine: MachineSpec | str | None = None,
    traversal: str = "greedy",
    max_iterations: int = 50,
    fixed_iterations: int | None = None,
    qualities: np.ndarray | None = None,
    seed: int | None = None,
    rank_passes_override: int | None = None,
    smoother_kwargs: dict | None = None,
    precomputed_order: np.ndarray | None = None,
    engine: str | None = None,
    sim_engine: str | None = None,
    order_engine: str | None = None,
    summary_only: bool = False,
    trace_dir: str | Path | None = None,
) -> OrderedRun:
    """Order, smooth (with tracing), simulate, and price one execution.

    ``config`` selects the smoothing engine, the cache simulator, the
    ordering engine, the ordering seed, the default-machine calibration
    profile and the observability flags in one
    :class:`repro.config.RunConfig`; the bare
    ``engine=``/``sim_engine=``/``order_engine=``/``seed=`` keywords are
    deprecated shims for the same fields.
    ``fixed_iterations`` overrides convergence (useful when comparing
    orderings at identical work, mirroring the paper's note that
    orderings did not change the iteration count).
    ``rank_passes_override`` changes the patch-widening of the ranking
    signal for both the ordering and the traversal (default:
    :data:`repro.quality.DEFAULT_RANK_PASSES`).
    ``precomputed_order`` bypasses the ordering computation (see
    :func:`_prepare`) so cached permutations can be replayed.

    ``config.trace_mode`` selects where the smoother's event stream
    goes: ``materialize`` (default) keeps the full in-memory trace,
    ``fused`` streams bounded windows straight into the streaming
    simulators with the production of window N+1 overlapping the
    simulation of window N (bit-identical counts and profiles, peak
    buffering audited at two windows), and ``spill`` streams the trace
    to the chunked on-disk format under ``trace_dir`` before a windowed
    replay. ``summary_only=True`` declares that the caller only needs
    the summary statistics (cache counts and modeled time), which
    upgrades ``materialize`` to ``fused`` automatically — the returned
    run's ``config`` records the mode actually used — and skips the
    reuse-distance analyses entirely (they cost an order of magnitude
    more than the cache simulation; ``reuse_profile`` on such a run
    raises with the rerun options).

    When tracing is active (``config.obs.enabled`` or an ambient
    :func:`repro.obs.capture`), the run emits a span tree —
    ``pipeline.run_ordering`` over ``pipeline.reorder`` /
    ``pipeline.smooth`` / ``pipeline.layout`` / ``pipeline.simulate`` —
    and a live ``memsim.reuse_distance`` histogram whose computation is
    cached on the returned run (:attr:`OrderedRun.distances`).
    """
    config = resolve_config(
        config, engine=engine, sim_engine=sim_engine,
        order_engine=order_engine, seed=seed,
    )
    if summary_only and config.trace_mode == "materialize":
        # Caller only wants summary stats: pick the fused path (and
        # record it, so run provenance reflects the mode actually used).
        config = config.replace(trace_mode="fused")
    mode = config.trace_mode
    if mode not in engine_axes()["trace_mode"]:
        raise UnknownNameError(
            "trace mode", mode, engine_axes()["trace_mode"]
        )
    if mode == "spill" and trace_dir is None:
        raise ValueError("trace_mode='spill' requires trace_dir=")
    if machine is None:
        machine = default_machine_for(
            mesh, profile=config.machine_profile or "serial"
        )
    elif not isinstance(machine, MachineSpec):
        from ..memsim.machine import resolve_machine

        machine = resolve_machine(
            machine, footprint_bytes=MemoryLayout.for_mesh(mesh).total_bytes
        )
    rank_passes = (
        DEFAULT_RANK_PASSES if rank_passes_override is None else rank_passes_override
    )
    with obs.activated(config.obs), obs.span(
        "pipeline.run_ordering",
        mesh=mesh.name,
        ordering=ordering,
        engine=config.engine,
        sim_engine=config.sim_engine,
        order_engine=config.order_engine,
        backend=config.backend,
    ):
        with obs.span(
            "pipeline.reorder",
            ordering=ordering,
            order_engine=config.order_engine,
        ) as sp:
            permuted, order, _ = _prepare(
                mesh, ordering, qualities, config.seed, rank_passes,
                precomputed_order, config.order_engine, config.backend,
            )
            sp.add_event(permuted.num_vertices)
        if summary_only:
            # One-shot summary runs drop the warm ordering-plan caches
            # pinned on the source graph: several hundred MiB of
            # n-by-dmax arrays at million-vertex scale that would
            # otherwise stay resident through smoothing + simulation.
            from ..ordering.batched import release_plan_caches

            release_plan_caches(mesh.adjacency)

        kwargs = dict(smoother_kwargs or {})
        kwargs.setdefault("traversal", traversal)
        kwargs.setdefault("max_iterations", max_iterations)
        kwargs.setdefault("rank_passes", rank_passes)
        smoother_engine = kwargs.pop("engine", config.engine)
        if fixed_iterations is not None:
            kwargs["max_iterations"] = fixed_iterations
            kwargs["tol"] = -np.inf  # never converge early
        layout = MemoryLayout.for_mesh(permuted, line_size=machine.line_size)
        window_events = (
            config.stream_window_events or DEFAULT_FUSED_WINDOW_EVENTS
        )
        sink = None
        analysis: FusedAnalysis | None = None
        if mode == "fused":
            # The bucketed series needs the total event count up front;
            # it is only predictable when the iteration count is pinned
            # and culling cannot shrink the traversal. summary_only
            # callers get cache counts + modeled cost alone: the reuse
            # analyses cost ~10x the cache simulation, and the
            # materialized path only computes them lazily on demand.
            total_events = None
            if (
                not summary_only
                and fixed_iterations is not None
                and not kwargs.get("culling")
            ):
                g = permuted.adjacency
                total_events = fixed_iterations * traversal_events(
                    g.xadj, permuted.interior_vertices()
                )
            analysis = FusedAnalysis(
                layout,
                machine,
                sim_engine=config.sim_engine,
                total_events=total_events,
                reuse=not summary_only,
                per_iteration_profiles=not summary_only,
            )
            sink = FusedSink(analysis, window_events=window_events)
        elif mode == "spill":
            sink = SpillSink(trace_dir, window_events=window_events)
        smoother = LaplacianSmoother(
            record_trace=mode == "materialize",
            trace_sink=sink,
            config=config.replace(engine=smoother_engine),
            **kwargs,
        )
        with obs.span("pipeline.smooth", trace_mode=mode) as sp:
            result = smoother.smooth(permuted)
            if mode == "fused":
                analysis = sink.close()
                sp.set(
                    windows=sink.windows_emitted,
                    peak_buffered_events=sink.peak_buffered_events,
                    overlap_s=round(sink.overlap_s, 6),
                )

        distances = None
        spill_path: Path | None = None
        if mode == "materialize":
            assert result.trace is not None
            with obs.span("pipeline.layout") as sp:
                lines = layout.lines(result.trace)
                sp.add_event(int(lines.size))
            with obs.span("pipeline.simulate"):
                cache = simulate_trace(lines, machine, config=config)
                if obs.is_enabled():
                    # The live reuse-distance histogram doubles as the
                    # OrderedRun.distances cache, so tracing pays for
                    # itself.
                    distances = reuse_distances(lines)
                    obs.observe(
                        "memsim.reuse_distance", distances[distances >= 0]
                    )
                    obs.add(
                        "memsim.reuse.cold",
                        int(np.count_nonzero(distances == COLD)),
                    )
        else:
            if mode == "spill":
                spill_path = sink.close()
                chunked = ChunkedTrace.open(spill_path)
                analysis = FusedAnalysis(
                    layout,
                    machine,
                    sim_engine=config.sim_engine,
                    total_events=None if summary_only else chunked.total_events,
                    reuse=not summary_only,
                    per_iteration_profiles=not summary_only,
                )
                with obs.span("pipeline.simulate", trace_mode=mode):
                    replay_chunked_trace(analysis, chunked)
            lines = np.empty(0, dtype=np.int64)
            cache = analysis.stats
        cost = modeled_time(cache, machine)
    return OrderedRun(
        mesh_name=mesh.name,
        ordering=ordering,
        order=order,
        mesh=permuted,
        smoothing=result,
        machine=machine,
        layout=layout,
        lines=lines,
        cache=cache,
        cost=cost,
        config=config,
        fused=analysis,
        trace_dir=spill_path,
        _distances=distances,
    )


def compare_orderings(
    mesh: TriMesh,
    orderings: list[str],
    *,
    config: RunConfig | None = None,
    machine: MachineSpec | None = None,
    **kwargs,
) -> dict[str, OrderedRun]:
    """Run several orderings of one mesh under identical settings.

    Engine/seed selection rides in ``config``; the deprecated
    ``engine=``/``sim_engine=``/``order_engine=``/``seed=`` keywords are
    resolved here (not in :func:`run_ordering`) so the warning points at
    the caller.
    """
    config = resolve_config(
        config,
        engine=kwargs.pop("engine", None),
        sim_engine=kwargs.pop("sim_engine", None),
        order_engine=kwargs.pop("order_engine", None),
        seed=kwargs.pop("seed", None),
    )
    qualities = kwargs.pop("qualities", None)
    if qualities is None:
        qualities = vertex_quality(mesh)
    return {
        name: run_ordering(
            mesh,
            name,
            config=config,
            machine=machine,
            qualities=qualities,
            **kwargs,
        )
        for name in orderings
    }


def run_summary(run: OrderedRun) -> dict:
    """Flatten an :class:`OrderedRun` into a JSON-serialisable row.

    This is the canonical result shape :mod:`repro.lab` persists per job
    and exports — deliberately aligned with the ``bench_results/*.json``
    row vocabulary (``L1_miss_%``, ``modeled_ms``, quality fields).
    """
    st = run.cache
    sm = run.smoothing
    return {
        "mesh": run.mesh_name,
        "num_vertices": run.mesh.num_vertices,
        "num_triangles": run.mesh.num_triangles,
        "iterations": sm.iterations,
        "converged": bool(sm.converged),
        "initial_quality": float(sm.initial_quality),
        "final_quality": float(sm.final_quality),
        "L1_miss_%": 100.0 * st.l1.miss_rate,
        "L2_miss_%": 100.0 * st.l2.miss_rate,
        "L3_miss_%": 100.0 * st.l3.miss_rate,
        "L1_misses": int(st.l1.misses),
        "L2_misses": int(st.l2.misses),
        "L3_misses": int(st.l3.misses),
        "memory_accesses": int(st.memory_accesses),
        "modeled_ms": run.modeled_seconds * 1e3,
        # Full engine provenance: one column per engine_axes() axis
        # (engine, sim_engine, mem_engine, order_engine, backend, ...).
        **{axis: getattr(run.config, axis) for axis in engine_axes()},
        "seed": run.config.seed,
        "machine": run.machine.name,
        "machine_profile": run.config.machine_profile,
    }


@dataclass
class ParallelRun:
    """Multicore simulation of one (mesh, ordering, p) configuration."""

    mesh_name: str
    ordering: str
    num_cores: int
    result: MulticoreResult
    iterations: int
    config: RunConfig = DEFAULT_RUN_CONFIG
    num_vertices: int = 0

    @property
    def modeled_seconds(self) -> float:
        return self.result.modeled_seconds

    def summary(self) -> dict:
        """Flatten into a JSON-serialisable row (the parallel analogue
        of :func:`run_summary`), including full engine provenance."""
        counts = self.result.access_counts()
        return {
            "mesh": self.mesh_name,
            "num_vertices": self.num_vertices,
            "ordering": self.ordering,
            "num_cores": self.num_cores,
            "iterations": self.iterations,
            "affinity": self.result.affinity,
            "L2_accesses": int(counts["L2"]),
            "L3_accesses": int(counts["L3"]),
            "memory_accesses": int(counts["memory"]),
            "modeled_ms": self.modeled_seconds * 1e3,
            **{axis: getattr(self.config, axis) for axis in engine_axes()},
            "seed": self.config.seed,
            "machine": self.result.machine.name,
            "machine_profile": self.config.machine_profile,
        }


def run_parallel_ordering(
    mesh: TriMesh,
    ordering: str,
    num_cores: int,
    *,
    config: RunConfig | None = None,
    machine: MachineSpec | str | None = None,
    iterations: int = 8,
    traversal: str = "greedy",
    affinity: str = "scatter",
    qualities: np.ndarray | None = None,
    seed: int | None = None,
    mem_engine: str | None = None,
    sim_engine: str | None = None,
    order_engine: str | None = None,
) -> ParallelRun:
    """Simulate a ``num_cores``-thread smoothing run under an ordering.

    Default affinity is ``scatter`` — the distribution the paper
    hypothesises its machine used for few-thread runs (the source of the
    super-linear speedups); the ablation bench flips it to ``compact``.
    ``config.mem_engine`` selects the replay engine (``"sequential"`` or
    ``"sharded"``; see :func:`repro.memsim.simulate_multicore`) and
    ``config.sim_engine`` the per-socket simulator (``"reference"`` or
    ``"batched"``; single-core sockets vectorize exactly), while
    ``config.order_engine`` picks the vertex-ordering implementation; the
    bare ``mem_engine=``/``sim_engine=``/``order_engine=``/``seed=``
    keywords are deprecated shims for the same fields.
    """
    config = resolve_config(
        config, mem_engine=mem_engine, sim_engine=sim_engine,
        order_engine=order_engine, seed=seed,
    )
    if config.trace_mode == "spill":
        # The multicore replay needs every core's line stream at once,
        # so only full materialization or the partially-fused line
        # translation make sense here.
        raise UnknownNameError(
            "parallel trace mode", "spill", ("materialize", "fused")
        )
    if machine is None:
        machine = default_machine_for(
            mesh, profile=config.machine_profile or "scaling"
        )
    elif not isinstance(machine, MachineSpec):
        from ..memsim.machine import resolve_machine

        machine = resolve_machine(
            machine, footprint_bytes=MemoryLayout.for_mesh(mesh).total_bytes
        )
    with obs.activated(config.obs), obs.span(
        "pipeline.run_parallel_ordering",
        mesh=mesh.name,
        ordering=ordering,
        cores=num_cores,
        mem_engine=config.mem_engine,
        sim_engine=config.sim_engine,
        order_engine=config.order_engine,
        backend=config.backend,
    ):
        if qualities is None:
            qualities = vertex_quality(mesh)
        with obs.span(
            "pipeline.reorder",
            ordering=ordering,
            order_engine=config.order_engine,
        ) as sp:
            permuted, order, perm_q = _prepare(
                mesh, ordering, qualities, config.seed,
                order_engine=config.order_engine, backend=config.backend,
            )
            sp.add_event(permuted.num_vertices)
        layout = MemoryLayout.for_mesh(permuted, line_size=machine.line_size)
        if config.trace_mode == "fused":
            # Partial fusion: the interleaved multicore replay needs all
            # per-core line streams up front, but the 17-bytes-per-event
            # trace columns never do — translate each burst to 8-byte
            # line ids on arrival and drop it.
            from ..parallel.scheduler import partitioned_traversals

            with obs.span(
                "pipeline.partition", cores=num_cores, trace_mode="fused"
            ):
                sequences = partitioned_traversals(
                    permuted, num_cores,
                    traversal=traversal, qualities=perm_q,
                )
            with obs.span("pipeline.layout", trace_mode="fused") as sp:
                g = permuted.adjacency
                lines_per_core = []
                for seq in sequences:
                    sink = LineSink(layout)
                    for _ in range(iterations):
                        append_smooth_accesses_batch(
                            sink, g.xadj, g.adjncy, seq
                        )
                    lines_per_core.append(sink.close())
                sp.add_event(int(sum(l.size for l in lines_per_core)))
        else:
            with obs.span("pipeline.partition", cores=num_cores):
                traces = parallel_traces(
                    permuted,
                    num_cores,
                    iterations=iterations,
                    traversal=traversal,
                    qualities=perm_q,
                    ordering=ordering,
                )
            with obs.span("pipeline.layout") as sp:
                lines_per_core = [layout.lines(t) for t in traces]
                sp.add_event(int(sum(l.size for l in lines_per_core)))
        result = simulate_multicore(
            lines_per_core,
            machine,
            config=config,
            affinity=affinity,
        )
    return ParallelRun(
        mesh_name=mesh.name,
        ordering=ordering,
        num_cores=num_cores,
        result=result,
        iterations=iterations,
        config=config,
        num_vertices=permuted.num_vertices,
    )
