"""The paper's contribution: RDR ordering + end-to-end pipelines."""

from .cost import ReorderingCost, break_even_iterations, measure_reordering_cost
from .dynamic import DynamicRun, run_dynamic_reordering
from .pipeline import (
    DEFAULT_CACHE_SCALE,
    default_machine_for,
    OrderedRun,
    ParallelRun,
    compare_orderings,
    run_ordering,
    run_parallel_ordering,
    run_summary,
)
from .rdr import (
    first_touch_ordering,
    rdr_chain_heads,
    rdr_ordering,
    sorted_neighbor_lists,
)

__all__ = [
    "DEFAULT_CACHE_SCALE",
    "DynamicRun",
    "OrderedRun",
    "ParallelRun",
    "ReorderingCost",
    "break_even_iterations",
    "compare_orderings",
    "default_machine_for",
    "first_touch_ordering",
    "measure_reordering_cost",
    "rdr_chain_heads",
    "rdr_ordering",
    "run_dynamic_reordering",
    "run_ordering",
    "run_parallel_ordering",
    "run_summary",
    "sorted_neighbor_lists",
]
