"""Static vs. dynamic reordering (the Shontz-Knupp question).

Shontz & Knupp (IMR 2008) compared reordering once before smoothing
("static") against re-reordering every iteration ("dynamic") and found
static superior because of the re-reordering overhead; the paper builds
on that finding ("this work focuses on an a priori ordering",
Section 2). This module makes the comparison runnable on our substrate:

* the mesh is (re-)permuted with the chosen ordering every ``every``
  iterations (``every=0`` -> static: once, up front);
* each segment between reorders is traced and simulated on a *fresh*
  hierarchy — physically faithful, since a reorder relocates every byte
  and cold-restarts the caches;
* every reorder is charged the Section-5.4 price: the modeled cost of
  one smoothing iteration under the native ordering.

``benchmarks/test_ext_dynamic_reordering.py`` reproduces the
static-beats-dynamic conclusion.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..mesh import TriMesh
from ..memsim import MachineSpec, MemoryLayout, modeled_time, simulate_trace
from ..ordering import apply_ordering
from ..quality import DEFAULT_RANK_PASSES, patch_quality, vertex_quality
from ..smoothing import LaplacianSmoother
from .pipeline import default_machine_for

__all__ = ["DynamicRun", "run_dynamic_reordering"]


@dataclass
class DynamicRun:
    """Outcome of a (possibly re-)reordered smoothing run."""

    ordering: str
    every: int
    iterations: int
    num_reorders: int
    smoothing_seconds: float
    reorder_seconds: float
    final_quality: float
    segment_seconds: list[float] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        return self.smoothing_seconds + self.reorder_seconds


def _segment_cost(
    mesh: TriMesh,
    iterations: int,
    machine: MachineSpec,
    rank_passes: int,
    traversal: str,
) -> tuple[TriMesh, float, float]:
    """Smooth ``iterations`` iterations, returning (mesh', cost_s, quality)."""
    smoother = LaplacianSmoother(
        traversal=traversal,
        max_iterations=iterations,
        tol=-np.inf,
        rank_passes=rank_passes,
        record_trace=True,
    )
    result = smoother.smooth(mesh)
    layout = MemoryLayout.for_mesh(mesh, line_size=machine.line_size)
    stats = simulate_trace(layout.lines(result.trace), machine)
    cost = modeled_time(stats, machine).seconds(machine)
    return result.mesh, cost, result.final_quality


def run_dynamic_reordering(
    mesh: TriMesh,
    ordering: str = "rdr",
    *,
    every: int = 0,
    iterations: int = 8,
    machine: MachineSpec | None = None,
    traversal: str = "greedy",
    rank_passes: int = DEFAULT_RANK_PASSES,
) -> DynamicRun:
    """Smooth with static (``every=0``) or dynamic (``every=k``) reordering.

    Returns modeled smoothing time, total reorder overhead, and the final
    quality, so strategies can be compared at identical work.
    """
    if every < 0:
        raise ValueError("every must be >= 0")
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    if machine is None:
        machine = default_machine_for(mesh, profile="serial")

    # Price of one reorder = one native-ordered iteration (Section 5.4).
    _, reorder_price, _ = _segment_cost(mesh, 1, machine, rank_passes, traversal)

    segment_len = every if every else iterations
    current = mesh
    done = 0
    num_reorders = 0
    smoothing_seconds = 0.0
    segments: list[float] = []
    quality = 0.0

    while done < iterations:
        # (Re-)order on the current geometry.
        q = vertex_quality(current)
        rank = patch_quality(current, passes=rank_passes, base=q)
        current, _ = apply_ordering(current, ordering, qualities=rank)
        num_reorders += 1
        todo = min(segment_len, iterations - done)
        current, cost, quality = _segment_cost(
            current, todo, machine, rank_passes, traversal
        )
        smoothing_seconds += cost
        segments.append(cost)
        done += todo

    return DynamicRun(
        ordering=ordering,
        every=every,
        iterations=iterations,
        num_reorders=num_reorders,
        smoothing_seconds=smoothing_seconds,
        reorder_seconds=num_reorders * reorder_price,
        final_quality=quality,
        segment_seconds=segments,
    )
