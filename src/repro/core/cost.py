"""Reordering-cost accounting (Section 5.4 of the paper).

The paper argues RDR's pre-computation "has a cost of approximately one
iteration with the ORI ordering", so with a 20-30% per-iteration gain
the reordering pays for itself after ~4 iterations. This module measures
both sides of that trade on a given mesh:

* the wall-clock cost of computing an ordering,
* the wall-clock and modeled cost of one smoothing iteration,
* the break-even iteration count implied by a measured gain.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..mesh import TriMesh
from ..ordering import get_ordering
from ..quality import vertex_quality
from ..smoothing import LaplacianSmoother

__all__ = ["ReorderingCost", "measure_reordering_cost", "break_even_iterations"]


@dataclass(frozen=True)
class ReorderingCost:
    """Measured cost of a reordering relative to one smoothing iteration."""

    ordering: str
    mesh_name: str
    ordering_seconds: float
    iteration_seconds: float

    @property
    def iterations_equivalent(self) -> float:
        """Reordering cost expressed in smoothing iterations."""
        if self.iteration_seconds == 0.0:
            return float("inf")
        return self.ordering_seconds / self.iteration_seconds


def measure_reordering_cost(
    mesh: TriMesh,
    ordering: str,
    *,
    repeats: int = 3,
    traversal: str = "greedy",
    order_engine: str = "reference",
) -> ReorderingCost:
    """Time the ordering computation against one smoothing iteration.

    Both sides are measured with the quality computation shared (the
    smoother needs qualities anyway, so RDR's quality sort rides along
    for free — the paper's argument for the "one iteration" price).
    Min-over-repeats means the batched engine is measured *warm* — its
    per-graph plan amortises across repeats, matching how a pipeline
    that reorders once and smooths many iterations experiences it.
    """
    qualities = vertex_quality(mesh)
    fn = get_ordering(ordering, order_engine=order_engine)

    best_order = float("inf")
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        fn(mesh, qualities=qualities)
        best_order = min(best_order, time.perf_counter() - t0)

    smoother = LaplacianSmoother(
        traversal=traversal, max_iterations=1, tol=-np.inf
    )
    best_iter = float("inf")
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        smoother.smooth(mesh)
        best_iter = min(best_iter, time.perf_counter() - t0)

    return ReorderingCost(
        ordering=ordering,
        mesh_name=mesh.name,
        ordering_seconds=best_order,
        iteration_seconds=best_iter,
    )


def break_even_iterations(
    *,
    reorder_cost_iterations: float,
    gain_fraction: float,
) -> float:
    """Iterations after which a reordering has paid for itself.

    With a pre-computation worth ``c`` baseline iterations and a
    per-iteration gain ``g`` (fraction of baseline iteration time), the
    reordered run is ahead once ``k * g >= c``, i.e. ``k = c / g``.
    """
    if not 0.0 < gain_fraction < 1.0:
        raise ValueError("gain_fraction must be in (0, 1)")
    if reorder_cost_iterations < 0.0:
        raise ValueError("reorder_cost_iterations must be >= 0")
    return reorder_cost_iterations / gain_fraction
