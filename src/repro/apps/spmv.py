"""Graph-Laplacian SpMV over the mesh: a second irregular kernel.

The paper's conclusion conjectures that RDR-style orderings should help
"other mesh application performances". The canonical substrate for that
claim is the sparse matrix-vector product with the mesh's graph
Laplacian, ``y = (D - A) x`` — the kernel at the heart of the PDE
solvers the smoothed meshes feed (Section 1). This module implements it
with the same trace instrumentation as the smoother so the ordering
experiments carry over unchanged.

Access model for row ``v`` (storage-order rows, like any CSR SpMV):

1. ``xadj[v]``, ``xadj[v+1]``,
2. ``adjncy[xadj[v] : xadj[v+1]]``,
3. ``quality[w]`` for each neighbor ``w``  (the x-vector — stored in the
   8-byte-per-vertex slot of the layout model),
4. ``quality[v]`` (the diagonal term's x-read),
5. ``flags[v]`` as the y-store (the 4-byte-per-vertex slot).

Unlike the smoother, SpMV has no quality-driven traversal: rows stream
in storage order, so this kernel probes how each ordering's *bandwidth*
behaves — exactly the regime in which BFS/RCM classically excel.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..mesh import TriMesh
from ..memsim.trace import AccessTrace, TraceBuilder

__all__ = ["SpmvResult", "laplacian_spmv", "laplacian_matrix_dense"]


@dataclass
class SpmvResult:
    """Output vector plus the recorded access trace."""

    y: np.ndarray
    trace: AccessTrace | None


def laplacian_matrix_dense(mesh: TriMesh) -> np.ndarray:
    """The dense graph Laplacian (tests/small meshes only)."""
    n = mesh.num_vertices
    out = np.zeros((n, n))
    g = mesh.adjacency
    for v in range(n):
        nbrs = g.neighbors(v)
        out[v, v] = nbrs.size
        out[v, nbrs] = -1.0
    return out


def laplacian_spmv(
    mesh: TriMesh,
    x: np.ndarray,
    *,
    iterations: int = 1,
    record_trace: bool = False,
) -> SpmvResult:
    """``y = (D - A) x`` over the mesh graph, optionally repeated.

    ``iterations > 1`` chains the product (``y = L^k x``), which is what
    an iterative solver's inner loop does and what gives reuse across
    sweeps.
    """
    g = mesh.adjacency
    xadj, adjncy = g.xadj, g.adjncy
    x = np.asarray(x, dtype=np.float64)
    if x.shape != (mesh.num_vertices,):
        raise ValueError(f"x must have shape ({mesh.num_vertices},)")
    builder = TraceBuilder() if record_trace else None
    deg = np.diff(xadj)

    current = x
    for _ in range(max(1, iterations)):
        y = np.empty_like(current)
        if builder is not None:
            builder.begin_iteration()
            for v in range(mesh.num_vertices):
                lo, hi = int(xadj[v]), int(xadj[v + 1])
                builder.append("xadj", np.array([v, v + 1], dtype=np.int64))
                if hi > lo:
                    builder.append(
                        "adjncy", np.arange(lo, hi, dtype=np.int64)
                    )
                    builder.append("quality", adjncy[lo:hi])
                builder.append("quality", v)
                builder.append("flags", v, write=True)
                y[v] = deg[v] * current[v] - current[adjncy[lo:hi]].sum()
        else:
            if adjncy.size:
                offsets = np.minimum(xadj[:-1], adjncy.size - 1)
                sums = np.add.reduceat(current[adjncy], offsets)
                sums[deg == 0] = 0.0
            else:
                sums = np.zeros_like(current)
            y = deg * current - sums
        current = y

    trace = builder.build(mesh=mesh.name, kernel="spmv") if builder else None
    return SpmvResult(y=current, trace=trace)
