"""Other mesh kernels the paper's conclusion targets (Section 6).

The paper conjectures its ordering transfers to "other mesh application
performances such as mesh untangling, constraint mesh smoothing, and
mesh swapping" and to "extensions of Laplacian mesh smoothing". This
subpackage provides testable instances:

* :func:`laplacian_spmv` — the graph-Laplacian SpMV of the downstream
  PDE solver (a storage-order kernel: the bandwidth regime),
* :func:`untangle` — local mesh untangling (Freitag-Plassmann style,
  quality-driven traversal: RDR's regime),
* :func:`smart_laplacian_smooth` — the guarded "smart" Laplacian
  extension.
"""

from .smart import patch_metric, smart_laplacian_smooth
from .spmv import SpmvResult, laplacian_matrix_dense, laplacian_spmv
from .untangle import UntangleResult, inverted_triangles, untangle

__all__ = [
    "SpmvResult",
    "UntangleResult",
    "inverted_triangles",
    "laplacian_matrix_dense",
    "laplacian_spmv",
    "patch_metric",
    "smart_laplacian_smooth",
    "untangle",
]
