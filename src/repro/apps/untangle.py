"""Local mesh untangling (Freitag-Plassmann flavored).

The paper's conclusion names "mesh untangling [6]" as an application its
ordering should transfer to. This module implements a simple
local-optimization untangler: vertices incident to *inverted* (negative
signed area) triangles are visited worst-first and moved toward their
neighbor centroid, which monotonically shrinks the inverted set on
star-shaped patches. The traversal is quality-driven exactly like the
greedy smoother's (worst vertex first, then its worst affected
neighbor), so the RDR/oracle orderings align with it the same way — and
the same trace machinery measures it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..mesh import TriMesh
from ..memsim.trace import AccessTrace, TraceBuilder
from ..smoothing.trace import append_smooth_accesses

__all__ = ["UntangleResult", "inverted_triangles", "untangle"]


@dataclass
class UntangleResult:
    """Outcome of an untangling run."""

    mesh: TriMesh
    sweeps: int
    inverted_history: list[int] = field(default_factory=list)
    traversals: list[np.ndarray] = field(default_factory=list)
    trace: AccessTrace | None = None

    @property
    def untangled(self) -> bool:
        return self.inverted_history[-1] == 0


def inverted_triangles(mesh: TriMesh) -> np.ndarray:
    """Indices of triangles with non-positive signed area."""
    return np.flatnonzero(mesh.triangle_areas() <= 0.0)


def _vertex_min_area(mesh: TriMesh, areas: np.ndarray) -> np.ndarray:
    """Per-vertex minimum incident signed area (the untangling 'quality')."""
    xadj, tri_ids = mesh.vertex_triangles
    out = np.full(mesh.num_vertices, np.inf)
    for v in range(mesh.num_vertices):
        ids = tri_ids[xadj[v] : xadj[v + 1]]
        if ids.size:
            out[v] = areas[ids].min()
    return out


def untangle(
    mesh: TriMesh,
    *,
    max_sweeps: int = 25,
    step: float = 0.5,
    record_trace: bool = False,
) -> UntangleResult:
    """Drive inverted triangles out of the mesh by local vertex moves.

    Each sweep visits interior vertices with an inverted incident
    triangle, worst (most negative area) first, and moves each a
    fraction ``step`` toward its neighbor centroid. Sweeps repeat until
    the mesh is untangled or ``max_sweeps`` is hit. The input mesh is
    not modified.
    """
    if not 0.0 < step <= 1.0:
        raise ValueError("step must be in (0, 1]")
    g = mesh.adjacency
    xadj, adjncy = g.xadj, g.adjncy
    coords = mesh.vertices.copy()
    work = mesh.with_vertices(coords)
    interior = mesh.interior_mask

    builder = TraceBuilder() if record_trace else None
    traversals: list[np.ndarray] = []
    history = [int(inverted_triangles(work).size)]
    sweeps = 0

    for _ in range(max_sweeps):
        areas = work.triangle_areas()
        if history[-1] == 0:
            break
        vq = _vertex_min_area(work, areas)
        bad = np.flatnonzero((vq <= 0.0) & interior)
        if bad.size == 0:
            break  # inversions pinned to the boundary: cannot fix locally
        order = bad[np.argsort(vq[bad], kind="stable")]
        traversals.append(order)
        if builder is not None:
            builder.begin_iteration()
        for v in order.tolist():
            if builder is not None:
                append_smooth_accesses(builder, xadj, adjncy, v)
            lo, hi = xadj[v], xadj[v + 1]
            if hi > lo:
                centroid = coords[adjncy[lo:hi]].mean(axis=0)
                coords[v] = (1.0 - step) * coords[v] + step * centroid
        sweeps += 1
        work = mesh.with_vertices(coords)
        history.append(int(inverted_triangles(work).size))

    trace = builder.build(mesh=mesh.name, kernel="untangle") if builder else None
    return UntangleResult(
        mesh=work,
        sweeps=sweeps,
        inverted_history=history,
        traversals=traversals,
        trace=trace,
    )
