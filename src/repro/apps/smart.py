"""Smart Laplacian smoothing: the guarded Mesquite variant.

Plain Laplacian smoothing can (rarely) worsen local quality or even
invert elements near concave boundaries; the standard remedy — "smart"
Laplacian smoothing — evaluates the local patch quality before and
after the tentative move and keeps the move only if the patch did not
degrade. The paper expects its ordering "to outperform extensions of
Laplacian mesh smoothing as well"; this module provides such an
extension with the same traversal/trace interfaces so the claim is
testable (``benchmarks/test_ext_other_apps.py``).
"""

from __future__ import annotations

import numpy as np

from ..mesh import TriMesh
from ..quality import global_quality, vertex_quality
from ..smoothing.laplacian import SmoothingResult
from ..smoothing.traversal import make_traversal

__all__ = ["smart_laplacian_smooth", "patch_metric"]


def patch_metric(coords: np.ndarray, tri_pts: np.ndarray) -> float:
    """Minimum edge-length-ratio over a patch of triangles.

    ``tri_pts`` is an ``(m, 3)`` array of vertex ids; degenerate
    triangles score 0. Using the *minimum* (not the mean) makes the
    guard conservative: a move that ruins one element is rejected even
    if it helps the others.
    """
    p = coords[tri_pts]
    e0 = np.linalg.norm(p[:, 2] - p[:, 1], axis=1)
    e1 = np.linalg.norm(p[:, 0] - p[:, 2], axis=1)
    e2 = np.linalg.norm(p[:, 1] - p[:, 0], axis=1)
    lengths = np.stack([e0, e1, e2], axis=1)
    longest = lengths.max(axis=1)
    longest[longest == 0.0] = 1.0
    q = lengths.min(axis=1) / longest
    # Inverted patches score negative so any untangling move wins.
    a = p[:, 1] - p[:, 0]
    b = p[:, 2] - p[:, 0]
    signed = a[:, 0] * b[:, 1] - a[:, 1] * b[:, 0]
    q = np.where(signed <= 0.0, -1.0, q)
    return float(q.min())


def smart_laplacian_smooth(
    mesh: TriMesh,
    *,
    traversal: str = "greedy",
    max_iterations: int = 50,
    tol: float = 5e-6,
) -> SmoothingResult:
    """Laplacian smoothing with the local-quality guard.

    Returns the same :class:`~repro.smoothing.SmoothingResult` as the
    plain smoother (without trace support — the guard's extra quality
    reads would need their own access model; the ordering experiments
    use the plain smoother).
    """
    import time

    t0 = time.perf_counter()
    g = mesh.adjacency
    xadj, adjncy = g.xadj, g.adjncy
    vt_xadj, vt_ids = mesh.vertex_triangles
    tris = mesh.triangles
    coords = mesh.vertices.copy()
    work = mesh.with_vertices(coords)
    qualities = vertex_quality(work)
    history = [global_quality(work, vertex_values=qualities)]
    traversals: list[np.ndarray] = []
    converged = False
    iterations = 0

    for _ in range(max_iterations):
        seq = make_traversal(traversal, work, qualities)
        traversals.append(seq)
        for v in seq.tolist():
            lo, hi = xadj[v], xadj[v + 1]
            if hi <= lo:
                continue
            patch = tris[vt_ids[vt_xadj[v] : vt_xadj[v + 1]]]
            before = patch_metric(coords, patch)
            old = coords[v].copy()
            coords[v] = coords[adjncy[lo:hi]].mean(axis=0)
            if patch_metric(coords, patch) < before:
                coords[v] = old  # reject the degrading move
        iterations += 1
        work = mesh.with_vertices(coords)
        qualities = vertex_quality(work)
        history.append(global_quality(work, vertex_values=qualities))
        if history[-1] - history[-2] < tol:
            converged = True
            break

    return SmoothingResult(
        mesh=work,
        iterations=iterations,
        quality_history=history,
        converged=converged,
        traversals=traversals,
        trace=None,
        wall_time_s=time.perf_counter() - t0,
    )
