"""Quality metrics (edge-length ratio and friends)."""

from .metrics import (
    TRIANGLE_METRICS,
    aspect_ratio_quality,
    edge_length_ratio,
    global_quality,
    min_angle_quality,
    triangle_edge_lengths,
    vertex_quality,
)
from .patch import DEFAULT_RANK_PASSES, patch_quality

__all__ = [
    "DEFAULT_RANK_PASSES",
    "TRIANGLE_METRICS",
    "patch_quality",
    "aspect_ratio_quality",
    "edge_length_ratio",
    "global_quality",
    "min_angle_quality",
    "triangle_edge_lengths",
    "vertex_quality",
]
