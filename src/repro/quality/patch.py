"""Patch-aggregated quality: the ranking signal for quality-driven order.

Mesquite evaluates quality over *patches* (a vertex with its surrounding
elements), so the signal that drives its scheduling is intrinsically
smoother than a single triangle's metric. :func:`patch_quality` iterates
neighbor averaging over the per-vertex quality, widening the patch by
one ring per pass.

Why this matters here: the greedy smoothing traversal and the RDR
ordering both *rank* vertices by quality. Ranking by a noisy per-vertex
signal makes the traversal wander (neighbors with similar geometry can
rank far apart), which inflates reuse distances for every ordering; the
patch signal keeps ranks spatially coherent, which is the regime the
paper's meshes exhibit (their measured RDR reuse distances imply
near-perfectly coherent traversals). The ablation bench
(``test_ablation_rank_smoothing``) quantifies the effect.
"""

from __future__ import annotations

import numpy as np

from ..mesh import TriMesh
from .metrics import vertex_quality

__all__ = ["patch_quality", "DEFAULT_RANK_PASSES"]

#: Default number of widening passes used by the pipelines.
DEFAULT_RANK_PASSES = 4


def patch_quality(
    mesh: TriMesh,
    *,
    passes: int = DEFAULT_RANK_PASSES,
    base: np.ndarray | None = None,
    metric: str = "edge_length_ratio",
) -> np.ndarray:
    """Per-vertex quality averaged over a ``passes``-ring patch.

    Parameters
    ----------
    passes:
        Number of neighbor-averaging sweeps (0 returns the base signal).
    base:
        Precomputed per-vertex quality; computed from ``metric`` when
        omitted.

    Each sweep replaces a vertex's value by the mean of itself and its
    neighbors, so values stay within the original range and isolated
    vertices keep their value.
    """
    if passes < 0:
        raise ValueError("passes must be >= 0")
    q = (
        vertex_quality(mesh, metric=metric)
        if base is None
        else np.asarray(base, dtype=np.float64).copy()
    )
    if q.shape != (mesh.num_vertices,):
        raise ValueError("base must have one value per vertex")
    if passes == 0:
        return q
    g = mesh.adjacency
    xadj, adjncy = g.xadj, g.adjncy
    deg = np.diff(xadj)
    if adjncy.size == 0:
        return q
    offsets = np.minimum(xadj[:-1], adjncy.size - 1)
    for _ in range(passes):
        sums = np.add.reduceat(q[adjncy], offsets)
        sums[deg == 0] = 0.0
        q = (q + sums) / (1 + deg)
    return q
