"""Mesh quality metrics.

The paper uses the **edge-length ratio** (Knupp, "Algebraic mesh quality
metrics", SIAM J. Sci. Comput. 2001): for a triangle, the ratio of its
shortest to its longest edge, in ``[0, 1]``, equal to 1 for an
equilateral triangle. Per-vertex quality is the average over incident
triangles, and the global mesh quality is the average over vertices
(Section 3.2).

Two alternative triangle metrics — minimum-angle and an area/edge
aspect-ratio metric — are provided for the ablation studies; all share
the same ``[0, 1]``, higher-is-better normalisation.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..mesh import TriMesh

__all__ = [
    "triangle_edge_lengths",
    "edge_length_ratio",
    "min_angle_quality",
    "aspect_ratio_quality",
    "vertex_quality",
    "global_quality",
    "TRIANGLE_METRICS",
]


def triangle_edge_lengths(mesh: TriMesh) -> np.ndarray:
    """Edge lengths per triangle, shape ``(m, 3)``.

    Column ``k`` holds the length of the edge opposite local vertex ``k``.
    """
    p = mesh.vertices[mesh.triangles]  # (m, 3, 2)
    e0 = np.linalg.norm(p[:, 2] - p[:, 1], axis=1)
    e1 = np.linalg.norm(p[:, 0] - p[:, 2], axis=1)
    e2 = np.linalg.norm(p[:, 1] - p[:, 0], axis=1)
    return np.stack([e0, e1, e2], axis=1)


def edge_length_ratio(mesh: TriMesh) -> np.ndarray:
    """The paper's quality metric: min/max edge length per triangle."""
    lengths = triangle_edge_lengths(mesh)
    longest = lengths.max(axis=1)
    longest = np.where(longest == 0.0, 1.0, longest)
    return lengths.min(axis=1) / longest


def min_angle_quality(mesh: TriMesh) -> np.ndarray:
    """Smallest interior angle normalised by 60 degrees."""
    lengths = triangle_edge_lengths(mesh)
    a, b, c = lengths[:, 0], lengths[:, 1], lengths[:, 2]
    with np.errstate(divide="ignore", invalid="ignore"):
        cos_a = np.clip((b**2 + c**2 - a**2) / (2 * b * c), -1.0, 1.0)
        cos_b = np.clip((a**2 + c**2 - b**2) / (2 * a * c), -1.0, 1.0)
        cos_c = np.clip((a**2 + b**2 - c**2) / (2 * a * b), -1.0, 1.0)
    angles = np.arccos(np.stack([cos_a, cos_b, cos_c], axis=1))
    out = angles.min(axis=1) / (np.pi / 3.0)
    return np.nan_to_num(out, nan=0.0)


def aspect_ratio_quality(mesh: TriMesh) -> np.ndarray:
    """Normalised area-to-edge metric: ``4*sqrt(3)*A / (l0^2+l1^2+l2^2)``.

    Equals 1 for an equilateral triangle and tends to 0 for slivers;
    degenerate (zero-area) triangles score 0.
    """
    lengths = triangle_edge_lengths(mesh)
    denom = (lengths**2).sum(axis=1)
    denom = np.where(denom == 0.0, 1.0, denom)
    area = np.abs(mesh.triangle_areas())
    return np.clip(4.0 * np.sqrt(3.0) * area / denom, 0.0, 1.0)


TRIANGLE_METRICS: dict[str, Callable[[TriMesh], np.ndarray]] = {
    "edge_length_ratio": edge_length_ratio,
    "min_angle": min_angle_quality,
    "aspect_ratio": aspect_ratio_quality,
}


def vertex_quality(
    mesh: TriMesh,
    *,
    metric: str = "edge_length_ratio",
    triangle_quality: np.ndarray | None = None,
) -> np.ndarray:
    """Per-vertex quality: mean metric of the triangles touching a vertex.

    Parameters
    ----------
    metric:
        One of :data:`TRIANGLE_METRICS`.
    triangle_quality:
        Precomputed per-triangle values (skips recomputation when the
        caller already has them).

    Vertices belonging to no triangle get quality 1.0 so they are never
    prioritised by quality-driven traversals.
    """
    if triangle_quality is None:
        try:
            triangle_quality = TRIANGLE_METRICS[metric](mesh)
        except KeyError:
            raise KeyError(
                f"unknown metric {metric!r}; choose from {sorted(TRIANGLE_METRICS)}"
            ) from None
    n = mesh.num_vertices
    flat = mesh.triangles.ravel()
    sums = np.bincount(
        flat, weights=np.repeat(triangle_quality, 3), minlength=n
    )
    counts = np.bincount(flat, minlength=n)
    out = np.ones(n, dtype=np.float64)
    touched = counts > 0
    out[touched] = sums[touched] / counts[touched]
    return out


def global_quality(
    mesh: TriMesh,
    *,
    metric: str = "edge_length_ratio",
    vertex_values: np.ndarray | None = None,
) -> float:
    """Global mesh quality: the mean of the per-vertex qualities."""
    if vertex_values is None:
        vertex_values = vertex_quality(mesh, metric=metric)
    return float(vertex_values.mean())
