"""Experiment drivers — one per table/figure of the paper.

Every driver is a pure function of an explicit configuration, returns
plain rows (lists of dicts) ready for :func:`repro.bench.report.format_table`,
and caches shared heavy artifacts (meshes, serial runs, scaling sweeps)
in module-level dictionaries so the benchmark files can share one
computation across figures (Figures 8/9 and Tables 2/3 reuse the same
traced runs; Figures 10-13 reuse one scaling sweep).

Experiment canon (see DESIGN.md §"Per-experiment index"):

* serial cache/reuse studies use the FIRST smoothing iteration's trace —
  the population whose statistics the paper's Tables 2/3 and Figure 9
  are consistent with;
* the scaling studies use multi-iteration traces over statically
  partitioned cores with scatter affinity;
* "execution time" is the Equation-(2) model on the calibrated machine
  (wall-clock Python time cannot expose cache behaviour).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import RunConfig, engine_axes
from ..core.pipeline import OrderedRun, default_machine_for, run_ordering
from ..core.cost import measure_reordering_cost
from ..memsim import (
    MemoryLayout,
    bucketed_series,
    profile_from_distances,
    reuse_distances,
)
from ..memsim.reuse import COLD, max_elements_within
from ..meshgen import PAPER_SUITE, generate_domain_mesh
from ..mesh import TriMesh
from ..ordering import apply_ordering
from ..parallel import parallel_traces
from ..quality import DEFAULT_RANK_PASSES, patch_quality, vertex_quality
from ..memsim.multicore import simulate_multicore

__all__ = [
    "BenchConfig",
    "suite_meshes",
    "serial_run",
    "table1_rows",
    "fig1_profiles",
    "fig4_traces",
    "fig6_series",
    "fig8_rows",
    "fig9_rows",
    "eq2_example",
    "table2_rows",
    "table3_rows",
    "scaling_sweep",
    "fig10_rows",
    "fig11_rows",
    "fig12_rows",
    "fig13_rows",
    "sec54_rows",
    "clear_caches",
]

#: Default ordering set for serial studies ("oracle" is our alignment
#: upper bound, not in the paper).
SERIAL_ORDERINGS = ("random", "ori", "bfs", "rdr", "oracle")
PAPER_ORDERINGS = ("ori", "bfs", "rdr")


@dataclass(frozen=True)
class BenchConfig:
    """Shared experiment configuration.

    ``suite_scale`` sizes the nine meshes relative to the paper's
    vertex counts (0.004 -> ~1.2-1.6k vertices); ``scaling_scale`` is
    used for the multicore sweep, where per-core blocks must stay a few
    hundred vertices at 32 cores.
    """

    suite_scale: float = 0.004
    scaling_scale: float = 0.012
    seed: int = 0
    quality_structure: str = "ramp"
    rank_passes: int = DEFAULT_RANK_PASSES
    traversal: str = "greedy"
    cores: tuple[int, ...] = (1, 2, 4, 8, 16, 24, 32)
    scaling_iterations: int = 3
    affinity: str = "scatter"
    #: Smoothing execution engine: "reference" or "vectorized"
    #: (identical traces and coordinates).
    engine: str = "reference"
    #: Multicore replay engine: "sequential" or "sharded" (worker
    #: processes, one per occupied socket; identical counts).
    mem_engine: str = "sequential"
    #: Cache simulator: "reference" (per-event replay) or "batched"
    #: (vectorized stack-distance engine; identical counts).
    sim_engine: str = "reference"
    #: Vertex-ordering engine: "reference" or "batched" (vectorized
    #: frontier traversals; identical permutations).
    order_engine: str = "reference"
    #: Array backend the fast engines run on: "numpy", "cupy" or
    #: "torch" (see :mod:`repro.backend`; uninstalled backends fall
    #: back to numpy).
    backend: str = "numpy"
    #: Where the smoother's trace goes: "materialize" (in-memory
    #: trace), "spill" (chunked on-disk) or "fused" (streamed straight
    #: into the simulators; identical counts, bounded memory).
    trace_mode: str = "materialize"

    @classmethod
    def from_run_config(cls, config: RunConfig, **overrides) -> "BenchConfig":
        """A BenchConfig whose engine axes and seed come from ``config``
        (the CLI's ``--engine``/``--sim-engine``/``--mem-engine``/``--seed``);
        everything else keeps its default unless overridden."""
        return cls(
            **{axis: getattr(config, axis) for axis in engine_axes()},
            seed=config.seed,
            **overrides,
        )

    def to_run_config(self) -> RunConfig:
        """The :class:`repro.config.RunConfig` projection of this config
        (what the drivers pass to the pipeline/memsim APIs)."""
        return RunConfig(
            **{axis: getattr(self, axis) for axis in engine_axes()},
            seed=self.seed,
        )


DEFAULT_CONFIG = BenchConfig()

_MESHES: dict[tuple, dict[str, TriMesh]] = {}
_RUNS: dict[tuple, OrderedRun] = {}
_SCALING: dict[tuple, dict] = {}


def clear_caches() -> None:
    """Drop all cached meshes/runs (mostly for tests)."""
    _MESHES.clear()
    _RUNS.clear()
    _SCALING.clear()


def suite_meshes(
    cfg: BenchConfig = DEFAULT_CONFIG, *, scale: float | None = None
) -> dict[str, TriMesh]:
    """The nine paper meshes (M1..M9) at the configured scale, cached."""
    scale = cfg.suite_scale if scale is None else scale
    key = (scale, cfg.seed, cfg.quality_structure)
    if key not in _MESHES:
        meshes: dict[str, TriMesh] = {}
        for spec in PAPER_SUITE:
            target = max(200, int(round(spec.paper_vertices * scale)))
            meshes[spec.label] = generate_domain_mesh(
                spec.name,
                target_vertices=target,
                seed=cfg.seed,
                quality_structure=cfg.quality_structure,
            )
        _MESHES[key] = meshes
    return _MESHES[key]


def serial_run(
    label: str,
    ordering: str,
    cfg: BenchConfig = DEFAULT_CONFIG,
    *,
    iterations: int = 1,
    traversal: str | None = None,
    rank_passes: int | None = None,
) -> OrderedRun:
    """One traced serial execution (cached across figures)."""
    traversal = cfg.traversal if traversal is None else traversal
    rank_passes = cfg.rank_passes if rank_passes is None else rank_passes
    key = (
        cfg.suite_scale,
        cfg.seed,
        cfg.quality_structure,
        label,
        ordering,
        iterations,
        traversal,
        rank_passes,
        cfg.engine,
        cfg.sim_engine,
    )
    if key not in _RUNS:
        mesh = suite_meshes(cfg)[label]
        _RUNS[key] = run_ordering(
            mesh,
            ordering,
            config=cfg.to_run_config(),
            fixed_iterations=iterations,
            traversal=traversal,
            rank_passes_override=rank_passes,
        )
    return _RUNS[key]


# ---------------------------------------------------------------------------
# Table 1
# ---------------------------------------------------------------------------
def table1_rows(cfg: BenchConfig = DEFAULT_CONFIG) -> list[dict]:
    """Mesh inventory: our sizes next to the paper's."""
    meshes = suite_meshes(cfg)
    rows = []
    for spec in PAPER_SUITE:
        mesh = meshes[spec.label]
        rows.append(
            {
                "label": spec.label,
                "mesh": spec.name,
                "vertices": mesh.num_vertices,
                "triangles": mesh.num_triangles,
                "paper_vertices": spec.paper_vertices,
                "paper_triangles": spec.paper_triangles,
                "interior": int(mesh.interior_vertices().size),
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Figure 1 — reuse-distance profiles for random / ORI / BFS on ocean
# ---------------------------------------------------------------------------
def fig1_profiles(
    cfg: BenchConfig = DEFAULT_CONFIG,
    *,
    orderings: tuple[str, ...] = ("random", "ori", "bfs"),
) -> dict:
    """Average reuse distance, L1 miss rate, time; plus bucketed series.

    Reports the mean and upper-quartile reuse distance (line
    granularity over the whole working set), the L1 miss rate, and the
    modeled time. The q75 is the sharp discriminator at benchmark scale:
    the short intra-neighborhood reuses (distance 0-3, identical under
    every ordering) dominate the mean, while the paper's element-level
    traces on 300k-vertex meshes let the tail dominate it.
    """
    out: dict = {"rows": [], "series": {}}
    for ordering in orderings:
        run = serial_run("M6", ordering, cfg)
        dists = run.distances
        warm = dists[dists != COLD]
        xs, ys = bucketed_series(dists, 100)
        out["series"][ordering] = (xs.tolist(), ys.tolist())
        prof = profile_from_distances(dists)
        out["rows"].append(
            {
                "ordering": ordering,
                "avg_reuse_distance": float(warm.mean()) if warm.size else 0.0,
                "q75_reuse_distance": prof.q75,
                "l1_miss_rate_%": 100.0 * run.cache.l1.miss_rate,
                "modeled_time_ms": run.modeled_seconds * 1e3,
            }
        )
    return out


# ---------------------------------------------------------------------------
# Figure 4 — access-trace snippets under DFS vs BFS orderings
# ---------------------------------------------------------------------------
def fig4_traces(
    cfg: BenchConfig = DEFAULT_CONFIG, *, length: int = 24
) -> dict:
    """Node-visit trace snippets and per-smooth spans (DFS vs BFS).

    The paper's Figure 5 argues via the *span* of the data-array
    positions each smoothing step touches (its neighborhood's storage
    spread); the driver reports the first ``length`` coordinate
    locations (the Figure 4 snippet) plus the mean per-smooth span.
    """
    mesh = suite_meshes(cfg)["M6"]
    out: dict = {"snippets": {}, "mean_span": {}}
    for name in ("dfs", "bfs"):
        run = serial_run("M6", name, cfg)
        trace = run.trace.iteration(0)
        coords_mask = trace.array_ids == 0
        locs = trace.indices[coords_mask]
        out["snippets"][name] = locs[:length].tolist()
        # Per-smooth span: smoothing vertex v touches deg(v) neighbor
        # coordinates plus the write of v; group reads by the write
        # positions (is_write marks the end of each smooth).
        spans = []
        write_pos = np.flatnonzero(trace.is_write[coords_mask])
        start = 0
        for end in write_pos:
            seg = locs[start : end + 1]
            if seg.size:
                spans.append(int(seg.max() - seg.min()))
            start = end + 1
        out["mean_span"][name] = float(np.mean(spans)) if spans else 0.0
    return out


# ---------------------------------------------------------------------------
# Figure 6 — reuse-distance profile stability across iterations
# ---------------------------------------------------------------------------
def fig6_series(
    cfg: BenchConfig = DEFAULT_CONFIG,
    *,
    iterations: int = 8,
    buckets: int = 100,
) -> dict:
    """Per-iteration bucketed reuse-distance means for carabiner (ORI)."""
    run = serial_run("M1", "ori", cfg, iterations=iterations)
    series = []
    for k in range(run.trace.num_iterations):
        sub = run.trace.iteration(k)
        lines = run.layout.lines(sub)
        dists = reuse_distances(lines)
        xs, ys = bucketed_series(dists, buckets)
        series.append(ys.tolist())
    # Stability metric: correlation of each iteration's profile with the
    # first (the paper's Figure 6 claim is that the shapes repeat).
    first = np.asarray(series[0], dtype=float)
    corr = []
    for ys in series[1:]:
        arr = np.asarray(ys, dtype=float)
        ok = ~(np.isnan(first) | np.isnan(arr))
        corr.append(
            float(np.corrcoef(first[ok], arr[ok])[0, 1]) if ok.sum() > 2 else 0.0
        )
    return {"series": series, "correlation_with_first": corr}


# ---------------------------------------------------------------------------
# Figure 8 — serial modeled execution time per mesh/ordering
# ---------------------------------------------------------------------------
def fig8_rows(
    cfg: BenchConfig = DEFAULT_CONFIG,
    *,
    orderings: tuple[str, ...] = PAPER_ORDERINGS,
) -> list[dict]:
    """Modeled serial time per mesh/ordering + RDR speedups (Figure 8)."""
    rows = []
    for spec in PAPER_SUITE:
        row: dict = {"mesh": spec.label}
        for ordering in orderings:
            run = serial_run(spec.label, ordering, cfg)
            row[f"{ordering}_ms"] = run.modeled_seconds * 1e3
        if "ori" in orderings and "rdr" in orderings:
            row["speedup_rdr_vs_ori"] = row["ori_ms"] / row["rdr_ms"]
        if "bfs" in orderings and "rdr" in orderings:
            row["speedup_rdr_vs_bfs"] = row["bfs_ms"] / row["rdr_ms"]
        rows.append(row)
    return rows


# ---------------------------------------------------------------------------
# Figure 9 — cache miss rates per level
# ---------------------------------------------------------------------------
def fig9_rows(
    cfg: BenchConfig = DEFAULT_CONFIG,
    *,
    orderings: tuple[str, ...] = PAPER_ORDERINGS,
) -> list[dict]:
    """Per-level miss counts and rates per mesh/ordering (Figure 9)."""
    rows = []
    for spec in PAPER_SUITE:
        for ordering in orderings:
            run = serial_run(spec.label, ordering, cfg)
            st = run.cache
            rows.append(
                {
                    "mesh": spec.label,
                    "ordering": ordering,
                    "L1_miss_%": 100 * st.l1.miss_rate,
                    "L2_miss_%": 100 * st.l2.miss_rate,
                    "L3_miss_%": 100 * st.l3.miss_rate,
                    "L1_misses": st.l1.misses,
                    "L2_misses": st.l2.misses,
                    "L3_misses": st.l3.misses,
                }
            )
    return rows


def eq2_example(cfg: BenchConfig = DEFAULT_CONFIG) -> list[dict]:
    """The paper's worked Equation-(2) example (carabiner, extra cycles)."""
    rows = []
    for ordering in PAPER_ORDERINGS:
        run = serial_run("M1", ordering, cfg)
        rows.append(
            {
                "ordering": ordering,
                "extra_kilocycles": run.cost.extra_cycles / 1e3,
                "base_kilocycles": run.cost.base_cycles / 1e3,
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Table 2 — reuse-distance quantiles
# ---------------------------------------------------------------------------
def table2_rows(
    cfg: BenchConfig = DEFAULT_CONFIG,
    *,
    orderings: tuple[str, ...] = PAPER_ORDERINGS,
) -> list[dict]:
    """Reuse-distance quantiles per mesh/ordering (Table 2)."""
    rows = []
    for spec in PAPER_SUITE:
        for ordering in orderings:
            run = serial_run(spec.label, ordering, cfg)
            prof = run.reuse_profile(iteration=0)
            rows.append(
                {
                    "mesh": spec.label,
                    "ordering": ordering,
                    "50%": prof.q50,
                    "75%": prof.q75,
                    "90%": prof.q90,
                    "100%": prof.q100,
                    "accesses": prof.num_accesses,
                }
            )
    return rows


# ---------------------------------------------------------------------------
# Table 3 — estimated capacity misses + max elements fitting each cache
# ---------------------------------------------------------------------------
def table3_rows(
    cfg: BenchConfig = DEFAULT_CONFIG,
    *,
    orderings: tuple[str, ...] = PAPER_ORDERINGS,
) -> list[dict]:
    """Capacity misses + implied cache windows per mesh/ordering (Table 3)."""
    rows = []
    for spec in PAPER_SUITE:
        for ordering in orderings:
            run = serial_run(spec.label, ordering, cfg)
            st = run.cache
            dists = run.distances
            cold = int(np.count_nonzero(dists == COLD))
            # The paper subtracts compulsory misses ("due to the first
            # fetching of a given element") before estimating capacities.
            cap = {
                "L1": max(0, st.l1.misses - cold),
                "L2": max(0, st.l2.misses - cold),
                "L3": max(0, st.l3.misses - cold),
            }
            rows.append(
                {
                    "mesh": spec.label,
                    "ordering": ordering,
                    "L1_cap_misses": cap["L1"],
                    "L2_cap_misses": cap["L2"],
                    "L3_cap_misses": cap["L3"],
                    "est_lines_L1": max_elements_within(dists, cap["L1"]),
                    "est_lines_L2": max_elements_within(dists, cap["L2"]),
                    "est_lines_L3": max_elements_within(dists, cap["L3"]),
                }
            )
    return rows


# ---------------------------------------------------------------------------
# Figures 10-13 — scaling sweep (shared)
# ---------------------------------------------------------------------------
def scaling_sweep(
    cfg: BenchConfig = DEFAULT_CONFIG,
    *,
    labels: tuple[str, ...] | None = None,
    orderings: tuple[str, ...] = PAPER_ORDERINGS,
) -> dict:
    """Modeled parallel times for every (mesh, ordering, cores) cell.

    Returns ``{"times": {(label, ordering, p): seconds},
    "accesses": {(label, ordering, p): {"L2": .., "L3": .., "memory": ..}}}``.
    """
    labels = labels or tuple(spec.label for spec in PAPER_SUITE)
    key = (
        cfg.scaling_scale,
        cfg.seed,
        cfg.quality_structure,
        labels,
        orderings,
        cfg.cores,
        cfg.scaling_iterations,
        cfg.affinity,
        cfg.rank_passes,
        cfg.traversal,
        cfg.mem_engine,
        cfg.sim_engine,
    )
    if key in _SCALING:
        return _SCALING[key]
    meshes = suite_meshes(cfg, scale=cfg.scaling_scale)
    times: dict = {}
    counts: dict = {}
    for label in labels:
        mesh = meshes[label]
        machine = default_machine_for(mesh, profile="scaling")
        raw_q = vertex_quality(mesh)
        rank_q = patch_quality(mesh, passes=cfg.rank_passes, base=raw_q)
        for ordering in orderings:
            permuted, order = apply_ordering(mesh, ordering, qualities=rank_q)
            perm_q = rank_q[order]
            layout = MemoryLayout.for_mesh(permuted, line_size=machine.line_size)
            for p in cfg.cores:
                traces = parallel_traces(
                    permuted,
                    p,
                    iterations=cfg.scaling_iterations,
                    traversal=cfg.traversal,
                    qualities=perm_q,
                )
                lines = [layout.lines(t) for t in traces]
                result = simulate_multicore(
                    lines,
                    machine,
                    config=cfg.to_run_config(),
                    affinity=cfg.affinity,
                )
                times[(label, ordering, p)] = result.modeled_seconds
                counts[(label, ordering, p)] = result.access_counts()
    out = {"times": times, "accesses": counts}
    _SCALING[key] = out
    return out


def fig10_rows(
    cfg: BenchConfig = DEFAULT_CONFIG,
    *,
    labels: tuple[str, ...] | None = None,
    orderings: tuple[str, ...] = PAPER_ORDERINGS,
) -> list[dict]:
    """Per-mesh speedups vs the serial ORI baseline, per core count."""
    sweep = scaling_sweep(cfg, labels=labels, orderings=orderings)
    times = sweep["times"]
    labels = labels or tuple(spec.label for spec in PAPER_SUITE)
    rows = []
    for label in labels:
        t_base = times[(label, "ori", 1)]
        for p in cfg.cores:
            row = {"mesh": label, "cores": p}
            for ordering in orderings:
                row[ordering] = t_base / times[(label, ordering, p)]
            rows.append(row)
    return rows


def fig11_rows(
    cfg: BenchConfig = DEFAULT_CONFIG,
    *,
    labels: tuple[str, ...] = ("M1", "M2", "M3"),
) -> list[dict]:
    """L2/L3/memory access counts vs cores for the ORI ordering."""
    sweep = scaling_sweep(cfg, orderings=PAPER_ORDERINGS)
    counts = sweep["accesses"]
    rows = []
    for label in labels:
        for p in cfg.cores:
            c = counts[(label, "ori", p)]
            rows.append(
                {
                    "mesh": label,
                    "cores": p,
                    "L2_accesses": c["L2"],
                    "L3_accesses": c["L3"],
                    "memory_accesses": c["memory"],
                }
            )
    return rows


def fig12_rows(
    cfg: BenchConfig = DEFAULT_CONFIG,
    *,
    orderings: tuple[str, ...] = PAPER_ORDERINGS,
) -> list[dict]:
    """Mean (over the nine meshes) speedup vs the serial ORI baseline."""
    sweep = scaling_sweep(cfg, orderings=orderings)
    times = sweep["times"]
    labels = tuple(spec.label for spec in PAPER_SUITE)
    rows = []
    for p in cfg.cores:
        row = {"cores": p}
        for ordering in orderings:
            speedups = [
                times[(label, "ori", 1)] / times[(label, ordering, p)]
                for label in labels
            ]
            row[ordering] = float(np.mean(speedups))
        rows.append(row)
    return rows


def fig13_rows(
    cfg: BenchConfig = DEFAULT_CONFIG,
) -> list[dict]:
    """Gain of RDR over ORI/BFS at each core count (percent of their time)."""
    sweep = scaling_sweep(cfg, orderings=PAPER_ORDERINGS)
    times = sweep["times"]
    labels = tuple(spec.label for spec in PAPER_SUITE)
    rows = []
    for p in cfg.cores:
        for other in ("ori", "bfs"):
            gains = [
                100.0
                * (times[(label, other, p)] - times[(label, "rdr", p)])
                / times[(label, other, p)]
                for label in labels
            ]
            rows.append(
                {
                    "cores": p,
                    "vs": other,
                    "mean_gain_%": float(np.mean(gains)),
                    "min_gain_%": float(np.min(gains)),
                    "max_gain_%": float(np.max(gains)),
                }
            )
    return rows


# ---------------------------------------------------------------------------
# Section 5.4 — reordering cost
# ---------------------------------------------------------------------------
def sec54_rows(
    cfg: BenchConfig = DEFAULT_CONFIG,
    *,
    orderings: tuple[str, ...] = ("bfs", "rdr"),
    labels: tuple[str, ...] = ("M1", "M6"),
) -> list[dict]:
    """Measured reordering cost vs one smoothing iteration (Section 5.4)."""
    meshes = suite_meshes(cfg)
    rows = []
    for label in labels:
        for ordering in orderings:
            cost = measure_reordering_cost(meshes[label], ordering)
            rows.append(
                {
                    "mesh": label,
                    "ordering": ordering,
                    "reorder_ms": cost.ordering_seconds * 1e3,
                    "iteration_ms": cost.iteration_seconds * 1e3,
                    "iterations_equivalent": cost.iterations_equivalent,
                }
            )
    return rows
