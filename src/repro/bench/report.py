"""Plain-text reporting for experiment drivers.

The harness prints every reproduced table/figure as an aligned text
table (the closest analogue of the paper's figures that makes sense in
a terminal/CI log) and can persist the raw rows as JSON so
EXPERIMENTS.md can cite exact numbers.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

__all__ = ["format_table", "render_series", "save_csv", "save_json", "RESULTS_DIR"]

#: Default directory where experiment drivers persist their raw rows.
RESULTS_DIR = Path("bench_results")


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, Any]],
    *,
    title: str = "",
    columns: Sequence[str] | None = None,
) -> str:
    """Render dict rows as an aligned text table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    cols = list(columns) if columns else list(rows[0].keys())
    header = [str(c) for c in cols]
    body = [[_fmt(r.get(c, "")) for c in cols] for r in rows]
    widths = [
        max(len(header[i]), *(len(row[i]) for row in body)) for i in range(len(cols))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in body:
        lines.append("  ".join(v.rjust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(
    xs: Iterable[float],
    ys: Iterable[float],
    *,
    title: str = "",
    width: int = 60,
    height: int = 12,
    logy: bool = False,
) -> str:
    """A tiny ASCII scatter/line chart for figure-style outputs."""
    import math

    xs = list(xs)
    ys = list(ys)
    pts = [(x, y) for x, y in zip(xs, ys) if y == y]  # drop NaN
    if not pts:
        return f"{title}\n(no data)"
    if logy:
        pts = [(x, math.log10(max(y, 1e-12))) for x, y in pts]
    xmin = min(p[0] for p in pts)
    xmax = max(p[0] for p in pts) or 1
    ymin = min(p[1] for p in pts)
    ymax = max(p[1] for p in pts)
    yspan = (ymax - ymin) or 1.0
    xspan = (xmax - xmin) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for x, y in pts:
        col = int((x - xmin) / xspan * (width - 1))
        row = int((y - ymin) / yspan * (height - 1))
        grid[height - 1 - row][col] = "*"
    lines = []
    if title:
        lines.append(title)
    top = f"{(10 ** ymax if logy else ymax):.3g}"
    bot = f"{(10 ** ymin if logy else ymin):.3g}"
    lines.append(f"{top:>9s} +" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 9 + " |" + "".join(row))
    lines.append(f"{bot:>9s} +" + "".join(grid[-1]))
    lines.append(
        " " * 10 + f"{xmin:<.3g}" + " " * max(1, width - 12) + f"{xmax:.3g}"
    )
    return "\n".join(lines)


def save_json(name: str, payload: Any, directory: Path | None = None) -> Path:
    """Persist a driver's raw output under ``bench_results/<name>.json``."""
    directory = directory or RESULTS_DIR
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{name}.json"
    path.write_text(json.dumps(payload, indent=2, default=str))
    return path


def save_csv(path: str | Path, rows: Sequence[Mapping[str, Any]]) -> Path:
    """Write dict rows as CSV; the header is the union of keys in
    first-seen order (rows from heterogeneous experiments coexist)."""
    path = Path(path)
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=columns, extrasaction="ignore")
        writer.writeheader()
        for row in rows:
            writer.writerow(dict(row))
    return path
