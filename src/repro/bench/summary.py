"""Markdown summary generation from persisted benchmark results.

``summarize_results()`` reads the ``bench_results/*.json`` files the
benchmark suite writes and renders a compact markdown digest — the raw
material for EXPERIMENTS.md's paper-vs-measured table. Usable from the
CLI (``python -m repro experiment`` writes the JSONs; this assembles
them) or programmatically after a bench run.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from .report import RESULTS_DIR

__all__ = ["summarize_results", "load_result"]


def load_result(name: str, directory: Path | None = None):
    """Load one persisted result; returns None when absent."""
    path = (directory or RESULTS_DIR) / f"{name}.json"
    if not path.exists():
        return None
    return json.loads(path.read_text())


def _fig8_lines(data) -> list[str]:
    vs_ori = [r["speedup_rdr_vs_ori"] for r in data]
    vs_bfs = [r["speedup_rdr_vs_bfs"] for r in data]
    return [
        f"- **Figure 8** (serial time): RDR {np.mean(vs_ori):.2f}x vs ORI "
        f"(min {min(vs_ori):.2f}), {np.mean(vs_bfs):.2f}x vs BFS "
        f"(paper: 1.39x / 1.19x).",
    ]


def _fig9_lines(data) -> list[str]:
    def mean_misses(ordering, level):
        return np.mean(
            [r[f"{level}_misses"] for r in data if r["ordering"] == ordering]
        )

    cuts = {
        level: 1 - mean_misses("rdr", level) / mean_misses("ori", level)
        for level in ("L1", "L2", "L3")
    }
    return [
        "- **Figure 9** (cache misses, RDR vs ORI): "
        f"L1 -{cuts['L1']:.0%}, L2 -{cuts['L2']:.0%}, L3 {cuts['L3']:+.0%} "
        "(paper: -25%, -71%, -84%; our L3 sits at the compulsory floor "
        "for every ordering)."
    ]


def _table2_lines(data) -> list[str]:
    out = []
    for ordering in ("ori", "bfs", "rdr"):
        rows = [r for r in data if r["ordering"] == ordering]
        med = {
            k: int(np.median([r[k] for r in rows]))
            for k in ("50%", "75%", "90%", "100%")
        }
        out.append(
            f"- **Table 2** ({ordering}): median quantiles "
            f"{med['50%']}/{med['75%']}/{med['90%']}/{med['100%']}."
        )
    return out


def _fig12_lines(data) -> list[str]:
    top = data[-1]
    return [
        f"- **Figure 12** (mean speedup at {top['cores']} cores): "
        f"ORI {top['ori']:.1f}x, BFS {top['bfs']:.1f}x, RDR {top['rdr']:.1f}x "
        "(paper: RDR ~75x)."
    ]


def _fig13_lines(data) -> list[str]:
    ori = {r["cores"]: r["mean_gain_%"] for r in data if r["vs"] == "ori"}
    return [
        "- **Figure 13** (RDR gain vs ORI): "
        + ", ".join(f"{p} cores {g:.0f}%" for p, g in sorted(ori.items()))
        + " (paper: 20-30%)."
    ]


_SECTIONS = {
    "fig8": _fig8_lines,
    "fig9": _fig9_lines,
    "table2": _table2_lines,
    "fig12": _fig12_lines,
    "fig13": _fig13_lines,
}


def summarize_results(directory: Path | None = None) -> str:
    """Render the available persisted results as a markdown digest."""
    lines = ["# Benchmark digest", ""]
    found = 0
    for name, render in _SECTIONS.items():
        data = load_result(name, directory)
        if data is None:
            continue
        found += 1
        lines.extend(render(data))
    if not found:
        lines.append(
            "_No persisted results found; run "
            "`pytest benchmarks/ --benchmark-only` first._"
        )
    return "\n".join(lines)
