"""Memory-hierarchy simulation substrate.

Replaces the paper's PAPI-instrumented Westmere-EX runs: access traces
recorded from the smoother are translated to cache lines by the layout
model and fed to reuse-distance analysis, an inclusive LRU hierarchy
simulator, the Equation-(2) timing model, and a multicore (shared-L3)
simulator.
"""

from .analysis import ArrayBreakdown, per_array_breakdown, trace_summary
from .batched import SIM_ENGINES, batched_levels, simulate_trace_batched
from .chunked import TRACE_MANIFEST, ChunkedTrace, ChunkedTraceWriter
from .cache import (
    CacheHierarchy,
    HierarchyStats,
    LevelStats,
    LRUCache,
    observe_hierarchy_stats,
    simulate_trace,
)
from .layout import DEFAULT_ELEMENT_SIZES, MemoryLayout
from .machine import (
    CacheSpec,
    MachineSpec,
    calibrated_machine,
    profile_line_size,
    resolve_machine,
    tiny_machine,
    westmere_ex,
)
from .multicore import (
    MEM_ENGINES,
    CoreResult,
    MulticoreResult,
    affinity_sockets,
    simulate_multicore,
    simulate_socket,
)
from .sharded import simulate_multicore_sharded, socket_shards
from .sink import (
    DEFAULT_FUSED_WINDOW_EVENTS,
    TRACE_MODES,
    FusedAnalysis,
    FusedSink,
    LineSink,
    MaterializeSink,
    SpillSink,
    TraceSink,
    replay_chunked_trace,
    replay_trace,
    replay_trace_windows,
)
from .streaming import (
    StreamingBucketedSeries,
    StreamingHierarchy,
    StreamingReuse,
    iter_line_windows,
    simulate_trace_streaming,
    streaming_reuse_distances,
)
from .reuse import (
    COLD,
    ReuseProfile,
    bucketed_series,
    hits_under_capacity,
    max_elements_within,
    profile_from_distances,
    reuse_distances,
)
from .timing import CostBreakdown, extra_miss_cycles, modeled_time
from .trace import ARRAY_IDS, ARRAY_NAMES, AccessTrace, TraceBuilder

__all__ = [
    "ARRAY_IDS",
    "ARRAY_NAMES",
    "AccessTrace",
    "ArrayBreakdown",
    "CacheHierarchy",
    "CacheSpec",
    "ChunkedTrace",
    "ChunkedTraceWriter",
    "COLD",
    "CoreResult",
    "CostBreakdown",
    "DEFAULT_ELEMENT_SIZES",
    "DEFAULT_FUSED_WINDOW_EVENTS",
    "FusedAnalysis",
    "FusedSink",
    "HierarchyStats",
    "LevelStats",
    "LineSink",
    "LRUCache",
    "MEM_ENGINES",
    "MachineSpec",
    "MaterializeSink",
    "MemoryLayout",
    "MulticoreResult",
    "ReuseProfile",
    "SIM_ENGINES",
    "SpillSink",
    "StreamingBucketedSeries",
    "StreamingHierarchy",
    "StreamingReuse",
    "TRACE_MANIFEST",
    "TRACE_MODES",
    "TraceBuilder",
    "TraceSink",
    "affinity_sockets",
    "batched_levels",
    "bucketed_series",
    "calibrated_machine",
    "extra_miss_cycles",
    "hits_under_capacity",
    "iter_line_windows",
    "max_elements_within",
    "modeled_time",
    "observe_hierarchy_stats",
    "per_array_breakdown",
    "profile_from_distances",
    "profile_line_size",
    "replay_chunked_trace",
    "replay_trace",
    "replay_trace_windows",
    "resolve_machine",
    "reuse_distances",
    "simulate_multicore",
    "simulate_multicore_sharded",
    "simulate_socket",
    "simulate_trace",
    "simulate_trace_batched",
    "simulate_trace_streaming",
    "socket_shards",
    "streaming_reuse_distances",
    "tiny_machine",
    "trace_summary",
    "westmere_ex",
]
