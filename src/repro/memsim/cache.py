"""Set-associative LRU cache simulation (single level and inclusive stack).

:class:`LRUCache` simulates one set-associative cache with true LRU
replacement per set. :class:`CacheHierarchy` stacks three of them into
the inclusive L1/L2/L3 hierarchy of Westmere-EX: a miss at a level fills
every level, and an eviction from an outer level back-invalidates the
inner levels (inclusive semantics).

The simulators count, per level, the accesses that reached the level and
the misses among them, which are exactly the PAPI quantities the paper's
Figure 9 and Table 3 report (``miss rate(LX) = misses(LX) /
accesses(LX)`` with ``accesses(L2) = misses(L1)`` etc.).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import obs
from ..config import RunConfig, resolve_config
from .machine import CacheSpec, MachineSpec

__all__ = [
    "LRUCache",
    "LevelStats",
    "HierarchyStats",
    "CacheHierarchy",
    "observe_hierarchy_stats",
    "simulate_trace",
]


def observe_hierarchy_stats(stats: "HierarchyStats") -> None:
    """Add a simulation's per-level access/hit/miss counts to the active
    metrics registry (no-op when tracing is disabled)."""
    if not obs.is_enabled():
        return
    for level in stats.levels():
        prefix = f"memsim.{level.name.lower()}"
        obs.add(f"{prefix}.accesses", level.accesses)
        obs.add(f"{prefix}.hits", level.hits)
        obs.add(f"{prefix}.misses", level.misses)
    obs.add("memsim.memory.accesses", stats.memory_accesses)


@dataclass
class LevelStats:
    """Access/hit/miss counters of one cache level."""

    name: str
    accesses: int = 0
    hits: int = 0

    @property
    def misses(self) -> int:
        return self.accesses - self.hits

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def as_row(self) -> dict:
        return {
            "level": self.name,
            "accesses": self.accesses,
            "hits": self.hits,
            "misses": self.misses,
            "miss_rate": self.miss_rate,
        }


class LRUCache:
    """One set-associative cache over line ids.

    Lines map to sets by ``line % num_sets``; each set keeps its ways in
    most-recently-used-first order (Python lists: ways are small, so
    linear membership tests beat fancier structures at this scale).

    ``policy`` selects the replacement discipline:

    ``"lru"`` (default)
        True least-recently-used — the paper's Section 3.1 model.
    ``"fifo"``
        Insertion order only; hits do not refresh recency.
    ``"random"``
        Uniform random victim (deterministic via an internal LCG so
        simulations stay reproducible).

    The non-LRU policies exist for the replacement-policy ablation
    bench: the paper's analysis assumes LRU, and the ablation checks
    that the ordering *ranking* it reports is robust to the policy.
    """

    def __init__(self, spec: CacheSpec, *, policy: str = "lru"):
        if policy not in ("lru", "fifo", "random"):
            raise ValueError(f"unknown replacement policy {policy!r}")
        self.spec = spec
        self.policy = policy
        self.num_sets = spec.num_sets
        self.ways = spec.associativity
        self._sets: list[list[int]] = [[] for _ in range(self.num_sets)]
        self._lcg = 0x9E3779B9  # deterministic victim picker for "random"

    def reset(self) -> None:
        """Empty every set (cold caches)."""
        for s in self._sets:
            s.clear()

    def _next_random(self, modulus: int) -> int:
        self._lcg = (self._lcg * 1103515245 + 12345) & 0x7FFFFFFF
        return self._lcg % modulus

    def access(self, line: int) -> tuple[bool, int]:
        """Touch ``line``; returns ``(hit, evicted_line)``.

        ``evicted_line`` is -1 when nothing was evicted.
        """
        s = self._sets[line % self.num_sets]
        if self.policy == "lru":
            try:
                s.remove(line)
                s.insert(0, line)
                return True, -1
            except ValueError:
                s.insert(0, line)
                if len(s) > self.ways:
                    return False, s.pop()
                return False, -1
        # FIFO / random: hits leave the queue untouched.
        if line in s:
            return True, -1
        s.insert(0, line)
        if len(s) > self.ways:
            if self.policy == "fifo":
                return False, s.pop()
            victim = 1 + self._next_random(len(s) - 1)  # never the newcomer
            return False, s.pop(victim)
        return False, -1

    def invalidate(self, line: int) -> bool:
        """Drop ``line`` if present (inclusive back-invalidation)."""
        s = self._sets[line % self.num_sets]
        try:
            s.remove(line)
            return True
        except ValueError:
            return False

    def contains(self, line: int) -> bool:
        """True when ``line`` is currently resident."""
        return line in self._sets[line % self.num_sets]

    def resident_lines(self) -> set[int]:
        """The set of all currently resident line ids (for tests)."""
        out: set[int] = set()
        for s in self._sets:
            out.update(s)
        return out


@dataclass
class HierarchyStats:
    """Per-level statistics of a hierarchy simulation."""

    l1: LevelStats
    l2: LevelStats
    l3: LevelStats

    @property
    def memory_accesses(self) -> int:
        return self.l3.misses

    def levels(self) -> tuple[LevelStats, LevelStats, LevelStats]:
        return (self.l1, self.l2, self.l3)

    def merged_with(self, other: "HierarchyStats") -> "HierarchyStats":
        def add(a: LevelStats, b: LevelStats) -> LevelStats:
            return LevelStats(a.name, a.accesses + b.accesses, a.hits + b.hits)

        return HierarchyStats(
            add(self.l1, other.l1), add(self.l2, other.l2), add(self.l3, other.l3)
        )


class CacheHierarchy:
    """Inclusive three-level hierarchy fed with a line-id stream.

    ``shared_l3`` lets several hierarchies (cores) share one L3 cache
    object; back-invalidation is then delivered only to the core that
    performed the evicting access, which under-approximates invalidation
    traffic slightly but keeps the single-pass simulation simple (noted
    in DESIGN.md; irrelevant for miss-count comparisons between
    orderings).
    """

    def __init__(
        self,
        machine: MachineSpec,
        shared_l3: LRUCache | None = None,
        *,
        next_line_prefetch: bool = False,
        policy: str = "lru",
    ):
        self.machine = machine
        self.l1 = LRUCache(machine.l1, policy=policy)
        self.l2 = LRUCache(machine.l2, policy=policy)
        self.l3 = (
            shared_l3
            if shared_l3 is not None
            else LRUCache(machine.l3, policy=policy)
        )
        self.next_line_prefetch = next_line_prefetch
        self.prefetches_issued = 0
        self.stats = HierarchyStats(
            LevelStats("L1"), LevelStats("L2"), LevelStats("L3")
        )
        # Per-level counter objects bound once; access() is the hot loop
        # and must not chase stats.lX on every event.
        self._s1 = self.stats.l1
        self._s2 = self.stats.l2
        self._s3 = self.stats.l3

    def _fill(self, line: int) -> None:
        """Install a line in every level without touching demand stats
        (used by the prefetcher)."""
        if self.l1.contains(line):
            return
        _, ev = self.l1.access(line)
        _, ev2 = self.l2.access(line)
        if ev2 >= 0:
            self.l1.invalidate(ev2)
        _, ev3 = self.l3.access(line)
        if ev3 >= 0:
            self.l2.invalidate(ev3)
            self.l1.invalidate(ev3)

    def access(self, line: int) -> int:
        """Touch a line; returns the level that served it (1, 2, 3, 4=memory)."""
        s1 = self._s1
        s1.accesses += 1
        hit, ev = self.l1.access(line)
        if hit:
            s1.hits += 1
            return 1
        if self.next_line_prefetch:
            # Sequential next-line prefetch, triggered by demand misses
            # (Section 3.1 notes real fetching is line-granular with
            # prefetching; the ablation bench measures its effect).
            self.prefetches_issued += 1
            self._fill(line + 1)
        # L1 filled `line` already; handle its eviction silently (L1
        # victims stay in L2/L3 under inclusion).
        s2 = self._s2
        s2.accesses += 1
        hit, ev2 = self.l2.access(line)
        if hit:
            s2.hits += 1
            return 2
        if ev2 >= 0:
            # Inclusive: a line leaving L2 must leave L1.
            self.l1.invalidate(ev2)
        s3 = self._s3
        s3.accesses += 1
        hit, ev3 = self.l3.access(line)
        if hit:
            s3.hits += 1
            return 3
        if ev3 >= 0:
            self.l2.invalidate(ev3)
            self.l1.invalidate(ev3)
        return 4

    # run() processes the stream in fixed-size chunks: chunk.tolist()
    # yields plain Python ints (np.int64 scalars are several times
    # slower in the set lists) without materializing the whole stream.
    _RUN_CHUNK = 1 << 16

    def run(self, lines: np.ndarray) -> "HierarchyStats":
        """Feed a whole stream; returns the (cumulative) stats."""
        arr = np.asarray(lines, dtype=np.int64)
        if self.next_line_prefetch:
            # Prefetch path: _fill mutates every level mid-event, so use
            # the straightforward per-event method.
            access = self.access
            for start in range(0, arr.size, self._RUN_CHUNK):
                for line in arr[start : start + self._RUN_CHUNK].tolist():
                    access(line)
            return self.stats
        # Demand-only path: same transitions as access(), with the level
        # counters hoisted into locals and flushed once at the end.
        l1_access = self.l1.access
        l2_access = self.l2.access
        l3_access = self.l3.access
        l1_inval = self.l1.invalidate
        l2_inval = self.l2.invalidate
        n1 = h1 = n2 = h2 = n3 = h3 = 0
        for start in range(0, arr.size, self._RUN_CHUNK):
            for line in arr[start : start + self._RUN_CHUNK].tolist():
                n1 += 1
                hit, _ev = l1_access(line)
                if hit:
                    h1 += 1
                    continue
                n2 += 1
                hit, ev2 = l2_access(line)
                if hit:
                    h2 += 1
                    continue
                if ev2 >= 0:
                    l1_inval(ev2)
                n3 += 1
                hit, ev3 = l3_access(line)
                if hit:
                    h3 += 1
                    continue
                if ev3 >= 0:
                    l2_inval(ev3)
                    l1_inval(ev3)
        self._s1.accesses += n1
        self._s1.hits += h1
        self._s2.accesses += n2
        self._s2.hits += h2
        self._s3.accesses += n3
        self._s3.hits += h3
        return self.stats


def simulate_trace(
    lines: np.ndarray,
    machine: MachineSpec | str,
    *,
    config: RunConfig | None = None,
    next_line_prefetch: bool = False,
    policy: str = "lru",
    sim_engine: str | None = None,
) -> HierarchyStats:
    """One-core simulation of a line-id stream on ``machine``.

    ``machine`` is a :class:`MachineSpec`; a calibration-profile name
    string is accepted through :func:`repro.memsim.machine.resolve_machine`
    (deprecated — the machine is then calibrated to the stream's line
    footprint).

    The simulator is selected by ``config.sim_engine``:
    ``config=RunConfig(sim_engine="batched")`` routes through the
    vectorized stack-distance engine in :mod:`repro.memsim.batched`; it
    produces bit-identical per-level counts (falling back to this
    reference internally where the cascade cannot stay exact).  The
    bare ``sim_engine=`` keyword is a deprecated shim for the same
    selection.  ``config.backend`` picks the array namespace of the
    batched engine's filter stages (counts are backend-invariant).

    ``config.stream_window_events`` additionally bounds peak memory: the
    stream is replayed through the selected engine in windows of that
    many events with carried state (:mod:`repro.memsim.streaming`),
    still with bit-identical counts.
    """
    config = resolve_config(config, sim_engine=sim_engine)
    if not isinstance(machine, MachineSpec):
        from .machine import profile_line_size, resolve_machine

        footprint = None
        if isinstance(machine, str):
            arr = np.asarray(lines)
            lsz = profile_line_size(machine)
            footprint = (int(arr.max()) + 1) * lsz if arr.size else lsz
        machine = resolve_machine(machine, footprint_bytes=footprint)
    engine = config.sim_engine
    window = config.stream_window_events
    with obs.span(
        "memsim.simulate_trace",
        engine=engine,
        machine=machine.name,
        backend=config.backend,
    ) as sp:
        sp.add_event(int(np.asarray(lines).size))
        if engine not in ("reference", "batched"):
            raise ValueError(f"unknown sim engine {engine!r}")
        if window is not None:
            from .streaming import StreamingHierarchy, iter_line_windows

            sim = StreamingHierarchy(
                machine,
                sim_engine=engine,
                next_line_prefetch=next_line_prefetch,
                policy=policy,
            )
            for win in iter_line_windows(lines, window):
                sim.consume(win)
            stats = sim.stats
            obs.add("memsim.stream.windows", sim.windows)
            obs.gauge_set(
                "memsim.stream.peak_window_events", sim.peak_window_events
            )
            obs.gauge_set("memsim.stream.carry_events", sim.carry_events)
        elif engine == "batched":
            from .batched import simulate_trace_batched

            stats = simulate_trace_batched(
                lines,
                machine,
                next_line_prefetch=next_line_prefetch,
                policy=policy,
                backend=config.backend,
            )
        else:
            stats = CacheHierarchy(
                machine, next_line_prefetch=next_line_prefetch, policy=policy
            ).run(lines)
        observe_hierarchy_stats(stats)
        return stats
