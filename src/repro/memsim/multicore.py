"""Multicore cache simulation: private L1/L2, shared per-socket L3.

Models the parallel runs of Section 5.3. The parallel smoother
statically partitions the interior vertices into ``p`` contiguous blocks
(the paper's OpenMP static schedule); each core's accesses are recorded
separately and fed to a private L1/L2 pair, while all cores of a socket
share one L3. Cores of one socket run "concurrently": their streams are
interleaved round-robin in small quanta, so they contend for the shared
L3 the way simultaneous threads do.

Thread placement follows an affinity policy:

``compact``
    cores fill socket 0 first (the paper's ``KMP_AFFINITY=compact``);
    aggregate L3 grows only at 8-core boundaries.
``scatter``
    cores round-robin across sockets; aggregate L3 grows with the first
    four threads — the paper invokes exactly this "scattered"
    distribution as the likely cause of its super-linear 1->4 core
    speedups.

The modeled parallel execution time is the critical path: the largest
per-core modeled time (Equation 2 plus base cost), since the smoothing
iterations are bulk-synchronous.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import obs
from ..config import RunConfig, resolve_config
from .cache import (
    CacheHierarchy,
    HierarchyStats,
    LevelStats,
    LRUCache,
    observe_hierarchy_stats,
)
from .machine import MachineSpec
from .timing import CostBreakdown, modeled_time

__all__ = [
    "MEM_ENGINES",
    "affinity_sockets",
    "CoreResult",
    "MulticoreResult",
    "simulate_multicore",
    "simulate_socket",
]

#: Multicore replay engines: simulate sockets in this process one after
#: the other, or distribute them to worker processes (identical counts;
#: see :mod:`repro.memsim.sharded`).
MEM_ENGINES = ("sequential", "sharded")


def affinity_sockets(
    num_cores: int, machine: MachineSpec, policy: str = "compact"
) -> np.ndarray:
    """Socket id for each of ``num_cores`` threads under a placement policy."""
    if num_cores < 1 or num_cores > machine.num_cores:
        raise ValueError(
            f"num_cores must be in 1..{machine.num_cores}, got {num_cores}"
        )
    cores = np.arange(num_cores)
    if policy == "compact":
        return cores // machine.cores_per_socket
    if policy == "scatter":
        return cores % machine.num_sockets
    raise ValueError(f"unknown affinity policy {policy!r}")


@dataclass
class CoreResult:
    """Simulation outcome of one core."""

    core: int
    socket: int
    stats: HierarchyStats
    cost: CostBreakdown


@dataclass
class MulticoreResult:
    """Aggregate outcome of a ``p``-core simulation."""

    machine: MachineSpec
    affinity: str
    per_core: list[CoreResult]

    @property
    def num_cores(self) -> int:
        return len(self.per_core)

    @property
    def combined(self) -> HierarchyStats:
        total = HierarchyStats(LevelStats("L1"), LevelStats("L2"), LevelStats("L3"))
        for cr in self.per_core:
            total = total.merged_with(cr.stats)
        return total

    @property
    def modeled_seconds(self) -> float:
        """Critical-path time: the slowest core bounds the iteration."""
        return max(cr.cost.seconds(self.machine) for cr in self.per_core)

    @property
    def total_accesses(self) -> int:
        return sum(cr.cost.num_accesses for cr in self.per_core)

    def access_counts(self) -> dict[str, int]:
        """L2/L3/memory access counts (Figure 11's three panels)."""
        c = self.combined
        return {
            "L2": c.l2.accesses,
            "L3": c.l3.accesses,
            "memory": c.l3.misses,
        }


def simulate_socket(
    socket_id: int,
    member_cores: list[int],
    streams: list[np.ndarray],
    machine: MachineSpec,
    *,
    quantum: int = 64,
    sim_engine: str = "reference",
    stream_window_events: int | None = None,
    backend: str | None = None,
) -> list[CoreResult]:
    """Simulate one socket: its cores' streams against one shared L3.

    A socket is a closed system — cores of different sockets share no
    cache state — so this is the exact unit the sharded replay
    (:mod:`repro.memsim.sharded`) distributes to worker processes. Both
    the sequential and the sharded engine run this very function, which
    is what makes their per-level counts identical by construction.

    ``sim_engine="batched"`` applies to single-core sockets only, where
    the socket degenerates to a private hierarchy and the vectorized
    cascade is exact; multi-core sockets interleave through the shared
    L3 and always use the reference replay.

    ``stream_window_events`` bounds peak memory: single-core sockets
    replay through :class:`repro.memsim.streaming.StreamingHierarchy`
    window by window, and multi-core interleaves materialize only one
    quantum of each stream at a time — so memory-mapped streams are
    never pulled in whole. Counts are bit-identical either way.
    """
    if sim_engine not in ("reference", "batched"):
        raise ValueError(f"unknown sim engine {sim_engine!r}")
    with obs.span(
        "memsim.socket",
        socket=int(socket_id),
        cores=len(member_cores),
        engine=sim_engine,
    ) as sp:
        sp.add_event(int(sum(np.asarray(s).size for s in streams)))
        results = _simulate_socket_impl(
            socket_id,
            member_cores,
            streams,
            machine,
            quantum,
            sim_engine,
            stream_window_events,
            backend,
        )
        for cr in results:
            observe_hierarchy_stats(cr.stats)
        return results


def _simulate_socket_impl(
    socket_id: int,
    member_cores: list[int],
    streams: list[np.ndarray],
    machine: MachineSpec,
    quantum: int,
    sim_engine: str,
    stream_window_events: int | None = None,
    backend: str | None = None,
) -> list[CoreResult]:
    if len(member_cores) == 1 and (
        sim_engine == "batched" or stream_window_events is not None
    ):
        # One core: no shared-L3 contention, the socket is exactly a
        # private three-level hierarchy and the batched cascade applies
        # (windowed through the streaming engine when requested).
        if stream_window_events is not None:
            from .streaming import StreamingHierarchy, iter_line_windows

            sim = StreamingHierarchy(machine, sim_engine=sim_engine)
            for win in iter_line_windows(streams[0], stream_window_events):
                sim.consume(win)
            stats = sim.stats
            obs.add("memsim.stream.windows", sim.windows)
            obs.gauge_set("memsim.stream.carry_events", sim.carry_events)
        else:
            from .batched import batched_levels

            stats, _ = batched_levels(streams[0], machine, backend=backend)
        return [
            CoreResult(
                core=int(member_cores[0]),
                socket=int(socket_id),
                stats=stats,
                cost=modeled_time(stats, machine),
            )
        ]
    shared_l3 = LRUCache(machine.l3)
    hierarchies = [CacheHierarchy(machine, shared_l3=shared_l3) for _ in member_cores]
    if stream_window_events is None:
        line_lists = [
            np.asarray(stream, dtype=np.int64).tolist() for stream in streams
        ]
        sizes = [len(s) for s in line_lists]
    else:
        # Streaming mode: keep the (possibly memory-mapped) arrays and
        # materialize one quantum at a time in the interleave loop.
        line_lists = [np.asarray(stream, dtype=np.int64) for stream in streams]
        sizes = [int(s.size) for s in line_lists]
    cursors = [0] * len(member_cores)
    live = list(range(len(member_cores)))
    while live:
        still = []
        for k in live:
            stream = line_lists[k]
            lo = cursors[k]
            hi = min(lo + quantum, sizes[k])
            access = hierarchies[k].access
            chunk = (
                stream[lo:hi]
                if stream_window_events is None
                else stream[lo:hi].tolist()
            )
            for line in chunk:
                access(line)
            cursors[k] = hi
            if hi < sizes[k]:
                still.append(k)
        live = still
    return [
        CoreResult(
            core=int(core),
            socket=int(socket_id),
            stats=h.stats,
            cost=modeled_time(h.stats, machine),
        )
        for core, h in zip(member_cores, hierarchies)
    ]


def simulate_multicore(
    lines_per_core: list[np.ndarray],
    machine: MachineSpec | str,
    *,
    config: RunConfig | None = None,
    affinity: str = "compact",
    quantum: int = 64,
    engine: str | None = None,
    max_workers: int | None = None,
    sim_engine: str | None = None,
) -> MulticoreResult:
    """Simulate per-core line streams on the machine's cache topology.

    Parameters
    ----------
    lines_per_core:
        One line-id stream per thread (from the partitioned smoother).
    config:
        A :class:`repro.config.RunConfig`; ``config.mem_engine`` selects
        the replay engine (``"sequential"`` simulates sockets one after
        the other in this process, ``"sharded"`` distributes them to
        worker processes — per-level counts are identical either way)
        and ``config.sim_engine`` the per-socket simulator
        (``"reference"`` or ``"batched"``; the batched engine vectorizes
        single-core sockets exactly and composes with either replay
        engine).  ``config.backend`` applies to the sequential replay's
        batched sockets; sharded worker processes always run numpy
        (device contexts do not fork), with identical counts.
    affinity:
        ``"compact"`` or ``"scatter"`` (see module docstring).
    quantum:
        Number of consecutive accesses one core executes before the
        round-robin hands the socket to the next core; models the
        fine-grained interleaving of simultaneously running threads.
    engine, sim_engine:
        Deprecated shims for ``config=RunConfig(mem_engine=...)`` and
        ``config=RunConfig(sim_engine=...)``.
    max_workers:
        Worker-process cap for the sharded engine (ignored otherwise).
    """
    config = resolve_config(config, mem_engine=engine, sim_engine=sim_engine)
    if not isinstance(machine, MachineSpec):
        from .machine import profile_line_size, resolve_machine

        footprint = None
        if isinstance(machine, str):
            lsz = profile_line_size(machine)
            hi = max(
                (
                    int(np.asarray(s).max())
                    for s in lines_per_core
                    if np.asarray(s).size
                ),
                default=0,
            )
            footprint = (hi + 1) * lsz
        machine = resolve_machine(machine, footprint_bytes=footprint)
    mem_engine = config.mem_engine
    with obs.span(
        "memsim.multicore",
        mem_engine=mem_engine,
        sim_engine=config.sim_engine,
        backend=config.backend,
        affinity=affinity,
        cores=len(lines_per_core),
    ):
        if mem_engine == "sharded":
            from .sharded import simulate_multicore_sharded

            return simulate_multicore_sharded(
                lines_per_core,
                machine,
                affinity=affinity,
                quantum=quantum,
                max_workers=max_workers,
                sim_engine=config.sim_engine,
                stream_window_events=config.stream_window_events,
            )
        if mem_engine != "sequential":
            raise ValueError(
                f"unknown replay engine {mem_engine!r}; "
                f"choose from {MEM_ENGINES}"
            )
        p = len(lines_per_core)
        sockets = affinity_sockets(p, machine, affinity)
        results: list[CoreResult | None] = [None] * p
        for socket_id in np.unique(sockets):
            member_cores = [int(c) for c in np.flatnonzero(sockets == socket_id)]
            for cr in simulate_socket(
                int(socket_id),
                member_cores,
                [lines_per_core[c] for c in member_cores],
                machine,
                quantum=quantum,
                sim_engine=config.sim_engine,
                stream_window_events=config.stream_window_events,
                backend=config.backend,
            ):
                results[cr.core] = cr
        return MulticoreResult(
            machine=machine,
            affinity=affinity,
            per_core=[r for r in results if r is not None],
        )
