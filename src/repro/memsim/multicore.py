"""Multicore cache simulation: private L1/L2, shared per-socket L3.

Models the parallel runs of Section 5.3. The parallel smoother
statically partitions the interior vertices into ``p`` contiguous blocks
(the paper's OpenMP static schedule); each core's accesses are recorded
separately and fed to a private L1/L2 pair, while all cores of a socket
share one L3. Cores of one socket run "concurrently": their streams are
interleaved round-robin in small quanta, so they contend for the shared
L3 the way simultaneous threads do.

Thread placement follows an affinity policy:

``compact``
    cores fill socket 0 first (the paper's ``KMP_AFFINITY=compact``);
    aggregate L3 grows only at 8-core boundaries.
``scatter``
    cores round-robin across sockets; aggregate L3 grows with the first
    four threads — the paper invokes exactly this "scattered"
    distribution as the likely cause of its super-linear 1->4 core
    speedups.

The modeled parallel execution time is the critical path: the largest
per-core modeled time (Equation 2 plus base cost), since the smoothing
iterations are bulk-synchronous.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .cache import CacheHierarchy, HierarchyStats, LevelStats, LRUCache
from .machine import MachineSpec
from .timing import CostBreakdown, modeled_time

__all__ = ["affinity_sockets", "CoreResult", "MulticoreResult", "simulate_multicore"]


def affinity_sockets(
    num_cores: int, machine: MachineSpec, policy: str = "compact"
) -> np.ndarray:
    """Socket id for each of ``num_cores`` threads under a placement policy."""
    if num_cores < 1 or num_cores > machine.num_cores:
        raise ValueError(
            f"num_cores must be in 1..{machine.num_cores}, got {num_cores}"
        )
    cores = np.arange(num_cores)
    if policy == "compact":
        return cores // machine.cores_per_socket
    if policy == "scatter":
        return cores % machine.num_sockets
    raise ValueError(f"unknown affinity policy {policy!r}")


@dataclass
class CoreResult:
    """Simulation outcome of one core."""

    core: int
    socket: int
    stats: HierarchyStats
    cost: CostBreakdown


@dataclass
class MulticoreResult:
    """Aggregate outcome of a ``p``-core simulation."""

    machine: MachineSpec
    affinity: str
    per_core: list[CoreResult]

    @property
    def num_cores(self) -> int:
        return len(self.per_core)

    @property
    def combined(self) -> HierarchyStats:
        total = HierarchyStats(LevelStats("L1"), LevelStats("L2"), LevelStats("L3"))
        for cr in self.per_core:
            total = total.merged_with(cr.stats)
        return total

    @property
    def modeled_seconds(self) -> float:
        """Critical-path time: the slowest core bounds the iteration."""
        return max(cr.cost.seconds(self.machine) for cr in self.per_core)

    @property
    def total_accesses(self) -> int:
        return sum(cr.cost.num_accesses for cr in self.per_core)

    def access_counts(self) -> dict[str, int]:
        """L2/L3/memory access counts (Figure 11's three panels)."""
        c = self.combined
        return {
            "L2": c.l2.accesses,
            "L3": c.l3.accesses,
            "memory": c.l3.misses,
        }


def simulate_multicore(
    lines_per_core: list[np.ndarray],
    machine: MachineSpec,
    *,
    affinity: str = "compact",
    quantum: int = 64,
) -> MulticoreResult:
    """Simulate per-core line streams on the machine's cache topology.

    Parameters
    ----------
    lines_per_core:
        One line-id stream per thread (from the partitioned smoother).
    affinity:
        ``"compact"`` or ``"scatter"`` (see module docstring).
    quantum:
        Number of consecutive accesses one core executes before the
        round-robin hands the socket to the next core; models the
        fine-grained interleaving of simultaneously running threads.
    """
    p = len(lines_per_core)
    sockets = affinity_sockets(p, machine, affinity)
    # Group cores per socket; each socket owns one shared L3.
    results: list[CoreResult | None] = [None] * p
    for socket_id in np.unique(sockets):
        member_cores = np.flatnonzero(sockets == socket_id)
        shared_l3 = LRUCache(machine.l3)
        hierarchies = {
            int(c): CacheHierarchy(machine, shared_l3=shared_l3)
            for c in member_cores
        }
        streams = {
            int(c): np.asarray(lines_per_core[int(c)], dtype=np.int64).tolist()
            for c in member_cores
        }
        cursors = {int(c): 0 for c in member_cores}
        live = [int(c) for c in member_cores]
        while live:
            still = []
            for c in live:
                stream = streams[c]
                lo = cursors[c]
                hi = min(lo + quantum, len(stream))
                access = hierarchies[c].access
                for line in stream[lo:hi]:
                    access(line)
                cursors[c] = hi
                if hi < len(stream):
                    still.append(c)
            live = still
        for c in member_cores:
            c = int(c)
            stats = hierarchies[c].stats
            results[c] = CoreResult(
                core=c,
                socket=int(socket_id),
                stats=stats,
                cost=modeled_time(stats, machine),
            )
    return MulticoreResult(
        machine=machine,
        affinity=affinity,
        per_core=[r for r in results if r is not None],
    )
