"""Batched (vectorized) simulation of the inclusive cache hierarchy.

The reference :class:`~repro.memsim.cache.CacheHierarchy` replays one
event at a time through Python list operations. This engine computes the
same per-level access/hit/miss counts from vectorized *within-set stack
distances* instead (the paper's Section 3.1 equivalence: under LRU an
access hits a ``W``-way set iff the number of distinct lines mapped to
its set since its previous access is ``< W``), cascading the predicted
miss stream of each level into the next — exactly the reference's
``accesses(L2) = misses(L1)`` accounting.

Hit resolution is a cascade of cheap exact filters (each decides a large
fraction of accesses in O(1) vectorized work) with an exact scan for the
remainder:

1. ``same-set events in (prev, t) < W`` proves a hit (at most that many
   distinct lines fit in the window) — per-set event ranks make this two
   gathers.
2. ``cold same-set accesses in (prev, t) >= W`` proves a miss (every
   first touch is a distinct line) — two gathers into a per-set cold
   prefix-count array. This kills the long reuses that dominate
   single-pass mesh traces.
3. Survivors scan forward from ``prev`` for the ``W``-th *fresh* arrival
   (first occurrence of a line since ``prev``): hit iff it lands at or
   after ``t``. The scan is chunk-vectorized over set-local event ranks;
   the handful of queries with pathologically sparse windows fall back
   to the exact straddling-interval count ``d = F(t) - G(t)`` (``F`` =
   cold accesses before ``t``, ``G`` = per-forward-gap-class range
   counts).

Inclusive back-invalidation is where the pure cascade can diverge from
the reference: when L2 (or L3) evicts a victim still resident in an
inner level, the reference removes it there too, which the pure
per-level LRU evolution does not see. Removing a resident line both
changes the victim's own future hits and frees a slot that lets *other*
lines survive one extra arrival, so the exact criterion is residency:
the invalidation at eviction time ``T`` is consequential iff the victim
is still resident in an inner level at ``T`` — i.e. fewer than that
level's ``W`` fresh same-set arrivals occurred since the victim's last
inner touch ``i`` at or before ``T``. Verifying this stays cheap
because the W-th same-set outer event after the evicted copy
lower-bounds ``T``: when the victim's last inner touch before its next
outer access already precedes that bound, ``i`` is known without
locating ``T``, and a cold-count filter or a short bounded scan against
the bound then certifies eviction (non-residency) for almost every
candidate. Only the rare leftovers compute the exact ``T`` (W-th fresh
outer arrival) and run the exhaustive residency scan. If a
consequential invalidation *is* found, the exact prefix before the
earliest one is committed and the remainder replays through a reference
hierarchy seeded with the (provably identical) cache state at that
point. Exactness is therefore unconditional for LRU demand streams;
``fifo``/``random`` policies and next-line prefetch fall back to the
reference wholesale (stack distances model neither).
"""

from __future__ import annotations

import numpy as np

from .cache import CacheHierarchy, HierarchyStats, LevelStats, LRUCache
from .machine import MachineSpec

__all__ = ["simulate_trace_batched", "batched_levels", "SIM_ENGINES"]

SIM_ENGINES = ("reference", "batched")

# Forward-scan tuning: chunk width per vectorized step; the bounded loop
# runs until the surviving query set is tiny or the step budget is hit,
# then hands off to an exact fallback.
_SCAN_CHUNK = 24
_SCAN_MAX_STEPS = 40
_SCAN_MIN_ACTIVE = 192


def _argsort_stable(values: np.ndarray) -> np.ndarray:
    """Stable argsort, downcast to speed up the radix passes.

    Wide-range keys are sorted digit-by-digit (radix-65536): a stable
    sort by the high digit of a low-digit-sorted order is a
    lexicographic — hence numeric — sort, and two narrow counting sorts
    beat one wide comparison/radix sort by ~2x at the 1M-event scale.
    """
    if values.size == 0:
        return np.argsort(values, kind="stable")
    hi = int(values.max())
    if int(values.min()) < 0:
        return np.argsort(values, kind="stable")
    if hi < (1 << 15):
        return np.argsort(values.astype(np.int16), kind="stable")
    lo_order = np.argsort(
        (values & 0xFFFF).astype(np.uint16), kind="stable"
    )
    if hi < (1 << 16):
        return lo_order
    high = values[lo_order] >> 16
    return lo_order[_argsort_stable(high)]


class _LevelStream:
    """One cache level's access stream with its distance structures.

    Positions, ranks and link arrays are int32 (streams are far below
    2**31 events); composites that multiply by ``n`` are built in int64.
    """

    def __init__(
        self,
        lines: np.ndarray,
        num_sets: int,
        ways: int,
        order: np.ndarray | None = None,
        backend=None,
    ):
        # Device backend for the O(n) filter stages of solve_hits (the
        # scan/fallback stages stay host, where their chunked gathers
        # are already bandwidth-bound); None means pure numpy.
        self._xb = (
            backend if backend is not None and backend.name != "numpy" else None
        )
        self.lines = lines
        self.num_sets = num_sets
        self.ways = ways
        n = lines.size
        self.n = n
        self._prev = None
        self._nxt = None
        if n:
            # ``order`` (line-grouped, time-ordered positions) can be
            # handed down from the previous level's structures — a
            # subsequence of a valid grouping is a valid grouping — which
            # skips the argsort for L2/L3.
            if order is None:
                order = _argsort_stable(lines).astype(np.int32)
            sl = lines[order]
            same = sl[1:] == sl[:-1]
            self._order = order
            self.n_warm = int(np.count_nonzero(same))
            if self.n_warm:
                prev = np.full(n, -1, dtype=np.int32)
                nxt = np.full(n, n, dtype=np.int32)
                prev[order[1:][same]] = order[:-1][same]
                nxt[order[:-1][same]] = order[1:][same]
                self._prev = prev
                self._nxt = nxt
        else:
            self._order = np.empty(0, dtype=np.int32)
            self.n_warm = 0
        if num_sets > 1:
            sets = (lines % num_sets).astype(np.int32)
            self.sets = sets
            # set-grouped, time-ordered event positions (stable sort by
            # set id; radix on the narrow dtype).
            so = _argsort_stable(sets).astype(np.int32)
            self.so = so
            counts = np.bincount(sets, minlength=num_sets).astype(np.int32)
            starts = np.zeros(num_sets + 1, dtype=np.int32)
            np.cumsum(counts, out=starts[1:])
            self.set_starts = starts
            self._set_counts = counts
            ranks = np.empty(n, dtype=np.int32)
            ranks[so] = np.arange(n, dtype=np.int32) - np.repeat(
                starts[:-1], counts
            )
            self.set_ranks = ranks
        else:
            self.sets = None
            self.so = None
            self.set_starts = None
            self.set_ranks = None
            self._set_counts = None
        self._cr = None
        self._cold_so = None
        self._occ = None
        self._cold_comp = None
        self._last_comp = None
        self._prevs_so = None
        self._fo = None
        self._comp = None
        self._lr = None
        self._lt = None
        self._cb = None

    # -- lazy structures (only some traces / code paths need them) --

    @property
    def prev(self) -> np.ndarray:
        """Previous same-line position (-1 for first touches).

        All-cold streams have the constant answer; the hot paths
        shortcut on ``n_warm == 0`` before ever touching these, so the
        arrays only materialize for warm streams (where ``__init__``
        built them eagerly) or rare straggler paths.
        """
        if self._prev is None:
            self._prev = np.full(self.n, -1, dtype=np.int32)
        return self._prev

    @property
    def nxt(self) -> np.ndarray:
        """Next same-line position (``n`` for final touches)."""
        if self._nxt is None:
            self._nxt = np.full(self.n, self.n, dtype=np.int32)
        return self._nxt

    def _cold_build(self) -> None:
        """Cold (first-touch) prefix structures, built on first use.

        All-cold streams never reach the code paths that need them, so
        the two extra array passes are deferred out of ``__init__``.
        """
        iscold = self.prev < 0
        if self.sets is None:
            self._cr = np.cumsum(iscold, dtype=np.int32)
            self._cold_so = np.nonzero(iscold)[0].astype(np.int32)
        else:
            so = self.so
            cold_so = iscold[so]
            csum = np.cumsum(cold_so, dtype=np.int32)
            tot = np.bincount(self.sets[iscold], minlength=self.num_sets)
            excl = np.zeros(self.num_sets, dtype=np.int64)
            np.cumsum(tot[:-1], out=excl[1:])
            cr = np.empty(self.n, dtype=np.int32)
            cr[so] = csum - np.repeat(excl, self._set_counts).astype(np.int32)
            self._cr = cr
            self._cold_so = so[cold_so]

    @property
    def cr(self) -> np.ndarray:
        """Per-set cold-access prefix counts (cr[pos] = colds <= pos)."""
        if self._cr is None:
            self._cold_build()
        return self._cr

    @property
    def cold_so(self) -> np.ndarray:
        """Cold access positions in set-grouped, time-sorted order."""
        if self._cold_so is None:
            self._cold_build()
        return self._cold_so

    @property
    def occ_comp(self) -> np.ndarray:
        """Sorted (line, position) composite of every occurrence."""
        if self._occ is None:
            o = self._order.astype(np.int64)
            self._occ = self.lines[o].astype(np.int64) * self.n + o
        return self._occ

    @property
    def cold_comp(self) -> np.ndarray:
        """Sorted (set, position) composite of the cold accesses."""
        if self._cold_comp is None:
            cs = self.cold_so.astype(np.int64)
            if self.sets is None:
                self._cold_comp = cs
            else:
                self._cold_comp = self.sets[cs] * self.n + cs
        return self._cold_comp

    @property
    def prevs_so(self) -> np.ndarray:
        """``prev`` gathered into set-grouped order (scan working array)."""
        if self._prevs_so is None:
            self._prevs_so = (
                self.prev if self.so is None else self.prev[self.so]
            )
        return self._prevs_so

    def _last_positions(self) -> np.ndarray:
        if self._last_comp is None:
            last_pos = np.nonzero(self.nxt == self.n)[0]
            if self.sets is None:
                self._last_comp = last_pos
            else:
                self._last_comp = np.sort(
                    self.sets[last_pos].astype(np.int64) * self.n + last_pos
                )
        return self._last_comp

    def final_occ(self, victims: np.ndarray) -> np.ndarray:
        """Last stream position of each victim line (-1 when absent).

        In the full-trace cascade victims always occur; the streaming
        engine also asks about carry lines of an *outer* level that may
        never appear in this stream, hence the -1 branch.
        """
        if self._fo is None:
            if self.n == 0:
                self._fo = np.empty(0, dtype=np.int64)
            else:
                order = self._order
                sl = self.lines[order]
                group_end = np.empty(order.size, dtype=bool)
                group_end[-1:] = True
                group_end[:-1] = sl[1:] != sl[:-1]
                fo = np.full(int(self.lines.max()) + 1, -1, dtype=np.int64)
                fo[sl[group_end]] = order[group_end]
                self._fo = fo
        v = np.asarray(victims, dtype=np.int64)
        out = np.full(v.shape, -1, dtype=np.int64)
        ok = v < self._fo.size
        out[ok] = self._fo[v[ok]]
        return out

    def last_touch_before(
        self, victims: np.ndarray, times: np.ndarray
    ) -> np.ndarray:
        """Last occurrence of each victim at or before ``times`` (-1 when
        the victim has no occurrence in that range)."""
        occ = self.occ_comp
        v = victims.astype(np.int64)
        idx = np.searchsorted(occ, v * self.n + times, side="right") - 1
        pos = occ[np.maximum(idx, 0)]
        ok = (idx >= 0) & (pos // self.n == v)
        return np.where(ok, pos % self.n, np.int64(-1))

    @property
    def comp(self) -> np.ndarray:
        """Full sorted (set, position) composite of every event."""
        if self._comp is None:
            so = self.so.astype(np.int64)
            counts = np.diff(self.set_starts)
            self._comp = (
                np.repeat(np.arange(self.num_sets), counts) * self.n + so
            )
        return self._comp

    def rank_upto(self, sigma: np.ndarray, pos: np.ndarray) -> np.ndarray:
        """Absolute rank bound: events of set ``sigma`` at or before
        ``pos`` (``pos`` need not belong to ``sigma``)."""
        if self.sets is None:
            return pos + 1
        return np.searchsorted(self.comp, sigma * self.n + pos, side="right")

    # Cold-count lower bounds are answered from per-set, per-block
    # cumulative counts (gathers instead of keyed searchsorted); partial
    # blocks at the window edges are forfeited, which only ever makes
    # the bound smaller — safe for its use as an eviction certificate.
    _COLD_BLOCK = 1024

    def cold_lb(
        self, sigma: np.ndarray, lo: np.ndarray, hi: np.ndarray
    ) -> np.ndarray:
        """Lower bound on cold accesses of set ``sigma`` in ``(lo, hi]``."""
        B = self._COLD_BLOCK
        if self._cb is None:
            nb = self.n // B + 1
            cold_pos = self.cold_so.astype(np.int64)
            if self.sets is None:
                key = cold_pos // B
            else:
                key = self.sets[cold_pos].astype(np.int64) * nb + cold_pos // B
            counts = np.bincount(key, minlength=self.num_sets * nb)
            cb = np.zeros(self.num_sets * nb + 1, dtype=np.int32)
            np.cumsum(counts, out=cb[1:])
            self._cb = (cb, nb)
        cb, nb = self._cb
        base = sigma * nb
        b_lo = lo // B + 1  # first block fully inside the window
        b_hi = (hi + 1) // B  # blocks ending at or before hi+1
        return np.maximum(cb[base + np.maximum(b_hi, b_lo)] - cb[base + b_lo], 0)

    def last_suffix(self, pos: np.ndarray) -> np.ndarray:
        """Distinct same-set lines whose final occurrence is after ``pos``
        (``pos`` must be a final occurrence itself, excluded from the
        count)."""
        if self.n_warm == 0:
            # Every occurrence is final and distinct: the suffix count
            # is just the number of same-set events after ``pos``.
            if self.sets is None:
                return self.n - 1 - pos
            return self._set_counts[self.sets[pos]] - 1 - self.set_ranks[pos]
        if self._lr is None:
            is_last = self.nxt == self.n
            if self.sets is None:
                self._lr = np.cumsum(is_last, dtype=np.int32)
                self._lt = np.array([self._lr[-1]], dtype=np.int32)
            else:
                so = self.so
                last_so = is_last[so]
                csum = np.cumsum(last_so, dtype=np.int32)
                counts = np.diff(self.set_starts)
                tot = np.bincount(
                    self.sets[is_last], minlength=self.num_sets
                ).astype(np.int32)
                excl = np.zeros(self.num_sets, dtype=np.int64)
                np.cumsum(tot[:-1], out=excl[1:])
                lr = np.empty(self.n, dtype=np.int32)
                lr[so] = csum - np.repeat(excl, counts).astype(np.int32)
                self._lr = lr
                self._lt = tot
        if self.sets is None:
            return self._lt[0] - self._lr[pos]
        return self._lt[self.sets[pos]] - self._lr[pos]

    # -- helpers used by the exact fallback --

    def set_of(self, pos: np.ndarray) -> np.ndarray:
        if self.sets is None:
            return np.zeros(pos.shape, dtype=np.int64)
        return self.sets[pos].astype(np.int64)

    def comp_off(self, pos: np.ndarray) -> np.ndarray:
        """Composite offset of each position's set (0 for single-set
        position space)."""
        return self.set_of(pos) * self.n

    def solve_hits(self) -> np.ndarray:
        """Pure per-set LRU hit mask for every access of this stream."""
        n, W = self.n, self.ways
        hit = np.zeros(n, dtype=bool)
        if n == 0 or self.n_warm == 0:
            return hit
        prev = self.prev
        t_idx = np.nonzero(prev >= 0)[0]
        p_idx = prev[t_idx].astype(np.int64)
        if self._xb is not None:
            t_idx, p_idx = self._easy_stages_xp(hit, t_idx, p_idx)
        else:
            # 1. few same-set events in the window => hit.
            if self.sets is None:
                gap_events = t_idx - p_idx - 1
            else:
                gap_events = (
                    self.set_ranks[t_idx].astype(np.int64)
                    - self.set_ranks[p_idx]
                )
                gap_events -= 1
            easy_hit = gap_events < W
            hit[t_idx[easy_hit]] = True
            keep = ~easy_hit
            t_idx, p_idx = t_idx[keep], p_idx[keep]
            if t_idx.size:
                # 2. >= W cold same-set accesses in the window => miss.
                # t is warm, so cr[t] counts exactly the colds before
                # it; cr[p] includes p itself when p is the first touch.
                colds = self.cr[t_idx] - self.cr[p_idx]
                live = colds < W
                t_idx, p_idx = t_idx[live], p_idx[live]
        if t_idx.size == 0:
            return hit
        # 3. scan for the W-th fresh arrival in (prev, t).
        if self.sets is None:
            k_rank, end_rank = p_idx, t_idx
        else:
            base = self.set_starts[self.sets[t_idx]]
            k_rank = base + self.set_ranks[p_idx]
            end_rank = base + self.set_ranks[t_idx]
        ev, pending = _wth_fresh_after(self, p_idx, k_rank, end_rank)
        hit[t_idx] = ev >= n  # fewer than W fresh => distance < W
        if pending.size:
            d = self._hard_distances(t_idx[pending], p_idx[pending])
            hit[t_idx[pending]] = d < W
        return hit

    def _easy_stages_xp(
        self, hit: np.ndarray, t_idx: np.ndarray, p_idx: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Device rendition of the two O(n) filter stages of
        :meth:`solve_hits` — the same gap and cold-count arithmetic on
        the configured backend, with one host round-trip for the two
        boolean masks.  Returns the filtered ``(t_idx, p_idx)`` the
        host scan stage continues with; counts are exact because the
        filters are pure integer comparisons.
        """
        xb, W = self._xb, self.ways
        t_d = xb.asarray(t_idx)
        p_d = xb.asarray(p_idx)
        if self.sets is None:
            gap_events = t_d - p_d - 1
        else:
            ranks = xb.asarray(self.set_ranks.astype(np.int64))
            gap_events = ranks[t_d] - ranks[p_d] - 1
        easy_hit = gap_events < W
        cr = xb.asarray(self.cr.astype(np.int64))
        live = ~easy_hit & (cr[t_d] - cr[p_d] < W)
        xb.synchronize()
        easy_np = xb.to_numpy(easy_hit)
        live_np = xb.to_numpy(live)
        hit[t_idx[easy_np]] = True
        return t_idx[live_np], p_idx[live_np]

    def _hard_distances(
        self, t_q: np.ndarray, p_q: np.ndarray
    ) -> np.ndarray:
        """Exact within-set stack distance via the straddling-interval
        identity (fallback for scan-resistant queries)."""
        n, W = self.n, self.ways
        nxt = self.nxt
        span_q = t_q - p_q
        sigma = self.set_of(t_q)
        comp_off = sigma * n

        cold_comp = self.cold_comp
        last_comp = self._last_positions()
        if self.sets is None:
            cold_base = np.zeros(t_q.size, dtype=np.int64)
            last_base = cold_base
        else:
            cold_base = np.searchsorted(cold_comp, comp_off)
            last_base = np.searchsorted(last_comp, comp_off)

        # F(t): cold same-set accesses before t.
        F = np.searchsorted(cold_comp, comp_off + t_q) - cold_base
        # G(t), infinite-gap part: last occurrences at or before prev.
        G = (
            np.searchsorted(last_comp, comp_off + p_q, side="right")
            - last_base
        ).astype(np.int64)

        # Finite forward-gap classes; only g >= span > W can straddle.
        # Last occurrences (nxt == n) are the infinite class counted
        # above and must not reappear here.
        t_all = np.arange(n)
        cand = np.nonzero((nxt < n) & (nxt - t_all >= W + 1))[0]
        if cand.size:
            fg = nxt[cand].astype(np.int64) - cand
            if self.sets is None:
                ckey = fg
                qkey = span_q
            else:
                ckey = self.sets[cand].astype(np.int64) * (n + 1) + fg
                qkey = sigma * (n + 1) + span_q
            corder = np.argsort(ckey, kind="stable")  # time-sorted in class
            cand = cand[corder]
            ckey = ckey[corder]
            class_keys, class_starts = np.unique(ckey, return_index=True)
            class_ends = np.append(class_starts[1:], ckey.size)

            qorder = np.argsort(qkey, kind="stable")
            qkey_sorted = qkey[qorder]
            t_s, p_s = t_q[qorder], p_q[qorder]
            acc = np.zeros(t_q.size, dtype=np.int64)

            # Per set: classes descending by gap against queries
            # ascending by span; class g affects the prefix span <= g.
            set_sel = class_keys // (n + 1) if self.sets is not None else None
            q_set = qkey_sorted // (n + 1) if self.sets is not None else None
            for s_lo, s_hi, c_lo, c_hi in _set_blocks(
                q_set, set_sel, qkey_sorted.size, class_keys.size
            ):
                if self.sets is not None:
                    spans = qkey_sorted[s_lo:s_hi] % (n + 1)
                    gaps = class_keys[c_lo:c_hi] % (n + 1)
                else:
                    spans = qkey_sorted[s_lo:s_hi]
                    gaps = class_keys[c_lo:c_hi]
                for ci in range(c_hi - c_lo - 1, -1, -1):
                    g = int(gaps[ci])
                    na = int(np.searchsorted(spans, g, side="right"))
                    if na == 0:
                        break
                    lo = class_starts[c_lo + ci]
                    hi = class_ends[c_lo + ci]
                    cls = cand[lo:hi]
                    ts = t_s[s_lo : s_lo + na]
                    ps = p_s[s_lo : s_lo + na]
                    acc[s_lo : s_lo + na] += np.searchsorted(
                        cls, ps, side="right"
                    ) - np.searchsorted(cls, ts - g, side="left")
            G += _scatter_perm(acc, qorder)
        return F - G


def _scatter_perm(values: np.ndarray, perm: np.ndarray) -> np.ndarray:
    out = np.empty_like(values)
    out[perm] = values
    return out


def _subset_order(order: np.ndarray, member: np.ndarray) -> np.ndarray:
    """Line-grouped order of the subsequence selected by ``member``.

    A subsequence of a stable (line, time) grouping is itself a stable
    grouping, so the next level's order falls out of the previous
    level's without another argsort.
    """
    kept = order[member[order]]
    local = np.cumsum(member, dtype=np.int32)
    return local[kept] - np.int32(1)


def _set_blocks(q_set, c_set, nq, nc):
    """Aligned (query-slice, class-slice) blocks, one per cache set."""
    if q_set is None:
        yield 0, nq, 0, nc
        return
    sets = np.unique(np.concatenate([q_set, c_set]))
    q_b = np.searchsorted(q_set, sets)
    q_e = np.searchsorted(q_set, sets, side="right")
    c_b = np.searchsorted(c_set, sets)
    c_e = np.searchsorted(c_set, sets, side="right")
    for i in range(sets.size):
        if q_e[i] > q_b[i] and c_e[i] > c_b[i]:
            yield int(q_b[i]), int(q_e[i]), int(c_b[i]), int(c_e[i])


def _wth_fresh_after(
    stream: _LevelStream,
    k_pos: np.ndarray,
    k_rank: np.ndarray,
    end_rank: np.ndarray,
    exhaustive: bool = False,
) -> tuple[np.ndarray, np.ndarray]:
    """Position of the W-th fresh arrival in the set of each ``k``.

    ``k_pos`` is the reference position (freshness = ``prev <= k_pos``),
    ``k_rank`` its set-local rank, ``end_rank`` the exclusive set-local
    rank bound of the scan window. Returns ``(out, pending)``: ``out``
    holds the global position of the W-th fresh arrival or ``n`` when
    fewer than W occur in the window; ``pending`` the indices the
    bounded scan did not resolve (callers finish them via
    :meth:`_LevelStream._hard_distances`). With ``exhaustive=True`` the
    vector loop runs to completion and ``pending`` is always empty.
    """
    n, W = stream.n, stream.ways
    out = np.full(k_pos.size, n, dtype=np.int64)
    if k_pos.size == 0:
        return out, np.empty(0, dtype=np.int64)
    prevs = stream.prevs_so  # int32, set-grouped order
    posarr = stream.so  # None => rank space == position space
    max_rank = np.int32(prevs.size - 1)
    k32 = k_pos.astype(np.int32)
    active = np.arange(k_pos.size)
    cursor = (k_rank + 1).astype(np.int32)
    end32 = np.asarray(end_rank, dtype=np.int32)
    found = np.zeros(k_pos.size, dtype=np.int32)
    chunk = np.arange(_SCAN_CHUNK, dtype=np.int32)
    step = 0
    while active.size:
        rk = cursor[active][:, None] + chunk
        rk_c = np.minimum(rk, max_rank)
        fresh = (prevs[rk_c] <= k32[active][:, None]) & (
            rk < end32[active][:, None]
        )
        cum = np.cumsum(fresh, axis=1, dtype=np.int32) + found[active][:, None]
        hitmask = cum >= W
        done = hitmask[:, -1]  # cum is monotone per row
        first = np.argmax(hitmask, axis=1)
        rows = np.nonzero(done)[0]
        sel = rk_c[rows, first[rows]]
        out[active[rows]] = sel if posarr is None else posarr[sel]
        exhausted = ~done & (rk[:, -1] >= end32[active] - 1)
        keep = ~done & ~exhausted
        found[active] = cum[:, -1]
        cursor[active] += _SCAN_CHUNK
        active = active[keep]
        step += 1
        if not exhaustive and (
            step >= _SCAN_MAX_STEPS or active.size <= _SCAN_MIN_ACTIVE
        ):
            break
    return out, active


def _evicted_copies(stream: _LevelStream, hit: np.ndarray) -> np.ndarray:
    """Positions whose installed/refreshed copy is later evicted.

    A copy touched at ``k`` is evicted before its next touch iff that
    next touch misses; a *final* touch's copy is evicted iff at least
    ``W`` distinct other lines hit its set afterwards — equivalently,
    at least ``W`` same-set *last occurrences* lie strictly after ``k``.
    """
    n, W = stream.n, stream.ways
    if n == 0:
        return np.empty(0, dtype=np.int64)
    if stream.n_warm == 0:
        # Every copy is a final touch; its suffix of same-set events is
        # all distinct lines, so it is evicted iff at least W follow.
        if stream.sets is None:
            return np.arange(max(n - W, 0))
        suffix = stream._set_counts[stream.sets] - 1 - stream.set_ranks
        return np.nonzero(suffix >= W)[0]
    nxt = stream.nxt
    has_next = nxt < n
    ev_mask = np.zeros(n, dtype=bool)
    hn = np.nonzero(has_next)[0]
    ev_mask[hn] = ~hit[nxt[hn]]
    last = np.nonzero(~has_next)[0]
    if last.size:
        ev_mask[last] = stream.last_suffix(last) >= W
    return np.nonzero(ev_mask)[0]


def _nth_set_event_after(stream: _LevelStream, pos: np.ndarray) -> np.ndarray:
    """Stream position of the W-th same-set event after each ``pos``.

    Returns -1 where fewer than W same-set events follow (certified
    evicted copies always have at least W, so -1 only guards clipping).
    """
    n, W = stream.n, stream.ways
    if stream.sets is None:
        tgt = pos + W
        return np.where(tgt < n, np.minimum(tgt, n - 1), -1)
    sigma = stream.sets[pos]
    idx = stream.set_starts[sigma] + stream.set_ranks[pos] + np.int32(W)
    ok = idx < stream.set_starts[sigma + 1]
    out = stream.so[np.minimum(idx, n - 1)]
    return np.where(ok, out, np.int32(-1))


def _set_rank_of(stream: _LevelStream, pos: np.ndarray) -> np.ndarray:
    """Absolute set-local rank of each stream position."""
    if stream.sets is None:
        return pos
    return (
        stream.set_starts[stream.sets[pos]]
        + stream.set_ranks[pos].astype(np.int64)
    )


def _eviction_divergences(
    outer: _LevelStream,
    ev: np.ndarray,
    t_outer: np.ndarray,
    victims: np.ndarray,
    inners: list[tuple],
) -> np.ndarray:
    """Global times of consequential back-invalidations among ``ev``.

    ``ev`` are outer-stream positions of certified-evicted copies,
    ``t_outer`` maps outer positions to global time, ``victims`` the
    evicted line ids, and ``inners`` the levels the invalidation reaches
    (stream plus its position→global-time map, ``None`` for identity; an
    optional third element — default True — states whether equal stream
    lengths imply positional alignment, which holds for the full-trace
    cascade but not for the streaming engine's prefixed streams, whose
    lengths can coincide by accident).

    The streaming engine calls this with per-level carry prefixes
    injected at negative times. Two properties keep the logic intact:
    carry lines are distinct within a level (so a victim's next outer
    occurrence is always a real-time event), and a carry never exceeds
    ``W`` lines per set (so every certified eviction time lands at
    real time too). Victims may however be entirely absent from an
    *inner* prefixed stream; absence proves non-residency (the prefix
    enumerates exactly the inner level's residents), handled below by
    the ``absent`` masks.

    The invalidation at eviction time ``T`` changes future behaviour iff
    the victim is still *resident* in some inner level at ``T``: fewer
    than that level's ``W`` fresh same-set arrivals since the victim's
    last inner touch ``i <= T``. Residency is decided per inner level by
    a filter cascade keyed off ``Tmin``, the W-th same-set outer event
    after the copy (a lower bound on ``T``): when the victim's last
    inner touch ``hm`` before its next outer access satisfies
    ``hm <= Tmin``, then ``i = hm`` is known outright, and ``>= W`` cold
    arrivals in ``(i, Tmin]`` — or a bounded scan finding the W-th fresh
    arrival there — proves the victim already left the inner level
    before ``T``. Only unresolved candidates locate the exact ``T``
    (W-th fresh outer arrival before the next outer access) and run the
    exhaustive inner residency scan over ``(i, T]``.
    """
    m = ev.size
    if m == 0:
        return np.empty(0, dtype=np.int64)
    inners = [
        (entry[0], entry[1], entry[2] if len(entry) > 2 else True)
        for entry in inners
    ]
    tmin = _nth_set_event_after(outer, ev)
    valid = tmin >= 0
    if valid.all():
        tmin_glob = t_outer[tmin]
    else:
        tmin_glob = np.where(valid, t_outer[np.maximum(tmin, 0)], -1)
    # Next-outer-touch structures are only needed for warm inner levels
    # (and by stage 4, which rebuilds them for its few stragglers).
    if any(inner.n_warm for inner, _, _ in inners):
        nxt = outer.nxt[ev].astype(np.int64)
        has_nx = nxt < outer.n
        g_next = np.full(m, -1, dtype=np.int64)
        g_next[has_nx] = t_outer[nxt[has_nx]]
    else:
        nxt = has_nx = g_next = None

    states = []
    need_T = np.zeros(m, dtype=bool)
    for inner, t_inner, aligned in inners:
        n_in = inner.n
        if inner.n_warm == 0:
            # All-cold inner stream: every line occurs exactly once, so
            # the victim's only inner touch is its own outer access and
            # every later same-set inner event is a fresh arrival. Its
            # pure inner eviction is therefore the W-th same-set inner
            # event after that touch — gathers, no scans.
            absent = np.zeros(m, dtype=bool)
            if t_inner is None:
                i_pos = t_outer[ev]
                pos_min = tmin_glob
            elif aligned and t_inner.size == outer.n:
                i_pos = ev  # outer events == inner events, same positions
                pos_min = tmin
            else:
                # Line-based lookup (each line occurs at most once, so
                # the final occurrence is the only one); identical to a
                # time search in the full cascade, but also correct for
                # prefixed streams, where outer carry events have no
                # time-matched inner twin.
                i_pos = inner.final_occ(victims)
                absent = i_pos < 0
                i_pos = np.maximum(i_pos, 0)
                pos_min = (
                    np.searchsorted(t_inner, tmin_glob, side="right") - 1
                )
            nth = _nth_set_event_after(inner, i_pos)
            d1 = np.where(nth >= 0, nth, n_in)
            maybe = (~valid | (d1 > pos_min)) & ~absent
            need_T |= maybe
            states.append(
                (inner, t_inner, None, i_pos,
                 np.ones(m, dtype=bool), d1, maybe)
            )
            continue
        sigma = (victims % inner.num_sets).astype(np.int64)
        # Victim's last inner touch before its next outer access (its
        # final inner occurrence when the outer copy is never re-fetched).
        i_pos = np.empty(m, dtype=np.int64)
        if has_nx.any():
            gpos = (
                g_next[has_nx]
                if t_inner is None
                else np.searchsorted(t_inner, g_next[has_nx])
            )
            i_pos[has_nx] = inner.prev[gpos]
        if not has_nx.all():
            i_pos[~has_nx] = inner.final_occ(victims[~has_nx])
        # No inner touch before the next outer access (or ever) means the
        # victim was never inner-resident in range: not consequential.
        absent = i_pos < 0
        # Tmin in inner coordinates (last inner event at or before it).
        if t_inner is None:
            pos_min = tmin_glob
        else:
            pos_min = np.searchsorted(t_inner, tmin_glob, side="right") - 1
        # hm <= Tmin pins i = hm (no inner touches in (Tmin, g_next)).
        case_a = valid & (i_pos <= pos_min) & ~absent
        maybe = ~absent
        d1 = np.full(m, -1, dtype=np.int64)  # inner eviction pos; -1 unknown
        rows = np.nonzero(case_a)[0]
        if rows.size:
            colds = inner.cold_lb(sigma[rows], i_pos[rows], pos_min[rows])
            dead = colds >= inner.ways
            maybe[rows[dead]] = False
            rows = rows[~dead]
        if rows.size:
            # Bounded scan for the victim's pure inner eviction (W-th
            # fresh arrival after i); landing at or before Tmin proves it
            # left the inner level before T. The scan is not clipped at
            # Tmin, so a completed scan pins the eviction exactly and is
            # reused by the exact stage below.
            k_rank = _set_rank_of(inner, i_pos[rows])
            if inner.sets is None:
                end_rank = np.full(rows.size, n_in, dtype=np.int64)
            else:
                end_rank = inner.set_starts[inner.sets[i_pos[rows]] + 1]
            out, pend = _wth_fresh_after(inner, i_pos[rows], k_rank, end_rank)
            resolved = np.ones(rows.size, dtype=bool)
            resolved[pend] = False
            d1[rows[resolved]] = out[resolved]  # n_in = never evicted
            maybe[rows[out <= pos_min[rows]]] = False
        need_T |= maybe
        states.append((inner, t_inner, sigma, i_pos, case_a, d1, maybe))

    needs = np.nonzero(need_T)[0]
    if needs.size == 0:
        return np.empty(0, dtype=np.int64)

    # Exact eviction time T of the unresolved candidates: W-th fresh
    # outer arrival after the copy, strictly before the next outer access.
    k = ev[needs]
    if nxt is None:
        nxtk = outer.nxt[k].astype(np.int64)
        hn = nxtk < outer.n
    else:
        nxtk = nxt[needs]
        hn = has_nx[needs]
    if outer.sets is None:
        k_rank = k
        end_rank = np.where(hn, nxtk, outer.n)
    else:
        base = outer.set_starts[outer.sets[k]]
        k_rank = base + outer.set_ranks[k].astype(np.int64)
        end_rank = np.where(
            hn,
            base + outer.set_ranks[np.minimum(nxtk, outer.n - 1)],
            outer.set_starts[outer.sets[k] + 1],
        )
    T, _ = _wth_fresh_after(outer, k, k_rank, end_rank, exhaustive=True)
    ok = T < outer.n  # paranoia; certified evictions always resolve
    T_glob = np.full(needs.size, -1, dtype=np.int64)
    T_glob[ok] = t_outer[T[ok]]
    divergent = np.zeros(needs.size, dtype=bool)
    for inner, t_inner, sigma, i_pos, case_a, d1, maybe in states:
        rows = np.nonzero(maybe[needs] & ok)[0]
        if rows.size == 0:
            continue
        g = needs[rows]
        if t_inner is None:
            pos_t = T_glob[rows]
        else:
            pos_t = np.searchsorted(t_inner, T_glob[rows], side="right") - 1
        res = np.zeros(rows.size, dtype=bool)
        # Rows whose pure inner eviction the bounded scan already pinned
        # just compare it against T; resident iff it lands after T.
        known = case_a[g] & (d1[g] >= 0)
        if known.any():
            kd = d1[g[known]]
            never = kd >= inner.n
            kd_cl = np.minimum(kd, inner.n - 1)
            kt = kd_cl if t_inner is None else t_inner[kd_cl]
            res[known] = never | (kt > T_glob[rows[known]])
        unk = ~known
        if unk.any():
            # Exact last inner touch at or before T (the case-B hm may
            # lie beyond T), then the exhaustive residency scan of (i, T].
            # A victim with no inner touch at or before T was installed
            # after T (or never): not resident, no scan needed.
            if sigma is None:
                sigma = (victims % inner.num_sets).astype(np.int64)
            gu = g[unk]
            pos_tu = pos_t[unk]
            i_exact = inner.last_touch_before(victims[gu], pos_tu)
            resu = np.zeros(gu.size, dtype=bool)
            touched = i_exact >= 0
            if touched.any():
                k_rank2 = _set_rank_of(inner, i_exact[touched])
                end2 = inner.rank_upto(sigma[gu[touched]], pos_tu[touched])
                out, _ = _wth_fresh_after(
                    inner, i_exact[touched], k_rank2, end2, exhaustive=True
                )
                resu[touched] = out >= inner.n  # < W fresh => resident
            res[unk] = resu
        divergent[rows[res]] = True
    return T_glob[divergent]


def _seed_state(
    cache: LRUCache, stream_lines: np.ndarray, num_sets: int, upto: int
) -> None:
    """Load ``cache`` with the pure-LRU state after ``stream_lines[:upto]``."""
    ways = cache.ways
    filled: dict[int, list[int]] = {}
    remaining = num_sets
    for t in range(upto - 1, -1, -1):
        line = int(stream_lines[t])
        s = line % num_sets
        bucket = filled.setdefault(s, [])
        if len(bucket) >= ways or line in bucket:
            continue
        bucket.append(line)
        if len(bucket) == ways:
            remaining -= 1
            if remaining == 0:
                break
    for s, bucket in filled.items():
        cache._sets[s] = bucket  # MRU-first, matching LRUCache layout


def _resolve_xb(backend):
    """Map a backend name/instance to the device handle the level
    streams use (``None`` = pure numpy, including the fallback case)."""
    if backend is None or backend == "numpy":
        return None
    if isinstance(backend, str):
        from ..backend import get_backend

        backend = get_backend(backend)
    return None if backend.name == "numpy" else backend


def _batched_lru(
    lines: np.ndarray, machine: MachineSpec, backend=None
) -> tuple[HierarchyStats, np.ndarray]:
    """Optimistic vectorized cascade with invalidation verification."""
    xb = _resolve_xb(backend)
    lines = np.ascontiguousarray(np.asarray(lines, dtype=np.int64))
    n = lines.size
    if n and 0 <= int(lines.min()) and int(lines.max()) < (1 << 31):
        # Narrow ids halve the bandwidth of every line gather below.
        lines = lines.astype(np.int32)
    levels = np.ones(n, dtype=np.int8)
    if n == 0:
        return (
            HierarchyStats(LevelStats("L1"), LevelStats("L2"), LevelStats("L3")),
            levels,
        )

    l1 = _LevelStream(
        lines, machine.l1.num_sets, machine.l1.associativity, backend=xb
    )
    hit1 = l1.solve_hits()
    miss1 = ~hit1
    t2 = np.nonzero(miss1)[0]  # global times of L2 accesses
    l2 = _LevelStream(
        lines[t2],
        machine.l2.num_sets,
        machine.l2.associativity,
        order=_subset_order(l1._order, miss1),
        backend=xb,
    )
    hit2 = l2.solve_hits()
    miss2 = ~hit2
    t3 = t2[miss2]
    l3 = _LevelStream(
        lines[t3],
        machine.l3.num_sets,
        machine.l3.associativity,
        order=_subset_order(l2._order, miss2),
        backend=xb,
    )
    hit3 = l3.solve_hits()

    # --- verify inclusive back-invalidations ---
    div_time = n  # global time of earliest consequential invalidation

    ev2 = _evicted_copies(l2, hit2)  # L2-stream positions
    if ev2.size:
        div2 = _eviction_divergences(
            l2, ev2, t2, lines[t2[ev2]], [(l1, None)]
        )
        if div2.size:
            div_time = int(div2.min())

    ev3 = _evicted_copies(l3, hit3)
    if ev3.size:
        # An L3 eviction back-invalidates both L2 and L1; divergence if
        # the victim is resident in either.
        div3 = _eviction_divergences(
            l3, ev3, t3, lines[t3[ev3]], [(l1, None), (l2, t2)]
        )
        if div3.size:
            div_time = min(div_time, int(div3.min()))

    # --- assemble served levels ---
    levels[t2] = 2
    levels[t3] = np.where(hit3, 3, 4).astype(np.int8)
    if div_time >= n:
        stats = HierarchyStats(
            LevelStats("L1", n, int(hit1.sum())),
            LevelStats("L2", t2.size, int(hit2.sum())),
            LevelStats("L3", t3.size, int(hit3.sum())),
        )
        return stats, levels

    # --- consequential invalidation: commit exact prefix, replay tail ---
    tau = div_time
    n2 = int(np.searchsorted(t2, tau))
    n3 = int(np.searchsorted(t3, tau))
    stats = HierarchyStats(
        LevelStats("L1", tau, int(hit1[:tau].sum())),
        LevelStats("L2", n2, int(hit2[:n2].sum())),
        LevelStats("L3", n3, int(hit3[:n3].sum())),
    )
    hierarchy = CacheHierarchy(machine)
    _seed_state(hierarchy.l1, lines, machine.l1.num_sets, tau)
    _seed_state(hierarchy.l2, lines[t2], machine.l2.num_sets, n2)
    _seed_state(hierarchy.l3, lines[t3], machine.l3.num_sets, n3)
    access = hierarchy.access
    tail_levels = levels[tau:]
    for off, line in enumerate(lines[tau:].tolist()):
        tail_levels[off] = access(line)
    return stats.merged_with(hierarchy.stats), levels


def batched_levels(
    lines: np.ndarray,
    machine: MachineSpec,
    *,
    next_line_prefetch: bool = False,
    policy: str = "lru",
    backend: str | None = None,
) -> tuple[HierarchyStats, np.ndarray]:
    """Per-level stats plus the served level (1..4) of every access.

    Falls back to the reference simulator for configurations outside the
    stack-distance model (non-LRU policies, next-line prefetch).
    ``backend`` selects the array namespace for the cascade's filter
    stages (:mod:`repro.backend`); counts are backend-invariant.
    """
    if policy != "lru" or next_line_prefetch:
        hierarchy = CacheHierarchy(
            machine, next_line_prefetch=next_line_prefetch, policy=policy
        )
        arr = np.asarray(lines, dtype=np.int64)
        levels = np.empty(arr.size, dtype=np.int8)
        access = hierarchy.access
        for t, line in enumerate(arr.tolist()):
            levels[t] = access(line)
        return hierarchy.stats, levels
    return _batched_lru(lines, machine, backend=backend)


def simulate_trace_batched(
    lines: np.ndarray,
    machine: MachineSpec,
    *,
    next_line_prefetch: bool = False,
    policy: str = "lru",
    backend: str | None = None,
) -> HierarchyStats:
    """Drop-in replacement for :func:`repro.memsim.cache.simulate_trace`."""
    stats, _ = batched_levels(
        lines,
        machine,
        next_line_prefetch=next_line_prefetch,
        policy=policy,
        backend=backend,
    )
    return stats
