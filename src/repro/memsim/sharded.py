"""Sharded multicore replay: socket shards simulated in worker processes.

The sequential multicore engine replays every socket of the machine one
after the other in a single interpreter. But the simulated topology is
embarrassingly parallel across sockets: private L1/L2 belong to one
core, the L3 is shared only *within* a socket, and the round-robin
interleaving never crosses sockets — a socket is a closed system. The
sharded engine therefore splits the per-core line streams at core
boundaries, groups them by the socket their core is placed on (under the
affinity policy), and hands each socket group to a worker process. Under
``scatter`` affinity with up to ``num_sockets`` threads — the default of
the paper's scaling experiments — every shard is exactly one core.

Each worker runs :func:`repro.memsim.multicore.simulate_socket`, the
same function the sequential engine runs, so the merged per-level
hit/miss counts are identical by construction; the differential suite
(``tests/memsim/test_sharded.py``) additionally pins the equality
empirically. Sharding *within* a socket would require speculating on the
shared-L3 state (misses of one core back-invalidate lines and change the
other cores' hit counts), which could not keep the counts exact, so the
socket is deliberately the smallest shard.

Statistics merging: per-core L1/L2 stats come back untouched (they are
private), and the shared-L3 statistics of a socket are the sum of its
cores' L3 counters — :class:`repro.memsim.cache.MulticoreResult.combined`
aggregates them exactly as in the sequential engine.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor

import numpy as np

from .machine import MachineSpec
from .multicore import (
    CoreResult,
    MulticoreResult,
    affinity_sockets,
    simulate_socket,
)

__all__ = ["simulate_multicore_sharded", "socket_shards"]


def socket_shards(
    lines_per_core: list[np.ndarray],
    machine: MachineSpec,
    affinity: str = "compact",
) -> list[tuple[int, list[int], list[np.ndarray]]]:
    """Split per-core streams into independent socket shards.

    Returns one ``(socket_id, member_cores, streams)`` tuple per
    occupied socket; concatenating the members in socket order restores
    the original core list.
    """
    sockets = affinity_sockets(len(lines_per_core), machine, affinity)
    shards = []
    for socket_id in np.unique(sockets):
        members = [int(c) for c in np.flatnonzero(sockets == socket_id)]
        shards.append(
            (int(socket_id), members, [lines_per_core[c] for c in members])
        )
    return shards


def _run_shard(args) -> list[CoreResult]:
    socket_id, member_cores, streams, machine, quantum, sim_engine = args
    return simulate_socket(
        socket_id,
        member_cores,
        streams,
        machine,
        quantum=quantum,
        sim_engine=sim_engine,
    )


def simulate_multicore_sharded(
    lines_per_core: list[np.ndarray],
    machine: MachineSpec,
    *,
    affinity: str = "compact",
    quantum: int = 64,
    max_workers: int | None = None,
    sim_engine: str = "reference",
) -> MulticoreResult:
    """Replay per-core line streams with one worker process per socket.

    Exactly equivalent to ``simulate_multicore(..., engine="sequential")``
    — same per-level hit/miss counts, same per-core cost breakdowns —
    but wall-clock scales with the number of occupied sockets.
    ``max_workers`` caps the process pool (default: one worker per
    shard, bounded by the host's CPU count); a single shard short-circuits
    to an in-process call.
    """
    shards = socket_shards(lines_per_core, machine, affinity)
    payloads = [
        (socket_id, members, streams, machine, quantum, sim_engine)
        for socket_id, members, streams in shards
    ]
    if max_workers is None:
        max_workers = min(len(shards), os.cpu_count() or 1)
    if len(shards) <= 1 or max_workers <= 1:
        shard_results = [_run_shard(p) for p in payloads]
    else:
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            shard_results = list(pool.map(_run_shard, payloads))
    results: list[CoreResult | None] = [None] * len(lines_per_core)
    for core_results in shard_results:
        for cr in core_results:
            results[cr.core] = cr
    return MulticoreResult(
        machine=machine,
        affinity=affinity,
        per_core=[r for r in results if r is not None],
    )
