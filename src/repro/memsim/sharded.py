"""Sharded multicore replay: socket shards simulated in worker processes.

The sequential multicore engine replays every socket of the machine one
after the other in a single interpreter. But the simulated topology is
embarrassingly parallel across sockets: private L1/L2 belong to one
core, the L3 is shared only *within* a socket, and the round-robin
interleaving never crosses sockets — a socket is a closed system. The
sharded engine therefore splits the per-core line streams at core
boundaries, groups them by the socket their core is placed on (under the
affinity policy), and hands each socket group to a worker process. Under
``scatter`` affinity with up to ``num_sockets`` threads — the default of
the paper's scaling experiments — every shard is exactly one core.

Each worker runs :func:`repro.memsim.multicore.simulate_socket`, the
same function the sequential engine runs, so the merged per-level
hit/miss counts are identical by construction; the differential suite
(``tests/memsim/test_sharded.py``) additionally pins the equality
empirically. Sharding *within* a socket would require speculating on the
shared-L3 state (misses of one core back-invalidate lines and change the
other cores' hit counts), which could not keep the counts exact, so the
socket is deliberately the smallest shard.

Statistics merging: per-core L1/L2 stats come back untouched (they are
private), and the shared-L3 statistics of a socket are the sum of its
cores' L3 counters — :class:`repro.memsim.cache.MulticoreResult.combined`
aggregates them exactly as in the sequential engine.

Observability: when the parent process is tracing
(:func:`repro.obs.is_enabled`), each worker runs its shard under a fresh
local tracer and ships the exported span dicts plus its metrics snapshot
back over the same result channel the shard payloads use; the parent
adopts the spans as children of its ``memsim.sharded`` span and merges
the metrics into its registry, so a sharded replay produces the same
span tree and counters as a sequential one (plus per-process parents).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor

import numpy as np

from .. import obs
from .machine import MachineSpec
from .multicore import (
    CoreResult,
    MulticoreResult,
    affinity_sockets,
    simulate_socket,
)

__all__ = ["simulate_multicore_sharded", "socket_shards"]


def socket_shards(
    lines_per_core: list[np.ndarray],
    machine: MachineSpec,
    affinity: str = "compact",
) -> list[tuple[int, list[int], list[np.ndarray]]]:
    """Split per-core streams into independent socket shards.

    Returns one ``(socket_id, member_cores, streams)`` tuple per
    occupied socket; concatenating the members in socket order restores
    the original core list.
    """
    sockets = affinity_sockets(len(lines_per_core), machine, affinity)
    shards = []
    for socket_id in np.unique(sockets):
        members = [int(c) for c in np.flatnonzero(sockets == socket_id)]
        shards.append(
            (int(socket_id), members, [lines_per_core[c] for c in members])
        )
    return shards


def _run_shard(args) -> tuple[list[CoreResult], list[dict], dict]:
    """Simulate one shard; returns (results, span dicts, metrics snapshot).

    ``obs_enabled`` in the payload mirrors the parent's tracer state at
    dispatch time: the worker then captures its own spans/metrics and
    returns them for the parent to merge (empty otherwise).
    """
    (
        socket_id,
        member_cores,
        streams,
        machine,
        quantum,
        sim_engine,
        stream_window_events,
        obs_on,
    ) = args
    if not obs_on:
        results = simulate_socket(
            socket_id,
            member_cores,
            streams,
            machine,
            quantum=quantum,
            sim_engine=sim_engine,
            stream_window_events=stream_window_events,
        )
        return results, [], {}
    with obs.capture() as tracer:
        results = simulate_socket(
            socket_id,
            member_cores,
            streams,
            machine,
            quantum=quantum,
            sim_engine=sim_engine,
            stream_window_events=stream_window_events,
        )
    return results, tracer.export(), tracer.metrics.snapshot()


def simulate_multicore_sharded(
    lines_per_core: list[np.ndarray],
    machine: MachineSpec,
    *,
    affinity: str = "compact",
    quantum: int = 64,
    max_workers: int | None = None,
    sim_engine: str = "reference",
    stream_window_events: int | None = None,
) -> MulticoreResult:
    """Replay per-core line streams with one worker process per socket.

    Exactly equivalent to the sequential ``simulate_multicore`` engine
    (``config=RunConfig(mem_engine="sequential")``)
    — same per-level hit/miss counts, same per-core cost breakdowns —
    but wall-clock scales with the number of occupied sockets.
    ``max_workers`` caps the process pool (default: one worker per
    shard, bounded by the host's CPU count); a single shard short-circuits
    to an in-process call.
    """
    shards = socket_shards(lines_per_core, machine, affinity)
    obs_on = obs.is_enabled()
    payloads = [
        (
            socket_id,
            members,
            streams,
            machine,
            quantum,
            sim_engine,
            stream_window_events,
            obs_on,
        )
        for socket_id, members, streams in shards
    ]
    if max_workers is None:
        max_workers = min(len(shards), os.cpu_count() or 1)
    with obs.span(
        "memsim.sharded", shards=len(shards), max_workers=max_workers
    ):
        if len(shards) <= 1 or max_workers <= 1:
            shard_results = [_run_shard(p) for p in payloads]
        else:
            with ProcessPoolExecutor(max_workers=max_workers) as pool:
                shard_results = list(pool.map(_run_shard, payloads))
        tracer = obs.get_tracer()
        results: list[CoreResult | None] = [None] * len(lines_per_core)
        for core_results, span_dicts, metrics_snapshot in shard_results:
            for cr in core_results:
                results[cr.core] = cr
            if obs_on:
                tracer.adopt(span_dicts)
                tracer.metrics.merge(metrics_snapshot)
        return MulticoreResult(
            machine=machine,
            affinity=affinity,
            per_core=[r for r in results if r is not None],
        )
