"""Trace analysis utilities: per-array breakdowns and summaries.

While :func:`repro.memsim.simulate_trace` reports aggregate per-level
statistics, the analysis here attributes every access (and every miss)
to the logical array it touched — showing, e.g., that the smoothing
kernel's misses live almost entirely in the coordinate gathers, which
is where reorderings act.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import RunConfig, resolve_config
from .cache import CacheHierarchy
from .layout import MemoryLayout
from .machine import MachineSpec
from .reuse import COLD, reuse_distances
from .trace import ARRAY_NAMES, AccessTrace

__all__ = ["ArrayBreakdown", "per_array_breakdown", "trace_summary"]


@dataclass(frozen=True)
class ArrayBreakdown:
    """Access/miss attribution for one logical array."""

    array: str
    accesses: int
    writes: int
    l1_misses: int
    l2_misses: int
    l3_misses: int

    @property
    def l1_miss_rate(self) -> float:
        return self.l1_misses / self.accesses if self.accesses else 0.0

    def as_row(self) -> dict:
        return {
            "array": self.array,
            "accesses": self.accesses,
            "writes": self.writes,
            "L1_misses": self.l1_misses,
            "L2_misses": self.l2_misses,
            "L3_misses": self.l3_misses,
            "L1_miss_%": 100.0 * self.l1_miss_rate,
        }


def per_array_breakdown(
    trace: AccessTrace,
    layout: MemoryLayout,
    machine: MachineSpec,
    *,
    config: RunConfig | None = None,
    sim_engine: str | None = None,
) -> list[ArrayBreakdown]:
    """Simulate the hierarchy, attributing misses to logical arrays.

    Returns one row per array (in :data:`ARRAY_NAMES` order) that
    appears in the trace. ``config=RunConfig(sim_engine="batched")``
    computes the served levels with the vectorized engine (identical
    results); the bare ``sim_engine=`` keyword is a deprecated shim.
    """
    config = resolve_config(config, sim_engine=sim_engine)
    sim_engine = config.sim_engine
    lines = layout.lines(trace)
    ids = trace.array_ids
    if sim_engine == "batched":
        from .batched import batched_levels

        _, levels = batched_levels(lines, machine)
    elif sim_engine == "reference":
        hierarchy = CacheHierarchy(machine)
        access = hierarchy.access
        # served level per access: 1..4
        levels = np.empty(len(trace), dtype=np.int8)
        for i, line in enumerate(lines.tolist()):
            levels[i] = access(line)
    else:
        raise ValueError(f"unknown sim engine {sim_engine!r}")

    out: list[ArrayBreakdown] = []
    for aid, name in enumerate(ARRAY_NAMES):
        mask = ids == aid
        count = int(mask.sum())
        if count == 0:
            continue
        lv = levels[mask]
        out.append(
            ArrayBreakdown(
                array=name,
                accesses=count,
                writes=int(trace.is_write[mask].sum()),
                l1_misses=int(np.count_nonzero(lv >= 2)),
                l2_misses=int(np.count_nonzero(lv >= 3)),
                l3_misses=int(np.count_nonzero(lv >= 4)),
            )
        )
    return out


def trace_summary(
    trace: AccessTrace,
    layout: MemoryLayout,
    machine: MachineSpec | None = None,
    *,
    config: RunConfig | None = None,
    sim_engine: str | None = None,
) -> dict:
    """Structural summary of a trace.

    Reports length, per-array access shares, write fraction, distinct
    lines/elements touched, and the cold-access fraction at line
    granularity. When ``machine`` is given, a ``cache`` entry with
    per-level hierarchy statistics is included, simulated with
    ``config.sim_engine`` (the bare ``sim_engine=`` keyword is a
    deprecated shim).
    """
    config = resolve_config(config, sim_engine=sim_engine)
    lines = layout.lines(trace)
    elements = layout.element_ids(trace)
    dists = reuse_distances(lines)
    per_array = {
        name: int(np.count_nonzero(trace.array_ids == aid))
        for aid, name in enumerate(ARRAY_NAMES)
        if np.count_nonzero(trace.array_ids == aid)
    }
    summary = {
        "length": len(trace),
        "iterations": trace.num_iterations,
        "writes": int(trace.is_write.sum()),
        "distinct_lines": int(np.unique(lines).size),
        "distinct_elements": int(np.unique(elements).size),
        "cold_fraction": float(np.count_nonzero(dists == COLD) / max(1, len(trace))),
        "per_array": per_array,
        "meta": dict(trace.meta),
    }
    if machine is not None:
        from .cache import simulate_trace

        stats = simulate_trace(lines, machine, config=config)
        summary["cache"] = [lv.as_row() for lv in stats.levels()]
    return summary
