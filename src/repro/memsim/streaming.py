"""Streaming cache simulation: bounded windows, carried state, exact counts.

The in-memory engines hold the whole line stream (plus, for the batched
engine, several index arrays over it). This module replays the same
stream window by window while keeping per-level *carry state* across
window boundaries, so peak memory is proportional to one window — the
enabler of the million-vertex regime. Exactness is preserved bit for
bit; the differential suite pins streaming counts against the in-memory
engines on every overlapping size.

How the batched engine streams
------------------------------
The carry state of a cache level is its per-set resident stacks. Between
windows we store them flat (sets ascending, LRU→MRU within each set) and
*inject* them as a synthetic prefix at negative times in front of the
next window's level stream. Under LRU, hit/miss of any access depends
only on the distinct same-set lines since its previous touch, and the
prefix realizes exactly the distinct-line stacks the level held at the
window boundary — so :meth:`_LevelStream.solve_hits` on the prefixed
stream yields the true hit mask for the window slice (the prefix's own
"accesses" are discarded). Two invariants make the back-invalidation
verification carry over unchanged: a carry holds at most ``W`` distinct
lines per set, so every certified eviction time lands inside the window
(never in the prefix), and carry lines are distinct, so a victim's next
occurrence is always a real event. Victims absent from an inner
prefixed stream are provably not inner-resident (the prefix enumerates
that level's residents), which :func:`_eviction_divergences` now
short-circuits. On a consequential invalidation, the exact window
prefix is committed, a reference hierarchy is seeded with the
(provably identical) state at that point, and the window tail replays
through it — exactly the full-trace engine's fallback, windowed.

Streaming reuse distances
-------------------------
For reuse distances the carry state is one ``(line, last position)``
pair per distinct line seen so far. Prepending one synthetic occurrence
per carried line — ordered by ascending last position — to the next
window reproduces every window access's *global* distinct-line interval
exactly, so :func:`reuse_distances` over the small synthetic stream
returns the true distances (the synthetic prefix's own outputs are
discarded). Merging is exact by construction; no histogram approximation
is involved anywhere.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from .batched import (
    _evicted_copies,
    _eviction_divergences,
    _LevelStream,
    _seed_state,
)
from .cache import CacheHierarchy, HierarchyStats, LevelStats, LRUCache
from .machine import MachineSpec
from .reuse import COLD, bucketed_series, reuse_distances

__all__ = [
    "StreamingHierarchy",
    "StreamingReuse",
    "StreamingBucketedSeries",
    "iter_line_windows",
    "simulate_trace_streaming",
    "streaming_reuse_distances",
]


def iter_line_windows(
    lines: np.ndarray, window_events: int
) -> Iterator[np.ndarray]:
    """Split a line stream into contiguous windows of bounded size."""
    if window_events < 1:
        raise ValueError("window_events must be >= 1")
    arr = np.asarray(lines)
    for lo in range(0, arr.size, window_events):
        yield arr[lo : lo + window_events]


def _narrow(lines: np.ndarray) -> np.ndarray:
    # Mirrors the full-trace engine: narrow ids halve gather bandwidth.
    if lines.size and 0 <= int(lines.min()) and int(lines.max()) < (1 << 31):
        return lines.astype(np.int32)
    return lines


def _level_end_state(stream: _LevelStream) -> np.ndarray:
    """Resident lines at stream end, flat (set asc, LRU→MRU) order.

    Pure-LRU residency per set is the ``W`` most recent distinct lines —
    the ``W`` largest *final occurrences* of the set. Valid whenever no
    consequential back-invalidation occurred (non-consequential ones
    remove nothing resident, leaving pure-LRU state intact).
    """
    n = stream.n
    if n == 0:
        return np.empty(0, dtype=np.int64)
    finals = np.nonzero(stream.nxt == n)[0]
    lines = stream.lines
    if stream.sets is None:
        kept = finals[-stream.ways :] if finals.size > stream.ways else finals
        return lines[kept].astype(np.int64)
    s = stream.sets[finals]
    order = np.argsort(s, kind="stable")  # keeps ascending position in set
    sf = s[order]
    pf = finals[order]
    block_end = np.searchsorted(sf, sf, side="right")
    rank_from_end = block_end - 1 - np.arange(sf.size)
    return lines[pf[rank_from_end < stream.ways]].astype(np.int64)


def _carry_from_cache(cache: LRUCache) -> np.ndarray:
    """Carry state of a reference cache (its sets are MRU-first lists)."""
    out: list[int] = []
    for bucket in cache._sets:
        out.extend(reversed(bucket))
    return np.asarray(out, dtype=np.int64)


class StreamingHierarchy:
    """Windowed hierarchy simulation with carry-over state.

    Feed bounded windows via :meth:`consume`; :attr:`stats` accumulates
    per-level counts that are bit-identical to running the selected
    in-memory engine over the concatenated stream. ``sim_engine`` picks
    the per-window engine (``"batched"`` = prefix-injected stack
    distances, ``"reference"`` = a persistent
    :class:`~repro.memsim.cache.CacheHierarchy`). Non-LRU policies and
    next-line prefetch are outside the stack-distance model and route
    through the persistent reference hierarchy, which is trivially
    streaming-exact.
    """

    def __init__(
        self,
        machine: MachineSpec,
        *,
        sim_engine: str = "reference",
        next_line_prefetch: bool = False,
        policy: str = "lru",
    ) -> None:
        if sim_engine not in ("reference", "batched"):
            raise ValueError(f"unknown sim engine {sim_engine!r}")
        self.machine = machine
        self.sim_engine = sim_engine
        self._batched = (
            sim_engine == "batched"
            and policy == "lru"
            and not next_line_prefetch
        )
        self.windows = 0
        self.events = 0
        self.peak_window_events = 0
        if self._batched:
            self._carry = [np.empty(0, dtype=np.int64) for _ in range(3)]
            self.stats = HierarchyStats(
                LevelStats("L1"), LevelStats("L2"), LevelStats("L3")
            )
        else:
            self._hierarchy = CacheHierarchy(
                machine, next_line_prefetch=next_line_prefetch, policy=policy
            )
            self.stats = self._hierarchy.stats

    @property
    def carry_events(self) -> int:
        """Total carried line-id entries (the batched carry-state size)."""
        if not self._batched:
            return 0
        return int(sum(c.size for c in self._carry))

    def consume(self, lines: np.ndarray) -> None:
        """Replay one window of line ids on top of the carried state."""
        w = np.ascontiguousarray(np.asarray(lines, dtype=np.int64))
        if w.size == 0:
            return
        self.windows += 1
        self.events += int(w.size)
        self.peak_window_events = max(self.peak_window_events, int(w.size))
        if self._batched:
            self._consume_batched(w)
        else:
            self._hierarchy.run(w)
            self.stats = self._hierarchy.stats

    def _consume_batched(self, w: np.ndarray) -> None:
        m = self.machine
        n = w.size
        carry1, carry2, carry3 = self._carry
        p1, p2, p3 = carry1.size, carry2.size, carry3.size

        s1_lines = _narrow(np.concatenate([carry1, w]))
        l1 = _LevelStream(s1_lines, m.l1.num_sets, m.l1.associativity)
        hit1f = l1.solve_hits()
        hit1 = hit1f[p1:]
        t2 = np.nonzero(~hit1)[0]  # window-relative times of L2 accesses

        s2_lines = _narrow(np.concatenate([carry2, w[t2]]))
        l2 = _LevelStream(s2_lines, m.l2.num_sets, m.l2.associativity)
        hit2f = l2.solve_hits()
        hit2 = hit2f[p2:]
        t3 = t2[~hit2]

        s3_lines = _narrow(np.concatenate([carry3, w[t3]]))
        l3 = _LevelStream(s3_lines, m.l3.num_sets, m.l3.associativity)
        hit3f = l3.solve_hits()
        hit3 = hit3f[p3:]

        # Position → window-relative time maps; prefix events sit at
        # negative times, which never surface (see module docstring).
        t1map = np.concatenate(
            [np.arange(-p1, 0, dtype=np.int64), np.arange(n, dtype=np.int64)]
        )
        t2map = np.concatenate([np.arange(-p2, 0, dtype=np.int64), t2])
        t3map = np.concatenate([np.arange(-p3, 0, dtype=np.int64), t3])

        div_time = n
        ev2 = _evicted_copies(l2, hit2f)
        if ev2.size:
            div2 = _eviction_divergences(
                l2, ev2, t2map, s2_lines[ev2], [(l1, t1map, False)]
            )
            if div2.size:
                div_time = int(div2.min())
        ev3 = _evicted_copies(l3, hit3f)
        if ev3.size:
            div3 = _eviction_divergences(
                l3,
                ev3,
                t3map,
                s3_lines[ev3],
                [(l1, t1map, False), (l2, t2map, False)],
            )
            if div3.size:
                div_time = min(div_time, int(div3.min()))

        if div_time >= n:
            delta = HierarchyStats(
                LevelStats("L1", n, int(hit1.sum())),
                LevelStats("L2", int(t2.size), int(hit2.sum())),
                LevelStats("L3", int(t3.size), int(hit3.sum())),
            )
            self.stats = self.stats.merged_with(delta)
            self._carry = [
                _level_end_state(l1),
                _level_end_state(l2),
                _level_end_state(l3),
            ]
            return

        # Consequential back-invalidation inside the window: commit the
        # exact prefix, seed a reference hierarchy with the state at tau
        # (pure LRU on the prefixed streams — exact up to that point),
        # replay the tail, and carry the reference's state forward.
        tau = div_time
        n2 = int(np.searchsorted(t2, tau))
        n3 = int(np.searchsorted(t3, tau))
        delta = HierarchyStats(
            LevelStats("L1", tau, int(hit1[:tau].sum())),
            LevelStats("L2", n2, int(hit2[:n2].sum())),
            LevelStats("L3", n3, int(hit3[:n3].sum())),
        )
        hierarchy = CacheHierarchy(m)
        _seed_state(hierarchy.l1, s1_lines, m.l1.num_sets, p1 + tau)
        _seed_state(hierarchy.l2, s2_lines, m.l2.num_sets, p2 + n2)
        _seed_state(hierarchy.l3, s3_lines, m.l3.num_sets, p3 + n3)
        hierarchy.run(w[tau:])
        self.stats = self.stats.merged_with(delta).merged_with(
            hierarchy.stats
        )
        self._carry = [
            _carry_from_cache(hierarchy.l1),
            _carry_from_cache(hierarchy.l2),
            _carry_from_cache(hierarchy.l3),
        ]


def simulate_trace_streaming(
    lines: np.ndarray,
    machine: MachineSpec,
    *,
    window_events: int,
    sim_engine: str = "reference",
    next_line_prefetch: bool = False,
    policy: str = "lru",
) -> HierarchyStats:
    """Simulate a line stream in bounded windows; counts are bit-identical
    to the in-memory engines over the same stream."""
    sim = StreamingHierarchy(
        machine,
        sim_engine=sim_engine,
        next_line_prefetch=next_line_prefetch,
        policy=policy,
    )
    for window in iter_line_windows(lines, window_events):
        sim.consume(window)
    return sim.stats


class StreamingReuse:
    """Exact reuse distances computed window by window.

    :meth:`consume` returns the distances of the window's accesses —
    identical to the corresponding slice of
    ``reuse_distances(concatenated_stream)`` — while retaining only one
    ``(line, last seen position)`` pair per distinct line (the carry
    state; memory is bounded by the footprint's distinct lines, not the
    trace length). Aggregates for the exact profile accumulate as an
    integer distance histogram on the side.
    """

    def __init__(self) -> None:
        self._lines = np.empty(0, dtype=np.int64)  # ordered by last pos
        self._base = 0  # global events consumed
        self.num_accesses = 0
        self.num_cold = 0
        self._hist = np.zeros(0, dtype=np.int64)  # counts per distance

    @property
    def carry_events(self) -> int:
        """Distinct lines carried (the reuse carry-state size)."""
        return int(self._lines.size)

    def consume(self, lines: np.ndarray) -> np.ndarray:
        """Distances of this window's accesses in the global stream."""
        w = np.asarray(lines)
        n = w.size
        if n == 0:
            return np.full(0, COLD, dtype=np.int64)
        k = self._lines.size
        # One synthetic occurrence per carried line, ordered by its last
        # global position, reproduces every global distinct-line count.
        synth = np.concatenate([self._lines, np.asarray(w, dtype=np.int64)])
        distances = reuse_distances(synth)[k:]

        # Carry update: last window position per distinct window line,
        # appended after the surviving carries in ascending-position
        # order (all window positions exceed every carried position).
        order = np.argsort(w, kind="stable")
        sw = np.asarray(w, dtype=np.int64)[order]
        last = np.empty(sw.size, dtype=bool)
        last[-1:] = True
        last[:-1] = sw[1:] != sw[:-1]
        win_lines = sw[last]
        win_pos = np.sort(order[last])
        kept = self._lines[~np.isin(self._lines, win_lines)]
        self._lines = np.concatenate(
            [kept, np.asarray(w, dtype=np.int64)[win_pos]]
        )
        self._base += n

        self.num_accesses += n
        cold = distances == COLD
        self.num_cold += int(cold.sum())
        warm = distances[~cold]
        if warm.size:
            hi = int(warm.max()) + 1
            if hi > self._hist.size:
                grown = np.zeros(hi, dtype=np.int64)
                grown[: self._hist.size] = self._hist
                self._hist = grown
            self._hist += np.bincount(warm, minlength=self._hist.size)
        return distances

    def profile(self) -> "ReuseProfile":
        """Exact :class:`~repro.memsim.reuse.ReuseProfile` from the
        accumulated histogram (quantiles per the paper's definition)."""
        from .reuse import ReuseProfile

        n = self.num_accesses
        warm_n = n - self.num_cold
        if warm_n == 0:
            return ReuseProfile(n, n, float("nan"), 0, 0, 0, 0)
        cum = np.cumsum(self._hist)
        total = int(cum[-1])

        def q(x: float) -> int:
            kth = max(0, min(total - 1, int(np.ceil(x * total)) - 1))
            return int(np.searchsorted(cum, kth + 1))

        mean = float(
            np.dot(self._hist, np.arange(self._hist.size, dtype=np.float64))
            / warm_n
        )
        return ReuseProfile(
            num_accesses=n,
            num_cold=self.num_cold,
            mean=mean,
            q50=q(0.50),
            q75=q(0.75),
            q90=q(0.90),
            q100=int(self._hist.size - 1),
        )

    def profile_row(self) -> dict:
        """:meth:`profile` flattened to the canonical row dict."""
        return self.profile().as_row()


def streaming_reuse_distances(
    windows: Iterable[np.ndarray],
) -> Iterator[np.ndarray]:
    """Yield per-window exact reuse distances for a window stream."""
    reuse = StreamingReuse()
    for window in windows:
        yield reuse.consume(window)


class StreamingBucketedSeries:
    """Windowed, bit-exact counterpart of
    :func:`~repro.memsim.reuse.bucketed_series`.

    The total stream length must be known up front (bucket edges depend
    on it). Distances are integers, so the per-bucket float64 sums are
    exactly representable and merging windows in any order reproduces
    the in-memory result bit for bit.
    """

    def __init__(self, total_events: int, num_buckets: int = 100) -> None:
        if total_events < 0:
            raise ValueError("total_events must be >= 0")
        self.total_events = int(total_events)
        self.num_buckets = (
            min(num_buckets, total_events) if total_events else 0
        )
        if self.num_buckets:
            self._edges = np.linspace(
                0, total_events, self.num_buckets + 1
            ).astype(np.int64)
        else:
            self._edges = np.zeros(1, dtype=np.int64)
        self._sums = np.zeros(self.num_buckets, dtype=np.float64)
        self._cnts = np.zeros(self.num_buckets, dtype=np.int64)
        self._cursor = 0

    def consume(self, distances: np.ndarray) -> None:
        """Fold in the next window's distances (in stream order)."""
        d = np.asarray(distances, dtype=np.float64)
        n = d.size
        if self._cursor + n > self.total_events:
            raise ValueError("more distances than total_events")
        if n == 0:
            return
        pos = self._cursor + np.arange(n, dtype=np.int64)
        bucket = np.searchsorted(self._edges, pos, side="right") - 1
        warm = d != COLD
        self._sums += np.bincount(
            bucket[warm],
            weights=d[warm],
            minlength=self.num_buckets,
        )
        self._cnts += np.bincount(bucket[warm], minlength=self.num_buckets)
        self._cursor += n

    def finalize(self) -> tuple[np.ndarray, np.ndarray]:
        """``(bucket_centers, means)`` — identical to the in-memory call."""
        if self._cursor != self.total_events:
            raise ValueError(
                f"consumed {self._cursor} of {self.total_events} events"
            )
        if self.total_events == 0:
            return np.empty(0), np.empty(0)
        centers = 0.5 * (self._edges[:-1] + self._edges[1:])
        with np.errstate(invalid="ignore", divide="ignore"):
            means = np.where(
                self._cnts > 0, self._sums / self._cnts, np.nan
            )
        return centers, means


# Re-exported for callers composing window pipelines by hand.
_ = bucketed_series
