"""Chunked on-disk traces: bounded npz windows plus a JSON manifest.

A monolithic :class:`~repro.memsim.trace.AccessTrace` at the
million-vertex scale is hundreds of megabytes per smoothing iteration;
the streaming pipeline never wants it resident at once. This module
spills a trace to a directory of fixed-size windows::

    trace.json            # manifest: counts, window size, iteration starts
    window-00000.npz      # columns array_ids / indices / is_write
    window-00001.npz
    ...

:class:`ChunkedTraceWriter` buffers appended event columns and flushes a
file whenever a full window accumulates, so writing is itself bounded by
one window. :class:`ChunkedTrace` is the read side: random access to any
window, an iterator over all of them, and (for tests and small traces)
full materialization. Every window round-trips as a normal
``AccessTrace``, so all existing analyses apply per window unchanged.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterator

import numpy as np

from .trace import AccessTrace

__all__ = ["TRACE_MANIFEST", "ChunkedTrace", "ChunkedTraceWriter"]

TRACE_MANIFEST = "trace.json"
_FORMAT = "chunked-trace-v1"


def _window_name(k: int) -> str:
    return f"window-{k:05d}.npz"


class ChunkedTraceWriter:
    """Spill an event stream into fixed-size npz windows.

    Append columns in any burst sizes; whenever ``window_events`` events
    accumulate, one window file is flushed, keeping the writer's
    footprint bounded. Close (or use as a context manager) to write the
    trailing partial window and the manifest.
    """

    def __init__(
        self,
        out_dir: str | Path,
        *,
        window_events: int,
        compress: bool = False,
    ) -> None:
        if window_events < 1:
            raise ValueError("window_events must be >= 1")
        self.out_dir = Path(out_dir)
        self.out_dir.mkdir(parents=True, exist_ok=True)
        self.window_events = int(window_events)
        self.compress = compress
        self._ids: list[np.ndarray] = []
        self._idx: list[np.ndarray] = []
        self._wr: list[np.ndarray] = []
        self._buffered = 0
        self._flushed = 0
        self._windows = 0
        self._iter_starts: list[int] = []
        self._meta: dict = {}
        self._closed = False

    # -- recording ------------------------------------------------------
    def __len__(self) -> int:
        return self._flushed + self._buffered

    def begin_iteration(self) -> None:
        """Mark the current offset as the start of a smoothing iteration."""
        self._iter_starts.append(len(self))

    def append_columns(
        self,
        array_ids: np.ndarray,
        indices: np.ndarray,
        is_write: np.ndarray,
    ) -> None:
        """Buffer a block of aligned event columns, flushing full windows."""
        if self._closed:
            raise ValueError("writer is closed")
        array_ids = np.ascontiguousarray(array_ids, dtype=np.uint8)
        indices = np.ascontiguousarray(indices, dtype=np.int64)
        is_write = np.ascontiguousarray(is_write, dtype=bool)
        if not (array_ids.shape == indices.shape == is_write.shape):
            raise ValueError("trace columns must have identical shapes")
        if array_ids.size == 0:
            return
        self._ids.append(array_ids)
        self._idx.append(indices)
        self._wr.append(is_write)
        self._buffered += array_ids.size
        if self._buffered >= self.window_events:
            self._flush_full_windows()

    def append_trace(self, trace: AccessTrace) -> None:
        """Buffer an entire (sub-)trace's events (iteration info ignored)."""
        self.append_columns(trace.array_ids, trace.indices, trace.is_write)

    def set_meta(self, **meta) -> None:
        """Merge free-form labels into the manifest meta."""
        self._meta.update(meta)

    # -- flushing -------------------------------------------------------
    def _write_window(
        self, ids: np.ndarray, idx: np.ndarray, wr: np.ndarray
    ) -> None:
        savez = np.savez_compressed if self.compress else np.savez
        savez(
            self.out_dir / _window_name(self._windows),
            array_ids=ids,
            indices=idx,
            is_write=wr,
        )
        self._windows += 1
        self._flushed += ids.size

    def _flush_full_windows(self) -> None:
        ids = np.concatenate(self._ids)
        idx = np.concatenate(self._idx)
        wr = np.concatenate(self._wr)
        w = self.window_events
        lo = 0
        while ids.size - lo >= w:
            self._write_window(ids[lo : lo + w], idx[lo : lo + w], wr[lo : lo + w])
            lo += w
        self._ids = [ids[lo:]] if lo < ids.size else []
        self._idx = [idx[lo:]] if lo < ids.size else []
        self._wr = [wr[lo:]] if lo < ids.size else []
        self._buffered = ids.size - lo

    def close(self) -> Path:
        """Flush the trailing partial window, write the manifest."""
        if self._closed:
            return self.out_dir
        if self._buffered:
            self._write_window(
                np.concatenate(self._ids),
                np.concatenate(self._idx),
                np.concatenate(self._wr),
            )
            self._ids = self._idx = self._wr = []
            self._buffered = 0
        manifest = {
            "format": _FORMAT,
            "window_events": self.window_events,
            "total_events": self._flushed,
            "num_windows": self._windows,
            "iteration_starts": self._iter_starts or [0],
            "compress": self.compress,
            "meta": json.loads(json.dumps(self._meta, default=str)),
        }
        (self.out_dir / TRACE_MANIFEST).write_text(json.dumps(manifest, indent=2))
        self._closed = True
        return self.out_dir

    def __enter__(self) -> "ChunkedTraceWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()


class ChunkedTrace:
    """Read side of the chunked trace format.

    Windows load on demand as plain :class:`AccessTrace` objects (their
    ``meta`` carries the window index and global offset), so peak memory
    while replaying is one window, not the trace.
    """

    def __init__(self, path: Path, manifest: dict) -> None:
        self.path = Path(path)
        self._manifest = manifest
        self.window_events: int = int(manifest["window_events"])
        self.total_events: int = int(manifest["total_events"])
        self.num_windows: int = int(manifest["num_windows"])
        self.iteration_starts = np.asarray(
            manifest["iteration_starts"], dtype=np.int64
        )
        self.meta: dict = dict(manifest.get("meta", {}))

    @classmethod
    def open(cls, path: str | Path) -> "ChunkedTrace":
        """Open a directory written by :class:`ChunkedTraceWriter`."""
        path = Path(path)
        manifest_path = path / TRACE_MANIFEST
        if not manifest_path.is_file():
            raise FileNotFoundError(f"no {TRACE_MANIFEST} in {path}")
        manifest = json.loads(manifest_path.read_text())
        if manifest.get("format") != _FORMAT:
            raise ValueError(f"unrecognised trace format in {manifest_path}")
        return cls(path, manifest)

    def __len__(self) -> int:
        return self.total_events

    @property
    def num_iterations(self) -> int:
        return self.iteration_starts.size

    def window_bounds(self, k: int) -> tuple[int, int]:
        """Global event range ``[lo, hi)`` covered by window ``k``."""
        if not 0 <= k < self.num_windows:
            raise IndexError(f"window {k} out of range")
        lo = k * self.window_events
        return lo, min(lo + self.window_events, self.total_events)

    def window(self, k: int) -> AccessTrace:
        """Load window ``k`` as a plain in-memory trace."""
        lo, hi = self.window_bounds(k)
        with np.load(self.path / _window_name(k)) as data:
            trace = AccessTrace(
                data["array_ids"],
                data["indices"],
                data["is_write"],
                meta=dict(self.meta, window=k, offset=lo),
            )
        if len(trace) != hi - lo:
            raise ValueError(f"window {k} length does not match manifest")
        return trace

    def iter_windows(self) -> Iterator[AccessTrace]:
        """Yield every window in order (bounded memory)."""
        for k in range(self.num_windows):
            yield self.window(k)

    def iteration(self, k: int) -> AccessTrace:
        """Materialize the sub-trace of smoothing iteration ``k``."""
        if not 0 <= k < self.num_iterations:
            raise IndexError(f"iteration {k} out of range")
        lo = int(self.iteration_starts[k])
        hi = (
            int(self.iteration_starts[k + 1])
            if k + 1 < self.num_iterations
            else self.total_events
        )
        if self.window_events == 0 or hi == lo:
            return AccessTrace(
                np.empty(0, dtype=np.uint8),
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=bool),
                meta=dict(self.meta, iteration=k),
            )
        first = lo // self.window_events
        last = (hi - 1) // self.window_events
        parts = []
        for w in range(first, last + 1):
            wlo, _ = self.window_bounds(w)
            win = self.window(w)
            parts.append(
                (
                    win.array_ids[max(lo - wlo, 0) : hi - wlo],
                    win.indices[max(lo - wlo, 0) : hi - wlo],
                    win.is_write[max(lo - wlo, 0) : hi - wlo],
                )
            )
        return AccessTrace(
            np.concatenate([p[0] for p in parts]),
            np.concatenate([p[1] for p in parts]),
            np.concatenate([p[2] for p in parts]),
            meta=dict(self.meta, iteration=k),
        )

    def to_trace(self) -> AccessTrace:
        """Materialize the whole trace (tests / small traces only)."""
        if self.num_windows == 0:
            return AccessTrace(
                np.empty(0, dtype=np.uint8),
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=bool),
                iteration_starts=self.iteration_starts,
                meta=dict(self.meta),
            )
        windows = list(self.iter_windows())
        return AccessTrace(
            np.concatenate([w.array_ids for w in windows]),
            np.concatenate([w.indices for w in windows]),
            np.concatenate([w.is_write for w in windows]),
            iteration_starts=self.iteration_starts,
            meta=dict(self.meta),
        )
