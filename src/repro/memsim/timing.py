"""The paper's Equation (2) cost model and modeled execution time.

Equation (2): with ``m1, m2, m3`` the per-level miss *rates* and
``c2, c3, cm`` the access costs of L2, L3 and memory,

    extra_cycles = (m1*c2 + m1*m2*c3 + m1*m2*m3*cm) * num_accesses

which, multiplying through, is simply

    misses(L1)*c2 + misses(L2)*c3 + misses(L3)*cm.

The modeled execution time adds a uniform base cost per access (covering
the arithmetic and the L1 latency) to the extra miss cycles:

    cycles = base_cycles_per_access * num_accesses + extra_cycles
    seconds = cycles / frequency

Because CPython's wall clock cannot expose hardware cache behaviour
(repro band 3/5), this model is the primary "execution time" of every
experiment; all speedups and gains in the benchmark reports are ratios
of modeled times, exactly as the paper's are ratios of measured times.
"""

from __future__ import annotations

from dataclasses import dataclass

from .cache import HierarchyStats
from .machine import MachineSpec

__all__ = ["CostBreakdown", "extra_miss_cycles", "modeled_time"]


@dataclass(frozen=True)
class CostBreakdown:
    """Cycle accounting of one simulated execution."""

    num_accesses: int
    base_cycles: float
    l2_fill_cycles: float
    l3_fill_cycles: float
    memory_cycles: float

    @property
    def extra_cycles(self) -> float:
        """Equation (2): cycles attributable to cache misses."""
        return self.l2_fill_cycles + self.l3_fill_cycles + self.memory_cycles

    @property
    def total_cycles(self) -> float:
        return self.base_cycles + self.extra_cycles

    def seconds(self, machine: MachineSpec) -> float:
        return self.total_cycles / machine.frequency_hz


def extra_miss_cycles(stats: HierarchyStats, machine: MachineSpec) -> float:
    """Equation (2) evaluated on simulated miss counts."""
    return (
        stats.l1.misses * machine.l2.latency_cycles
        + stats.l2.misses * machine.l3.latency_cycles
        + stats.l3.misses * machine.memory_latency_cycles
    )


def modeled_time(
    stats: HierarchyStats,
    machine: MachineSpec,
    *,
    num_accesses: int | None = None,
) -> CostBreakdown:
    """Full cost breakdown for a simulated trace.

    ``num_accesses`` defaults to the L1 access count of ``stats`` (every
    logical access touches L1 first).
    """
    n = stats.l1.accesses if num_accesses is None else num_accesses
    return CostBreakdown(
        num_accesses=n,
        base_cycles=machine.base_cycles_per_access * n,
        l2_fill_cycles=stats.l1.misses * machine.l2.latency_cycles,
        l3_fill_cycles=stats.l2.misses * machine.l3.latency_cycles,
        memory_cycles=stats.l3.misses * machine.memory_latency_cycles,
    )
