"""The memory-layout model: logical accesses -> addresses -> cache lines.

Mirrors a Mesquite-like array-of-arrays layout for the smoothing working
set. Each vertex owns

* 16 bytes of coordinates (two float64) in the ``coords`` array,
* 4 bytes of fixed/boundary flag in ``flags``,
* 8 bytes of CSR row pointer in ``xadj``,
* 8 bytes per neighbor entry in ``adjncy``,
* 8 bytes of cached quality in ``quality``,

which is where the paper's "a node is characterized by … typically 66
bytes" footnote comes from. Arrays are placed back to back, each aligned
to a line boundary. Because all element sizes divide the 64-byte line,
no element straddles two lines and each logical access maps to exactly
one line id — which keeps the whole translation a pair of vectorized
gathers.

Why line granularity matters: reuse distance over *element identities*
is invariant under renaming, so a reordering can only change locality
through which elements share a line and how the traversal position
correlates with the storage position. The layout model is therefore the
point where orderings become observable to the cache simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .trace import ARRAY_NAMES, AccessTrace

__all__ = ["MemoryLayout", "DEFAULT_ELEMENT_SIZES"]

#: Bytes per element of each logical array (see module docstring).
DEFAULT_ELEMENT_SIZES: dict[str, int] = {
    "coords": 16,
    "flags": 4,
    "xadj": 8,
    "adjncy": 8,
    "quality": 8,
}


@dataclass
class MemoryLayout:
    """Placement of the smoothing working set in a flat address space.

    Parameters
    ----------
    num_vertices:
        Vertex count of the (permuted) mesh the trace refers to.
    num_adjacency:
        Length of the CSR ``adjncy`` array.
    line_size:
        Cache-line size in bytes (64 on Westmere-EX).
    element_sizes:
        Override per-array element sizes (ablation studies).
    """

    num_vertices: int
    num_adjacency: int
    line_size: int = 64
    element_sizes: dict[str, int] = field(
        default_factory=lambda: dict(DEFAULT_ELEMENT_SIZES)
    )
    _bases: np.ndarray = field(init=False, repr=False)
    _sizes: np.ndarray = field(init=False, repr=False)
    _elem_bases: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.line_size <= 0 or self.line_size & (self.line_size - 1):
            raise ValueError("line_size must be a positive power of two")
        for name, size in self.element_sizes.items():
            if self.line_size % size:
                raise ValueError(
                    f"element size of {name!r} ({size}) must divide the "
                    f"line size ({self.line_size})"
                )
        counts = {
            "coords": self.num_vertices,
            "flags": self.num_vertices,
            "xadj": self.num_vertices + 1,
            "adjncy": self.num_adjacency,
            "quality": self.num_vertices,
        }
        bases = np.zeros(len(ARRAY_NAMES), dtype=np.int64)
        sizes = np.zeros(len(ARRAY_NAMES), dtype=np.int64)
        elem_bases = np.zeros(len(ARRAY_NAMES), dtype=np.int64)
        cursor = 0
        ecursor = 0
        for i, name in enumerate(ARRAY_NAMES):
            sizes[i] = self.element_sizes[name]
            bases[i] = cursor
            elem_bases[i] = ecursor
            nbytes = counts[name] * sizes[i]
            # Align the next array to a fresh line.
            cursor += -(-nbytes // self.line_size) * self.line_size
            ecursor += counts[name]
        self._bases = bases
        self._sizes = sizes
        self._elem_bases = elem_bases

    @property
    def total_bytes(self) -> int:
        """Footprint of the working set, rounded up to whole lines."""
        return int(self._bases[-1]) + int(
            -(
                -self._sizes[-1]
                * (self.num_vertices)
                // self.line_size
            )
            * self.line_size
        )

    def addresses_of(
        self, array_ids: np.ndarray, indices: np.ndarray
    ) -> np.ndarray:
        """Byte address of each ``(array id, index)`` pair (vectorized)."""
        return (
            self._bases[array_ids]
            + np.asarray(indices, dtype=np.int64) * self._sizes[array_ids]
        )

    def lines_of(
        self, array_ids: np.ndarray, indices: np.ndarray
    ) -> np.ndarray:
        """Cache-line id of each ``(array id, index)`` pair — the
        column-level form the fused trace pipeline applies per window."""
        return self.addresses_of(array_ids, indices) // self.line_size

    def addresses(self, trace: AccessTrace) -> np.ndarray:
        """Byte address of each access (vectorized)."""
        return self.addresses_of(trace.array_ids, trace.indices)

    def lines(self, trace: AccessTrace) -> np.ndarray:
        """Cache-line id of each access (vectorized, one line per access)."""
        return self.addresses(trace) // self.line_size

    def element_ids(self, trace: AccessTrace) -> np.ndarray:
        """Globally unique *element* id per access (layout-independent).

        Used by the element-granularity reuse-distance ablation: these
        ids identify logical elements, so any permutation of vertex
        storage yields identical reuse-distance statistics at this
        granularity.
        """
        return self._elem_bases[trace.array_ids] + trace.indices

    @classmethod
    def for_mesh(cls, mesh, *, line_size: int = 64, **kwargs) -> "MemoryLayout":
        """Layout sized for a :class:`~repro.mesh.TriMesh`."""
        return cls(
            num_vertices=mesh.num_vertices,
            num_adjacency=int(mesh.adjacency.adjncy.size),
            line_size=line_size,
            **kwargs,
        )
