"""Machine descriptions for the cache simulator.

:func:`westmere_ex` reproduces the platform of the paper's Section 5.1:
4 sockets of 8 cores (Intel Xeon E7-8837), per-core 32 KB L1 and 256 KB
L2, 24 MB shared L3 per socket, inclusive hierarchy, 64-byte lines.
Access latencies follow the figures the paper quotes from Molka et al.:
L1 4 cycles, L2 10 cycles, L3 38-170 cycles (location-dependent), memory
175-290 cycles. The simulator uses the local-access end of each range by
default; the QPI (remote-socket) penalties are modelled in
:mod:`repro.memsim.multicore`.

Because the benchmark meshes are scaled down from the paper's 300-400k
vertices (pure-Python tracing), :func:`westmere_ex` accepts a ``scale``
that shrinks every cache capacity proportionally while keeping
latencies, associativities and line size fixed. Scaling caches with the
working set preserves the capacity-to-footprint ratios that produce
every effect the paper reports.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

__all__ = [
    "CacheSpec",
    "MachineSpec",
    "westmere_ex",
    "tiny_machine",
    "calibrated_machine",
    "profile_line_size",
    "resolve_machine",
]


@dataclass(frozen=True)
class CacheSpec:
    """Geometry and latency of one cache level."""

    name: str
    size_bytes: int
    associativity: int
    latency_cycles: float
    line_size: int = 64

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.associativity <= 0:
            raise ValueError("cache size and associativity must be positive")
        if self.size_bytes % (self.line_size * self.associativity):
            raise ValueError(
                f"{self.name}: size must be a multiple of line_size * ways"
            )

    @property
    def num_lines(self) -> int:
        return self.size_bytes // self.line_size

    @property
    def num_sets(self) -> int:
        return self.num_lines // self.associativity


@dataclass(frozen=True)
class MachineSpec:
    """A NUMA multicore: private L1/L2 per core, shared L3 per socket."""

    name: str
    l1: CacheSpec
    l2: CacheSpec
    l3: CacheSpec
    memory_latency_cycles: float
    remote_l3_extra_cycles: float
    frequency_hz: float
    cores_per_socket: int = 8
    num_sockets: int = 4
    base_cycles_per_access: float = field(default=1.0)

    @property
    def num_cores(self) -> int:
        return self.cores_per_socket * self.num_sockets

    @property
    def line_size(self) -> int:
        return self.l1.line_size

    def levels(self) -> tuple[CacheSpec, CacheSpec, CacheSpec]:
        return (self.l1, self.l2, self.l3)


def _scaled(size: int, scale: float, line: int, ways: int) -> int:
    """Scale a capacity, rounding to a legal (line*ways multiple) size."""
    unit = line * ways
    units = max(1, round(size * scale / unit))
    return units * unit


def westmere_ex(*, scale: float = 1.0) -> MachineSpec:
    """The paper's Intel Westmere-EX platform (optionally cache-scaled)."""
    line = 64
    return MachineSpec(
        name=f"westmere-ex(scale={scale:g})",
        l1=CacheSpec("L1", _scaled(32 * 1024, scale, line, 8), 8, 4.0, line),
        l2=CacheSpec("L2", _scaled(256 * 1024, scale, line, 8), 8, 10.0, line),
        l3=CacheSpec(
            "L3", _scaled(24 * 1024 * 1024, scale, line, 24), 24, 38.0, line
        ),
        memory_latency_cycles=175.0,
        remote_l3_extra_cycles=132.0,  # 170 - 38: far end of the L3 range
        frequency_hz=2.67e9,  # Xeon E7-8837 nominal clock
        cores_per_socket=8,
        num_sockets=4,
    )


def profile_line_size(profile: str) -> int:
    """Default line granularity of a calibration profile.

    ``gpu-generic`` models 128-byte coalesced memory transactions;
    every CPU profile keeps the 64-byte Westmere line.
    """
    return 128 if profile == "gpu-generic" else 64


def calibrated_machine(
    footprint_bytes: int,
    *,
    profile: str = "serial",
    line_size: int | None = None,
) -> MachineSpec:
    """A Westmere-shaped machine sized to a given working-set footprint.

    The benchmark meshes are far smaller than the paper's, so instead of
    scaling every cache by one global factor (which makes L1 too small
    to hold even one smoothing neighborhood), the caches are sized
    relative to the *footprint*, keeping the regime of each level where
    the paper's machine sat relative to its working set:

    ``serial`` (Figures 1, 8, 9; Tables 2, 3)
        L1 holds the streaming frontier (64 lines), L2 ~15% of the
        footprint, L3 slightly above the footprint — the paper's 24 MB
        L3 vs ~21 MB mesh. L3 misses are then compulsory + conflict
        misses, exactly the "bare minimum" regime the paper reports.
    ``scaling`` (Figures 10-13)
        Same L1/L2, but per-socket L3 at 40% of the footprint: a single
        socket cannot hold the mesh, while several sockets' aggregate
        can — the regime that produces the paper's super-linear
        multi-socket speedups.
    ``gpu-generic`` (the accelerator-hierarchy rendition of the story)
        128-byte lines model coalesced memory transactions, so
        spatially-dense orderings pack more vertices per transaction;
        L1 is shared-memory-sized (48 KB, 32-way, cheap) like a
        per-SM scratchpad, the device-wide L2 holds ~25% of the
        footprint, and the memory-side last level sits just above the
        footprint with HBM-scale latencies. One "socket" of 32
        SM-like cores.

    Latencies, associativities, line size, core/socket counts and clock
    are Westmere-EX for the CPU profiles; ``line_size=None`` takes the
    profile's default (:func:`profile_line_size`).
    """
    if footprint_bytes <= 0:
        raise ValueError("footprint_bytes must be positive")
    if line_size is None:
        line_size = profile_line_size(profile)
    if profile == "gpu-generic":
        def gspec(name: str, size: int, ways: int, latency: float) -> CacheSpec:
            return CacheSpec(
                name, _scaled(size, 1.0, line_size, ways), ways, latency,
                line_size,
            )

        l1 = gspec("L1", 384 * line_size, 32, 28.0)
        l2 = gspec(
            "L2",
            max(2 * 384 * line_size, int(0.25 * footprint_bytes)),
            16,
            190.0,
        )
        l3 = gspec(
            "L3",
            max(2 * l2.size_bytes, int(1.05 * footprint_bytes)),
            16,
            350.0,
        )
        return MachineSpec(
            name=f"calibrated-gpu-generic({footprint_bytes}B)",
            l1=l1,
            l2=l2,
            l3=l3,
            memory_latency_cycles=480.0,
            remote_l3_extra_cycles=0.0,
            frequency_hz=1.4e9,
            cores_per_socket=32,
            num_sockets=1,
        )
    if profile == "serial":
        l2_frac, l3_frac = 0.15, 1.05
    elif profile == "scaling":
        # Match the paper's parallel regime: a per-thread block must NOT
        # fit in L2 even at 32 threads (Westmere: 675 KB blocks vs 256 KB
        # L2), so within-block streaming — not block geometry — decides
        # the L2 behaviour; a socket's L3 cannot hold the whole mesh at
        # low thread counts but aggregates across sockets can.
        l2_frac, l3_frac = 1.0 / 64.0, 0.40
    else:
        raise ValueError(f"unknown calibration profile {profile!r}")

    def spec(name: str, size: int, ways: int, latency: float) -> CacheSpec:
        return CacheSpec(
            name, _scaled(size, 1.0, line_size, ways), ways, latency, line_size
        )

    l1 = spec("L1", 64 * line_size, 8, 4.0)
    l2 = spec(
        "L2", max(2 * 64 * line_size, int(l2_frac * footprint_bytes)), 8, 10.0
    )
    l3 = spec(
        "L3", max(2 * l2.size_bytes, int(l3_frac * footprint_bytes)), 24, 38.0
    )
    return MachineSpec(
        name=f"calibrated-{profile}({footprint_bytes}B)",
        l1=l1,
        l2=l2,
        l3=l3,
        memory_latency_cycles=175.0,
        remote_l3_extra_cycles=132.0,
        frequency_hz=2.67e9,
        cores_per_socket=8,
        num_sockets=4,
    )


def resolve_machine(
    machine: MachineSpec | str | None,
    *,
    footprint_bytes: int | None = None,
    stacklevel: int = 3,
) -> MachineSpec | None:
    """Accept both ``machine=MachineSpec`` and the legacy profile-name
    string form, mirroring :func:`repro.config.resolve_config`.

    A :class:`MachineSpec` (or ``None``) passes straight through.  A
    string is treated as a calibration profile name: it emits a
    :class:`DeprecationWarning` attributed ``stacklevel`` frames up
    (the modern spelling is ``RunConfig(machine_profile=...)`` or an
    explicit :func:`calibrated_machine`), validates against
    :data:`repro.config.MACHINE_PROFILES`, and is calibrated to
    ``footprint_bytes`` — which the resolving API must supply from its
    workload (trace footprint, mesh layout size).
    """
    if machine is None or isinstance(machine, MachineSpec):
        return machine
    if not isinstance(machine, str):
        raise TypeError(
            "machine must be a MachineSpec or a profile name, got "
            f"{type(machine).__name__}"
        )
    from ..config import MACHINE_PROFILES, UnknownNameError

    warnings.warn(
        f"passing machine={machine!r} as a profile-name string is "
        "deprecated; pass a MachineSpec (e.g. calibrated_machine(footprint, "
        f"profile={machine!r})) or set RunConfig(machine_profile=...)",
        DeprecationWarning,
        stacklevel=stacklevel,
    )
    if machine not in MACHINE_PROFILES:
        raise UnknownNameError("machine profile", machine, MACHINE_PROFILES)
    if footprint_bytes is None:
        raise TypeError(
            "resolving a profile-name machine requires a workload "
            "footprint; this API cannot infer one"
        )
    return calibrated_machine(int(footprint_bytes), profile=machine)


def tiny_machine() -> MachineSpec:
    """A deliberately tiny machine for unit tests (fast, easy to reason about)."""
    line = 64
    return MachineSpec(
        name="tiny",
        l1=CacheSpec("L1", 8 * line, 2, 1.0, line),
        l2=CacheSpec("L2", 32 * line, 4, 4.0, line),
        l3=CacheSpec("L3", 128 * line, 4, 16.0, line),
        memory_latency_cycles=64.0,
        remote_l3_extra_cycles=16.0,
        frequency_hz=1e9,
        cores_per_socket=2,
        num_sockets=2,
    )
