"""Exact reuse-distance analysis (Bennett-Kruskal / Olken algorithm).

The reuse distance (stack distance under LRU) of an access is the number
of *distinct* items referenced since the previous access to the same
item; first accesses are *cold* and carry no distance. Under a
fully-associative LRU cache of capacity C, an access hits iff its reuse
distance is < C — which is the first-order model the paper builds its
whole analysis on (Section 3.1).

Algorithm: keep, for every item, the time of its latest access, and a
Fenwick tree (binary indexed tree) over time marking which positions are
currently "the latest access of some item". The reuse distance of an
access at time ``t`` to an item last touched at ``t0`` is the number of
marks in ``(t0, t)``. Each access does O(log n) Fenwick work.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "reuse_distances",
    "ReuseProfile",
    "profile_from_distances",
    "bucketed_series",
    "hits_under_capacity",
    "max_elements_within",
]

COLD = -1  # sentinel distance for first-touch accesses


def reuse_distances(stream: np.ndarray) -> np.ndarray:
    """Reuse distance of every access in an item-id stream.

    Parameters
    ----------
    stream:
        1-D integer array of item ids (cache-line ids, element ids, ...).
        Ids may be arbitrary integers; they are compressed internally.

    Returns
    -------
    int64 array of the same length; ``COLD`` (-1) marks first accesses.
    """
    stream = np.asarray(stream)
    n = stream.size
    out = np.full(n, COLD, dtype=np.int64)
    if n == 0:
        return out
    # Compress ids to 0..u-1 for dense bookkeeping.
    _, compact = np.unique(stream, return_inverse=True)
    compact = compact.astype(np.int64)

    size = n + 1
    tree = [0] * size  # Fenwick tree over access times (1-based)
    last = {}  # item -> last access time (0-based)

    # Local bindings: this loop dominates the analysis cost.
    tree_local = tree
    last_local = last
    out_local = out
    compact_list = compact.tolist()

    def update(i: int, delta: int) -> None:
        i += 1
        while i < size:
            tree_local[i] += delta
            i += i & (-i)

    def query(i: int) -> int:  # prefix sum of marks at times <= i (0-based)
        i += 1
        s = 0
        while i > 0:
            s += tree_local[i]
            i -= i & (-i)
        return s

    for t, x in enumerate(compact_list):
        t0 = last_local.get(x)
        if t0 is not None:
            # Marks strictly inside (t0, t): each is the latest access of
            # a distinct other item touched since t0.
            out_local[t] = query(t - 1) - query(t0)
            update(t0, -1)
        update(t, +1)
        last_local[x] = t
    return out


@dataclass(frozen=True)
class ReuseProfile:
    """Summary statistics of a reuse-distance population.

    ``quantiles`` follows the paper's definition: the X-quantile is the
    smallest value such that at least a proportion X of the population
    lies at or below it. Cold accesses are excluded from the population
    (they have no distance) but counted in ``num_cold``.
    """

    num_accesses: int
    num_cold: int
    mean: float
    q50: int
    q75: int
    q90: int
    q100: int

    @property
    def num_reuses(self) -> int:
        return self.num_accesses - self.num_cold

    def as_row(self) -> dict:
        return {
            "accesses": self.num_accesses,
            "cold": self.num_cold,
            "mean": self.mean,
            "50%": self.q50,
            "75%": self.q75,
            "90%": self.q90,
            "100%": self.q100,
        }


def profile_from_distances(distances: np.ndarray) -> ReuseProfile:
    """Build a :class:`ReuseProfile` from :func:`reuse_distances` output."""
    distances = np.asarray(distances)
    warm = distances[distances != COLD]
    n = distances.size
    if warm.size == 0:
        return ReuseProfile(n, n, float("nan"), 0, 0, 0, 0)
    srt = np.sort(warm)

    def q(x: float) -> int:
        # Smallest value with at least proportion x of the population
        # at or below it.
        k = max(0, min(srt.size - 1, int(np.ceil(x * srt.size)) - 1))
        return int(srt[k])

    return ReuseProfile(
        num_accesses=n,
        num_cold=int(n - warm.size),
        mean=float(warm.mean()),
        q50=q(0.50),
        q75=q(0.75),
        q90=q(0.90),
        q100=int(srt[-1]),
    )


def bucketed_series(
    distances: np.ndarray, num_buckets: int = 100
) -> tuple[np.ndarray, np.ndarray]:
    """Average reuse distance per time bucket (Figures 1 and 6).

    Splits the access stream into ``num_buckets`` equal spans and
    averages the (warm) distances inside each; cold accesses are skipped.
    Returns ``(bucket_centers, means)``; buckets with no warm access get
    NaN.
    """
    distances = np.asarray(distances, dtype=np.float64)
    n = distances.size
    if n == 0:
        return np.empty(0), np.empty(0)
    num_buckets = min(num_buckets, n)
    edges = np.linspace(0, n, num_buckets + 1).astype(np.int64)
    centers = 0.5 * (edges[:-1] + edges[1:])
    means = np.full(num_buckets, np.nan)
    for b in range(num_buckets):
        seg = distances[edges[b] : edges[b + 1]]
        warm = seg[seg != COLD]
        if warm.size:
            means[b] = warm.mean()
    return centers, means


def hits_under_capacity(distances: np.ndarray, capacity: int) -> int:
    """Accesses that hit a fully-associative LRU cache of ``capacity`` lines.

    The theoretical model of Section 3.1: an access hits iff its reuse
    distance is strictly below the capacity; cold accesses always miss.
    """
    distances = np.asarray(distances)
    return int(np.count_nonzero((distances != COLD) & (distances < capacity)))


def max_elements_within(distances: np.ndarray, num_misses: int) -> int:
    """Invert the model: capacity that would leave exactly ``num_misses``.

    The paper's Table 3 estimate: assuming the ``num_misses`` accesses
    with the largest reuse distances are the ones that missed, the
    implied capacity is the smallest distance among them (i.e. elements
    up to that distance fit). Cold accesses are excluded, mirroring the
    paper's subtraction of compulsory misses.
    """
    distances = np.asarray(distances)
    warm = np.sort(distances[distances != COLD])
    if warm.size == 0:
        return 0
    num_misses = int(min(max(num_misses, 0), warm.size))
    if num_misses == 0:
        return int(warm[-1]) + 1
    return int(warm[warm.size - num_misses])
