"""Exact reuse-distance analysis (Bennett-Kruskal / Olken algorithm).

The reuse distance (stack distance under LRU) of an access is the number
of *distinct* items referenced since the previous access to the same
item; first accesses are *cold* and carry no distance. Under a
fully-associative LRU cache of capacity C, an access hits iff its reuse
distance is < C — which is the first-order model the paper builds its
whole analysis on (Section 3.1).

Algorithm: the classic formulation keeps a Fenwick tree over time
marking which positions are currently "the latest access of some item";
the vectorized version used here counts *contained repeats* instead.
With ``p`` the previous access to the same item and ``span = t - p``,

    distance(t) = span - 1 - #{repeats (prev_f, f) contained in (p, t)}

because every access ``f`` in the window whose own previous occurrence
``prev_f`` also lies after ``p`` double-counts an item the plain
position count already saw. Repeats are binned by their backward gap
``g = f - prev_f``; a repeat with gap ``g`` is contained iff
``p + g < f < t``, which per gap class is a 1-D range count answered by
two ``searchsorted`` calls over *all* queries at once. Only gap classes
with ``g + 2 <= span`` can contribute, so queries are processed in
descending span order and each class touches only the still-active
prefix. On streams where that class/span product degenerates (estimated
up front) the original O(n log n) Fenwick loop is used instead, so the
worst case never regresses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "reuse_distances",
    "ReuseProfile",
    "profile_from_distances",
    "bucketed_series",
    "hits_under_capacity",
    "max_elements_within",
]

COLD = -1  # sentinel distance for first-touch accesses

# Fall back to the Fenwick loop when the class-sweep would do more than
# this many range-count lookups per access (adversarial gap spectra).
_SWEEP_WORK_FACTOR = 64


def previous_occurrence(stream: np.ndarray) -> np.ndarray:
    """Index of the previous access to the same item, -1 for first touches.

    Works on any integer id stream; the result indexes into ``stream``.
    """
    stream = np.asarray(stream)
    n = stream.size
    prev = np.full(n, -1, dtype=np.int64)
    if n == 0:
        return prev
    # Stable sort groups equal ids while keeping time order inside each
    # group, so the predecessor in sort order is the previous occurrence.
    order = np.argsort(stream, kind="stable")
    sorted_ids = stream[order]
    same = sorted_ids[1:] == sorted_ids[:-1]
    prev[order[1:][same]] = order[:-1][same]
    return prev


def _distances_fenwick(prev: np.ndarray) -> np.ndarray:
    """Reference Bennett-Kruskal loop (kept as the worst-case fallback)."""
    n = prev.size
    out = np.full(n, COLD, dtype=np.int64)
    size = n + 1
    tree = [0] * size  # Fenwick tree over access times (1-based)
    out_local = out
    prev_list = prev.tolist()

    for t, t0 in enumerate(prev_list):
        if t0 >= 0:
            # Count marks strictly inside (t0, t): each is the latest
            # access of a distinct other item touched since t0.
            s = 0
            i = t  # prefix over [0, t-1], 1-based index t
            while i > 0:
                s += tree[i]
                i -= i & (-i)
            i = t0 + 1
            while i > 0:
                s -= tree[i]
                i -= i & (-i)
            out_local[t] = s
            i = t0 + 1  # unmark the previous occurrence
            while i < size:
                tree[i] -= 1
                i += i & (-i)
        i = t + 1  # mark this occurrence as the item's latest
        while i < size:
            tree[i] += 1
            i += i & (-i)
    return out


def contained_repeat_counts(
    prev: np.ndarray, t_idx: np.ndarray, p_idx: np.ndarray
) -> np.ndarray:
    """For each query window ``(p_idx[q], t_idx[q])``, count repeats inside.

    A repeat is a position ``f`` with ``prev[f] >= 0`` whose backward gap
    ``g = f - prev[f]`` satisfies ``p + g < f < t`` — i.e. both endpoints
    of the interval ``(prev[f], f)`` fall strictly inside the window.
    Vectorized per distinct gap class; cost is proportional to the number
    of (query, class-with-smaller-gap) pairs.
    """
    nq = t_idx.size
    counts = np.zeros(nq, dtype=np.int64)
    if nq == 0:
        return counts
    repeats = np.nonzero(prev >= 0)[0]
    if repeats.size == 0:
        return counts
    gaps = repeats - prev[repeats]
    # Group repeat positions by gap; positions stay time-sorted in-group.
    g_order = np.argsort(gaps, kind="stable")
    g_sorted = gaps[g_order]
    f_by_gap = repeats[g_order]
    class_gaps, class_starts = np.unique(g_sorted, return_index=True)
    class_ends = np.append(class_starts[1:], g_sorted.size)

    # Queries in descending span order: class g only affects spans >= g+2,
    # a prefix of this order, so accumulation stays slice-aligned.
    span = t_idx - p_idx
    q_order = np.argsort(-span, kind="stable")
    span_desc = span[q_order]
    t_desc = t_idx[q_order]
    p_desc = p_idx[q_order]
    acc = np.zeros(nq, dtype=np.int64)

    # active(g) = #queries with span >= g + 2, a prefix of the
    # descending span order.
    active = np.searchsorted(-span_desc, -(class_gaps + 1))
    if int(active.sum()) > _SWEEP_WORK_FACTOR * (prev.size + nq):
        raise _SweepDegenerate()

    for gap, lo, hi, na in zip(
        class_gaps.tolist(), class_starts.tolist(), class_ends.tolist(),
        active.tolist(),
    ):
        if na == 0:
            break  # spans only shrink from here on
        cls = f_by_gap[lo:hi]
        hi_cnt = np.searchsorted(cls, t_desc[:na], side="left")
        lo_cnt = np.searchsorted(cls, p_desc[:na] + gap, side="right")
        acc[:na] += hi_cnt - lo_cnt
    counts[q_order] = acc
    return counts


class _SweepDegenerate(Exception):
    """Raised when the class sweep would exceed its work budget."""


def reuse_distances(stream: np.ndarray) -> np.ndarray:
    """Reuse distance of every access in an item-id stream.

    Parameters
    ----------
    stream:
        1-D integer array of item ids (cache-line ids, element ids, ...).
        Ids may be arbitrary integers; they are compressed internally.

    Returns
    -------
    int64 array of the same length; ``COLD`` (-1) marks first accesses.
    """
    stream = np.asarray(stream)
    n = stream.size
    out = np.full(n, COLD, dtype=np.int64)
    if n == 0:
        return out
    prev = previous_occurrence(stream)
    t_idx = np.nonzero(prev >= 0)[0]
    if t_idx.size == 0:
        return out
    p_idx = prev[t_idx]
    try:
        repeats = contained_repeat_counts(prev, t_idx, p_idx)
    except _SweepDegenerate:
        return _distances_fenwick(prev)
    out[t_idx] = t_idx - p_idx - 1 - repeats
    return out


@dataclass(frozen=True)
class ReuseProfile:
    """Summary statistics of a reuse-distance population.

    ``quantiles`` follows the paper's definition: the X-quantile is the
    smallest value such that at least a proportion X of the population
    lies at or below it. Cold accesses are excluded from the population
    (they have no distance) but counted in ``num_cold``.
    """

    num_accesses: int
    num_cold: int
    mean: float
    q50: int
    q75: int
    q90: int
    q100: int

    @property
    def num_reuses(self) -> int:
        return self.num_accesses - self.num_cold

    def as_row(self) -> dict:
        return {
            "accesses": self.num_accesses,
            "cold": self.num_cold,
            "mean": self.mean,
            "50%": self.q50,
            "75%": self.q75,
            "90%": self.q90,
            "100%": self.q100,
        }


def profile_from_distances(distances: np.ndarray) -> ReuseProfile:
    """Build a :class:`ReuseProfile` from :func:`reuse_distances` output."""
    distances = np.asarray(distances)
    warm = distances[distances != COLD]
    n = distances.size
    if warm.size == 0:
        return ReuseProfile(n, n, float("nan"), 0, 0, 0, 0)
    srt = np.sort(warm)

    def q(x: float) -> int:
        # Smallest value with at least proportion x of the population
        # at or below it.
        k = max(0, min(srt.size - 1, int(np.ceil(x * srt.size)) - 1))
        return int(srt[k])

    return ReuseProfile(
        num_accesses=n,
        num_cold=int(n - warm.size),
        mean=float(warm.mean()),
        q50=q(0.50),
        q75=q(0.75),
        q90=q(0.90),
        q100=int(srt[-1]),
    )


def bucketed_series(
    distances: np.ndarray, num_buckets: int = 100
) -> tuple[np.ndarray, np.ndarray]:
    """Average reuse distance per time bucket (Figures 1 and 6).

    Splits the access stream into ``num_buckets`` equal spans and
    averages the (warm) distances inside each; cold accesses are skipped.
    Returns ``(bucket_centers, means)``; buckets with no warm access get
    NaN.
    """
    distances = np.asarray(distances, dtype=np.float64)
    n = distances.size
    if n == 0:
        return np.empty(0), np.empty(0)
    num_buckets = min(num_buckets, n)
    edges = np.linspace(0, n, num_buckets + 1).astype(np.int64)
    centers = 0.5 * (edges[:-1] + edges[1:])
    # Masked segment sums/counts in one pass each; num_buckets <= n keeps
    # the edges strictly increasing, which reduceat requires.
    warm = distances != COLD
    sums = np.add.reduceat(np.where(warm, distances, 0.0), edges[:-1])
    cnts = np.add.reduceat(warm.astype(np.int64), edges[:-1])
    with np.errstate(invalid="ignore", divide="ignore"):
        means = np.where(cnts > 0, sums / cnts, np.nan)
    return centers, means


def hits_under_capacity(distances: np.ndarray, capacity: int) -> int:
    """Accesses that hit a fully-associative LRU cache of ``capacity`` lines.

    The theoretical model of Section 3.1: an access hits iff its reuse
    distance is strictly below the capacity; cold accesses always miss.
    """
    distances = np.asarray(distances)
    return int(np.count_nonzero((distances != COLD) & (distances < capacity)))


def max_elements_within(distances: np.ndarray, num_misses: int) -> int:
    """Invert the model: capacity that would leave exactly ``num_misses``.

    The paper's Table 3 estimate: assuming the ``num_misses`` accesses
    with the largest reuse distances are the ones that missed, the
    implied capacity is the smallest distance among them (i.e. elements
    up to that distance fit). Cold accesses are excluded, mirroring the
    paper's subtraction of compulsory misses.
    """
    distances = np.asarray(distances)
    warm = np.sort(distances[distances != COLD])
    if warm.size == 0:
        return 0
    num_misses = int(min(max(num_misses, 0), warm.size))
    if num_misses == 0:
        return int(warm[-1]) + 1
    return int(warm[warm.size - num_misses])
