"""Trace sinks: where the smoother's event stream goes, window by window.

Before this module the instrumented smoother always appended into one
in-memory :class:`~repro.memsim.trace.TraceBuilder`, so the full
:class:`~repro.memsim.trace.AccessTrace` existed before the first
simulator event ran — ~17M events resident for the million-vertex
pipeline. A :class:`TraceSink` decouples production from retention: the
smoother emits bounded event-column bursts into whichever sink the
``RunConfig.trace_mode`` axis selects:

``materialize`` (:class:`MaterializeSink` / a plain ``TraceBuilder``)
    Today's behavior — buffer everything, hand back one ``AccessTrace``.
``spill`` (:class:`SpillSink`)
    Feed :class:`~repro.memsim.chunked.ChunkedTraceWriter` incrementally;
    the on-disk windowed format fills as the smoother runs and the
    monolithic trace never exists.
``fused`` (:class:`FusedSink` + :class:`FusedAnalysis`)
    Direct-to-simulator: each full window is translated to cache lines
    and consumed by the streaming engines
    (:class:`~repro.memsim.streaming.StreamingHierarchy` /
    ``StreamingReuse`` / ``StreamingBucketedSeries``) while the producer
    fills the next window.

Determinism of the fused double buffer
--------------------------------------
:class:`FusedSink` hands windows to a single background consumer thread
through a depth-1 queue and *joins* the queue before each handoff, so at
any instant at most two windows exist: the one the producer is filling
and the one the consumer is simulating. Windows arrive at the consumer
in exactly the order they were produced and are processed one at a time
by one thread, so the streaming engines see the same event stream as a
sequential replay — results are bit-identical to the materialized path
regardless of thread scheduling (the overlap changes *when* windows are
simulated, never *what* or *in which order*). ``overlap=False`` degrades
to synchronous in-thread consumption, used by the differential suite to
pin the threaded path against it.
"""

from __future__ import annotations

import queue
import threading
import time
from pathlib import Path

import numpy as np

from .. import obs
from .chunked import ChunkedTrace, ChunkedTraceWriter
from .layout import MemoryLayout
from .machine import MachineSpec
from .reuse import ReuseProfile
from .streaming import (
    StreamingBucketedSeries,
    StreamingHierarchy,
    StreamingReuse,
)
from .trace import ARRAY_IDS, AccessTrace, TraceBuilder

__all__ = [
    "DEFAULT_FUSED_WINDOW_EVENTS",
    "TRACE_MODES",
    "FusedAnalysis",
    "FusedSink",
    "LineSink",
    "MaterializeSink",
    "SpillSink",
    "TraceSink",
    "replay_chunked_trace",
    "replay_trace",
    "replay_trace_windows",
]

#: Valid values of the ``RunConfig.trace_mode`` axis.
TRACE_MODES: tuple[str, ...] = ("materialize", "spill", "fused")

#: Window size the fused pipeline uses when ``stream_window_events`` is
#: unset: ~10 MB of event columns per slot, two slots in flight.
DEFAULT_FUSED_WINDOW_EVENTS = 1 << 20


class TraceSink:
    """Base class of trace consumers the smoother can emit into.

    Subclasses implement :meth:`append_columns`, :meth:`begin_iteration`
    and :meth:`close`; :meth:`append` and :meth:`alloc_columns` come for
    free. A sink exposing a non-``None`` :attr:`burst_events` asks
    producers to emit in bursts of at most that many events (the
    smoother chunks its per-iteration batch accordingly), which is what
    keeps the event columns in flight bounded.
    """

    #: Preferred producer burst size in events (``None`` = unbounded).
    burst_events: int | None = None

    def begin_iteration(self) -> None:
        """Mark the start of a smoothing iteration in the stream."""
        raise NotImplementedError

    def append_columns(
        self,
        array_ids: np.ndarray,
        indices: np.ndarray,
        is_write: np.ndarray,
    ) -> None:
        """Record a block of aligned event columns."""
        raise NotImplementedError

    def append(
        self, array: str, indices: np.ndarray | int, *, write: bool = False
    ) -> None:
        """Record accesses to ``array`` at ``indices`` (scalar or 1-D)."""
        idx = np.atleast_1d(np.asarray(indices, dtype=np.int64))
        k = idx.size
        if k == 0:
            return
        self.append_columns(
            np.full(k, ARRAY_IDS[array], dtype=np.uint8),
            idx,
            np.full(k, write, dtype=bool),
        )

    def alloc_columns(self, total: int):
        """Reserve ``total`` events: ``(ids, idx, wr, commit)`` views.

        The base implementation hands back temporaries (``is_write``
        zeroed) whose ``commit()`` forwards to :meth:`append_columns`;
        buffer-backed sinks override this with zero-copy reservations.
        """
        ids = np.empty(total, dtype=np.uint8)
        idx = np.empty(total, dtype=np.int64)
        wr = np.zeros(total, dtype=bool)
        return ids, idx, wr, lambda: self.append_columns(ids, idx, wr)

    def close(self):
        """Flush and finish; returns the sink's result (mode-specific)."""
        raise NotImplementedError


class MaterializeSink(TraceSink):
    """Today's behavior behind the sink protocol: buffer everything,
    :meth:`close` returns the full :class:`AccessTrace`."""

    def __init__(self) -> None:
        self._builder = TraceBuilder()
        self._meta: dict = {}

    def __len__(self) -> int:
        return len(self._builder)

    def begin_iteration(self) -> None:
        """Mark the start of a smoothing iteration in the stream."""
        self._builder.begin_iteration()

    def append_columns(self, array_ids, indices, is_write) -> None:
        """Record a block of aligned event columns."""
        self._builder.append_columns(array_ids, indices, is_write)

    def alloc_columns(self, total: int):
        """Zero-copy reservation in the underlying growth buffer."""
        return self._builder.alloc_columns(total)

    def set_meta(self, **meta) -> None:
        """Merge labels into the trace meta written at close."""
        self._meta.update(meta)

    def close(self) -> AccessTrace:
        """Build and return the materialized trace."""
        return self._builder.build(**self._meta)


class SpillSink(TraceSink):
    """Stream events straight into the chunked on-disk trace format.

    Wraps :class:`~repro.memsim.chunked.ChunkedTraceWriter`, so windows
    hit disk as they fill and the writer's footprint stays bounded by
    one window; :meth:`close` finalizes the manifest and returns the
    directory (openable via :meth:`AccessTrace.open_chunked`).
    """

    def __init__(
        self,
        path,
        *,
        window_events: int,
        compress: bool = False,
    ) -> None:
        self._writer = ChunkedTraceWriter(
            path, window_events=window_events, compress=compress
        )
        self.burst_events = int(window_events)

    def __len__(self) -> int:
        return len(self._writer)

    def begin_iteration(self) -> None:
        """Mark the start of a smoothing iteration in the stream."""
        self._writer.begin_iteration()

    def append_columns(self, array_ids, indices, is_write) -> None:
        """Record a block of aligned event columns."""
        self._writer.append_columns(array_ids, indices, is_write)

    def set_meta(self, **meta) -> None:
        """Merge labels into the on-disk manifest meta."""
        self._writer.set_meta(**meta)

    def close(self) -> Path:
        """Flush the trailing window + manifest; returns the directory."""
        return self._writer.close()

    def open(self) -> ChunkedTrace:
        """Open the spilled trace for windowed reading (after close)."""
        return ChunkedTrace.open(self._writer.out_dir)


class LineSink(TraceSink):
    """Translate events straight to cache-line ids in one growth buffer.

    The partial fusion the multicore pipeline uses: per-core line
    streams must all exist before the interleaved replay starts, but the
    17-bytes-per-event trace columns never need to — each burst is
    translated on arrival and dropped, retaining 8 bytes per event.
    """

    def __init__(self, layout: MemoryLayout) -> None:
        self._layout = layout
        self._buf = np.empty(1024, dtype=np.int64)
        self._n = 0

    def __len__(self) -> int:
        return self._n

    def begin_iteration(self) -> None:
        """No-op: line streams carry no iteration boundaries."""

    def append_columns(self, array_ids, indices, is_write) -> None:
        """Translate the block to line ids and append them."""
        lines = self._layout.lines_of(array_ids, indices)
        k = lines.size
        if k == 0:
            return
        cap = self._buf.size
        if self._n + k > cap:
            while cap < self._n + k:
                cap *= 2
            grown = np.empty(cap, dtype=np.int64)
            grown[: self._n] = self._buf[: self._n]
            self._buf = grown
        self._buf[self._n : self._n + k] = lines
        self._n += k

    def close(self) -> np.ndarray:
        """The accumulated line-id stream (exact-size copy)."""
        return self._buf[: self._n].copy()


class FusedAnalysis:
    """Direct-to-simulator window consumer: everything the serial
    pipeline derives from a trace, computed window by window.

    Feeds each window's cache lines to a
    :class:`~repro.memsim.streaming.StreamingHierarchy` (per-level
    counts), a global :class:`~repro.memsim.streaming.StreamingReuse`
    plus one per iteration (reuse profiles), and — when ``total_events``
    is known up front — a
    :class:`~repro.memsim.streaming.StreamingBucketedSeries`. All
    results are bit-identical to running the in-memory analyses over the
    materialized trace (the streaming differential suites pin each
    consumer; the fused suite pins the composition).
    """

    def __init__(
        self,
        layout: MemoryLayout,
        machine: MachineSpec,
        *,
        sim_engine: str = "reference",
        next_line_prefetch: bool = False,
        policy: str = "lru",
        total_events: int | None = None,
        per_iteration_profiles: bool = True,
        reuse: bool = True,
    ) -> None:
        self.layout = layout
        self.hierarchy = StreamingHierarchy(
            machine,
            sim_engine=sim_engine,
            next_line_prefetch=next_line_prefetch,
            policy=policy,
        )
        # Reuse distances cost an order of magnitude more than the
        # cache simulation itself; summary-only pipelines turn them off
        # wholesale (the materialized path computes them lazily, so
        # "off unless asked" is what keeps fused wall-clock <= it).
        self.reuse = StreamingReuse() if reuse else None
        self.bucketed = (
            StreamingBucketedSeries(total_events)
            if reuse and total_events is not None
            else None
        )
        self._per_iter = reuse and per_iteration_profiles
        self.iteration_reuse: list[StreamingReuse] = []

    @property
    def stats(self):
        """Accumulated per-level :class:`HierarchyStats`."""
        return self.hierarchy.stats

    def begin_iteration(self) -> None:
        """Open a fresh per-iteration reuse accumulator."""
        if self._per_iter:
            self.iteration_reuse.append(StreamingReuse())

    def consume_window(
        self,
        array_ids: np.ndarray,
        indices: np.ndarray,
        is_write: np.ndarray,
    ) -> None:
        """Translate one event window to lines and feed every consumer."""
        lines = self.layout.lines_of(array_ids, indices)
        self.hierarchy.consume(lines)
        if self.reuse is not None:
            distances = self.reuse.consume(lines)
            if self.bucketed is not None:
                self.bucketed.consume(distances)
        if self._per_iter and self.iteration_reuse:
            self.iteration_reuse[-1].consume(lines)

    def reuse_profile(self, *, iteration: int | None = 0) -> ReuseProfile:
        """Reuse-distance summary of one iteration (or the whole trace
        with ``iteration=None``) — bit-identical to the materialized
        :meth:`OrderedRun.reuse_profile`."""
        if self.reuse is None:
            raise RuntimeError(
                "reuse analysis was disabled (summary_only pipelines "
                "keep cache counts only); rerun without summary_only "
                "or with trace_mode='materialize'"
            )
        if iteration is None:
            return self.reuse.profile()
        if not self._per_iter:
            raise RuntimeError(
                "per-iteration profiles were disabled for this analysis"
            )
        if not 0 <= iteration < len(self.iteration_reuse):
            raise IndexError(f"iteration {iteration} out of range")
        return self.iteration_reuse[iteration].profile()

    def bucketed_series(self) -> tuple[np.ndarray, np.ndarray]:
        """``(bucket_centers, means)`` when ``total_events`` was given."""
        if self.bucketed is None:
            raise RuntimeError(
                "bucketed series requires total_events at construction "
                "(only predictable for fixed-iteration runs without culling)"
            )
        return self.bucketed.finalize()


class FusedSink(TraceSink):
    """Double-buffered handoff from the producing smoother to a window
    consumer, with a strict two-slot memory bound.

    The producer fills one fixed ``window_events`` buffer; on overflow
    the full window is handed to a background consumer thread through a
    depth-1 queue that is joined *before* each handoff, so at most two
    windows are ever alive (the one being filled and the one being
    simulated) while generation of window N+1 still overlaps simulation
    of window N. Iteration marks flush the partial window and travel
    through the same queue, preserving stream order exactly — see the
    module docstring for the determinism argument.

    Counters: :attr:`windows_emitted`, :attr:`peak_buffered_events`
    (audited ≤ ``2 * window_events``), :attr:`producer_wait_s` (time the
    producer blocked on the consumer) and :attr:`consumer_busy_s` (time
    the consumer spent simulating); :meth:`close` publishes them as
    ``trace.*`` obs metrics from the producer thread.
    """

    def __init__(
        self,
        consumer,
        *,
        window_events: int = DEFAULT_FUSED_WINDOW_EVENTS,
        overlap: bool = True,
    ) -> None:
        if window_events < 1:
            raise ValueError("window_events must be >= 1")
        self.consumer = consumer
        self.window_events = int(window_events)
        self.burst_events = int(window_events)
        self.overlap = bool(overlap)
        slots = 2 if self.overlap else 1
        w = self.window_events
        self._ids = [np.empty(w, dtype=np.uint8) for _ in range(slots)]
        self._idx = [np.empty(w, dtype=np.int64) for _ in range(slots)]
        self._wr = [np.empty(w, dtype=bool) for _ in range(slots)]
        self._active = 0
        self._fill = 0
        self._in_flight = 0  # events handed off, possibly still simulating
        self._closed = False
        self._error: BaseException | None = None
        self.windows_emitted = 0
        self.events = 0
        self.peak_buffered_events = 0
        self.peak_buffered_windows = 0
        self.producer_wait_s = 0.0
        self.consumer_busy_s = 0.0
        if self.overlap:
            self._q: queue.Queue = queue.Queue(maxsize=1)
            self._thread = threading.Thread(
                target=self._consumer_loop,
                name="fused-trace-consumer",
                daemon=True,
            )
            self._thread.start()

    def __len__(self) -> int:
        return self.events + self._fill

    @property
    def overlap_s(self) -> float:
        """Simulation time hidden behind production (≥ 0)."""
        return max(0.0, self.consumer_busy_s - self.producer_wait_s)

    # -- producer side --------------------------------------------------
    def begin_iteration(self) -> None:
        """Flush the partial window, then mark the iteration boundary."""
        self._flush()
        self._dispatch(("iter",))

    def append_columns(self, array_ids, indices, is_write) -> None:
        """Copy the block into the active window, flushing full windows."""
        if self._closed:
            raise ValueError("sink is closed")
        array_ids = np.ascontiguousarray(array_ids, dtype=np.uint8)
        indices = np.ascontiguousarray(indices, dtype=np.int64)
        is_write = np.ascontiguousarray(is_write, dtype=bool)
        if not (array_ids.shape == indices.shape == is_write.shape):
            raise ValueError("trace columns must have identical shapes")
        n = array_ids.size
        pos = 0
        while pos < n:
            take = min(self.window_events - self._fill, n - pos)
            a, f = self._active, self._fill
            self._ids[a][f : f + take] = array_ids[pos : pos + take]
            self._idx[a][f : f + take] = indices[pos : pos + take]
            self._wr[a][f : f + take] = is_write[pos : pos + take]
            self._fill += take
            pos += take
            if self._fill == self.window_events:
                self._flush()

    def _flush(self) -> None:
        if self._fill == 0:
            return
        n = self._fill
        self.windows_emitted += 1
        self.events += n
        # Max events alive at the handoff point: this full buffer plus
        # whatever the consumer may still hold from the previous put.
        self.peak_buffered_events = max(
            self.peak_buffered_events, n + self._in_flight
        )
        self.peak_buffered_windows = max(
            self.peak_buffered_windows, 1 + (1 if self._in_flight else 0)
        )
        self._dispatch(("window", self._active, n))
        if self.overlap:
            self._active ^= 1
        self._fill = 0

    def _dispatch(self, msg) -> None:
        if not self.overlap:
            self._process(msg)
            self._in_flight = 0
            return
        if self._error is not None:
            self._reraise()
        # Two-slot bound: the previous window must be fully consumed
        # (task_done) before the next message enters the queue.
        t0 = time.perf_counter()
        self._q.join()
        self.producer_wait_s += time.perf_counter() - t0
        self._in_flight = msg[2] if msg[0] == "window" else 0
        if self._error is not None:
            self._reraise()
        self._q.put(msg)

    def close(self):
        """Flush the tail, stop the consumer thread, publish counters.

        Returns the consumer, whose accumulated state is now final.
        Consumer exceptions are re-raised here (or at the next handoff).
        """
        if self._closed:
            return self.consumer
        self._flush()
        if self.overlap:
            self._q.join()
            self._q.put(None)
            self._thread.join()
        self._closed = True
        if self._error is not None:
            self._reraise()
        obs.add("trace.windows_emitted", self.windows_emitted)
        obs.gauge_set("trace.peak_buffered_events", self.peak_buffered_events)
        obs.gauge_set("trace.overlap_s", self.overlap_s)
        return self.consumer

    def _reraise(self) -> None:
        raise RuntimeError(
            "fused trace consumer failed"
        ) from self._error

    # -- consumer side --------------------------------------------------
    def _process(self, msg) -> None:
        if msg[0] == "iter":
            self.consumer.begin_iteration()
        else:
            _, slot, n = msg
            self.consumer.consume_window(
                self._ids[slot][:n], self._idx[slot][:n], self._wr[slot][:n]
            )

    def _consumer_loop(self) -> None:
        while True:
            msg = self._q.get()
            if msg is None:
                self._q.task_done()
                return
            try:
                if self._error is None:
                    t0 = time.perf_counter()
                    self._process(msg)
                    self.consumer_busy_s += time.perf_counter() - t0
            except BaseException as exc:  # propagate to the producer
                self._error = exc
            finally:
                self._q.task_done()


def replay_trace_windows(consumer, windows, iteration_starts) -> None:
    """Replay stored event windows through a window consumer, re-emitting
    iteration boundaries at their global offsets.

    ``windows`` yields ``(array_ids, indices, is_write)`` column tuples
    in stream order (e.g. from a
    :class:`~repro.memsim.chunked.ChunkedTrace`); windows are split at
    iteration boundaries so the consumer sees the same
    ``begin_iteration``/``consume_window`` sequence the fused producer
    would have emitted live.
    """
    starts = [int(s) for s in np.asarray(iteration_starts).ravel()]
    pos = 0
    si = 0
    for ids, idx, wr in windows:
        n = int(ids.size)
        lo = 0
        while si < len(starts) and starts[si] < pos + n:
            cut = starts[si] - pos
            if cut > lo:
                consumer.consume_window(
                    ids[lo:cut], idx[lo:cut], wr[lo:cut]
                )
                lo = cut
            consumer.begin_iteration()
            si += 1
        if lo < n:
            consumer.consume_window(ids[lo:], idx[lo:], wr[lo:])
        pos += n
    while si < len(starts):
        consumer.begin_iteration()
        si += 1


def replay_chunked_trace(consumer, chunked: ChunkedTrace) -> None:
    """Replay a spilled chunked trace through a window consumer."""
    replay_trace_windows(
        consumer,
        (
            (w.array_ids, w.indices, w.is_write)
            for w in chunked.iter_windows()
        ),
        chunked.iteration_starts,
    )


def replay_trace(consumer, trace: AccessTrace, *, window_events: int) -> None:
    """Replay an in-memory trace through a window consumer in bounded
    windows (the differential suites' reference feeding path)."""
    if window_events < 1:
        raise ValueError("window_events must be >= 1")
    n = len(trace)
    replay_trace_windows(
        consumer,
        (
            (
                trace.array_ids[lo : lo + window_events],
                trace.indices[lo : lo + window_events],
                trace.is_write[lo : lo + window_events],
            )
            for lo in range(0, n, window_events)
        ),
        trace.iteration_starts,
    )
