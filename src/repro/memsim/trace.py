"""Access-trace container shared by the smoother and the simulators.

A trace is a compact, columnar record of every logical data access the
smoothing kernel performs: which array (coordinates, flags, CSR row
pointers, CSR adjacency, quality), which element index, and whether it
was a write. The memory-layout model (:mod:`repro.memsim.layout`) turns
these logical accesses into byte addresses / cache lines; nothing else
in the library needs to know about addresses.

Array ids are stable small integers so traces stay cheap to store and
concatenate.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

__all__ = ["ARRAY_NAMES", "ARRAY_IDS", "AccessTrace", "TraceBuilder"]

#: Logical arrays of the smoothing working set, in layout order.
ARRAY_NAMES: tuple[str, ...] = ("coords", "flags", "xadj", "adjncy", "quality")
ARRAY_IDS: dict[str, int] = {name: i for i, name in enumerate(ARRAY_NAMES)}


@dataclass
class AccessTrace:
    """A sequence of logical data accesses.

    Attributes
    ----------
    array_ids:
        uint8 array; index into :data:`ARRAY_NAMES`.
    indices:
        int64 array; element index within the logical array.
    is_write:
        bool array; True for stores.
    iteration_starts:
        Offsets (into the trace) where each smoothing iteration begins;
        lets analyses slice per-iteration (Figure 6, Table 2 use the
        first iteration only).
    meta:
        Free-form labels (mesh name, ordering, ...), used by reports.
    """

    array_ids: np.ndarray
    indices: np.ndarray
    is_write: np.ndarray
    iteration_starts: np.ndarray = field(
        default_factory=lambda: np.zeros(1, dtype=np.int64)
    )
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.array_ids = np.ascontiguousarray(self.array_ids, dtype=np.uint8)
        self.indices = np.ascontiguousarray(self.indices, dtype=np.int64)
        self.is_write = np.ascontiguousarray(self.is_write, dtype=bool)
        self.iteration_starts = np.ascontiguousarray(
            self.iteration_starts, dtype=np.int64
        )
        if not (
            self.array_ids.shape == self.indices.shape == self.is_write.shape
        ):
            raise ValueError("trace columns must have identical shapes")
        if self.array_ids.size and self.array_ids.max() >= len(ARRAY_NAMES):
            raise ValueError("array id out of range")

    def __len__(self) -> int:
        return self.array_ids.size

    @property
    def num_iterations(self) -> int:
        return self.iteration_starts.size

    def iteration(self, k: int) -> "AccessTrace":
        """The sub-trace of smoothing iteration ``k`` (0-based)."""
        if not 0 <= k < self.num_iterations:
            raise IndexError(f"iteration {k} out of range")
        lo = int(self.iteration_starts[k])
        hi = (
            int(self.iteration_starts[k + 1])
            if k + 1 < self.num_iterations
            else len(self)
        )
        return AccessTrace(
            self.array_ids[lo:hi],
            self.indices[lo:hi],
            self.is_write[lo:hi],
            iteration_starts=np.zeros(1, dtype=np.int64),
            meta=dict(self.meta, iteration=k),
        )

    def filtered(self, array: str) -> "AccessTrace":
        """The subsequence of accesses to one logical array."""
        mask = self.array_ids == ARRAY_IDS[array]
        return AccessTrace(
            self.array_ids[mask],
            self.indices[mask],
            self.is_write[mask],
            iteration_starts=np.zeros(1, dtype=np.int64),
            meta=dict(self.meta, array=array),
        )

    def slice(self, lo: int, hi: int) -> "AccessTrace":
        """An arbitrary contiguous sub-trace (iteration info dropped)."""
        return AccessTrace(
            self.array_ids[lo:hi],
            self.indices[lo:hi],
            self.is_write[lo:hi],
            iteration_starts=np.zeros(1, dtype=np.int64),
            meta=dict(self.meta),
        )

    # -- persistence ----------------------------------------------------
    def save_npz(self, path) -> Path:
        """Persist the trace (compressed). Meta goes along as JSON.

        Returns the path actually written: ``np.savez`` appends ``.npz``
        to names lacking it, so the suffix is normalized up front (with
        plain name concatenation — ``with_suffix`` rejects names ending
        in a dot) and the write targets the returned path exactly.
        """
        path = Path(path)
        if path.suffix != ".npz":
            path = path.with_name(path.name + ".npz")
        np.savez_compressed(
            path,
            array_ids=self.array_ids,
            indices=self.indices,
            is_write=self.is_write,
            iteration_starts=self.iteration_starts,
            meta=np.frombuffer(
                json.dumps(self.meta, default=str).encode(), dtype=np.uint8
            ),
        )
        return path

    @classmethod
    def load_npz(cls, path) -> "AccessTrace":
        """Load a trace written by :meth:`save_npz`."""
        with np.load(Path(path)) as data:
            meta = json.loads(bytes(data["meta"].tobytes()).decode())
            return cls(
                data["array_ids"],
                data["indices"],
                data["is_write"],
                iteration_starts=data["iteration_starts"],
                meta=meta,
            )


class TraceBuilder:
    """Incremental trace construction with amortised appends.

    The smoother appends one small burst per smoothed vertex; bursts are
    buffered in Python lists of ndarrays and concatenated once at the
    end, keeping recording overhead low.
    """

    def __init__(self) -> None:
        self._ids: list[np.ndarray] = []
        self._idx: list[np.ndarray] = []
        self._wr: list[np.ndarray] = []
        self._length = 0
        self._iter_starts: list[int] = []

    def __len__(self) -> int:
        return self._length

    def begin_iteration(self) -> None:
        self._iter_starts.append(self._length)

    def append(
        self, array: str, indices: np.ndarray | int, *, write: bool = False
    ) -> None:
        """Record accesses to ``array`` at ``indices`` (scalar or 1-D)."""
        idx = np.atleast_1d(np.asarray(indices, dtype=np.int64))
        k = idx.size
        if k == 0:
            return
        self._ids.append(np.full(k, ARRAY_IDS[array], dtype=np.uint8))
        self._idx.append(idx)
        self._wr.append(np.full(k, write, dtype=bool))
        self._length += k

    def append_columns(
        self,
        array_ids: np.ndarray,
        indices: np.ndarray,
        is_write: np.ndarray,
    ) -> None:
        """Record a pre-built block of accesses in one call.

        The columns must already be aligned (same length); this is the
        bulk entry point of the vectorized trace builder, which
        constructs a whole iteration's interleaved accesses at once.
        """
        array_ids = np.ascontiguousarray(array_ids, dtype=np.uint8)
        indices = np.ascontiguousarray(indices, dtype=np.int64)
        is_write = np.ascontiguousarray(is_write, dtype=bool)
        if not (array_ids.shape == indices.shape == is_write.shape):
            raise ValueError("trace columns must have identical shapes")
        if array_ids.size == 0:
            return
        self._ids.append(array_ids)
        self._idx.append(indices)
        self._wr.append(is_write)
        self._length += array_ids.size

    def build(self, **meta) -> AccessTrace:
        if not self._iter_starts:
            self._iter_starts = [0]
        if self._length == 0:
            return AccessTrace(
                np.empty(0, dtype=np.uint8),
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=bool),
                iteration_starts=np.asarray(self._iter_starts, dtype=np.int64),
                meta=meta,
            )
        return AccessTrace(
            np.concatenate(self._ids),
            np.concatenate(self._idx),
            np.concatenate(self._wr),
            iteration_starts=np.asarray(self._iter_starts, dtype=np.int64),
            meta=meta,
        )
