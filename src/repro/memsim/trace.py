"""Access-trace container shared by the smoother and the simulators.

A trace is a compact, columnar record of every logical data access the
smoothing kernel performs: which array (coordinates, flags, CSR row
pointers, CSR adjacency, quality), which element index, and whether it
was a write. The memory-layout model (:mod:`repro.memsim.layout`) turns
these logical accesses into byte addresses / cache lines; nothing else
in the library needs to know about addresses.

Array ids are stable small integers so traces stay cheap to store and
concatenate.
"""

from __future__ import annotations

import io
import json
import mmap
import struct
import zipfile
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

__all__ = ["ARRAY_NAMES", "ARRAY_IDS", "AccessTrace", "TraceBuilder"]


def _mmap_npz(path: Path) -> dict[str, np.ndarray]:
    """Map every member of an uncompressed ``.npz`` without copying.

    ``np.load(mmap_mode=...)`` silently ignores the mode for zip
    archives, so we map the file ourselves: for each ZIP_STORED member,
    locate its data span via the zip local header, parse the npy header,
    and expose the payload as a read-only view of one shared
    :class:`mmap.mmap` (the views keep the mapping alive). Compressed
    members cannot be mapped and raise ``ValueError``.
    """
    with open(path, "rb") as fh:
        mapped = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
        arrays: dict[str, np.ndarray] = {}
        try:
            with zipfile.ZipFile(fh) as zf:
                for info in zf.infolist():
                    if info.compress_type != zipfile.ZIP_STORED:
                        raise ValueError(
                            f"{path} holds compressed members; mmap loading "
                            "requires save_npz(..., compress=False)"
                        )
                    # Local header: 26 bytes in, two uint16 give the name
                    # and extra-field lengths; member data follows both.
                    nlen, xlen = struct.unpack_from(
                        "<HH", mapped, info.header_offset + 26
                    )
                    data_off = info.header_offset + 30 + nlen + xlen
                    bio = io.BytesIO(mapped[data_off : data_off + 4096])
                    version = np.lib.format.read_magic(bio)
                    if version == (1, 0):
                        header = np.lib.format.read_array_header_1_0(bio)
                    elif version == (2, 0):
                        header = np.lib.format.read_array_header_2_0(bio)
                    else:
                        raise ValueError(f"unsupported npy version {version}")
                    shape, fortran, dtype = header
                    if fortran:
                        raise ValueError(
                            "Fortran-order npz members unsupported"
                        )
                    count = int(np.prod(shape)) if shape else 1
                    name = info.filename
                    if name.endswith(".npy"):
                        name = name[:-4]
                    arrays[name] = np.frombuffer(
                        mapped, dtype=dtype, count=count,
                        offset=data_off + bio.tell(),
                    ).reshape(shape)
        except Exception:
            # Close the mapping deterministically instead of leaking it
            # to the GC (a ResourceWarning under -W error).  The views
            # exported so far pin the mapping's buffer, so they must be
            # dropped before close() or it raises BufferError.
            arrays.clear()
            mapped.close()
            raise
        return arrays

#: Logical arrays of the smoothing working set, in layout order.
ARRAY_NAMES: tuple[str, ...] = ("coords", "flags", "xadj", "adjncy", "quality")
ARRAY_IDS: dict[str, int] = {name: i for i, name in enumerate(ARRAY_NAMES)}


@dataclass
class AccessTrace:
    """A sequence of logical data accesses.

    Attributes
    ----------
    array_ids:
        uint8 array; index into :data:`ARRAY_NAMES`.
    indices:
        int64 array; element index within the logical array.
    is_write:
        bool array; True for stores.
    iteration_starts:
        Offsets (into the trace) where each smoothing iteration begins;
        lets analyses slice per-iteration (Figure 6, Table 2 use the
        first iteration only).
    meta:
        Free-form labels (mesh name, ordering, ...), used by reports.
    """

    array_ids: np.ndarray
    indices: np.ndarray
    is_write: np.ndarray
    iteration_starts: np.ndarray = field(
        default_factory=lambda: np.zeros(1, dtype=np.int64)
    )
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.array_ids = np.ascontiguousarray(self.array_ids, dtype=np.uint8)
        self.indices = np.ascontiguousarray(self.indices, dtype=np.int64)
        self.is_write = np.ascontiguousarray(self.is_write, dtype=bool)
        self.iteration_starts = np.ascontiguousarray(
            self.iteration_starts, dtype=np.int64
        )
        if not (
            self.array_ids.shape == self.indices.shape == self.is_write.shape
        ):
            raise ValueError("trace columns must have identical shapes")
        if self.array_ids.size and self.array_ids.max() >= len(ARRAY_NAMES):
            raise ValueError("array id out of range")

    def __len__(self) -> int:
        return self.array_ids.size

    @property
    def num_iterations(self) -> int:
        return self.iteration_starts.size

    def iteration(self, k: int) -> "AccessTrace":
        """The sub-trace of smoothing iteration ``k`` (0-based)."""
        if not 0 <= k < self.num_iterations:
            raise IndexError(f"iteration {k} out of range")
        lo = int(self.iteration_starts[k])
        hi = (
            int(self.iteration_starts[k + 1])
            if k + 1 < self.num_iterations
            else len(self)
        )
        return AccessTrace(
            self.array_ids[lo:hi],
            self.indices[lo:hi],
            self.is_write[lo:hi],
            iteration_starts=np.zeros(1, dtype=np.int64),
            meta=dict(self.meta, iteration=k),
        )

    def filtered(self, array: str) -> "AccessTrace":
        """The subsequence of accesses to one logical array."""
        mask = self.array_ids == ARRAY_IDS[array]
        return AccessTrace(
            self.array_ids[mask],
            self.indices[mask],
            self.is_write[mask],
            iteration_starts=np.zeros(1, dtype=np.int64),
            meta=dict(self.meta, array=array),
        )

    def slice(self, lo: int, hi: int) -> "AccessTrace":
        """An arbitrary contiguous sub-trace (iteration info dropped)."""
        return AccessTrace(
            self.array_ids[lo:hi],
            self.indices[lo:hi],
            self.is_write[lo:hi],
            iteration_starts=np.zeros(1, dtype=np.int64),
            meta=dict(self.meta),
        )

    # -- persistence ----------------------------------------------------
    def save_npz(self, path, *, compress: bool = True) -> Path:
        """Persist the trace. Meta goes along as JSON.

        ``compress=False`` writes an uncompressed archive whose columns
        :meth:`load_npz` can memory-map (``mmap_mode="r"``) — the format
        of choice for traces too large to want resident twice.

        Returns the path actually written: ``np.savez`` appends ``.npz``
        to names lacking it, so the suffix is normalized up front (with
        plain name concatenation — ``with_suffix`` rejects names ending
        in a dot) and the write targets the returned path exactly.
        """
        path = Path(path)
        if path.suffix != ".npz":
            path = path.with_name(path.name + ".npz")
        savez = np.savez_compressed if compress else np.savez
        savez(
            path,
            array_ids=self.array_ids,
            indices=self.indices,
            is_write=self.is_write,
            iteration_starts=self.iteration_starts,
            meta=np.frombuffer(
                json.dumps(self.meta, default=str).encode(), dtype=np.uint8
            ),
        )
        return path

    @classmethod
    def load_npz(cls, path, *, mmap_mode: str | None = None) -> "AccessTrace":
        """Load a trace written by :meth:`save_npz`.

        With ``mmap_mode="r"`` the columns stay memory-mapped read-only
        views of the archive (zero-copy; requires the archive to have
        been written with ``compress=False``). Meta is always
        materialized.
        """
        path = Path(path)
        if mmap_mode is not None:
            if mmap_mode != "r":
                raise ValueError("only mmap_mode='r' is supported")
            data = _mmap_npz(path)
            meta = json.loads(bytes(data["meta"].tobytes()).decode())
            return cls(
                data["array_ids"],
                data["indices"],
                data["is_write"],
                iteration_starts=np.asarray(
                    data["iteration_starts"], dtype=np.int64
                ),
                meta=meta,
            )
        with np.load(path) as data:
            meta = json.loads(bytes(data["meta"].tobytes()).decode())
            return cls(
                data["array_ids"],
                data["indices"],
                data["is_write"],
                iteration_starts=data["iteration_starts"],
                meta=meta,
            )

    def save_chunked(
        self, path, *, window_events: int, compress: bool = False
    ) -> Path:
        """Spill the trace to a directory of bounded npz windows.

        See :class:`repro.memsim.chunked.ChunkedTraceWriter` for the
        on-disk format. Returns the directory written.
        """
        from .chunked import ChunkedTraceWriter

        with ChunkedTraceWriter(
            path, window_events=window_events, compress=compress
        ) as writer:
            starts = self.iteration_starts
            for k, lo in enumerate(starts):
                hi = int(starts[k + 1]) if k + 1 < starts.size else len(self)
                writer.begin_iteration()
                writer.append_columns(
                    self.array_ids[int(lo) : hi],
                    self.indices[int(lo) : hi],
                    self.is_write[int(lo) : hi],
                )
            writer.set_meta(**self.meta)
        return Path(path)

    @classmethod
    def open_chunked(cls, path) -> "ChunkedTrace":
        """Open a directory written by :meth:`save_chunked`.

        Returns a :class:`repro.memsim.chunked.ChunkedTrace`, which
        yields bounded :class:`AccessTrace` windows on demand instead of
        materializing the whole trace.
        """
        from .chunked import ChunkedTrace

        return ChunkedTrace.open(path)


class TraceBuilder:
    """Incremental trace construction on amortised growth buffers.

    Events land directly in columnar buffers that grow by power-of-two
    doubling, so appends are amortised O(1) with no per-burst ndarray
    allocations, and :meth:`build` is one bounded slice-copy per column
    instead of a concatenate over thousands of burst fragments.
    :meth:`alloc_columns` additionally lets bulk producers (the
    vectorized trace builder) scatter straight into the reserved buffer
    region, skipping the temporary event arrays entirely.
    """

    _INITIAL_CAPACITY = 1024

    def __init__(self) -> None:
        cap = self._INITIAL_CAPACITY
        self._ids = np.empty(cap, dtype=np.uint8)
        self._idx = np.empty(cap, dtype=np.int64)
        self._wr = np.empty(cap, dtype=bool)
        self._length = 0
        self._iter_starts: list[int] = []

    def __len__(self) -> int:
        return self._length

    def begin_iteration(self) -> None:
        self._iter_starts.append(self._length)

    def _grow_to(self, needed: int) -> None:
        cap = int(self._ids.size)
        if needed <= cap:
            return
        while cap < needed:
            cap *= 2
        n = self._length
        for name in ("_ids", "_idx", "_wr"):
            old = getattr(self, name)
            grown = np.empty(cap, dtype=old.dtype)
            grown[:n] = old[:n]
            setattr(self, name, grown)

    def append(
        self, array: str, indices: np.ndarray | int, *, write: bool = False
    ) -> None:
        """Record accesses to ``array`` at ``indices`` (scalar or 1-D)."""
        aid = ARRAY_IDS[array]
        lo = self._length
        if isinstance(indices, (int, np.integer)):
            self._grow_to(lo + 1)
            self._ids[lo] = aid
            self._idx[lo] = indices
            self._wr[lo] = write
            self._length = lo + 1
            return
        idx = np.atleast_1d(np.asarray(indices, dtype=np.int64))
        k = idx.size
        if k == 0:
            return
        self._grow_to(lo + k)
        self._ids[lo : lo + k] = aid
        self._idx[lo : lo + k] = idx
        self._wr[lo : lo + k] = write
        self._length = lo + k

    def append_columns(
        self,
        array_ids: np.ndarray,
        indices: np.ndarray,
        is_write: np.ndarray,
    ) -> None:
        """Record a pre-built block of accesses in one call.

        The columns must already be aligned (same length); this is the
        bulk entry point of the vectorized trace builder, which
        constructs a whole iteration's interleaved accesses at once.
        """
        array_ids = np.ascontiguousarray(array_ids, dtype=np.uint8)
        indices = np.ascontiguousarray(indices, dtype=np.int64)
        is_write = np.ascontiguousarray(is_write, dtype=bool)
        if not (array_ids.shape == indices.shape == is_write.shape):
            raise ValueError("trace columns must have identical shapes")
        k = array_ids.size
        if k == 0:
            return
        lo = self._length
        self._grow_to(lo + k)
        self._ids[lo : lo + k] = array_ids
        self._idx[lo : lo + k] = indices
        self._wr[lo : lo + k] = is_write
        self._length = lo + k

    def alloc_columns(self, total: int):
        """Reserve ``total`` events; return writable column views + commit.

        The views cover exactly the reserved range (``is_write`` comes
        zeroed); fill them, then call the returned ``commit()``. Bulk
        producers use this to scatter events straight into the growth
        buffer instead of allocating per-call temporaries.
        """
        if total < 0:
            raise ValueError("total must be >= 0")
        lo = self._length
        self._grow_to(lo + total)
        self._length = lo + total
        ids = self._ids[lo : lo + total]
        idx = self._idx[lo : lo + total]
        wr = self._wr[lo : lo + total]
        wr[:] = False
        return ids, idx, wr, lambda: None

    def build(self, **meta) -> AccessTrace:
        if not self._iter_starts:
            self._iter_starts = [0]
        n = self._length
        return AccessTrace(
            self._ids[:n].copy(),
            self._idx[:n].copy(),
            self._wr[:n].copy(),
            iteration_starts=np.asarray(self._iter_starts, dtype=np.int64),
            meta=meta,
        )
