"""Static partitioning of smoothing work across cores.

The paper parallelises the smoother with OpenMP static scheduling,
"evenly dividing the vertices" among threads (Section 5.1). The
equivalent here: interior vertices, in storage order, are split into
``p`` contiguous blocks; thread ``k`` smooths block ``k``. Because
blocks are contiguous *in storage order*, a locality-improving ordering
benefits every thread — each block inherits the ordering's locality —
which is the mechanism behind Figure 10's per-ordering scaling curves.
"""

from __future__ import annotations

import numpy as np

from ..mesh import TriMesh
from ..memsim.trace import AccessTrace
from ..smoothing.trace import trace_for_traversal
from ..smoothing.traversal import make_traversal

__all__ = ["partition_interior", "partitioned_traversals", "parallel_traces"]


def partition_interior(mesh: TriMesh, num_parts: int) -> list[np.ndarray]:
    """Split interior vertices (storage order) into contiguous blocks.

    Block sizes differ by at most one vertex. Blocks may be empty when
    ``num_parts`` exceeds the interior count.
    """
    if num_parts < 1:
        raise ValueError("num_parts must be >= 1")
    interior = mesh.interior_vertices()
    return [np.ascontiguousarray(b) for b in np.array_split(interior, num_parts)]


def partitioned_traversals(
    mesh: TriMesh,
    num_parts: int,
    *,
    traversal: str = "greedy",
    qualities: np.ndarray | None = None,
) -> list[np.ndarray]:
    """Per-thread traversal sequences over the static partition.

    A thread running the greedy policy chains through the worst-quality
    unvisited vertices *of its own block* — it cannot smooth vertices it
    does not own — while still reading neighbor data across block
    boundaries (the traces reflect those remote reads).
    """
    blocks = partition_interior(mesh, num_parts)
    return [
        make_traversal(traversal, mesh, qualities, subset=block)
        for block in blocks
    ]


def parallel_traces(
    mesh: TriMesh,
    num_parts: int,
    *,
    iterations: int,
    traversal: str = "greedy",
    qualities: np.ndarray | None = None,
    **meta,
) -> list[AccessTrace]:
    """Per-core access traces of an ``iterations``-long parallel run.

    The per-iteration traversal is fixed (the paper's observation that
    reuse patterns barely change across iterations — Figure 6 — makes
    the initial-quality traversal representative of the whole run).
    """
    sequences = partitioned_traversals(
        mesh, num_parts, traversal=traversal, qualities=qualities
    )
    return [
        trace_for_traversal(mesh, [seq] * iterations, core=k, **meta)
        for k, seq in enumerate(sequences)
    ]
