"""Static partitioning of smoothing work across cores.

The paper parallelises the smoother with OpenMP static scheduling,
"evenly dividing the vertices" among threads (Section 5.1). The
equivalent here: interior vertices, in storage order, are split into
``p`` contiguous blocks; thread ``k`` smooths block ``k``. Because
blocks are contiguous *in storage order*, a locality-improving ordering
benefits every thread — each block inherits the ordering's locality —
which is the mechanism behind Figure 10's per-ordering scaling curves.
"""

from __future__ import annotations

import numpy as np

from ..mesh import TriMesh
from ..memsim.trace import AccessTrace
from ..smoothing.trace import trace_for_traversal
from ..smoothing.traversal import make_traversal

__all__ = [
    "partition_interior",
    "partitioned_traversals",
    "parallel_traces",
    "wavefront_schedule",
]


def wavefront_schedule(
    seq: np.ndarray, xadj: np.ndarray, adjncy: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Level-schedule a Gauss-Seidel traversal into independent wavefronts.

    A Gauss-Seidel update of vertex ``v`` reads the *already updated*
    positions of every neighbor that precedes ``v`` in ``seq`` and the
    old positions of every neighbor that follows it. Assigning each
    vertex the level ``1 + max(level of its earlier-in-seq neighbors)``
    (0 when it has none) therefore groups the sequence into wavefronts
    with two properties:

    * no two vertices of one level are adjacent (levels are independent
      sets), so a level can be updated as one vectorized batch, and
    * every dependency points from a lower level to a higher one, so
      processing levels in order reproduces the sequential sweep's
      values exactly — not approximately.

    Vertices absent from ``seq`` are never updated, so edges to them
    carry no dependency.

    Returns
    -------
    ``(batched, offsets)`` where ``batched`` is ``seq`` stably reordered
    by level and ``offsets`` (length ``num_levels + 1``) delimits level
    ``k`` as ``batched[offsets[k]:offsets[k+1]]``.
    """
    seq = np.asarray(seq, dtype=np.int64)
    if seq.size == 0:
        return seq.copy(), np.zeros(1, dtype=np.int64)
    n = xadj.size - 1
    pos = np.full(n, -1, dtype=np.int64)
    pos[seq] = np.arange(seq.size, dtype=np.int64)
    level = np.zeros(n, dtype=np.int64)
    # Tight Python loop (plain ints + prebuilt lists): runs once per
    # distinct traversal; the smoother caches the result across
    # iterations with an identical sequence.
    xadj_l = xadj.tolist()
    adjncy_l = adjncy.tolist()
    pos_l = pos.tolist()
    level_l = level.tolist()
    for p, v in enumerate(seq.tolist()):
        best = -1
        for u in adjncy_l[xadj_l[v] : xadj_l[v + 1]]:
            pu = pos_l[u]
            if 0 <= pu < p and level_l[u] > best:
                best = level_l[u]
        level_l[v] = best + 1
    level = np.asarray(level_l, dtype=np.int64)
    seq_levels = level[seq]
    order = np.argsort(seq_levels, kind="stable")
    batched = seq[order]
    counts = np.bincount(seq_levels, minlength=int(seq_levels.max()) + 1)
    offsets = np.zeros(counts.size + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    return batched, offsets


def partition_interior(mesh: TriMesh, num_parts: int) -> list[np.ndarray]:
    """Split interior vertices (storage order) into contiguous blocks.

    Block sizes differ by at most one vertex. Blocks may be empty when
    ``num_parts`` exceeds the interior count.
    """
    if num_parts < 1:
        raise ValueError("num_parts must be >= 1")
    interior = mesh.interior_vertices()
    return [np.ascontiguousarray(b) for b in np.array_split(interior, num_parts)]


def partitioned_traversals(
    mesh: TriMesh,
    num_parts: int,
    *,
    traversal: str = "greedy",
    qualities: np.ndarray | None = None,
) -> list[np.ndarray]:
    """Per-thread traversal sequences over the static partition.

    A thread running the greedy policy chains through the worst-quality
    unvisited vertices *of its own block* — it cannot smooth vertices it
    does not own — while still reading neighbor data across block
    boundaries (the traces reflect those remote reads).
    """
    blocks = partition_interior(mesh, num_parts)
    return [
        make_traversal(traversal, mesh, qualities, subset=block)
        for block in blocks
    ]


def parallel_traces(
    mesh: TriMesh,
    num_parts: int,
    *,
    iterations: int,
    traversal: str = "greedy",
    qualities: np.ndarray | None = None,
    **meta,
) -> list[AccessTrace]:
    """Per-core access traces of an ``iterations``-long parallel run.

    The per-iteration traversal is fixed (the paper's observation that
    reuse patterns barely change across iterations — Figure 6 — makes
    the initial-quality traversal representative of the whole run).
    """
    sequences = partitioned_traversals(
        mesh, num_parts, traversal=traversal, qualities=qualities
    )
    return [
        trace_for_traversal(mesh, [seq] * iterations, core=k, **meta)
        for k, seq in enumerate(sequences)
    ]
