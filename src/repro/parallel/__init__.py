"""Parallel execution substrate: static scheduling + thread team."""

from .scheduler import parallel_traces, partition_interior, partitioned_traversals
from .team import ParallelSmoothingResult, parallel_smooth

__all__ = [
    "ParallelSmoothingResult",
    "parallel_smooth",
    "parallel_traces",
    "partition_interior",
    "partitioned_traversals",
]
