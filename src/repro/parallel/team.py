"""Real multithreaded smoothing for wall-clock measurements.

A bulk-synchronous thread team runs Jacobi Laplacian sweeps: each thread
owns one contiguous block of interior vertices (the same static schedule
the simulators use), computes the new positions of its block from the
shared previous iterate, and meets the others at a barrier before the
buffers swap. The per-block arithmetic is pure NumPy, which releases the
GIL on the gather/reduce operations, so threads overlap on real cores.

Wall-clock results from this module are the *secondary* signal of the
reproduction (CPython + small meshes cannot expose the paper's cache
behaviour; the simulated times are primary), but the harness records
them so the two can be compared in EXPERIMENTS.md.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

import numpy as np

from ..mesh import TriMesh
from ..quality import global_quality
from .scheduler import partition_interior

__all__ = ["ParallelSmoothingResult", "parallel_smooth"]


@dataclass
class ParallelSmoothingResult:
    """Outcome of a threaded smoothing run."""

    mesh: TriMesh
    iterations: int
    num_threads: int
    wall_time_s: float
    quality_before: float
    quality_after: float


def _block_sweep(
    coords: np.ndarray,
    out: np.ndarray,
    xadj: np.ndarray,
    adjncy: np.ndarray,
    block: np.ndarray,
) -> None:
    """New centroids of ``block`` vertices from ``coords`` into ``out``."""
    if block.size == 0:
        return
    # Blocks are contiguous interior vertices, but their CSR rows need
    # not be contiguous; gather row extents explicitly.
    starts = xadj[block]
    ends = xadj[block + 1]
    deg = ends - starts
    nz = deg > 0
    if not nz.any():
        return
    block = block[nz]
    starts, ends, deg = starts[nz], ends[nz], deg[nz]
    # Flatten the ragged rows of this block.
    flat = np.concatenate(
        [adjncy[s:e] for s, e in zip(starts.tolist(), ends.tolist())]
    )
    offsets = np.zeros(block.size, dtype=np.int64)
    np.cumsum(deg[:-1], out=offsets[1:])
    sums = np.add.reduceat(coords[flat], offsets, axis=0)
    out[block] = sums / deg[:, None]


def parallel_smooth(
    mesh: TriMesh,
    *,
    num_threads: int,
    iterations: int,
) -> ParallelSmoothingResult:
    """Run ``iterations`` Jacobi sweeps on ``num_threads`` threads."""
    if num_threads < 1:
        raise ValueError("num_threads must be >= 1")
    if iterations < 0:
        raise ValueError("iterations must be >= 0")
    g = mesh.adjacency
    xadj, adjncy = g.xadj, g.adjncy
    blocks = partition_interior(mesh, num_threads)
    q_before = global_quality(mesh)

    front = mesh.vertices.copy()
    back = front.copy()
    barrier = threading.Barrier(num_threads)
    buffers = [front, back]

    def worker(block: np.ndarray) -> None:
        for it in range(iterations):
            src = buffers[it % 2]
            dst = buffers[(it + 1) % 2]
            _block_sweep(src, dst, xadj, adjncy, block)
            barrier.wait()

    t0 = time.perf_counter()
    if num_threads == 1:
        for it in range(iterations):
            src = buffers[it % 2]
            dst = buffers[(it + 1) % 2]
            dst[:] = src
            _block_sweep(src, dst, xadj, adjncy, blocks[0])
    else:
        # Boundary rows never change; pre-copy them into both buffers.
        threads = [
            threading.Thread(target=_sync_worker, args=(worker, b))
            for b in blocks
        ]
        # Initialise the back buffer with the boundary coordinates.
        back[:] = front
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    wall = time.perf_counter() - t0

    final = buffers[iterations % 2]
    out_mesh = mesh.with_vertices(final.copy())
    return ParallelSmoothingResult(
        mesh=out_mesh,
        iterations=iterations,
        num_threads=num_threads,
        wall_time_s=wall,
        quality_before=q_before,
        quality_after=global_quality(out_mesh),
    )


def _sync_worker(fn, block) -> None:
    fn(block)
