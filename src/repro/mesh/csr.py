"""Compressed-sparse-row (CSR) adjacency for triangle meshes.

The smoothing kernels, the orderings and the memory-layout model all
consume the vertex-to-vertex adjacency of the mesh in CSR form:

``xadj``
    int64 array of length ``n + 1``; the neighbors of vertex ``v`` are
    ``adjncy[xadj[v]:xadj[v + 1]]``.
``adjncy``
    int64 array of length ``2 * #edges``; neighbor lists are sorted in
    increasing vertex order, which makes the structure canonical and
    cheap to compare.

Everything here is pure NumPy; no Python-level loop runs over edges.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "CSRGraph",
    "adjacency_from_triangles",
    "edges_from_triangles",
    "permute_csr",
    "is_symmetric",
]


@dataclass(frozen=True)
class CSRGraph:
    """Immutable CSR vertex adjacency.

    Attributes
    ----------
    xadj:
        Row-pointer array, shape ``(n + 1,)``, dtype int64.
    adjncy:
        Column-index array, shape ``(xadj[-1],)``, dtype int64, with each
        neighbor list sorted ascending.
    """

    xadj: np.ndarray
    adjncy: np.ndarray

    def __post_init__(self) -> None:
        xadj = np.ascontiguousarray(self.xadj, dtype=np.int64)
        adjncy = np.ascontiguousarray(self.adjncy, dtype=np.int64)
        object.__setattr__(self, "xadj", xadj)
        object.__setattr__(self, "adjncy", adjncy)
        if xadj.ndim != 1 or adjncy.ndim != 1:
            raise ValueError("xadj and adjncy must be one-dimensional")
        if xadj.size == 0:
            raise ValueError("xadj must have at least one entry")
        if xadj[0] != 0 or xadj[-1] != adjncy.size:
            raise ValueError("xadj must start at 0 and end at len(adjncy)")
        if np.any(np.diff(xadj) < 0):
            raise ValueError("xadj must be non-decreasing")

    @property
    def num_vertices(self) -> int:
        return self.xadj.size - 1

    @property
    def num_edges(self) -> int:
        """Number of undirected edges (each stored twice in ``adjncy``)."""
        return self.adjncy.size // 2

    def degrees(self) -> np.ndarray:
        """Vertex degrees, shape ``(n,)``."""
        return np.diff(self.xadj)

    def neighbors(self, v: int) -> np.ndarray:
        """Sorted neighbor list of vertex ``v`` (a view, do not mutate)."""
        return self.adjncy[self.xadj[v] : self.xadj[v + 1]]

    def has_edge(self, u: int, v: int) -> bool:
        nbrs = self.neighbors(u)
        i = np.searchsorted(nbrs, v)
        return bool(i < nbrs.size and nbrs[i] == v)


def edges_from_triangles(triangles: np.ndarray) -> np.ndarray:
    """Unique undirected edges of a triangle soup.

    Parameters
    ----------
    triangles:
        Integer array of shape ``(m, 3)``.

    Returns
    -------
    Array of shape ``(e, 2)`` with ``edge[:, 0] < edge[:, 1]``, sorted
    lexicographically.
    """
    tri = np.asarray(triangles, dtype=np.int64)
    if tri.ndim != 2 or tri.shape[1] != 3:
        raise ValueError("triangles must have shape (m, 3)")
    raw = np.concatenate([tri[:, [0, 1]], tri[:, [1, 2]], tri[:, [2, 0]]])
    raw.sort(axis=1)
    return np.unique(raw, axis=0)


def adjacency_from_triangles(triangles: np.ndarray, num_vertices: int) -> CSRGraph:
    """Build the canonical CSR vertex adjacency of a triangle mesh.

    Vertices that appear in no triangle get an empty neighbor list.
    """
    edges = edges_from_triangles(triangles)
    if edges.size and edges.max() >= num_vertices:
        raise ValueError("triangle references a vertex >= num_vertices")
    if edges.size and edges.min() < 0:
        raise ValueError("triangle references a negative vertex index")
    # Each undirected edge contributes two directed arcs.
    src = np.concatenate([edges[:, 0], edges[:, 1]])
    dst = np.concatenate([edges[:, 1], edges[:, 0]])
    order = np.lexsort((dst, src))
    src, dst = src[order], dst[order]
    counts = np.bincount(src, minlength=num_vertices)
    xadj = np.zeros(num_vertices + 1, dtype=np.int64)
    np.cumsum(counts, out=xadj[1:])
    return CSRGraph(xadj=xadj, adjncy=dst)


def permute_csr(graph: CSRGraph, order: np.ndarray) -> CSRGraph:
    """Relabel a CSR graph under a new ordering.

    ``order[k]`` is the *old* index of the vertex stored at new position
    ``k`` (i.e. ``order`` is the permutation used to gather old data into
    the new layout). The returned graph has neighbor lists re-sorted so it
    stays canonical.
    """
    order = np.asarray(order, dtype=np.int64)
    n = graph.num_vertices
    if order.shape != (n,):
        raise ValueError(f"order must have shape ({n},)")
    inverse = np.empty(n, dtype=np.int64)
    inverse[order] = np.arange(n, dtype=np.int64)

    old_deg = graph.degrees()
    new_deg = old_deg[order]
    xadj = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(new_deg, out=xadj[1:])

    adjncy = np.empty_like(graph.adjncy)
    # Gather each old row into its new slot, relabeling columns.
    # Row-granular copy is unavoidable without ragged gathers; keep the
    # per-row work vectorized.
    relabeled = inverse[graph.adjncy]
    for new_v in range(n):
        old_v = order[new_v]
        row = relabeled[graph.xadj[old_v] : graph.xadj[old_v + 1]]
        out = adjncy[xadj[new_v] : xadj[new_v + 1]]
        out[:] = row
        out.sort()
    return CSRGraph(xadj=xadj, adjncy=adjncy)


def is_symmetric(graph: CSRGraph) -> bool:
    """True when every arc ``u -> v`` has its mate ``v -> u``."""
    n = graph.num_vertices
    src = np.repeat(np.arange(n, dtype=np.int64), graph.degrees())
    forward = np.stack([src, graph.adjncy], axis=1)
    backward = np.stack([graph.adjncy, src], axis=1)
    f = forward[np.lexsort((forward[:, 1], forward[:, 0]))]
    b = backward[np.lexsort((backward[:, 1], backward[:, 0]))]
    return bool(np.array_equal(f, b))
