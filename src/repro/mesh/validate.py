"""Structural validation of triangle meshes.

These checks are used by the mesh generators (every generated mesh must
validate before it is handed to an experiment) and by property-based
tests. A failed check raises :class:`MeshValidationError` with a message
naming the offending entity, which makes generator bugs fast to localise.
"""

from __future__ import annotations

import numpy as np

from .csr import is_symmetric
from .trimesh import TriMesh

__all__ = ["MeshValidationError", "validate_mesh", "mesh_issues"]


class MeshValidationError(ValueError):
    """Raised when a mesh violates a structural invariant."""


def mesh_issues(
    mesh: TriMesh,
    *,
    require_orientation: bool = False,
    min_area: float = 0.0,
) -> list[str]:
    """Return a list of human-readable invariant violations (empty = OK).

    Checks performed:

    * triangle vertex indices in range and pairwise distinct;
    * no duplicated triangles (up to rotation);
    * triangle areas strictly above ``min_area`` in magnitude
      (degenerate / zero-area elements break the quality metric);
    * consistent counter-clockwise orientation when
      ``require_orientation`` is set;
    * CSR adjacency symmetric;
    * at least one interior vertex when the mesh has triangles, since a
      mesh with nothing to smooth makes every experiment vacuous.
    """
    issues: list[str] = []
    tri = mesh.triangles

    if tri.size:
        same = (tri[:, 0] == tri[:, 1]) | (tri[:, 1] == tri[:, 2]) | (
            tri[:, 0] == tri[:, 2]
        )
        for t in np.flatnonzero(same)[:5]:
            issues.append(f"triangle {t} has repeated vertices {tri[t].tolist()}")

        canon = np.sort(tri, axis=1)
        _, first, counts = np.unique(
            canon, axis=0, return_index=True, return_counts=True
        )
        for t in first[counts > 1][:5]:
            issues.append(f"triangle {t} is duplicated")

        areas = mesh.triangle_areas()
        bad = np.abs(areas) <= min_area
        for t in np.flatnonzero(bad)[:5]:
            issues.append(f"triangle {t} is degenerate (area={areas[t]:.3e})")

        if require_orientation and np.any(areas < 0):
            neg = int(np.count_nonzero(areas < 0))
            issues.append(f"{neg} triangles are clockwise-oriented")

        if mesh.interior_vertices().size == 0:
            issues.append("mesh has no interior vertices")

    if not is_symmetric(mesh.adjacency):
        issues.append("vertex adjacency is not symmetric")
    return issues


def validate_mesh(
    mesh: TriMesh,
    *,
    require_orientation: bool = False,
    min_area: float = 0.0,
) -> TriMesh:
    """Raise :class:`MeshValidationError` unless the mesh is well-formed."""
    issues = mesh_issues(
        mesh, require_orientation=require_orientation, min_area=min_area
    )
    if issues:
        label = mesh.name or "<unnamed>"
        raise MeshValidationError(
            f"mesh {label!r} failed validation:\n  " + "\n  ".join(issues)
        )
    return mesh
