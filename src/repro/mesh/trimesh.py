"""The central triangle-mesh container.

A :class:`TriMesh` owns the vertex coordinates, the triangle connectivity
and lazily-built derived structures (CSR vertex adjacency, boundary mask,
vertex->triangle incidence). Orderings act on meshes through
:meth:`TriMesh.permute`, which relabels every structure consistently, so
the rest of the library never needs to reason about permutations.

The memory-layout conventions that the cache simulator models
(coordinate array, flag array, CSR adjacency) mirror the fields of this
class; see :mod:`repro.memsim.layout`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .csr import CSRGraph, adjacency_from_triangles, edges_from_triangles, permute_csr

__all__ = ["TriMesh", "boundary_vertices_from_triangles"]


def boundary_vertices_from_triangles(
    triangles: np.ndarray, num_vertices: int
) -> np.ndarray:
    """Boolean mask of vertices lying on the mesh boundary.

    An edge is a boundary edge when it belongs to exactly one triangle;
    a vertex is a boundary vertex when it touches a boundary edge.
    Isolated vertices (in no triangle) are reported as boundary so the
    smoother never moves them.
    """
    tri = np.asarray(triangles, dtype=np.int64)
    mask = np.zeros(num_vertices, dtype=bool)
    if tri.size == 0:
        mask[:] = True
        return mask
    raw = np.concatenate([tri[:, [0, 1]], tri[:, [1, 2]], tri[:, [2, 0]]])
    raw.sort(axis=1)
    edges, counts = np.unique(raw, axis=0, return_counts=True)
    boundary_edges = edges[counts == 1]
    mask[boundary_edges.ravel()] = True
    used = np.zeros(num_vertices, dtype=bool)
    used[tri.ravel()] = True
    mask[~used] = True
    return mask


@dataclass
class TriMesh:
    """A 2-D triangle mesh.

    Parameters
    ----------
    vertices:
        Float64 array of shape ``(n, 2)``.
    triangles:
        Int64 array of shape ``(m, 3)``; counter-clockwise orientation is
        conventional but not required.
    name:
        Optional label used in reports (e.g. ``"ocean"``).
    """

    vertices: np.ndarray
    triangles: np.ndarray
    name: str = ""
    _adjacency: CSRGraph | None = field(default=None, repr=False, compare=False)
    _boundary: np.ndarray | None = field(default=None, repr=False, compare=False)
    _vertex_tris: tuple[np.ndarray, np.ndarray] | None = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        self.vertices = np.ascontiguousarray(self.vertices, dtype=np.float64)
        self.triangles = np.ascontiguousarray(self.triangles, dtype=np.int64)
        if self.vertices.ndim != 2 or self.vertices.shape[1] != 2:
            raise ValueError("vertices must have shape (n, 2)")
        if self.triangles.ndim != 2 or self.triangles.shape[1] != 3:
            raise ValueError("triangles must have shape (m, 3)")
        if self.triangles.size:
            lo, hi = self.triangles.min(), self.triangles.max()
            if lo < 0 or hi >= self.num_vertices:
                raise ValueError("triangle vertex index out of range")

    # ------------------------------------------------------------------
    # basic queries
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return self.vertices.shape[0]

    @property
    def num_triangles(self) -> int:
        return self.triangles.shape[0]

    @property
    def adjacency(self) -> CSRGraph:
        """CSR vertex-to-vertex adjacency (built lazily, then cached)."""
        if self._adjacency is None:
            self._adjacency = adjacency_from_triangles(
                self.triangles, self.num_vertices
            )
        return self._adjacency

    @property
    def boundary_mask(self) -> np.ndarray:
        """Boolean mask, True for boundary (fixed) vertices."""
        if self._boundary is None:
            self._boundary = boundary_vertices_from_triangles(
                self.triangles, self.num_vertices
            )
        return self._boundary

    @property
    def interior_mask(self) -> np.ndarray:
        return ~self.boundary_mask

    def interior_vertices(self) -> np.ndarray:
        """Indices of interior (movable) vertices, ascending."""
        return np.flatnonzero(self.interior_mask)

    def edges(self) -> np.ndarray:
        """Unique undirected edges, shape ``(e, 2)``."""
        return edges_from_triangles(self.triangles)

    @property
    def vertex_triangles(self) -> tuple[np.ndarray, np.ndarray]:
        """CSR incidence (xadj, tri_ids): triangles attached to each vertex."""
        if self._vertex_tris is None:
            n = self.num_vertices
            flat = self.triangles.ravel()
            tri_ids = np.repeat(np.arange(self.num_triangles, dtype=np.int64), 3)
            order = np.argsort(flat, kind="stable")
            sorted_v = flat[order]
            sorted_t = tri_ids[order]
            counts = np.bincount(sorted_v, minlength=n)
            xadj = np.zeros(n + 1, dtype=np.int64)
            np.cumsum(counts, out=xadj[1:])
            self._vertex_tris = (xadj, sorted_t)
        return self._vertex_tris

    def triangle_areas(self) -> np.ndarray:
        """Signed areas (positive for counter-clockwise triangles)."""
        p = self.vertices[self.triangles]
        a = p[:, 1] - p[:, 0]
        b = p[:, 2] - p[:, 0]
        return 0.5 * (a[:, 0] * b[:, 1] - a[:, 1] * b[:, 0])

    # ------------------------------------------------------------------
    # transformations
    # ------------------------------------------------------------------
    def copy(self) -> "TriMesh":
        """Deep copy (vertices and triangles are duplicated)."""
        return TriMesh(self.vertices.copy(), self.triangles.copy(), name=self.name)

    def permute(self, order: np.ndarray) -> "TriMesh":
        """Relabel vertices under ``order``.

        ``order[k]`` is the old index of the vertex stored at new position
        ``k``. Returns a new mesh; ``self`` is untouched. Derived
        structures of the new mesh are rebuilt consistently (adjacency is
        permuted directly rather than recomputed, which is cheaper and
        keeps the two code paths honest against each other in tests).
        """
        order = np.asarray(order, dtype=np.int64)
        n = self.num_vertices
        if order.shape != (n,):
            raise ValueError(f"order must have shape ({n},)")
        if not np.array_equal(np.sort(order), np.arange(n)):
            raise ValueError("order must be a permutation of 0..n-1")
        inverse = np.empty(n, dtype=np.int64)
        inverse[order] = np.arange(n, dtype=np.int64)
        new = TriMesh(
            self.vertices[order],
            inverse[self.triangles],
            name=self.name,
        )
        if self._adjacency is not None:
            new._adjacency = permute_csr(self._adjacency, order)
        if self._boundary is not None:
            new._boundary = self._boundary[order]
        return new

    def with_vertices(self, vertices: np.ndarray) -> "TriMesh":
        """Same connectivity, new coordinates (shares derived caches)."""
        new = TriMesh(vertices, self.triangles, name=self.name)
        new._adjacency = self._adjacency
        new._boundary = self._boundary
        new._vertex_tris = self._vertex_tris
        return new
