"""Mesh I/O in Jonathan Shewchuk's Triangle format and a JSON sidecar.

The paper's meshes were produced by Triangle, whose native on-disk format
is a pair of files: ``<stem>.node`` (vertices) and ``<stem>.ele``
(triangles). We read and write that format so meshes can be exchanged
with the original toolchain, plus a single-file JSON form that is handier
for test fixtures.

Triangle format reference (plain text, ``#`` comments allowed):

``.node``::

    <#vertices> <dim=2> <#attrs> <#boundary markers 0|1>
    <id> <x> <y> [attrs...] [marker]

``.ele``::

    <#triangles> <nodes per tri = 3> <#attrs>
    <id> <v1> <v2> <v3> [attrs...]

Vertex ids may start at 0 or 1; we detect and normalise to 0-based.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from .trimesh import TriMesh

__all__ = [
    "write_triangle",
    "read_triangle",
    "write_json",
    "read_json",
    "write_off",
    "read_off",
]


def _data_lines(path: Path) -> list[list[str]]:
    lines: list[list[str]] = []
    for raw in path.read_text().splitlines():
        stripped = raw.split("#", 1)[0].strip()
        if stripped:
            lines.append(stripped.split())
    return lines


def write_triangle(mesh: TriMesh, stem: str | Path) -> tuple[Path, Path]:
    """Write ``<stem>.node`` and ``<stem>.ele``; returns the two paths."""
    stem = Path(stem)
    node_path = stem.with_suffix(".node")
    ele_path = stem.with_suffix(".ele")

    markers = mesh.boundary_mask.astype(int)
    with node_path.open("w") as fh:
        fh.write(f"{mesh.num_vertices} 2 0 1\n")
        for i, (x, y) in enumerate(mesh.vertices):
            # repr of a Python float is shortest-exact, so coordinates
            # round-trip bit-for-bit.
            fh.write(f"{i} {float(x)!r} {float(y)!r} {markers[i]}\n")

    with ele_path.open("w") as fh:
        fh.write(f"{mesh.num_triangles} 3 0\n")
        for i, (a, b, c) in enumerate(mesh.triangles):
            fh.write(f"{i} {a} {b} {c}\n")
    return node_path, ele_path


def read_triangle(stem: str | Path, name: str = "") -> TriMesh:
    """Read a ``.node``/``.ele`` pair written by Triangle or by us."""
    stem = Path(stem)
    node_lines = _data_lines(stem.with_suffix(".node"))
    ele_lines = _data_lines(stem.with_suffix(".ele"))
    if not node_lines or not ele_lines:
        raise ValueError(f"empty Triangle files at {stem}")

    n_vertices = int(node_lines[0][0])
    dim = int(node_lines[0][1])
    if dim != 2:
        raise ValueError("only 2-D .node files are supported")
    body = node_lines[1 : 1 + n_vertices]
    if len(body) != n_vertices:
        raise ValueError(".node header count does not match data lines")
    ids = np.array([int(row[0]) for row in body], dtype=np.int64)
    coords = np.array([[float(row[1]), float(row[2])] for row in body])
    base = int(ids.min()) if n_vertices else 0
    if base not in (0, 1):
        raise ValueError("vertex ids must be 0- or 1-based")
    order = np.argsort(ids, kind="stable")
    coords = coords[order]

    n_tris = int(ele_lines[0][0])
    nodes_per = int(ele_lines[0][1])
    if nodes_per != 3:
        raise ValueError("only 3-node triangles are supported")
    tri_body = ele_lines[1 : 1 + n_tris]
    if len(tri_body) != n_tris:
        raise ValueError(".ele header count does not match data lines")
    tris = np.array(
        [[int(row[1]), int(row[2]), int(row[3])] for row in tri_body],
        dtype=np.int64,
    )
    tris -= base
    return TriMesh(coords, tris, name=name or stem.name)


def write_off(mesh: TriMesh, path: str | Path) -> Path:
    """Write the mesh in the Object File Format (planar, z = 0).

    OFF is what most mesh viewers read, so this is the interchange path
    for inspecting generated/smoothed meshes visually.
    """
    path = Path(path)
    with path.open("w") as fh:
        fh.write("OFF\n")
        fh.write(f"{mesh.num_vertices} {mesh.num_triangles} 0\n")
        for x, y in mesh.vertices:
            fh.write(f"{float(x)!r} {float(y)!r} 0.0\n")
        for a, b, c in mesh.triangles:
            fh.write(f"3 {a} {b} {c}\n")
    return path


def read_off(path: str | Path, name: str = "") -> TriMesh:
    """Read an OFF file (triangles only; z coordinates dropped)."""
    path = Path(path)
    lines = _data_lines(path)
    if not lines or lines[0][0].upper() != "OFF":
        raise ValueError(f"{path} is not an OFF file")
    nv, nf = int(lines[1][0]), int(lines[1][1])
    body = lines[2:]
    if len(body) < nv + nf:
        raise ValueError("OFF header counts do not match data lines")
    coords = np.array(
        [[float(row[0]), float(row[1])] for row in body[:nv]], dtype=np.float64
    )
    tris = []
    for row in body[nv : nv + nf]:
        if int(row[0]) != 3:
            raise ValueError("only triangular OFF faces are supported")
        tris.append([int(row[1]), int(row[2]), int(row[3])])
    return TriMesh(
        coords, np.asarray(tris, dtype=np.int64), name=name or path.stem
    )


def write_json(mesh: TriMesh, path: str | Path) -> Path:
    """Single-file JSON form: ``{"name", "vertices", "triangles"}``."""
    path = Path(path)
    payload = {
        "name": mesh.name,
        "vertices": mesh.vertices.tolist(),
        "triangles": mesh.triangles.tolist(),
    }
    path.write_text(json.dumps(payload))
    return path


def read_json(path: str | Path) -> TriMesh:
    """Read a mesh written by :func:`write_json`."""
    payload = json.loads(Path(path).read_text())
    return TriMesh(
        np.asarray(payload["vertices"], dtype=np.float64),
        np.asarray(payload["triangles"], dtype=np.int64),
        name=payload.get("name", ""),
    )
