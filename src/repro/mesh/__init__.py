"""Triangle-mesh data structures: CSR adjacency, containers, I/O, checks."""

from .csr import (
    CSRGraph,
    adjacency_from_triangles,
    edges_from_triangles,
    is_symmetric,
    permute_csr,
)
from .io import (
    read_json,
    read_off,
    read_triangle,
    write_json,
    write_off,
    write_triangle,
)
from .trimesh import TriMesh, boundary_vertices_from_triangles
from .validate import MeshValidationError, mesh_issues, validate_mesh

__all__ = [
    "CSRGraph",
    "TriMesh",
    "MeshValidationError",
    "adjacency_from_triangles",
    "boundary_vertices_from_triangles",
    "edges_from_triangles",
    "is_symmetric",
    "mesh_issues",
    "permute_csr",
    "read_json",
    "read_off",
    "read_triangle",
    "validate_mesh",
    "write_json",
    "write_off",
    "write_triangle",
]
