"""Quality-based orderings that are NOT the paper's RDR.

These exist for the ablation studies: RDR combines two ingredients —
(a) prioritising low-quality vertices and (b) appending each vertex's
neighborhood contiguously. ``qsort`` keeps only ingredient (a), and
``degree`` is a structural sort with no quality at all. Comparing them
against RDR isolates how much of the win comes from the
neighborhood-contiguity part of Algorithm 2.
"""

from __future__ import annotations

import numpy as np

from ..mesh import TriMesh
from ..quality import vertex_quality
from .base import register_ordering

__all__ = ["quality_sort_ordering", "degree_ordering"]


@register_ordering("qsort")
def quality_sort_ordering(
    mesh: TriMesh, *, seed: int = 0, qualities: np.ndarray | None = None
) -> np.ndarray:
    """Global sort by increasing initial vertex quality (worst first).

    This is "RDR without the neighborhood walk": the greedy smoother's
    *seed* preference is respected, but neighbors of a vertex end up
    scattered wherever their own quality places them.
    """
    if qualities is None:
        qualities = vertex_quality(mesh)
    return np.argsort(qualities, kind="stable").astype(np.int64)


@register_ordering("degree")
def degree_ordering(
    mesh: TriMesh, *, seed: int = 0, qualities=None
) -> np.ndarray:
    """Sort by vertex degree (stable): a cheap structural baseline."""
    return np.argsort(mesh.adjacency.degrees(), kind="stable").astype(np.int64)
