"""Sloan's profile-reduction ordering.

Sloan (IJNME 1986) orders vertices to minimise the matrix *profile* by a
priority queue mixing global distance-to-end and local degree-of-
activity — for decades the standard ordering for finite-element meshes
and a natural extra baseline for the paper's study (its profile
objective is a cousin of the reuse-distance objective RDR targets).

Priority of a candidate vertex v:
    P(v) = -W1 * incr(v) + W2 * dist(v)
where ``incr(v)`` is the increase of the active front if v is numbered
next (current degree towards unnumbered vertices), ``dist(v)`` is the
graph distance to a pseudo-peripheral end vertex, and W1/W2 the classic
weights (2, 1). Vertices move through the states inactive ->
preactive -> active -> numbered.
"""

from __future__ import annotations

import heapq
from collections import deque

import numpy as np

from ..mesh import TriMesh
from .base import register_ordering
from .traversals import _pseudo_peripheral

__all__ = ["sloan_ordering"]

_INACTIVE, _PREACTIVE, _ACTIVE, _NUMBERED = 0, 1, 2, 3


def _bfs_distance(xadj, adjncy, n, start):
    dist = np.full(n, -1, dtype=np.int64)
    dist[start] = 0
    q = deque([start])
    while q:
        v = q.popleft()
        for w in adjncy[xadj[v] : xadj[v + 1]]:
            if dist[w] == -1:
                dist[w] = dist[v] + 1
                q.append(int(w))
    return dist


@register_ordering("sloan")
def sloan_ordering(
    mesh: TriMesh,
    *,
    seed: int = 0,
    qualities=None,
    w1: int = 2,
    w2: int = 1,
) -> np.ndarray:
    """Sloan's algorithm; handles disconnected meshes component-wise."""
    g = mesh.adjacency
    xadj, adjncy = g.xadj, g.adjncy
    n = mesh.num_vertices
    if n == 0:
        return np.empty(0, dtype=np.int64)

    order = np.empty(n, dtype=np.int64)
    status = np.full(n, _INACTIVE, dtype=np.int8)
    pos = 0

    remaining = np.ones(n, dtype=bool)
    while remaining.any():
        start = int(np.flatnonzero(remaining)[0])
        start = _pseudo_peripheral(xadj, adjncy, n, start)
        # Restrict the end-distance field to this component.
        dist = _bfs_distance(xadj, adjncy, n, start)
        component = np.flatnonzero(dist >= 0)
        end = int(component[np.argmax(dist[component])])
        dist_to_end = _bfs_distance(xadj, adjncy, n, end)

        # Current degree towards not-yet-numbered vertices + 1 if the
        # vertex itself is not yet active (Sloan's incr definition).
        cdeg = np.diff(xadj).astype(np.int64)

        counter = 0  # tie-break, keeps the heap deterministic
        heap: list[tuple[int, int, int]] = []

        def priority(v: int) -> int:
            incr = cdeg[v] + (1 if status[v] == _PREACTIVE else 2)
            return -(-w1 * incr + w2 * int(dist_to_end[v]))

        status[start] = _PREACTIVE
        heapq.heappush(heap, (priority(start), counter, start))
        counter += 1

        while heap:
            _, _, v = heapq.heappop(heap)
            if status[v] == _NUMBERED:
                continue
            if status[v] == _INACTIVE:
                continue
            # Number v.
            if status[v] == _PREACTIVE:
                # Its neighbors become preactive.
                for w in adjncy[xadj[v] : xadj[v + 1]]:
                    if status[w] == _INACTIVE:
                        status[w] = _PREACTIVE
                        heapq.heappush(heap, (priority(int(w)), counter, int(w)))
                        counter += 1
            status[v] = _NUMBERED
            order[pos] = v
            pos += 1
            remaining[v] = False
            for w in adjncy[xadj[v] : xadj[v + 1]].tolist():
                cdeg[w] -= 1
                if status[w] in (_PREACTIVE, _ACTIVE):
                    status[w] = _ACTIVE
                    heapq.heappush(heap, (priority(w), counter, w))
                    counter += 1
                elif status[w] == _INACTIVE:
                    status[w] = _PREACTIVE
                    heapq.heappush(heap, (priority(w), counter, w))
                    counter += 1
    assert pos == n
    return order
