"""Sloan's profile-reduction ordering.

Sloan (IJNME 1986) orders vertices to minimise the matrix *profile* by a
priority queue mixing global distance-to-end and local degree-of-
activity — for decades the standard ordering for finite-element meshes
and a natural extra baseline for the paper's study (its profile
objective is a cousin of the reuse-distance objective RDR targets).

Priority of a candidate vertex v:
    P(v) = -W1 * incr(v) + W2 * dist(v)
where ``incr(v)`` is the increase of the active front if v is numbered
next (current degree towards unnumbered vertices), ``dist(v)`` is the
graph distance to a pseudo-peripheral end vertex, and W1/W2 the classic
weights (2, 1). Vertices move through the states inactive ->
preactive -> active -> numbered.

The heap is inherently sequential, so the batched engine
(:func:`batched_sloan_ordering`) keeps it but removes everything
around it: the pseudo-peripheral search and both distance passes run
on the vectorized frontier BFS, and each numbering step computes the
priorities of all affected neighbors with array ops, pushing them in
the reference's exact row order (same values, same counters — the
permutation is element-identical).
"""

from __future__ import annotations

import heapq
from collections import deque

import numpy as np

from ..mesh import TriMesh
from .base import register_batched_ordering, register_ordering
from .batched import (
    frontier_distances,
    frontier_plan,
    frontier_pseudo_peripheral,
)
from .traversals import _pseudo_peripheral

__all__ = ["sloan_ordering", "batched_sloan_ordering"]

_INACTIVE, _PREACTIVE, _ACTIVE, _NUMBERED = 0, 1, 2, 3


def _bfs_distance(xadj, adjncy, n, start):
    dist = np.full(n, -1, dtype=np.int64)
    dist[start] = 0
    q = deque([start])
    while q:
        v = q.popleft()
        for w in adjncy[xadj[v] : xadj[v + 1]]:
            if dist[w] == -1:
                dist[w] = dist[v] + 1
                q.append(int(w))
    return dist


def _number_component(
    xadj: np.ndarray,
    adjncy: np.ndarray,
    status: np.ndarray,
    order: np.ndarray,
    pos: int,
    remaining: np.ndarray,
    dist_to_end: np.ndarray,
    start: int,
    w1: int,
    w2: int,
    *,
    batched: bool,
) -> int:
    """Number one component from ``start``; returns the new ``pos``.

    Both engines share this loop; ``batched`` only switches the
    per-neighbor priority computation from the scalar closure to array
    ops.  Push order, priority values and tie-break counters are
    identical either way.
    """
    # Current degree towards not-yet-numbered vertices + 1 if the
    # vertex itself is not yet active (Sloan's incr definition).
    cdeg = np.diff(xadj).astype(np.int64)
    # Invariant lookups hoisted out of the priority computation: the
    # distance term never changes, so fold the weight in once.
    dist_term = w2 * dist_to_end

    counter = 0  # tie-break, keeps the heap deterministic
    heap: list[tuple[int, int, int]] = []
    push = heapq.heappush

    def priority(v: int) -> int:
        incr = cdeg[v] + (1 if status[v] == _PREACTIVE else 2)
        return w1 * incr - int(dist_term[v])

    status[start] = _PREACTIVE
    push(heap, (priority(start), counter, start))
    counter += 1

    while heap:
        _, _, v = heapq.heappop(heap)
        if status[v] == _NUMBERED:
            continue
        if status[v] == _INACTIVE:
            continue
        row = adjncy[xadj[v] : xadj[v + 1]]
        if status[v] == _PREACTIVE:
            # Its inactive neighbors become preactive (incr uses the
            # pre-decrement degree + 1).
            if batched:
                fresh = row[status[row] == _INACTIVE]
                if fresh.size:
                    status[fresh] = _PREACTIVE
                    prios = (w1 * (cdeg[fresh] + 1) - dist_term[fresh]).tolist()
                    for p, w in zip(prios, fresh.tolist()):
                        push(heap, (p, counter, w))
                        counter += 1
            else:
                for w in row:
                    if status[w] == _INACTIVE:
                        status[w] = _PREACTIVE
                        push(heap, (priority(int(w)), counter, int(w)))
                        counter += 1
        status[v] = _NUMBERED
        order[pos] = v
        pos += 1
        remaining[v] = False
        if batched:
            cdeg[row] -= 1
            st = status[row]
            was_active = (st == _PREACTIVE) | (st == _ACTIVE)
            touched = was_active | (st == _INACTIVE)
            sub = row[touched]
            if sub.size:
                kind = was_active[touched]
                incr = cdeg[sub] + np.where(kind, 2, 1)
                prios = (w1 * incr - dist_term[sub]).tolist()
                status[sub] = np.where(kind, _ACTIVE, _PREACTIVE)
                for p, w in zip(prios, sub.tolist()):
                    push(heap, (p, counter, w))
                    counter += 1
        else:
            for w in row.tolist():
                cdeg[w] -= 1
                if status[w] in (_PREACTIVE, _ACTIVE):
                    status[w] = _ACTIVE
                    push(heap, (priority(w), counter, w))
                    counter += 1
                elif status[w] == _INACTIVE:
                    status[w] = _PREACTIVE
                    push(heap, (priority(w), counter, w))
                    counter += 1
    return pos


@register_ordering("sloan")
def sloan_ordering(
    mesh: TriMesh,
    *,
    seed: int = 0,
    qualities=None,
    w1: int = 2,
    w2: int = 1,
) -> np.ndarray:
    """Sloan's algorithm; handles disconnected meshes component-wise."""
    g = mesh.adjacency
    xadj, adjncy = g.xadj, g.adjncy
    n = mesh.num_vertices
    if n == 0:
        return np.empty(0, dtype=np.int64)

    order = np.empty(n, dtype=np.int64)
    status = np.full(n, _INACTIVE, dtype=np.int8)
    pos = 0

    remaining = np.ones(n, dtype=bool)
    while remaining.any():
        start = int(np.flatnonzero(remaining)[0])
        start = _pseudo_peripheral(xadj, adjncy, n, start)
        # Restrict the end-distance field to this component.
        dist = _bfs_distance(xadj, adjncy, n, start)
        component = np.flatnonzero(dist >= 0)
        end = int(component[np.argmax(dist[component])])
        dist_to_end = _bfs_distance(xadj, adjncy, n, end)
        pos = _number_component(
            xadj, adjncy, status, order, pos, remaining, dist_to_end,
            start, w1, w2, batched=False,
        )
    assert pos == n
    return order


@register_batched_ordering("sloan")
def batched_sloan_ordering(
    mesh: TriMesh,
    *,
    seed: int = 0,
    qualities=None,
    w1: int = 2,
    w2: int = 1,
) -> np.ndarray:
    """Sloan with frontier BFS passes and batched priority updates.

    Identical permutation to :func:`sloan_ordering` — the
    pseudo-peripheral/end-distance sweeps are exact frontier
    re-executions, and the heap sees the same (priority, counter)
    stream.
    """
    g = mesh.adjacency
    n = mesh.num_vertices
    if n == 0:
        return np.empty(0, dtype=np.int64)
    plan = frontier_plan(g)

    order = np.empty(n, dtype=np.int64)
    status = np.full(n, _INACTIVE, dtype=np.int8)
    pos = 0

    remaining = np.ones(n, dtype=bool)
    while remaining.any():
        start = int(np.flatnonzero(remaining)[0])
        start = frontier_pseudo_peripheral(plan, start)
        dist = frontier_distances(plan, start)
        component = np.flatnonzero(dist >= 0)
        end = int(component[np.argmax(dist[component])])
        dist_to_end = frontier_distances(plan, end)
        pos = _number_component(
            g.xadj, g.adjncy, status, order, pos, remaining, dist_to_end,
            start, w1, w2, batched=True,
        )
    assert pos == n
    return order
