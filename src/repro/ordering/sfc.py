"""Space-filling-curve orderings: Hilbert and Morton.

Sastry, Kultursay, Shontz & Kandemir (Eng. w. Computers 2014) showed
space-filling-curve vertex reordering improves cache utilisation for
mesh applications; the paper cites it as related work, so the Hilbert
ordering is included as an additional baseline for the ablation benches.
Both orderings quantise vertex coordinates onto a ``2^bits`` grid and
sort by the curve index.
"""

from __future__ import annotations

import numpy as np

from ..mesh import TriMesh
from ..meshgen.delaunay import morton_order
from .base import register_ordering

__all__ = ["hilbert_indices", "hilbert_ordering", "morton_ordering"]


def hilbert_indices(points: np.ndarray, bits: int = 16) -> np.ndarray:
    """Hilbert-curve index of each 2-D point on a ``2^bits`` grid.

    Vectorised form of the classic xy->d conversion (Wikipedia's
    ``xy2d``): walk from the most significant bit down, rotating the
    frame at each step.
    """
    pts = np.asarray(points, dtype=np.float64)
    lo = pts.min(axis=0)
    span = pts.max(axis=0) - lo
    span[span == 0.0] = 1.0
    side = np.int64(1) << bits
    x = np.clip(((pts[:, 0] - lo[0]) / span[0] * (side - 1)), 0, side - 1).astype(
        np.int64
    )
    y = np.clip(((pts[:, 1] - lo[1]) / span[1] * (side - 1)), 0, side - 1).astype(
        np.int64
    )
    d = np.zeros(pts.shape[0], dtype=np.int64)
    s = side >> 1
    while s > 0:
        rx = ((x & s) > 0).astype(np.int64)
        ry = ((y & s) > 0).astype(np.int64)
        d += s * s * ((3 * rx) ^ ry)
        # Rotate the quadrant frame.
        swap = ry == 0
        flip = swap & (rx == 1)
        x_f = np.where(flip, s - 1 - x, x)
        y_f = np.where(flip, s - 1 - y, y)
        x, y = np.where(swap, y_f, x_f), np.where(swap, x_f, y_f)
        s >>= 1
    return d


@register_ordering("hilbert")
def hilbert_ordering(mesh: TriMesh, *, seed: int = 0, qualities=None) -> np.ndarray:
    """Sort vertices along a Hilbert curve through their coordinates."""
    idx = hilbert_indices(mesh.vertices)
    return np.argsort(idx, kind="stable").astype(np.int64)


@register_ordering("morton")
def morton_ordering(mesh: TriMesh, *, seed: int = 0, qualities=None) -> np.ndarray:
    """Sort vertices along a Morton (Z-order) curve."""
    return morton_order(mesh.vertices).astype(np.int64)
