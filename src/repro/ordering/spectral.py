"""Spectral (Fiedler-vector) ordering.

Sorting vertices by the second eigenvector of the graph Laplacian is
the classic spectral envelope-reduction heuristic (Barnard/Pothen/Simon
1995): the Fiedler vector varies smoothly along the mesh, so sorting by
it produces a sweep with small edge spans. Included as the strongest
"structural" baseline of the extended ordering zoo.

The Fiedler vector is computed with a shifted power iteration on the
normalised adjacency (pure NumPy, no sparse-eigensolver dependency):
deflating the trivial constant eigenvector of the random-walk matrix
and iterating to its second-dominant eigenvector.
"""

from __future__ import annotations

import numpy as np

from ..mesh import TriMesh
from .base import register_ordering

__all__ = ["fiedler_vector", "spectral_ordering"]


def fiedler_vector(
    mesh: TriMesh, *, iterations: int = 300, tol: float = 1e-10, seed: int = 0
) -> np.ndarray:
    """Approximate Fiedler vector via deflated power iteration.

    Uses ``P = D^-1 A`` (random-walk matrix): its dominant eigenvector
    is constant; the next one, orthogonal to the degree-weighted
    constant, is the sign-structure of the Fiedler vector of the
    normalised Laplacian — exactly what the ordering needs.
    """
    g = mesh.adjacency
    xadj, adjncy = g.xadj, g.adjncy
    n = mesh.num_vertices
    deg = np.diff(xadj).astype(np.float64)
    safe_deg = np.where(deg == 0, 1.0, deg)
    weights = deg / max(deg.sum(), 1.0)

    rng = np.random.default_rng(seed)
    x = rng.standard_normal(n)
    if adjncy.size == 0:
        return x
    offsets = np.minimum(xadj[:-1], adjncy.size - 1)
    isolated = deg == 0

    def step(v: np.ndarray) -> np.ndarray:
        sums = np.add.reduceat(v[adjncy], offsets)
        sums[isolated] = 0.0
        return sums / safe_deg

    prev = None
    for _ in range(iterations):
        # Deflate the stationary component (degree-weighted mean).  The
        # scalar broadcast is bitwise-equal to the former explicit
        # ``* np.ones(n)`` rank-1 update (s * 1.0 == s for IEEE floats).
        x = x - (weights @ x)
        # One application of P, plus a 0.5 shift to damp the -1 end of
        # the spectrum (bipartite-ish oscillation).
        x = 0.5 * (x + step(x))
        norm = np.linalg.norm(x)
        if norm == 0.0:
            x = rng.standard_normal(n)
            continue
        x /= norm
        if prev is not None and np.linalg.norm(x - prev) < tol:
            break
        prev = x
    return x


@register_ordering("spectral")
def spectral_ordering(
    mesh: TriMesh, *, seed: int = 0, qualities=None
) -> np.ndarray:
    """Sort vertices by their Fiedler-vector value."""
    f = fiedler_vector(mesh, seed=seed)
    return np.argsort(f, kind="stable").astype(np.int64)
