"""Vertex orderings: registry, the paper's baselines, and extras.

Importing this package registers: ``ori``, ``random``, ``bfs``, ``rbfs``,
``dfs``, ``rcm``, ``hilbert``, ``morton``, ``qsort``, ``degree``. The
paper's contribution, ``rdr``, registers on import of :mod:`repro.core`
(or the top-level :mod:`repro` package).

Each name is additionally available under the ``order_engine`` axis:
``get_ordering(name, order_engine="batched")`` resolves the vectorized
frontier/plan-based implementation (:mod:`~repro.ordering.batched`)
when one is registered, with a guaranteed-identical permutation; names
without a batched variant fall back to the reference function.
"""

from .base import (
    BATCHED_ORDERINGS,
    ORDER_ENGINES,
    ORDERINGS,
    OrderingFn,
    apply_ordering,
    check_permutation,
    get_ordering,
    invert_permutation,
    register_batched_ordering,
    register_ordering,
)
from .quality_orders import degree_ordering, quality_sort_ordering
from .sfc import hilbert_indices, hilbert_ordering, morton_ordering
from .sloan import batched_sloan_ordering, sloan_ordering
from .spectral import fiedler_vector, spectral_ordering
from .traversals import (
    bfs_ordering,
    dfs_ordering,
    ori_ordering,
    random_ordering,
    rcm_ordering,
    reverse_bfs_ordering,
)
from .batched import (
    FrontierPlan,
    batched_bfs_ordering,
    batched_rcm_ordering,
    batched_reverse_bfs_ordering,
    frontier_bfs,
    frontier_distances,
    frontier_plan,
    frontier_pseudo_peripheral,
    release_plan_caches,
)

__all__ = [
    "BATCHED_ORDERINGS",
    "FrontierPlan",
    "ORDERINGS",
    "ORDER_ENGINES",
    "OrderingFn",
    "apply_ordering",
    "batched_bfs_ordering",
    "batched_rcm_ordering",
    "batched_reverse_bfs_ordering",
    "batched_sloan_ordering",
    "bfs_ordering",
    "check_permutation",
    "degree_ordering",
    "dfs_ordering",
    "fiedler_vector",
    "frontier_bfs",
    "frontier_distances",
    "frontier_plan",
    "release_plan_caches",
    "frontier_pseudo_peripheral",
    "get_ordering",
    "hilbert_indices",
    "hilbert_ordering",
    "invert_permutation",
    "morton_ordering",
    "ori_ordering",
    "quality_sort_ordering",
    "random_ordering",
    "rcm_ordering",
    "register_batched_ordering",
    "register_ordering",
    "reverse_bfs_ordering",
    "sloan_ordering",
    "spectral_ordering",
]
