"""Vertex orderings: registry, the paper's baselines, and extras.

Importing this package registers: ``ori``, ``random``, ``bfs``, ``rbfs``,
``dfs``, ``rcm``, ``hilbert``, ``morton``, ``qsort``, ``degree``. The
paper's contribution, ``rdr``, registers on import of :mod:`repro.core`
(or the top-level :mod:`repro` package).
"""

from .base import (
    ORDERINGS,
    OrderingFn,
    apply_ordering,
    check_permutation,
    get_ordering,
    invert_permutation,
    register_ordering,
)
from .quality_orders import degree_ordering, quality_sort_ordering
from .sfc import hilbert_indices, hilbert_ordering, morton_ordering
from .sloan import sloan_ordering
from .spectral import fiedler_vector, spectral_ordering
from .traversals import (
    bfs_ordering,
    dfs_ordering,
    ori_ordering,
    random_ordering,
    rcm_ordering,
    reverse_bfs_ordering,
)

__all__ = [
    "ORDERINGS",
    "OrderingFn",
    "apply_ordering",
    "bfs_ordering",
    "check_permutation",
    "degree_ordering",
    "dfs_ordering",
    "fiedler_vector",
    "get_ordering",
    "hilbert_indices",
    "hilbert_ordering",
    "invert_permutation",
    "morton_ordering",
    "ori_ordering",
    "quality_sort_ordering",
    "random_ordering",
    "rcm_ordering",
    "register_ordering",
    "reverse_bfs_ordering",
    "sloan_ordering",
    "spectral_ordering",
]
